//! Soak test: a long deterministic mixed workload driven through every
//! engine variant in the workspace simultaneously — in-memory methods,
//! the combinators, and the disk engine on a thrashing pool — checking
//! exact agreement at periodic checkpoints and full-state agreement at
//! the end.

use rps::core::ChunkedEngine;
use rps::ndcube::Region;
use rps::storage::DeviceConfig;
use rps::workload::{CubeGen, MixedWorkload, Op, QueryGen, RegionSpec, UpdateGen};
use rps::{
    BufferedEngine, DiskRpsEngine, FenwickEngine, NaiveEngine, PrefixSumEngine, RangeSumEngine,
    RpsEngine,
};

const N: usize = 48;
const OPS: usize = 3_000;
const CHECK_EVERY: usize = 250;

#[test]
fn all_engine_variants_agree_over_long_mixed_run() {
    let cube = CubeGen::new(20260706)
        .sparse(&[N, N], 0.4, 99)
        .expect("valid dims");

    let mut engines: Vec<Box<dyn RangeSumEngine<i64>>> = vec![
        Box::new(NaiveEngine::from_cube(cube.clone())),
        Box::new(PrefixSumEngine::from_cube(&cube)),
        Box::new(RpsEngine::from_cube(&cube)),
        Box::new(RpsEngine::from_cube_uniform(&cube, 5).unwrap()), // ragged k
        Box::new(FenwickEngine::from_cube(&cube)),
        Box::new(ChunkedEngine::from_cube(&cube)),
        Box::new(BufferedEngine::new(PrefixSumEngine::from_cube(&cube), 64)),
        Box::new(BufferedEngine::new(RpsEngine::from_cube(&cube), 16)),
        Box::new(
            DiskRpsEngine::from_cube_uniform(
                &cube,
                8,
                DeviceConfig { cells_per_page: 32 },
                3, // tiny pool: constant eviction pressure
            )
            .unwrap(),
        ),
    ];

    let mut workload = MixedWorkload::new(
        UpdateGen::zipf(&[N, N], 1, 0.9, 200),
        QueryGen::new(&[N, N], 2, RegionSpec::Fraction(0.7)),
        0.4,
        3,
    );

    let full = Region::new(&[0, 0], &[N - 1, N - 1]).unwrap();
    for step in 0..OPS {
        match workload.next_op() {
            Op::Update { coords, delta } => {
                for e in &mut engines {
                    e.update(&coords, delta).unwrap();
                }
            }
            Op::Query(r) => {
                let expect = engines[0].query(&r).unwrap();
                for e in &engines[1..] {
                    assert_eq!(
                        e.query(&r).unwrap(),
                        expect,
                        "{} at step {step} {r:?}",
                        e.name()
                    );
                }
            }
        }
        if step % CHECK_EVERY == 0 {
            let expect = engines[0].query(&full).unwrap();
            for e in &engines[1..] {
                assert_eq!(
                    e.query(&full).unwrap(),
                    expect,
                    "{} checkpoint {step}",
                    e.name()
                );
            }
        }
    }

    // Final full-state agreement, cell by cell, via point queries.
    let probe_cells: Vec<[usize; 2]> = (0..64).map(|i| [(i * 7) % N, (i * 13) % N]).collect();
    for c in &probe_cells {
        let expect = engines[0].cell(c).unwrap();
        for e in &engines[1..] {
            assert_eq!(e.cell(c).unwrap(), expect, "{} cell {c:?}", e.name());
        }
    }
}

#[test]
fn soak_with_sets_and_batches() {
    // Mixes `set` (read-modify-write) and `apply_batch` into the stream,
    // exercising the derived paths under sustained load.
    let cube = CubeGen::new(7)
        .uniform(&[32, 32], 0, 9)
        .expect("valid dims");
    let mut rps = RpsEngine::from_cube_uniform(&cube, 6).unwrap();
    let mut oracle = NaiveEngine::from_cube(cube);

    let mut upd = UpdateGen::uniform(&[32, 32], 11, 50);
    for round in 0..40 {
        match round % 3 {
            0 => {
                let (c, v) = upd.next_update();
                rps.set(&c, v).unwrap();
                oracle.set(&c, v).unwrap();
            }
            1 => {
                let batch = upd.take(round % 7 + 1);
                rps.apply_batch(&batch).unwrap();
                for (c, d) in &batch {
                    oracle.update(c, *d).unwrap();
                }
            }
            _ => {
                let (c, d) = upd.next_update();
                rps.update(&c, d).unwrap();
                oracle.update(&c, d).unwrap();
            }
        }
        let r = Region::new(&[round % 16, 0], &[31, 31 - (round % 16)]).unwrap();
        assert_eq!(
            rps.query(&r).unwrap(),
            oracle.query(&r).unwrap(),
            "round {round}"
        );
    }
    assert_eq!(rps.materialize(), oracle.materialize());
    assert!(rps.check_invariants().is_empty(), "structural audit failed");
}
