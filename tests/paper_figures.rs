//! E1–E7: every number printed in the paper's figures, asserted exactly
//! through the public API. Figure and section references follow the ICDE
//! 1999 text.

use rps::core::testdata::{
    paper_array_a, paper_array_p, paper_array_rp, paper_overlay_cells, PAPER_BOX_SIZE,
};
use rps::core::{corners, BoxGrid};
use rps::ndcube::Region;
use rps::{NaiveEngine, PrefixSumEngine, RangeSumEngine, RpsEngine};

fn paper_rps() -> RpsEngine<i64> {
    RpsEngine::from_cube_uniform(&paper_array_a(), PAPER_BOX_SIZE).unwrap()
}

// --- Figure 1: the data cube -------------------------------------------

#[test]
fn figure1_array_a_spot_values() {
    let a = paper_array_a();
    assert_eq!(a.get(&[0, 0]), 3);
    assert_eq!(a.get(&[1, 1]), 3);
    assert_eq!(a.get(&[8, 8]), 6);
    assert_eq!(a.get(&[6, 5]), 9);
    // §2: "the cell at A[37,25] contains the total sales…" analog —
    // A is a 9×9 cube of small sales totals.
    assert_eq!(a.shape().dims(), &[9, 9]);
}

// --- Figure 2: the prefix-sum array P ----------------------------------

#[test]
fn figure2_p_array_full_equality() {
    let ps = PrefixSumEngine::from_cube(&paper_array_a());
    assert_eq!(ps.p_array(), &paper_array_p());
}

#[test]
fn figure2_worked_cells() {
    let ps = PrefixSumEngine::from_cube(&paper_array_a());
    // "cell P[4,0] contains … 19, while cell P[2,1] contains … 24.
    //  The sum of the entire A array is found in the last cell, P[8,8]."
    assert_eq!(ps.prefix_sum(&[4, 0]).unwrap(), 19);
    assert_eq!(ps.prefix_sum(&[2, 1]).unwrap(), 24);
    assert_eq!(ps.prefix_sum(&[8, 8]).unwrap(), 290);
}

// --- Figure 3: the 2^d-corner identity ---------------------------------

#[test]
fn figure3_inclusion_exclusion_identity() {
    // Sum(Area_E) = Sum(A) − Sum(B) − Sum(C) + Sum(D): for region
    // [lo..hi], P[hi] − P[lo−1, hi] − P[hi, lo−1] + P[lo−1, lo−1].
    let a = paper_array_a();
    let p = paper_array_p();
    let naive = NaiveEngine::from_cube(a);
    let (lo, hi) = ([3usize, 2usize], [7usize, 6usize]);
    let region = Region::new(&lo, &hi).unwrap();
    let direct = naive.query(&region).unwrap();
    let via_corners =
        p.get(&[hi[0], hi[1]]) - p.get(&[lo[0] - 1, hi[1]]) - p.get(&[hi[0], lo[1] - 1])
            + p.get(&[lo[0] - 1, lo[1] - 1]);
    assert_eq!(direct, via_corners);
}

#[test]
fn figure3_corner_count_is_2_pow_d() {
    let r = Region::new(&[3, 2], &[7, 6]).unwrap();
    assert_eq!(corners::corner_count(&r), 4);
}

// --- Figure 4: prefix-sum cascading update -----------------------------

#[test]
fn figure4_update_marks_shown_cells() {
    // Figure 4 prints the post-update P: P[1,1]=19, P[1,2]=22, P[8,8]=291.
    let mut ps = PrefixSumEngine::from_cube(&paper_array_a());
    ps.update(&[1, 1], 1).unwrap(); // A[1,1]: 3 → 4
    assert_eq!(ps.p_array().get(&[1, 1]), 19);
    assert_eq!(ps.p_array().get(&[1, 2]), 22);
    assert_eq!(ps.p_array().get(&[2, 1]), 25);
    assert_eq!(ps.p_array().get(&[8, 8]), 291);
    // Cells outside the shaded region are untouched.
    assert_eq!(ps.p_array().get(&[0, 8]), 29);
    assert_eq!(ps.p_array().get(&[8, 0]), 32);
    assert_eq!(ps.stats().cell_writes, 64);
}

// --- Figure 5: the overlay partition -----------------------------------

#[test]
fn figure5_boxes_and_anchors() {
    let e = paper_rps();
    let grid = e.grid();
    assert_eq!(grid.num_boxes(), 9);
    let expected_anchors = [
        [0, 0],
        [0, 3],
        [0, 6],
        [3, 0],
        [3, 3],
        [3, 6],
        [6, 0],
        [6, 3],
        [6, 6],
    ];
    for (b, want) in grid.grid_shape().full_region().iter().zip(expected_anchors) {
        assert_eq!(grid.anchor_of(&b), want.to_vec());
    }
}

// --- Figure 6: stored values per box ------------------------------------

#[test]
fn figure6_box_stores_anchor_plus_borders() {
    // k^d − (k−1)^d = 5 values: V, X₁, X₂, Y₁, Y₂.
    assert_eq!(BoxGrid::stored_cells(&[3, 3]), 5);
    let e = paper_rps();
    assert_eq!(e.overlay().storage_cells(), 9 * 5);
}

// --- Figures 7–8: anchor and border semantics ---------------------------

#[test]
fn figure7_anchor_is_sum_of_preceding_region() {
    // Box anchored at (6,3): anchor = SUM(A[0,0]:A[6,3]) − A[6,3]
    //                               = 93 − 7 = 86.
    let e = paper_rps();
    assert_eq!(e.overlay().value_at(&[6, 3]), Some(&86));
}

#[test]
fn figure8_border_values_semantics() {
    let a = paper_array_a();
    let e = paper_rps();
    // X₁ at (6,4): the column above its cell, A[0..5, 4].
    let x1: i64 = (0..6).map(|r| a.get(&[r, 4])).sum();
    assert_eq!(e.overlay().value_at(&[6, 4]), Some(&x1));
    assert_eq!(x1, 20);
    // X₂ at (6,5): columns above (6,4) and (6,5) — cumulative.
    let x2: i64 = x1 + (0..6).map(|r| a.get(&[r, 5])).sum::<i64>();
    assert_eq!(e.overlay().value_at(&[6, 5]), Some(&x2));
    assert_eq!(x2, 51);
    // Y₁ at (7,3): the row to the left, A[7, 0..2].
    let y1: i64 = (0..3).map(|c| a.get(&[7, c])).sum();
    assert_eq!(e.overlay().value_at(&[7, 3]), Some(&y1));
    assert_eq!(y1, 8);
    // Y₂ at (8,3): rows 7 and 8 to the left — cumulative.
    let y2: i64 = y1 + (0..3).map(|c| a.get(&[8, c])).sum::<i64>();
    assert_eq!(e.overlay().value_at(&[8, 3]), Some(&y2));
    assert_eq!(y2, 20);
}

// --- Figure 9 / 12: region sum from anchor + borders + RP ---------------

#[test]
fn figure9_outside_portion_from_overlay() {
    // For target (7,5): anchor 86 + Y₁ 8 + X₂ 51 = 145 is the sum of the
    // shaded region outside the overlay box.
    let e = paper_rps();
    let naive = NaiveEngine::from_cube(paper_array_a());
    let outside = 86 + 8 + 51;
    let full = naive
        .query(&Region::new(&[0, 0], &[7, 5]).unwrap())
        .unwrap();
    let inside_box = naive
        .query(&Region::new(&[6, 3], &[7, 5]).unwrap())
        .unwrap();
    assert_eq!(outside, full - inside_box);
    let _ = e;
}

// --- Figures 10–11: the RP array ----------------------------------------

#[test]
fn figure10_rp_array_full_equality() {
    let e = paper_rps();
    assert_eq!(e.rp_array(), &paper_array_rp());
}

#[test]
fn figure11_rp_cell_is_box_local_prefix() {
    // RP[7,5] = SUM(A[6,3]:A[7,5]) = 23.
    let naive = NaiveEngine::from_cube(paper_array_a());
    let box_prefix = naive
        .query(&Region::new(&[6, 3], &[7, 5]).unwrap())
        .unwrap();
    assert_eq!(box_prefix, 23);
    assert_eq!(paper_array_rp().get(&[7, 5]), 23);
}

// --- Figure 13 + §3.3: the worked examples -------------------------------

#[test]
fn figure13_overlay_table_full_equality() {
    let e = paper_rps();
    for (r, c, v) in paper_overlay_cells() {
        assert_eq!(e.overlay().value_at(&[r, c]), Some(&v), "overlay ({r},{c})");
    }
}

#[test]
fn section33_anchor_border_arithmetic() {
    // anchor O[3,3] = 51 − 5 = 46; borders 61−8−46=7, 75−14−46=15,
    // 67−8−46=13, 86−13−46=27.
    let e = paper_rps();
    assert_eq!(e.overlay().value_at(&[3, 3]), Some(&46));
    assert_eq!(e.overlay().value_at(&[4, 3]), Some(&7));
    assert_eq!(e.overlay().value_at(&[5, 3]), Some(&15));
    assert_eq!(e.overlay().value_at(&[3, 4]), Some(&13));
    assert_eq!(e.overlay().value_at(&[3, 5]), Some(&27));
}

#[test]
fn section33_complete_region_sum_168() {
    // "The complete region sum for the region A[0,0]:A[7,5] is thus
    //  86 + 51 + 8 + 23 = 168."
    let e = paper_rps();
    assert_eq!(e.prefix_sum(&[7, 5]).unwrap(), 168);
    assert_eq!(86 + 51 + 8 + 23, 168);
}

// --- Figures 14–15 + §4.2: the update example ---------------------------

#[test]
fn figure15_rp_cells_after_update() {
    // Figure 15 prints RP after A[1,1] += 1: RP[1,1]=19, [1,2]=22,
    // [2,1]=25, [2,2]=30; everything else unchanged.
    let mut e = paper_rps();
    e.update(&[1, 1], 1).unwrap();
    assert_eq!(e.rp_array().get(&[1, 1]), 19);
    assert_eq!(e.rp_array().get(&[1, 2]), 22);
    assert_eq!(e.rp_array().get(&[2, 1]), 25);
    assert_eq!(e.rp_array().get(&[2, 2]), 30);
    assert_eq!(e.rp_array().get(&[0, 1]), 8); // row 0 untouched
    assert_eq!(e.rp_array().get(&[1, 3]), 8); // next box untouched
}

#[test]
fn figure15_overlay_cells_after_update() {
    // Figure 15 prints the overlay after the update: [1,3]=13, [2,3]=21,
    // [3,3]=47, [1,6]=34, [2,6]=51, [3,6]=98, [3,1]=13, [3,2]=18,
    // [6,1]=20, [6,2]=30, [6,3]=87, [6,6]=180.
    let mut e = paper_rps();
    e.update(&[1, 1], 1).unwrap();
    let expect = [
        ((1, 3), 13),
        ((2, 3), 21),
        ((3, 3), 47),
        ((1, 6), 34),
        ((2, 6), 51),
        ((3, 6), 98),
        ((3, 1), 13),
        ((3, 2), 18),
        ((6, 1), 20),
        ((6, 2), 30),
        ((6, 3), 87),
        ((6, 6), 180),
    ];
    for ((r, c), v) in expect {
        assert_eq!(e.overlay().value_at(&[r, c]), Some(&v), "overlay ({r},{c})");
    }
    // Unaffected cells retain their Figure 13 values.
    assert_eq!(e.overlay().value_at(&[0, 3]), Some(&9));
    assert_eq!(e.overlay().value_at(&[7, 3]), Some(&8));
    assert_eq!(e.overlay().value_at(&[6, 4]), Some(&20));
}

#[test]
fn section42_sixteen_vs_sixtyfour() {
    // "the total update cost for the overlay algorithm is sixteen cells
    //  (twelve overlay cells and four cells in RP), compared to sixty four
    //  cells in the prefix sum method."
    let mut rps = paper_rps();
    rps.update(&[1, 1], 1).unwrap();
    assert_eq!(rps.stats().cell_writes, 16);

    let mut ps = PrefixSumEngine::from_cube(&paper_array_a());
    ps.update(&[1, 1], 1).unwrap();
    assert_eq!(ps.stats().cell_writes, 64);
}

#[test]
fn section42_anchor_cell_update_special_case() {
    // "when an update occurs to a cell directly under an anchor cell,
    //  e.g. cell [0,0] … only updating anchor cells in other overlay
    //  boxes; no border values would then need to be changed."
    let mut e = paper_rps();
    e.update(&[0, 0], 1).unwrap();
    for (r, c, v) in paper_overlay_cells() {
        let is_other_anchor = r % 3 == 0 && c % 3 == 0 && !(r == 0 && c == 0);
        let expect = v + i64::from(is_other_anchor);
        assert_eq!(e.overlay().value_at(&[r, c]), Some(&expect), "({r},{c})");
    }
}

// --- §4.1: constant-time queries ----------------------------------------

#[test]
fn section41_query_reads_bounded() {
    let e = paper_rps();
    for (lo, hi) in [([2, 3], [7, 5]), ([0, 0], [8, 8]), ([4, 4], [4, 4])] {
        e.reset_stats();
        e.query(&Region::new(&lo, &hi).unwrap()).unwrap();
        // d = 2: ≤ 2² corners × (d + 2) = 16 reads.
        assert!(e.stats().cell_reads <= 16, "{:?}", e.stats());
    }
}

// --- §5: the complexity-product headline --------------------------------

#[test]
fn section5_rps_beats_both_baselines_on_product() {
    // The product claim is asymptotic — at the 9×9 example size the
    // naive method's O(1) update still wins, so measure at n = 256
    // (k = √n = 16) where the paper's ordering holds decisively.
    let a = rps::ndcube::NdCube::from_fn(&[256, 256], |c| ((c[0] + c[1]) % 10) as i64).unwrap();
    let region = Region::new(&[2, 2], &[250, 251]).unwrap();

    let run = |engine: &mut dyn RangeSumEngine<i64>| -> u64 {
        engine.reset_stats();
        engine.query(&region).unwrap();
        let q = engine.stats().cell_reads;
        engine.reset_stats();
        engine.update(&[1, 1], 1).unwrap();
        q * engine.stats().cell_writes
    };

    let mut naive = NaiveEngine::from_cube(a.clone());
    let mut ps = PrefixSumEngine::from_cube(&a);
    let mut rps = RpsEngine::from_cube_uniform(&a, 16).unwrap();
    let p_naive = run(&mut naive);
    let p_ps = run(&mut ps);
    let p_rps = run(&mut rps);
    assert!(p_rps < p_naive, "rps {p_rps} vs naive {p_naive}");
    assert!(p_rps < p_ps, "rps {p_rps} vs prefix-sum {p_ps}");
}
