//! A claims audit: every quantitative statement in the paper's prose,
//! verified against the implementation. Quotes follow the ICDE 1999
//! text; each test names the section it audits. (The figure *tables* are
//! audited separately in `paper_figures.rs`; this file covers the claims
//! made in sentences.)

use rps::analysis::{cost_model, overlay_fraction, overlay_storage_cells};
use rps::core::testdata::{paper_array_a, PAPER_BOX_SIZE};
use rps::core::BoxGrid;
use rps::ndcube::Region;
use rps::{NaiveEngine, PrefixSumEngine, RangeSumEngine, RpsEngine};

// --- §2: The Model -------------------------------------------------------

#[test]
fn s2_naive_query_cost_is_region_size_updates_constant() {
    // "Arbitrary range queries on array A can cost O(n^d): a range query
    //  over the range of the entire array will require summing every cell
    //  in the array. Updates to array A take O(1)."
    let mut e = NaiveEngine::from_cube(paper_array_a());
    e.reset_stats();
    e.query(&Region::new(&[0, 0], &[8, 8]).unwrap()).unwrap();
    assert_eq!(e.stats().cell_reads, 81); // every cell
    e.reset_stats();
    e.update(&[0, 0], 1).unwrap();
    assert_eq!(e.stats().cell_writes, 1);
}

#[test]
fn s2_product_of_costs_naive() {
    // "For the naive method, this product of query and update costs is
    //  O(n^d) * O(1) = O(n^d)."
    let m = cost_model::CostModel::naive(9.0, 2);
    assert_eq!(m.product(), 81.0);
}

#[test]
fn s2_prefix_sum_constant_lookups() {
    // "Using P, a range query on d dimensions can be answered with a
    //  constant (2^d) cell lookups."
    let e = PrefixSumEngine::from_cube(&paper_array_a());
    e.reset_stats();
    e.query(&Region::new(&[2, 3], &[7, 5]).unwrap()).unwrap();
    assert_eq!(e.stats().cell_reads, 4); // 2^2
}

#[test]
fn s2_prefix_sum_worst_case_rebuild() {
    // "In the worst case, when cell A[0,0] is updated, this cascading
    //  update property will require that every cell in the data cube be
    //  updated."
    let mut e = PrefixSumEngine::from_cube(&paper_array_a());
    e.reset_stats();
    e.update(&[0, 0], 1).unwrap();
    assert_eq!(e.stats().cell_writes, 81);
}

#[test]
fn s2_inverse_operator_family() {
    // "…and any binary operator + for which there exists an inverse
    //  binary operator − such that a + b − b = a." — COUNT and AVERAGE
    // work through the SumCount group.
    use rps::core::aggregate::AverageCube;
    let mut avg = AverageCube::new(RpsEngine::zeros(&[4, 4]).unwrap());
    avg.record(&[1, 1], 10).unwrap();
    avg.record(&[2, 2], 30).unwrap();
    let all = Region::new(&[0, 0], &[3, 3]).unwrap();
    assert_eq!(avg.average(&all).unwrap(), Some(20.0));
    avg.retract(&[2, 2], 30).unwrap(); // a + b − b = a
    assert_eq!(avg.average(&all).unwrap(), Some(10.0));
}

// --- §3.1: Overlays -------------------------------------------------------

#[test]
fn s31_total_number_of_overlay_boxes() {
    // "the total number of overlay boxes is ⌈n/k⌉^d … (9/3)² = 9."
    let grid = BoxGrid::new(paper_array_a().shape().clone(), &[3, 3]).unwrap();
    assert_eq!(grid.num_boxes(), 9);
    // Ceiling behaviour for non-divisible n:
    let g2 = BoxGrid::new(rps::ndcube::Shape::new(&[10, 10]).unwrap(), &[3, 3]).unwrap();
    assert_eq!(g2.num_boxes(), 16); // ⌈10/3⌉² = 4²
}

#[test]
fn s31_each_box_covers_k_to_the_d_cells() {
    // "Each overlay box corresponds to an area of array A of size k^d
    //  cells; thus, in this example each overlay box covers 3² = 9 cells."
    let grid = BoxGrid::new(paper_array_a().shape().clone(), &[3, 3]).unwrap();
    for b in &grid.grid_shape().full_region() {
        assert_eq!(grid.box_region(&b).cell_count(), 9);
    }
}

#[test]
fn s31_stored_values_per_box() {
    // "Each overlay box stores an anchor value, plus (k^d − (k−1)^d) − 1
    //  border values."
    let k: usize = 3;
    let d: u32 = 2;
    let borders = k.pow(d) - (k - 1).pow(d) - 1;
    assert_eq!(borders, 4); // X₁ X₂ Y₁ Y₂ in Figure 6
    assert_eq!(BoxGrid::stored_cells(&[k, k]), 1 + borders);
}

// --- §4.1: Range Sum Queries ---------------------------------------------

#[test]
fn s41_region_sum_needs_anchor_d_borders_one_rp() {
    // "Calculating each region sum requires adding one anchor value, d
    //  border values, and one value from RP." — exact at the paper's
    // d = 2 (see DESIGN.md for d ≥ 3).
    let e = RpsEngine::from_cube_uniform(&paper_array_a(), PAPER_BOX_SIZE).unwrap();
    e.reset_stats();
    e.prefix_sum(&[7, 5]).unwrap(); // interior cell: worst case
    assert_eq!(e.stats().cell_reads, 1 + 2 + 1);
}

#[test]
fn s41_constant_time_queries_any_box_size() {
    // "Range sum queries using the overlay box method are thus achieved
    //  in constant time. This is irrespective of the overlay box size."
    let a = paper_array_a();
    for k in [1usize, 2, 3, 4, 9] {
        let e = RpsEngine::from_cube_uniform(&a, k).unwrap();
        e.reset_stats();
        e.query(&Region::new(&[2, 3], &[7, 5]).unwrap()).unwrap();
        assert!(
            e.stats().cell_reads <= 16,
            "k={k}: {}",
            e.stats().cell_reads
        );
    }
}

// --- §4.2: Updates ---------------------------------------------------------

#[test]
fn s42_rp_cascade_stops_at_box_boundary() {
    // "Updates cascade in RP within the overlay box boundary, but
    //  cascading stops at the boundary; cells in RP covered by other
    //  overlay boxes will not be modified."
    let mut e = RpsEngine::from_cube_uniform(&paper_array_a(), 3).unwrap();
    let before = e.rp_array().clone();
    e.update(&[1, 1], 1).unwrap();
    for r in 0..9 {
        for c in 0..9 {
            let own_box = r < 3 && c < 3;
            if !own_box {
                assert_eq!(
                    e.rp_array().get(&[r, c]),
                    before.get(&[r, c]),
                    "RP[{r},{c}] outside the box must not change"
                );
            }
        }
    }
}

#[test]
fn s42_twelve_overlay_cells_in_example() {
    // "In this example, twelve overlay cells are modified."
    let mut e = RpsEngine::from_cube_uniform(&paper_array_a(), 3).unwrap();
    e.reset_stats();
    e.update(&[1, 1], 1).unwrap();
    let total = e.stats().cell_writes;
    // 4 RP cells + 12 overlay cells.
    assert_eq!(total - 4, 12);
}

// --- §4.3: Choosing the Overlay Box Size -----------------------------------

#[test]
fn s43_update_formula_terms() {
    // "an update … will affect (k−1)^d cells in the RP array +
    //  d(n/k)(k^{d−1}) overlay border cells + (n/k − 1)^d overlay anchor
    //  cells."
    let (n, d, k) = (9.0, 2, 3.0);
    assert_eq!(cost_model::rps_update_cost(n, d, k), 4.0 + 18.0 + 4.0);
}

#[test]
fn s43_cost_minimized_at_sqrt_n() {
    // "the cost is minimized when the overlay box size is chosen to be
    //  k = √n."
    for n in [64usize, 256, 1024, 4096] {
        let best = cost_model::argmin_update_cost(n, 2);
        let sqrt = (n as f64).sqrt() as usize;
        assert!(
            best.abs_diff(sqrt) <= sqrt / 2,
            "n={n}: argmin {best} vs √n {sqrt}"
        );
    }
}

#[test]
fn s43_product_reduced_vs_both_baselines() {
    // "The product of the query cost and update cost is thus O(1) ·
    //  O(n^{d/2}) = O(n^{d/2}). This is in contrast to the prefix sum
    //  algorithm and the naive method, both of which have a total cost
    //  of O(n^d)." — measured at n = 256, d = 2.
    let n = 256usize;
    let a = rps::ndcube::NdCube::from_fn(&[n, n], |c| ((c[0] + c[1]) % 5) as i64).unwrap();
    let region = Region::new(&[1, 1], &[n - 2, n - 2]).unwrap();
    let measure = |e: &mut dyn RangeSumEngine<i64>| {
        e.reset_stats();
        e.query(&region).unwrap();
        let q = e.stats().cell_reads;
        e.reset_stats();
        e.update(&[1, 1], 1).unwrap();
        q * e.stats().cell_writes
    };
    let mut naive = NaiveEngine::from_cube(a.clone());
    let mut ps = PrefixSumEngine::from_cube(&a);
    let mut rps = RpsEngine::from_cube_uniform(&a, 16).unwrap();
    let p_rps = measure(&mut rps);
    assert!(p_rps < measure(&mut naive) / 4);
    assert!(p_rps < measure(&mut ps) / 4);
}

// --- §4.4: Practical Considerations ----------------------------------------

#[test]
fn s44_overlay_storage_example() {
    // "consider a two dimensional array RP and an overlay size of
    //  100×100 cells. The overlay box needs (100² − 99²) = 199 cells of
    //  storage, while the region of RP covered by the overlay box
    //  requires 10,000 cells; the overlay box requires less than 2% of
    //  the storage."
    assert_eq!(overlay_storage_cells(100, 2), 199);
    assert_eq!(100u64.pow(2), 10_000);
    assert!(overlay_fraction(100, 2) < 0.02);
}

#[test]
fn s44_storage_savings_grow_with_box_size() {
    // "space savings grow larger as the size of the overlay box grows."
    let mut prev = overlay_fraction(2, 2);
    for k in 3..=100 {
        let cur = overlay_fraction(k, 2);
        assert!(cur < prev);
        prev = cur;
    }
}

#[test]
fn s44_box_sized_pages_give_constant_io() {
    // "it would be preferred to set the overlay box size such that the
    //  corresponding region of RP fits exactly into a constant number of
    //  disk pages; both queries and updates will then require only a
    //  constant number of disk reads or writes."
    use rps::storage::{DeviceConfig, DiskRpsEngine};
    let n = 64usize;
    let k = 8usize;
    let a = rps::ndcube::NdCube::from_fn(&[n, n], |c| (c[0] ^ c[1]) as i64).unwrap();
    let mut disk = DiskRpsEngine::from_cube_uniform(
        &a,
        k,
        DeviceConfig {
            cells_per_page: k * k,
        }, // box region = exactly 1 page
        8,
    )
    .unwrap();
    disk.reset_io_stats();
    disk.update(&[9, 9], 1).unwrap();
    disk.flush().unwrap();
    let io = disk.io_stats();
    assert!(io.page_reads <= 1 && io.page_writes <= 1, "{io:?}");

    disk.reset_io_stats();
    disk.query(&Region::new(&[3, 3], &[60, 61]).unwrap())
        .unwrap();
    assert!(disk.io_stats().page_reads <= 4); // ≤ 2^d corner pages
}

// --- §5: Conclusion ---------------------------------------------------------

#[test]
fn s5_update_complexity_reduced() {
    // "its update complexity is reduced to O(n^{d/2})" — at d = 2, the
    // measured worst-case update scales linearly in n (slope ≈ 1).
    let mut pts = Vec::new();
    for n in [64usize, 256, 1024] {
        let k = (n as f64).sqrt() as usize;
        let mut e = RpsEngine::<i64>::zeros_uniform(&[n, n], k).unwrap();
        e.reset_stats();
        e.update(&[1, 1], 1).unwrap();
        pts.push((n as f64, e.stats().cell_writes as f64));
    }
    let slope = rps::analysis::loglog_slope(&pts);
    assert!((slope - 1.0).abs() < 0.25, "slope {slope}");
}
