//! Larger-scale deterministic stress: a 512×512 cube (the paper's
//! "large data cube" regime scaled to CI time) driven through the three
//! sublinear engines with spot agreement against precomputed partial
//! sums, plus a full structural audit at the end.

use rps::core::ChunkedEngine;
use rps::ndcube::{NdCube, Region};
use rps::workload::{CubeGen, UpdateGen};
use rps::{FenwickEngine, RangeSumEngine, RpsEngine};

const N: usize = 512;

#[test]
fn half_meg_cube_stays_consistent_under_updates() {
    let cube = CubeGen::new(31415)
        .uniform(&[N, N], 0, 999)
        .expect("valid dims");

    // Ground truth via the prefix identity computed once, directly.
    let mut p = cube.clone();
    rps::core::prefix::prefix_sums_in_place(&mut p);
    let truth = |lo: [usize; 2], hi: [usize; 2]| -> i64 {
        let term = |r: i64, c: i64| -> i64 {
            if r < 0 || c < 0 {
                0
            } else {
                p.get(&[r as usize, c as usize])
            }
        };
        term(hi[0] as i64, hi[1] as i64)
            - term(lo[0] as i64 - 1, hi[1] as i64)
            - term(hi[0] as i64, lo[1] as i64 - 1)
            + term(lo[0] as i64 - 1, lo[1] as i64 - 1)
    };

    let mut rps_e = RpsEngine::from_cube(&cube); // k = ⌈√512⌉ = 23
    let mut chunked = ChunkedEngine::from_cube(&cube);
    let mut fenwick = FenwickEngine::from_cube(&cube);

    let probes = [
        ([0usize, 0usize], [N - 1, N - 1]),
        ([0, 0], [0, 0]),
        ([17, 400], [489, 511]),
        ([255, 255], [256, 256]),
        ([100, 0], [100, N - 1]),
    ];
    for (lo, hi) in probes {
        let want = truth(lo, hi);
        let r = Region::new(&lo, &hi).unwrap();
        assert_eq!(rps_e.query(&r).unwrap(), want, "rps {lo:?}..{hi:?}");
        assert_eq!(chunked.query(&r).unwrap(), want, "chunked {lo:?}..{hi:?}");
        assert_eq!(fenwick.query(&r).unwrap(), want, "fenwick {lo:?}..{hi:?}");
    }

    // 300 deterministic updates; track the expected full-cube total.
    let mut total = truth([0, 0], [N - 1, N - 1]);
    for (c, delta) in UpdateGen::zipf(&[N, N], 8, 1.1, 1000).take(300) {
        rps_e.update(&c, delta).unwrap();
        chunked.update(&c, delta).unwrap();
        fenwick.update(&c, delta).unwrap();
        total += delta;
    }
    let full = Region::new(&[0, 0], &[N - 1, N - 1]).unwrap();
    assert_eq!(rps_e.query(&full).unwrap(), total);
    assert_eq!(chunked.query(&full).unwrap(), total);
    assert_eq!(fenwick.query(&full).unwrap(), total);

    // The engines must agree with each other on fresh regions too.
    for (lo, hi) in [([3usize, 9usize], [501, 477]), ([460, 0], [511, 511])] {
        let r = Region::new(&lo, &hi).unwrap();
        let a = rps_e.query(&r).unwrap();
        assert_eq!(chunked.query(&r).unwrap(), a);
        assert_eq!(fenwick.query(&r).unwrap(), a);
    }

    // Full structural audit of the RPS engine after the stress.
    assert!(rps_e.check_invariants().is_empty());

    // And the recovered cube matches cell-for-cell with one applied
    // independently.
    let mut expect: NdCube<i64> = cube;
    for (c, delta) in UpdateGen::zipf(&[N, N], 8, 1.1, 1000).take(300) {
        let lin = expect.shape().linear_unchecked(&c);
        *expect.get_linear_mut(lin) += delta;
    }
    assert_eq!(rps_e.to_cube(), expect);
}
