//! Cross-crate integration: workload streams drive every engine
//! (in-memory and disk-resident) to identical answers, and the analysis
//! crate's closed-form models agree with instrumented measurements.

use rps::analysis::{cost_model, overlay_fraction, overlay_storage_cells};
use rps::core::aggregate::AverageCube;
use rps::ndcube::{NdCube, Region};
use rps::storage::{DeviceConfig, DiskRpsEngine};
use rps::workload::{CubeGen, MixedWorkload, Op, QueryGen, RegionSpec, SalesScenario, UpdateGen};
use rps::{FenwickEngine, NaiveEngine, PrefixSumEngine, RangeSumEngine, RpsEngine, SumCount};

const N: usize = 64;

fn workload(ops: usize) -> Vec<Op> {
    MixedWorkload::new(
        UpdateGen::zipf(&[N, N], 5, 0.8, 100),
        QueryGen::new(&[N, N], 6, RegionSpec::Fraction(0.6)),
        0.5,
        7,
    )
    .take(ops)
}

fn replay(engine: &mut dyn RangeSumEngine<i64>, ops: &[Op]) -> i64 {
    let mut acc = 0i64;
    for op in ops {
        match op {
            Op::Query(r) => acc = acc.wrapping_add(engine.query(r).unwrap()),
            Op::Update { coords, delta } => engine.update(coords, *delta).unwrap(),
        }
    }
    acc
}

#[test]
fn all_engines_agree_on_mixed_zipf_workload() {
    let cube = CubeGen::new(99)
        .sparse(&[N, N], 0.3, 50)
        .expect("valid dims");
    let ops = workload(600);

    let mut naive = NaiveEngine::from_cube(cube.clone());
    let baseline = replay(&mut naive, &ops);

    let mut ps = PrefixSumEngine::from_cube(&cube);
    assert_eq!(replay(&mut ps, &ops), baseline, "prefix-sum diverged");

    let mut rps = RpsEngine::from_cube(&cube);
    assert_eq!(replay(&mut rps, &ops), baseline, "rps diverged");

    let mut fw = FenwickEngine::from_cube(&cube);
    assert_eq!(replay(&mut fw, &ops), baseline, "fenwick diverged");

    let mut disk =
        DiskRpsEngine::from_cube_uniform(&cube, 8, DeviceConfig { cells_per_page: 64 }, 8).unwrap();
    assert_eq!(replay(&mut disk, &ops), baseline, "disk-rps diverged");
}

#[test]
fn disk_engine_survives_thrashing_pool() {
    // A pool of 2 frames on a 64-page array: constant eviction pressure
    // must never corrupt answers.
    let cube = CubeGen::new(3).uniform(&[N, N], 0, 9).expect("valid dims");
    let ops = workload(300);
    let mut naive = NaiveEngine::from_cube(cube.clone());
    let mut disk =
        DiskRpsEngine::from_cube_uniform(&cube, 8, DeviceConfig { cells_per_page: 64 }, 2).unwrap();
    assert_eq!(replay(&mut disk, &ops), replay(&mut naive, &ops));
    assert!(disk.io_stats().evictions > 100, "expected heavy eviction");
}

#[test]
fn measured_update_cost_within_formula_across_k() {
    // The §4.3 formula is a worst-case bound: every measured update cost
    // must sit at or below it.
    let cube = CubeGen::new(17).uniform(&[N, N], 0, 9).expect("valid dims");
    for k in [2usize, 4, 8, 16, 32] {
        let formula = cost_model::rps_update_cost(N as f64, 2, k as f64);
        let mut e = RpsEngine::from_cube_uniform(&cube, k).unwrap();
        let mut gen = UpdateGen::uniform(&[N, N], 23, 10);
        for (c, delta) in gen.take(50) {
            e.reset_stats();
            e.update(&c, delta).unwrap();
            let w = e.stats().cell_writes as f64;
            assert!(w <= formula + 1.0, "k={k}: writes {w} > formula {formula}");
        }
    }
}

#[test]
fn overlay_allocation_matches_storage_model() {
    for (n, k) in [(64usize, 8usize), (64, 16), (100, 10)] {
        let cube = CubeGen::new(1).uniform(&[n, n], 0, 5).expect("valid dims");
        let e = RpsEngine::from_cube_uniform(&cube, k).unwrap();
        if n % k == 0 {
            let expected = (n / k).pow(2) as u64 * overlay_storage_cells(k as u64, 2);
            assert_eq!(e.overlay().storage_cells() as u64, expected);
            // And the engine's total storage overhead over RP matches
            // the Figure 16 fraction.
            let frac = overlay_fraction(k as u64, 2);
            let measured = e.overlay().storage_cells() as f64 / (n * n) as f64;
            assert!((frac - measured).abs() < 1e-9);
        }
    }
}

#[test]
fn sales_scenario_end_to_end_consistency() {
    // The full motivating pipeline: historical load + live stream, AVERAGE
    // cube on RPS vs a naive SumCount engine as oracle.
    let mut scenario = SalesScenario::new(40, 120, 2026);
    let mut fast = AverageCube::new(RpsEngine::<SumCount<i64>>::zeros(&[40, 120]).unwrap());
    let mut slow = AverageCube::new(NaiveEngine::<SumCount<i64>>::zeros(&[40, 120]).unwrap());

    for ([age, day], amount) in scenario.sales_batch(5_000) {
        fast.record(&[age, day], amount).unwrap();
        slow.record(&[age, day], amount).unwrap();
    }
    let queries = [
        scenario.age_window_query(10, 25, 30),
        scenario.age_window_query(0, 39, 120),
        scenario.age_window_query(37, 39, 7),
    ];
    for q in &queries {
        assert_eq!(fast.sum(q).unwrap(), slow.sum(q).unwrap());
        assert_eq!(fast.count(q).unwrap(), slow.count(q).unwrap());
        assert_eq!(fast.average(q).unwrap(), slow.average(q).unwrap());
    }
    // But the fast engine must have read far fewer cells per query.
    let fast_reads = fast.engine().stats().reads_per_query().unwrap();
    let slow_reads = slow.engine().stats().reads_per_query().unwrap();
    assert!(
        fast_reads * 10.0 < slow_reads,
        "rps {fast_reads} vs naive {slow_reads} reads/query"
    );
}

#[test]
fn three_d_cube_through_facade() {
    let cube = CubeGen::new(8)
        .uniform(&[16, 16, 16], 0, 9)
        .expect("valid dims");
    let mut rps = RpsEngine::from_cube_uniform(&cube, 4).unwrap();
    let naive = NaiveEngine::from_cube(cube);
    let mut qg = QueryGen::new(&[16, 16, 16], 9, RegionSpec::Fraction(0.7));
    for r in qg.take(40) {
        assert_eq!(rps.query(&r).unwrap(), naive.query(&r).unwrap(), "{r:?}");
    }
    rps.update(&[3, 7, 11], 55).unwrap();
    let full = Region::new(&[0, 0, 0], &[15, 15, 15]).unwrap();
    assert_eq!(rps.query(&full).unwrap(), naive.query(&full).unwrap() + 55);
}

#[test]
fn facade_reexports_are_usable() {
    // Compile-time shape of the public API: construct one of everything.
    let cube: NdCube<i64> = NdCube::zeros(&[4, 4]);
    let _: NaiveEngine<i64> = NaiveEngine::from_cube(cube.clone());
    let _: PrefixSumEngine<i64> = PrefixSumEngine::from_cube(&cube);
    let _: RpsEngine<i64> = RpsEngine::from_cube(&cube);
    let _: FenwickEngine<i64> = FenwickEngine::from_cube(&cube);
    let _ = rps::analysis::optimal_box_size(100);
}
