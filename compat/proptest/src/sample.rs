//! Sampling helpers: [`Index`].

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// An opaque position that can be projected into any non-empty
/// collection: `any::<Index>()` then [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Projects this value into `[0, size)`. Panics when `size == 0`.
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "Index::index on an empty collection");
        // Multiply-shift keeps the projection uniform across sizes.
        ((u128::from(self.0) * size as u128) >> 64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projects_uniformly_in_bounds() {
        let mut rng = TestRng::from_seed(5);
        let mut seen = [false; 4];
        for _ in 0..100 {
            let ix = Index::arbitrary(&mut rng);
            let p = ix.index(4);
            assert!(p < 4);
            seen[p] = true;
            assert!(ix.index(1) == 0);
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
