//! Collection strategies: [`vec()`](fn@vec).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive length band for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range {r:?}");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// The strategy returned by [`vec()`](fn@vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.max - self.size.min + 1;
        let len = self.size.min + rng.below(span as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy: `vec(element, len)` where `len` is a `usize`, a
/// `Range<usize>` (exclusive) or a `RangeInclusive<usize>`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
