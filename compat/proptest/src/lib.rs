//! # proptest (compat shim)
//!
//! A dependency-free, in-tree stand-in for the subset of the
//! [`proptest` 1.x](https://docs.rs/proptest/1) API this workspace uses.
//! The build environment for this repository is fully offline, so the
//! workspace vendors the few third-party APIs it needs as path
//! dependencies under `compat/` (see `compat/README.md`).
//!
//! ## What is implemented
//!
//! * [`proptest!`] with an optional `#![proptest_config(..)]` header,
//!   `pattern in strategy` bindings and `#[test]` attribute pass-through.
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, implemented
//!   for integer and float ranges, tuples (arity ≤ 6), `Vec<S>` and
//!   [`strategy::Just`].
//! * [`collection::vec`], [`arbitrary::any`], [`sample::Index`],
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`] and [`test_runner::ProptestConfig::with_cases`].
//!
//! ## What is deliberately different
//!
//! * **No shrinking.** A failing case reports the per-case seed
//!   (`PROPTEST_CASE_SEED=<n>` reruns exactly that case) instead of a
//!   minimized input. This keeps the shim small and fully deterministic.
//! * **Deterministic by default.** Case generation derives from a hash of
//!   the test name, so runs are reproducible without recording seed
//!   files. `PROPTEST_SEED` perturbs the base seed, `PROPTEST_CASES`
//!   overrides the default case count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The customary glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: `proptest! { #[test] fn f(x in 0..10) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(&config, stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                $body
            });
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Like `assert!`, reported through the property-test runner.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Like `assert_eq!`, reported through the property-test runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Like `assert_ne!`, reported through the property-test runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Discards the current case (it does not count towards the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            $crate::test_runner::reject_case();
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            $crate::test_runner::reject_case();
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5i64..=9)) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn config_and_collections(v in crate::collection::vec(1usize..=4, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (1..=4).contains(&x)));
        }

        #[test]
        fn maps_compose(n in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0usize..n, n..=n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = n;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < n));
        }

        #[test]
        fn assume_discards(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn index_in_bounds(ix in any::<crate::sample::Index>()) {
            for len in [1usize, 2, 7, 1000] {
                prop_assert!(ix.index(len) < len);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 3..=3);
        let mut rng_a = crate::test_runner::TestRng::from_seed(99);
        let mut rng_b = crate::test_runner::TestRng::from_seed(99);
        assert_eq!(strat.generate(&mut rng_a), strat.generate(&mut rng_b));
    }
}
