//! The case runner: deterministic RNG, configuration and the
//! reject/failure protocol used by the `proptest!` macro.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Once;

/// Deterministic generator driving every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            // Avoid the all-zero fixed point of the raw state.
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runner configuration. Only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Panic payload marking a `prop_assume!` rejection.
struct Rejected;

/// Aborts the current case without failing the test (see `prop_assume!`).
pub fn reject_case() -> ! {
    std::panic::panic_any(Rejected)
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Silences the default panic printer for `Rejected` payloads; every other
/// panic keeps the pre-existing hook behaviour.
fn install_reject_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<Rejected>() {
                return;
            }
            prev(info);
        }));
    });
}

/// Runs `property` until `config.cases` cases pass, rejecting via
/// `prop_assume!` without consuming the budget. Panics propagate with a
/// line explaining how to rerun the exact failing case.
pub fn run(config: &ProptestConfig, name: &str, property: impl Fn(&mut TestRng)) {
    install_reject_hook();

    // PROPTEST_CASE_SEED pins a single case — the reproduction path
    // printed on failure.
    if let Some(case_seed) = env_u64("PROPTEST_CASE_SEED") {
        let mut rng = TestRng::from_seed(case_seed);
        property(&mut rng);
        return;
    }

    let base_seed = fnv1a(name) ^ env_u64("PROPTEST_SEED").unwrap_or(0);
    let mut accepted: u32 = 0;
    let mut attempts: u64 = 0;
    let max_attempts = u64::from(config.cases).saturating_mul(20).max(200);
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest shim: `{name}`: prop_assume! rejected too often \
             ({accepted}/{} cases accepted after {attempts} attempts)",
            config.cases
        );
        let case_seed = base_seed.wrapping_add(attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::from_seed(case_seed);
        match catch_unwind(AssertUnwindSafe(|| property(&mut rng))) {
            Ok(()) => accepted += 1,
            Err(payload) if payload.is::<Rejected>() => {}
            Err(payload) => {
                eprintln!(
                    "proptest shim: `{name}` failed on case {n} of {total}; rerun just this \
                     case with PROPTEST_CASE_SEED={case_seed}",
                    n = accepted + 1,
                    total = config.cases,
                );
                resume_unwind(payload);
            }
        }
    }
}
