//! The [`Strategy`] trait and the built-in strategies: ranges, tuples,
//! `Vec<S>`, [`Just`], plus the `prop_map` / `prop_flat_map` combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no intermediate value tree and no
/// shrinking: `generate` draws a concrete value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns —
    /// the way to make one strategy's output depend on another's.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy_for_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as u64;
                let span = (self.end as u64).wrapping_sub(lo);
                assert!(span != 0, "empty range strategy {:?}", self);
                lo.wrapping_add(rng.below(span)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as u64;
                let span = (*self.end() as u64).wrapping_sub(lo).wrapping_add(1);
                let draw = if span == 0 { rng.next_u64() } else { rng.below(span) };
                lo.wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_range_strategy_for_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy {self:?}");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy {self:?}");
        lo + rng.unit_f64() * (hi - lo)
    }
}

/// Element-wise generation: a `Vec` of strategies yields a `Vec` of values
/// of the same length.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);
