//! `any::<T>()` — whole-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain (edge-biased for integers).
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating any value of `T`: `any::<i64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias 1-in-8 draws towards the boundary values where
                // overflow and off-by-one bugs live.
                if rng.below(8) == 0 {
                    const EDGES: [u64; 5] = [0, 1, u64::MAX, u64::MAX >> 1, (u64::MAX >> 1) + 1];
                    EDGES[rng.below(EDGES.len() as u64) as usize] as $t
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    #[allow(clippy::cast_possible_wrap)]
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: sign/exponent spread without NaN/inf, which
        // upstream also excludes by default.
        let magnitude = rng.unit_f64() * 2f64.powi((rng.below(120) as i32) - 60);
        if rng.next_u64() & 1 == 1 {
            -magnitude
        } else {
            magnitude
        }
    }
}
