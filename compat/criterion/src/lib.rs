//! # criterion (compat shim)
//!
//! A dependency-free, in-tree stand-in for the subset of the
//! [`criterion` 0.5](https://docs.rs/criterion/0.5) API this workspace's
//! benches use. The build environment for this repository is fully
//! offline, so the workspace vendors the few third-party APIs it needs as
//! path dependencies under `compat/` (see
//! `compat/README.md`).
//!
//! Measurement is intentionally simple: each benchmark is warmed up, then
//! timed over `sample_size` samples; the shim reports min / median / mean
//! per iteration to stdout. There are no HTML reports, no statistical
//! regression analysis and no saved baselines — for paper-figure-grade
//! numbers see the `exp_*` binaries in `crates/bench`, which carry their
//! own measurement loops.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    /// Substring filter from the command line (`cargo bench -- <filter>`).
    filter: Option<String>,
    /// When true (cargo's `--test` smoke mode), run each body once.
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let smoke = args.iter().any(|a| a == "--test");
        let filter = args.iter().find(|a| !a.starts_with('-')).cloned();
        Criterion { filter, smoke }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let id = id.to_string();
        if self.skip(&id) {
            return;
        }
        run_one(&id, 100, None, self.smoke, |b| f(b));
    }

    fn skip(&self, id: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !id.contains(f))
    }
}

/// Units for [`BenchmarkGroup::throughput`] reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named benchmark within a group: `BenchmarkId::new("rps", n)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    // Signature mirrors upstream criterion exactly (id by value, `iter`
    // naming below) so benches stay source-compatible.
    #[allow(clippy::needless_pass_by_value)]
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.skip(&full) {
            return;
        }
        run_one(
            &full,
            self.sample_size,
            self.throughput,
            self.criterion.smoke,
            |b| {
                f(b, input);
            },
        );
    }

    /// Benchmarks `f` without an input value.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.skip(&full) {
            return;
        }
        run_one(
            &full,
            self.sample_size,
            self.throughput,
            self.criterion.smoke,
            |b| f(b),
        );
    }

    /// Ends the group (upstream flushes reports here; the shim prints as
    /// it goes, so this only exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    smoke: bool,
}

impl Bencher {
    /// Times `body`, collecting one duration per sample.
    // Upstream criterion's method name; it times, it does not iterate.
    #[allow(clippy::iter_not_returning_iterator)]
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        if self.smoke {
            black_box(body());
            return;
        }
        // Warm-up: run until ~20ms have elapsed so first-touch effects
        // (page faults, caches) don't land in the samples.
        let warm_start = Instant::now();
        while warm_start.elapsed() < Duration::from_millis(20) {
            black_box(body());
        }
        // Batch iterations so that cheap bodies still get a measurable
        // per-sample duration.
        let probe = Instant::now();
        black_box(body());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 1_000_000);
        let per_sample = usize::try_from(per_sample).unwrap_or(usize::MAX);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(body());
            }
            let total = start.elapsed();
            self.samples
                .push(total / u32::try_from(per_sample).unwrap_or(u32::MAX));
        }
    }
}

fn run_one(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    smoke: bool,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        smoke,
    };
    f(&mut bencher);
    if smoke {
        println!("{id}: ok (smoke)");
        return;
    }
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{id}: no samples (body never called iter)");
        return;
    }
    samples.sort_unstable();
    let min = samples.first().copied().unwrap_or_default();
    let median = samples.get(samples.len() / 2).copied().unwrap_or_default();
    let sum: Duration = samples.iter().sum();
    let mean = sum / u32::try_from(samples.len().max(1)).unwrap_or(u32::MAX);
    let rate = throughput
        .map(|t| match t {
            Throughput::Elements(n) => format!(
                "  {:.0} elem/s",
                f64::from(u32::try_from(n.min(u64::from(u32::MAX))).unwrap_or(u32::MAX))
                    / median.as_secs_f64()
            ),
            Throughput::Bytes(n) => format!(
                "  {:.0} B/s",
                f64::from(u32::try_from(n.min(u64::from(u32::MAX))).unwrap_or(u32::MAX))
                    / median.as_secs_f64()
            ),
        })
        .unwrap_or_default();
    println!("{id}: min {min:?}  median {median:?}  mean {mean:?}{rate}");
}

/// Collects benchmark functions under one name (API-compatible subset).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("rps", 64).to_string(), "rps/64");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 10,
            smoke: true,
        };
        let mut calls = 0;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.samples.is_empty());
    }
}
