//! # loom (compat shim)
//!
//! An in-tree stand-in for the subset of the [`loom`
//! 0.7](https://docs.rs/loom/0.7) API used by this workspace's
//! `--cfg loom` concurrency tests.
//!
//! **This is not a model checker.** Upstream loom exhaustively explores
//! the interleavings of a bounded concurrent test under the C11 memory
//! model. Offline, this shim substitutes a *stress scheduler*:
//! [`model`] reruns the test body many times (`LOOM_SHIM_ITERS`,
//! default 200) while the wrapped synchronization types inject
//! randomized yields and micro-sleeps at every acquire/atomic-op
//! boundary, shaking out orderings the bare test loop would never hit.
//! Bugs are caught probabilistically, not exhaustively.
//!
//! The tests written against this API are source-compatible with real
//! loom: point the `loom` entry of `[workspace.dependencies]` at
//! crates.io wherever network access exists and the same tests become
//! exhaustive (see `compat/README.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};

static SCHED_STATE: StdAtomicU64 = StdAtomicU64::new(0x853C_49E6_748F_EA9B);

/// One pseudo-random draw from the global scheduler state. The state is
/// shared across threads on purpose: contended RMW on it adds its own
/// timing noise, which is exactly what a stress scheduler wants.
fn sched_draw() -> u64 {
    let x = SCHED_STATE.fetch_add(0x9E37_79B9_7F4A_7C15, StdOrdering::Relaxed);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Preemption point: mostly no-op, sometimes a yield, rarely a
/// micro-sleep (which forces a real deschedule on most OSes).
fn preempt() {
    match sched_draw() % 16 {
        0..=10 => {}
        11..=14 => std::thread::yield_now(),
        _ => std::thread::sleep(std::time::Duration::from_micros(sched_draw() % 40)),
    }
}

/// Runs `body` under the stress scheduler, many times.
///
/// Panics from any iteration propagate, annotated with the iteration
/// number. `LOOM_SHIM_ITERS` overrides the default 200 iterations.
pub fn model<F>(body: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters: u64 = std::env::var("LOOM_SHIM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    for i in 0..iters {
        // Re-seed so iterations explore different schedules but a fixed
        // iteration count stays reasonably reproducible.
        SCHED_STATE.store(
            0x853C_49E6_748F_EA9B ^ i.wrapping_mul(0x2545_F491_4F6C_DD1D),
            StdOrdering::Relaxed,
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&body));
        if let Err(payload) = result {
            eprintln!("loom shim: model iteration {i}/{iters} failed");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Thread spawning with preemption points (mirrors `loom::thread`).
pub mod thread {
    pub use std::thread::JoinHandle;

    /// Spawns a thread; the scheduler gets a preemption point on both
    /// sides of the handoff.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        super::preempt();
        std::thread::spawn(move || {
            super::preempt();
            f()
        })
    }

    /// Cooperative yield (always yields; it *is* the preemption point).
    pub fn yield_now() {
        std::thread::yield_now();
    }
}

/// Synchronization primitives with injected preemption points (mirrors
/// `loom::sync`).
pub mod sync {
    pub use std::sync::Arc;

    use std::sync::LockResult;

    /// `std::sync::Mutex` plus preemption points around acquisition.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// Creates a new mutex.
        pub fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }

        /// Acquires the lock (preemption point before and after).
        pub fn lock(&self) -> LockResult<std::sync::MutexGuard<'_, T>> {
            super::preempt();
            let guard = self.0.lock();
            super::preempt();
            guard
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> LockResult<T> {
            self.0.into_inner()
        }
    }

    /// `std::sync::RwLock` plus preemption points around acquisition.
    #[derive(Debug, Default)]
    pub struct RwLock<T>(std::sync::RwLock<T>);

    impl<T> RwLock<T> {
        /// Creates a new reader–writer lock.
        pub fn new(value: T) -> Self {
            RwLock(std::sync::RwLock::new(value))
        }

        /// Acquires shared access (preemption point before and after).
        pub fn read(&self) -> LockResult<std::sync::RwLockReadGuard<'_, T>> {
            super::preempt();
            let guard = self.0.read();
            super::preempt();
            guard
        }

        /// Acquires exclusive access (preemption point before and after).
        pub fn write(&self) -> LockResult<std::sync::RwLockWriteGuard<'_, T>> {
            super::preempt();
            let guard = self.0.write();
            super::preempt();
            guard
        }

        /// Consumes the lock, returning the inner value.
        pub fn into_inner(self) -> LockResult<T> {
            self.0.into_inner()
        }
    }

    /// Atomics with injected preemption points.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        macro_rules! shim_atomic {
            ($(#[$meta:meta])* $name:ident, $std:ident, $t:ty) => {
                $(#[$meta])*
                #[derive(Debug, Default)]
                pub struct $name(std::sync::atomic::$std);

                impl $name {
                    /// Creates a new atomic.
                    pub fn new(value: $t) -> Self {
                        $name(std::sync::atomic::$std::new(value))
                    }

                    /// Atomic load (preemption point first).
                    pub fn load(&self, order: Ordering) -> $t {
                        super::super::preempt();
                        self.0.load(order)
                    }

                    /// Atomic store (preemption point first).
                    pub fn store(&self, value: $t, order: Ordering) {
                        super::super::preempt();
                        self.0.store(value, order);
                    }

                    /// Atomic fetch-add (preemption point first).
                    pub fn fetch_add(&self, value: $t, order: Ordering) -> $t {
                        super::super::preempt();
                        self.0.fetch_add(value, order)
                    }

                    /// Atomic compare-exchange (preemption point first).
                    pub fn compare_exchange(
                        &self,
                        current: $t,
                        new: $t,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$t, $t> {
                        super::super::preempt();
                        self.0.compare_exchange(current, new, success, failure)
                    }
                }
            };
        }

        shim_atomic!(
            /// `AtomicU64` with preemption points.
            AtomicU64, AtomicU64, u64
        );
        shim_atomic!(
            /// `AtomicUsize` with preemption points.
            AtomicUsize, AtomicUsize, usize
        );

        /// `AtomicBool` with preemption points.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// Creates a new atomic.
            pub fn new(value: bool) -> Self {
                AtomicBool(std::sync::atomic::AtomicBool::new(value))
            }

            /// Atomic load (preemption point first).
            pub fn load(&self, order: Ordering) -> bool {
                super::super::preempt();
                self.0.load(order)
            }

            /// Atomic store (preemption point first).
            pub fn store(&self, value: bool, order: Ordering) {
                super::super::preempt();
                self.0.store(value, order);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Arc, Mutex, RwLock};

    #[test]
    fn model_runs_many_schedules() {
        std::env::set_var("LOOM_SHIM_ITERS", "8");
        let runs = Arc::new(AtomicU64::new(0));
        let runs2 = Arc::clone(&runs);
        super::model(move || {
            runs2.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(runs.load(Ordering::Relaxed), 8);
        std::env::remove_var("LOOM_SHIM_ITERS");
    }

    #[test]
    fn primitives_behave_like_std() {
        let m = Mutex::new(1);
        *m.lock().unwrap() += 1;
        assert_eq!(m.into_inner().unwrap(), 2);

        let rw = RwLock::new(5);
        assert_eq!(*rw.read().unwrap(), 5);
        *rw.write().unwrap() = 6;
        assert_eq!(rw.into_inner().unwrap(), 6);
    }

    #[test]
    fn threads_join() {
        let total = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let total = Arc::clone(&total);
                super::thread::spawn(move || {
                    for _ in 0..100 {
                        total.fetch_add(1, Ordering::Relaxed);
                        super::thread::yield_now();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 400);
    }
}
