//! # rand (compat shim)
//!
//! A dependency-free, in-tree stand-in for the subset of the
//! [`rand` 0.8](https://docs.rs/rand/0.8) API this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] and [`Rng::gen_bool`].
//!
//! The build environment for this repository is fully offline, so the
//! workspace vendors the few third-party APIs it needs as path
//! dependencies under `compat/` (see `compat/README.md`).
//! The shim is *API*-compatible, not *stream*-compatible: seeds produce a
//! different (but equally deterministic) value sequence than upstream
//! `rand`. Nothing in the workspace depends on the exact stream — only on
//! determinism per seed, which this shim guarantees.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++, seeded through
//! SplitMix64 — the construction recommended by its authors for seeding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number generators (shim: only [`rngs::StdRng`]).
pub mod rngs {
    /// A deterministic pseudo-random generator (xoshiro256++ here;
    /// upstream uses ChaCha12 — streams differ, determinism does not).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    fn next_u64_impl(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, 2019).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Seedable generators (shim: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot
        // produce four zero outputs in a row, but keep the guard explicit.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

/// Types that [`Rng::gen`] can produce uniformly over their whole domain.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types [`Rng::gen_range`] supports (shim-internal).
pub trait UniformInt: Copy {
    /// Widens to the `u64` offset domain used for range sampling.
    fn to_u64_offset(self) -> u64;
    /// Narrows back from the `u64` offset domain.
    fn from_u64_offset(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[allow(clippy::cast_sign_loss, clippy::cast_lossless)]
            fn to_u64_offset(self) -> u64 { self as u64 }
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn from_u64_offset(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics when empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_span<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // `span == 0` encodes the full 2^64 domain.
    if span == 0 {
        return rng.next_u64();
    }
    // Multiply-shift bounded sampling (Lemire); bias is negligible for
    // the spans the workspace draws and irrelevant to its tests.

    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start.to_u64_offset();
        let hi = self.end.to_u64_offset();
        let span = hi.wrapping_sub(lo);
        assert!(span != 0, "cannot sample from an empty range");
        T::from_u64_offset(lo.wrapping_add(sample_span(rng, span)))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start().to_u64_offset();
        let hi = self.end().to_u64_offset();
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        T::from_u64_offset(lo.wrapping_add(sample_span(rng, span)))
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from an empty range");
        let unit = f64::sample(rng);
        lo + unit * (hi - lo)
    }
}

/// The user-facing generator trait (shim subset).
pub trait Rng {
    /// The raw 64-bit output feeding every other method.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniform value over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`. Panics on empty ranges.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let w: usize = rng.gen_range(1usize..=7);
            assert!((1..=7).contains(&w));
            let f: f64 = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        // Mean of 1000 uniforms should land near 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.06, "mean {}", sum / 1000.0);
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..6 hit: {seen:?}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
