//! # rps — Relative Prefix Sums for dynamic OLAP data cubes
//!
//! A complete, from-scratch Rust reproduction of
//!
//! > S. Geffner, D. Agrawal, A. El Abbadi, T. Smith.
//! > *Relative Prefix Sums: An Efficient Approach for Querying Dynamic
//! > OLAP Data Cubes.* ICDE 1999.
//!
//! The relative prefix sum (RPS) method answers arbitrary range-SUM
//! queries over a d-dimensional data cube in **O(1)** time while keeping
//! point updates at **O(n^{d/2})** — against the O(n^d) query of the raw
//! cube and the O(n^d) update of the precomputed prefix-sum cube.
//!
//! This facade re-exports the workspace:
//!
//! * [`core`] — the engines: [`NaiveEngine`], [`PrefixSumEngine`],
//!   [`RpsEngine`] (the paper's contribution), [`FenwickEngine`]
//!   (extension baseline), plus the value algebra and aggregation adapters.
//! * [`ndcube`] — the dense d-dimensional array substrate.
//! * [`storage`] — §4.4: simulated block device, buffer
//!   pool, and [`DiskRpsEngine`] (RP on disk, overlay in RAM).
//! * [`workload`] — deterministic cube/query/update
//!   generators and the paper's SALES scenario.
//! * [`analysis`] — the paper's closed-form cost and
//!   storage models.
//!
//! ## Quick start
//!
//! ```
//! use rps::{RangeSumEngine, RpsEngine};
//! use rps::ndcube::{NdCube, Region};
//!
//! // SALES by CUSTOMER_AGE × DAY.
//! let sales = NdCube::from_fn(&[100, 365], |c| ((c[0] * 13 + c[1]) % 97) as i64).unwrap();
//! let mut engine = RpsEngine::from_cube(&sales);
//!
//! // "Total sales for ages 37–52 over the past three months" — O(1).
//! let q = Region::new(&[37, 275], &[52, 364]).unwrap();
//! let before = engine.query(&q).unwrap();
//!
//! // Near-current data: apply today's sale without rebuilding the cube.
//! engine.update(&[41, 364], 250).unwrap();
//! assert_eq!(engine.query(&q).unwrap(), before + 250);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness that regenerates every figure and table of the paper
//! (documented in `EXPERIMENTS.md`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ndcube;
pub use rps_analysis as analysis;
pub use rps_core as core;
pub use rps_storage as storage;
pub use rps_workload as workload;

pub use rps_core::{
    BufferedEngine, CostStats, FenwickEngine, GroupValue, NaiveEngine, PrefixSumEngine,
    RangeSumEngine, RpsEngine, SharedEngine, SparseDelta, SumCount,
};
pub use rps_storage::DiskRpsEngine;

/// One-stop imports for applications: engines, the engine trait, and the
/// array/region types they operate on.
///
/// ```
/// use rps::prelude::*;
/// let cube = NdCube::from_fn(&[8, 8], |c| (c[0] + c[1]) as i64).unwrap();
/// let engine = RpsEngine::from_cube(&cube);
/// let r = Region::new(&[1, 1], &[6, 6]).unwrap();
/// let _sum = engine.query(&r).unwrap();
/// ```
pub mod prelude {
    pub use ndcube::{NdCube, Region, Shape};
    pub use rps_core::{
        BufferedEngine, ChunkedEngine, FenwickEngine, GroupValue, NaiveEngine, PrefixSumEngine,
        RangeSumEngine, RpsEngine, SharedEngine, SumCount,
    };
    pub use rps_storage::DiskRpsEngine;
}
