#!/usr/bin/env bash
# One-command local run of the full static-analysis gate:
#
#   1. the nine repo lints (L1 token scans through L9 unsafe audit)
#      against the ratcheted lint-baseline.json, emitting the JSON
#      new/pinned/stale report (kept as a CI artifact),
#   2. the unsafe-inventory freshness check (docs/UNSAFE_INVENTORY.md
#      must match the tree — regenerate with
#      `cargo xtask lint --unsafe-inventory`),
#   3. the lint harness's own test suite, which pins every rule to
#      exact fixture lines and asserts the real workspace is clean.
#
# Pass a path to change where the JSON report lands (default
# target/lint-findings.json). See docs/STATIC_ANALYSIS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-target/lint-findings.json}"
mkdir -p "$(dirname "$out")"

echo "== cargo xtask lint --json (baseline: lint-baseline.json)"
# Capture the report even when the lint gate fails, so CI uploads the
# findings that caused the failure.
status=0
cargo run --quiet --release -p xtask -- lint --json >"$out" || status=$?
cat "$out"
echo

echo "== unsafe inventory freshness (docs/UNSAFE_INVENTORY.md)"
cargo run --quiet --release -p xtask -- lint --unsafe-inventory --check

echo "== lint harness self-tests (cargo test -p xtask)"
cargo test --quiet --release -p xtask

exit "$status"
