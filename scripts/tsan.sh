#!/usr/bin/env bash
# Runs the concurrency-sensitive tests under ThreadSanitizer: the
# parallel RP/P build sweeps (scoped threads over split_at_mut slabs —
# including the non-aligned slab geometries the property tests
# generate), the sharded query_many_parallel front-end, SharedEngine's
# readers–writer paths, the buffered engine's flush, and the
# versioned engine's publish/pin/reclaim protocol (module tests plus
# the snapshot-monotonicity property suite). Needs a nightly
# toolchain with rust-src (TSan requires rebuilding std with
# instrumentation):
#
#   rustup toolchain install nightly --component rust-src
#
# Complements scripts/loom.sh: loom model-checks tiny interleavings
# exhaustively; TSan watches real full-size executions for data races.
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="-Z sanitizer=thread ${RUSTFLAGS:-}"
# TSan intercepts every memory access; keep the randomized suites short.
export PROPTEST_CASES="${PROPTEST_CASES:-16}"

TARGET="$(rustc +nightly -vV | sed -n 's/^host: //p')"

# Unit tests of the concurrent modules (including versioned::'s
# publish/pin/reclaim protocol), then the integration suites that
# exercise them at full size.
cargo +nightly test -Z build-std --target "$TARGET" -p rps-core \
    concurrent:: parallel:: buffered:: versioned:: query_many_parallel "$@"
exec cargo +nightly test -Z build-std --target "$TARGET" -p rps-core \
    --test versioned_props "$@"
