#!/usr/bin/env bash
# End-to-end smoke of the serving stack (docs/SERVING.md,
# docs/OPERATIONS.md): starts a real `rps-serve` over a durable data
# dir, drives it with `rps-cube client` round trips — including an
# over-quota batch that must come back as a typed `quota_batch` reject —
# scrapes /metrics off the same port, then asks for a graceful drain and
# asserts the server checkpointed its tenant and exited 0.
#
# Usage:
#   scripts/serve_smoke.sh            # build release binaries and run
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p rps-serve -p rps-cli

SMOKE_DIR=target/serve-smoke
rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"
SERVER_LOG="$SMOKE_DIR/server.log"

target/release/rps-serve \
  --addr 127.0.0.1:0 \
  --workers 2 \
  --tenant smoke=32x32 \
  --data-dir "$SMOKE_DIR/data" \
  --max-batch 4 \
  > "$SERVER_LOG" 2>&1 &
SERVER_PID=$!
cleanup() { kill "$SERVER_PID" 2>/dev/null || true; }
trap cleanup EXIT

# The server prints its bound address (port 0 = ephemeral) on startup.
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^rps-serve listening on //p' "$SERVER_LOG" | head -n1)
  [[ -n "$ADDR" ]] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: server died on startup"; cat "$SERVER_LOG"; exit 1
  fi
  sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "FAIL: server never reported its address"; cat "$SERVER_LOG"; exit 1; }
echo "server up at $ADDR"

CUBE=target/release/rps-cube

# Round trip: point update + in-cap atomic batch, then the range sum
# must see all three deltas.
"$CUBE" client update --addr "$ADDR" --tenant smoke --cell 1,2 --delta 5
"$CUBE" client batch  --addr "$ADDR" --tenant smoke --updates "0,0:+1;3,4:+1"
"$CUBE" client query  --addr "$ADDR" --tenant smoke --region 0,0:31,31 | tee "$SMOKE_DIR/query.out"
grep -q "= 7$" "$SMOKE_DIR/query.out" || { echo "FAIL: expected sum 7"; exit 1; }

# Over the --max-batch 4 cap: must fail with the documented typed
# reject, and must not change the cube.
if "$CUBE" client batch --addr "$ADDR" --tenant smoke \
     --updates "0,0:+1;0,1:+1;0,2:+1;0,3:+1;0,4:+1" 2> "$SMOKE_DIR/reject.err"; then
  echo "FAIL: over-quota batch was accepted"; exit 1
fi
grep -q "quota_batch" "$SMOKE_DIR/reject.err" || { echo "FAIL: expected quota_batch reject"; cat "$SMOKE_DIR/reject.err"; exit 1; }
"$CUBE" client query --addr "$ADDR" --tenant smoke --region 0,0:31,31 | grep -q "= 7$" \
  || { echo "FAIL: rejected batch must be all-or-nothing"; exit 1; }

# Forced checkpoint + stats over the wire.
"$CUBE" client snapshot --addr "$ADDR" --tenant smoke | grep -q "lsn" || { echo "FAIL: snapshot"; exit 1; }
"$CUBE" client stats --addr "$ADDR" --tenant smoke

# Prometheus scrape off the serving port: serve-layer families must be
# present (docs/OBSERVABILITY.md).
"$CUBE" client metrics --addr "$ADDR" > "$SMOKE_DIR/metrics.prom"
for family in rps_serve_requests_total rps_serve_rejects_total rps_serve_conns_total; do
  grep -q "$family" "$SMOKE_DIR/metrics.prom" || { echo "FAIL: $family missing from /metrics"; exit 1; }
done
grep -q 'rps_serve_rejects_total{reason="quota_batch"} 1' "$SMOKE_DIR/metrics.prom" \
  || { echo "FAIL: the quota reject was not counted"; exit 1; }

# Graceful drain: the server must checkpoint the tenant and exit 0.
"$CUBE" client shutdown --addr "$ADDR"
DRAIN_OK=0
for _ in $(seq 1 100); do
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then DRAIN_OK=1; break; fi
  sleep 0.1
done
[[ "$DRAIN_OK" == 1 ]] || { echo "FAIL: server did not drain within 10s"; exit 1; }
wait "$SERVER_PID" || { echo "FAIL: server exited nonzero"; cat "$SERVER_LOG"; exit 1; }
trap - EXIT
grep -q "^drained:" "$SERVER_LOG" || { echo "FAIL: no drain report"; cat "$SERVER_LOG"; exit 1; }
grep -q "checkpoint smoke @ lsn" "$SERVER_LOG" || { echo "FAIL: no final checkpoint"; cat "$SERVER_LOG"; exit 1; }

echo "serve smoke: OK (drain report below)"
grep -A2 "^drained:" "$SERVER_LOG"
