#!/usr/bin/env bash
# Runs the loom interleaving tests for rps-core's concurrent paths.
#
# Under `--cfg loom`, rps_core::sync_compat swaps std::sync for loom's
# instrumented primitives and the loom test targets
# (crates/rps-core/tests/loom_shared_engine.rs and
# crates/rps-core/tests/loom_versioned_engine.rs) compile in. With the in-tree compat shim (offline default) each model
# body is stress-scheduled LOOM_SHIM_ITERS times (default 200); with
# upstream loom (point [workspace.dependencies].loom at crates.io) the
# same tests become exhaustive model checks.
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="--cfg loom ${RUSTFLAGS:-}"
# Loom models are release-speed sensitive: the shim reruns each body
# hundreds of times and upstream loom explores thousands of schedules.
cargo test --release -p rps-core --test loom_shared_engine "$@"
exec cargo test --release -p rps-core --test loom_versioned_engine "$@"
