#!/usr/bin/env bash
# Runs the deterministic crash-consistency torture harness for the
# durable storage stack (crates/storage/tests/torture.rs).
#
# Each seed derives a fault plan (torn writes, lost writes, fsync
# failures/lies, bit rot, transient EIO), drives a scripted
# update/checkpoint workload, then reopens the engine from every crash
# state — including byte-granular cuts in the WAL tail — and checks the
# recovery invariants documented in docs/DURABILITY.md. Failures print
# the seed and the full fault plan; rerunning with that seed reproduces
# the run exactly.
#
# Usage:
#   scripts/torture.sh               # default seed count (64 in release)
#   SEEDS=512 scripts/torture.sh     # crank it up
#   SNAPSHOTS=1 scripts/torture.sh   # snapshot dimension only: crash at
#                                    # every byte offset of the snapshot
#                                    # write, corrupt chains mid-stream,
#                                    # assert the fallback counter moved
#   scripts/torture.sh -- --nocapture  # extra args go to the test binary
#
# Every run exports the observability registry (fault counters, WAL
# fsync/retry/quarantine accounting, latency histograms — see
# docs/OBSERVABILITY.md) to $METRICS_FILE, default
# target/torture-metrics.prom; CI archives it as the `torture-metrics`
# artifact. Pretty-print it with `rps-cube stats --from <file>`.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ -n "${SEEDS:-}" ]]; then
  export TORTURE_SEEDS="$SEEDS"
fi

# Absolute: the test binaries run with the package directory as cwd.
export TORTURE_METRICS_FILE="$(pwd)/${METRICS_FILE:-target/torture-metrics.prom}"
mkdir -p "$(dirname "$TORTURE_METRICS_FILE")"

# SNAPSHOTS=1 narrows the run to the checkpointed-snapshot dimension
# (tests named snapshot_*) and afterwards asserts, from the exported
# metrics, that the corrupted chains provably took the fallback path.
filter=()
if [[ "${SNAPSHOTS:-0}" == "1" ]]; then
  filter=(snapshot_)
fi

# Release profile: the sweep reopens the engine at thousands of crash
# points per seed; debug builds cap the default seed count instead.
cargo test --release -p rps-storage --test torture "${filter[@]}" "$@"

echo
echo "metrics exported to $TORTURE_METRICS_FILE:"
grep -c '^[a-z]' "$TORTURE_METRICS_FILE" | xargs -I{} echo "  {} samples"
grep '^storage_faults_injected_total' "$TORTURE_METRICS_FILE" | sed 's/^/  /'
grep '^rps_snapshot_' "$TORTURE_METRICS_FILE" | sed 's/^/  /' || true

if [[ "${SNAPSHOTS:-0}" == "1" ]]; then
  fallbacks=$(awk '/^rps_snapshot_fallbacks_total/ {print $2}' "$TORTURE_METRICS_FILE")
  if [[ -z "$fallbacks" || "$fallbacks" -eq 0 ]]; then
    echo "FAIL: snapshot run never exercised the fallback path (rps_snapshot_fallbacks_total=${fallbacks:-missing})" >&2
    exit 1
  fi
  echo "  fallback path exercised $fallbacks time(s) — graceful degradation verified"
fi
