#!/usr/bin/env bash
# Runs the deterministic crash-consistency torture harness for the
# durable storage stack (crates/storage/tests/torture.rs).
#
# Each seed derives a fault plan (torn writes, lost writes, fsync
# failures/lies, bit rot, transient EIO), drives a scripted
# update/checkpoint workload, then reopens the engine from every crash
# state — including byte-granular cuts in the WAL tail — and checks the
# recovery invariants documented in docs/DURABILITY.md. Failures print
# the seed and the full fault plan; rerunning with that seed reproduces
# the run exactly.
#
# Usage:
#   scripts/torture.sh               # default seed count (64 in release)
#   SEEDS=512 scripts/torture.sh     # crank it up
#   scripts/torture.sh -- --nocapture  # extra args go to the test binary
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ -n "${SEEDS:-}" ]]; then
  export TORTURE_SEEDS="$SEEDS"
fi

# Release profile: the sweep reopens the engine at thousands of crash
# points per seed; debug builds cap the default seed count instead.
exec cargo test --release -p rps-storage --test torture "$@"
