#!/usr/bin/env bash
# Runs the index-arithmetic cores under Miri to catch undefined behaviour
# in the raw-offset paths (linear indexing, slab splitting, snapshot
# byte-twiddling). Needs a nightly toolchain with the `miri` component:
#
#   rustup toolchain install nightly --component miri
#
# Strict provenance flags make Miri reject integer→pointer round-trips
# outright instead of tracking them permissively — the strongest setting
# this pure-safe-Rust workspace should pass trivially, so any report is a
# real bug (most likely in a dependency shim).
set -euo pipefail
cd "$(dirname "$0")/.."

export MIRIFLAGS="-Zmiri-strict-provenance ${MIRIFLAGS:-}"
# Keep the proptest shims' case counts small: Miri runs ~100× slower
# than native, and the UB coverage does not grow with case count.
export PROPTEST_CASES="${PROPTEST_CASES:-8}"

# Slow, exhaustive interpreter — restrict to the crates whose index math
# the xtask L1 lint polices; everything else is plumbing over these.
exec cargo +nightly miri test -p ndcube -p rps-core "$@"
