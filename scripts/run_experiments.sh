#!/usr/bin/env bash
# Regenerates every experiment table in EXPERIMENTS.md (release mode).
# Usage: scripts/run_experiments.sh [output-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-experiment-results}"
mkdir -p "$OUT"

BINS=(
  exp_update_example
  exp_query_cost
  exp_box_size_sweep
  exp_complexity_product
  exp_fig16_storage
  exp_disk_io
  exp_batch_updates
  exp_skew_sensitivity
  exp_dimensionality
  exp_parallel_build
  exp_query_many
  exp_parallel_query
  exp_mixed_readwrite
)

cargo build --release -p rps-bench --bins

for bin in "${BINS[@]}"; do
  echo "== $bin =="
  cargo run -q --release -p rps-bench --bin "$bin" | tee "$OUT/$bin.txt"
  echo
done

echo "all experiment outputs written to $OUT/"
