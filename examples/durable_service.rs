//! Durability end to end: a long-running cube service that survives
//! crashes. Updates are write-ahead logged; periodic checkpoints snapshot
//! the engine and truncate the log; a simulated crash (dropping the
//! engine without checkpointing, plus a torn final log record) recovers
//! to exactly the acknowledged state.
//!
//! ```text
//! cargo run --release --example durable_service
//! ```

use std::fs::File;
use std::path::PathBuf;

use rps::core::snapshot;
use rps::ndcube::Region;
use rps::storage::{DurableEngine, Wal};
use rps::workload::SalesScenario;
use rps::RpsEngine;

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join("rps-durable-example");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn main() {
    const AGES: usize = 50;
    const DAYS: usize = 120;
    let snap_path = workdir().join("service.rps");
    let wal_path = workdir().join("service.wal");
    let _ = std::fs::remove_file(&snap_path);
    let _ = std::fs::remove_file(&wal_path);

    let mut scenario = SalesScenario::new(AGES, DAYS, 4242);
    let window = scenario.age_window_query(20, 35, 30);

    let lsn_path = workdir().join("service.lsn");
    let persist =
        |e: &RpsEngine<i64>, lsn: u64| -> Result<(), rps::core::snapshot::SnapshotError> {
            snapshot::save_rps(e, File::create(&snap_path).unwrap())?;
            std::fs::write(&lsn_path, lsn.to_string()).unwrap();
            Ok(())
        };

    // --- Session 1: bootstrap, checkpoint, absorb sales, "crash". -------
    let mut acknowledged = 0i64;
    {
        let engine = RpsEngine::<i64>::zeros(&[AGES, DAYS]).unwrap();
        let mut service = DurableEngine::open(engine, &wal_path, 0).unwrap();
        service.checkpoint(persist).unwrap();

        for i in 0..5_000 {
            let ([age, day], amount) = scenario.next_sale();
            service.update(&[age, day], amount).unwrap();
            acknowledged += amount;
            if i == 2_500 {
                // Mid-session checkpoint: snapshot + LSN sidecar, then
                // the log is truncated.
                let lsn = service.checkpoint(persist).unwrap();
                println!(
                    "checkpoint at sale {i} (lsn {lsn}): WAL reset to {} bytes",
                    service.wal_bytes()
                );
            }
        }
        println!(
            "session 1: 5,000 sales acknowledged (total {acknowledged}); \
             {} bytes of WAL since the checkpoint — crashing now",
            service.wal_bytes()
        );
        // `service` dropped here without a final checkpoint = crash.
    }

    // Make the crash nastier: tear the last WAL record in half.
    let len = std::fs::metadata(&wal_path).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_path)
        .unwrap()
        .set_len(len - 7)
        .unwrap();
    println!("simulated torn final record (truncated 7 bytes of WAL)");

    // --- Session 2: recover = last checkpoint + WAL tail (> lsn). --------
    let base = snapshot::load_rps(File::open(&snap_path).unwrap()).unwrap();
    let snapshot_lsn: u64 =
        std::fs::read_to_string(&lsn_path).map_or(0, |s| s.trim().parse().unwrap());
    let recovered = DurableEngine::open(base, &wal_path, snapshot_lsn).unwrap();
    let full = Region::new(&[0, 0], &[AGES - 1, DAYS - 1]).unwrap();
    let recovered_total = recovered.query(&full).unwrap();

    // The torn record was the *last* sale; everything acknowledged before
    // it must be present. (A real service acknowledges only after the
    // append returns, so at most that in-flight sale is lost.)
    let lost = acknowledged - recovered_total;
    println!(
        "session 2: recovered total {recovered_total} of {acknowledged} \
         acknowledged ({lost} lost to the torn in-flight record)"
    );
    assert!(
        (0..=500).contains(&lost),
        "at most one sale may be lost, got {lost}"
    );

    // Structural audit + a live query on the recovered service.
    assert!(recovered.engine().check_invariants().is_empty());
    println!(
        "structural audit clean; ages 20–35 / last 30 days = {}",
        recovered.query(&window).unwrap()
    );

    // WAL is repaired and appendable: the service continues.
    let mut wal_check = Wal::open(&wal_path).unwrap();
    wal_check.append(&[0, 0], 1).unwrap();
    println!("service resumed: WAL healthy and accepting appends ✓");
}
