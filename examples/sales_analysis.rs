//! The paper's motivating scenario end to end: an insurance company's
//! SALES cube over CUSTOMER_AGE × DAY, receiving a continuous stream of
//! new sales while analysts run range, average and rolling-window
//! queries over near-current data.
//!
//! ```text
//! cargo run --example sales_analysis
//! ```

use rps::core::aggregate::{rolling_average, AverageCube};
use rps::ndcube::Region;
use rps::workload::SalesScenario;
use rps::{RangeSumEngine, RpsEngine};

fn main() {
    const AGES: usize = 100;
    const DAYS: usize = 365;

    let mut scenario = SalesScenario::new(AGES, DAYS, 20260706);

    // The AVERAGE adapter keeps (sum, count) pairs in one RPS engine —
    // §2's "COUNT, AVERAGE, ROLLING SUM, ROLLING AVERAGE" family.
    let mut cube = AverageCube::new(RpsEngine::<rps::SumCount<i64>>::zeros(&[AGES, DAYS]).unwrap());

    // Load a year of historical sales as individual facts.
    println!("loading historical facts…");
    for ([age, day], amount) in scenario.sales_batch(50_000) {
        cube.record(&[age, day], amount).unwrap();
    }

    // Analyst queries on the loaded cube.
    let q = scenario.age_window_query(37, 52, 90);
    println!("\n— ages 37–52, past 3 months —");
    println!("  SUM     = {}", cube.sum(&q).unwrap());
    println!("  COUNT   = {}", cube.count(&q).unwrap());
    println!(
        "  AVERAGE = {:?}",
        cube.average(&q).unwrap().map(f64::round)
    );

    // Rolling 30-day average sales across the year, all ages: each window
    // is one O(1) range query.
    let base = Region::new(&[0, 0], &[AGES - 1, DAYS - 1]).unwrap();
    let rolls = rolling_average(cube.engine(), &base, 1, 30).unwrap();
    let peak = rolls
        .iter()
        .enumerate()
        .filter_map(|(i, a)| a.map(|v| (i, v)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    println!(
        "\nrolling 30-day average: {} windows, peak at day {} ({:.1})",
        rolls.len(),
        peak.0,
        peak.1
    );

    // "Near-current": today's sales arrive and queries see them at once.
    println!("\napplying 1,000 new sales (recency-skewed)…");
    let before = cube.sum(&q).unwrap();
    let mut landed_in_window = 0i64;
    for ([age, day], amount) in scenario.sales_batch(1_000) {
        cube.record(&[age, day], amount).unwrap();
        if (37..=52).contains(&age) && day >= DAYS - 90 {
            landed_in_window += amount;
        }
    }
    let after = cube.sum(&q).unwrap();
    assert_eq!(after - before, landed_in_window);
    println!(
        "window sum moved {before} → {after} (+{landed_in_window} from sales inside the window)"
    );

    // What did a day of near-current analysis cost?
    let stats = cube.engine().stats();
    println!(
        "\nengine totals: {} queries, {} updates, {:.1} cells/update, {:.1} reads/query",
        stats.queries,
        stats.updates,
        stats.writes_per_update().unwrap_or(0.0),
        stats.reads_per_query().unwrap_or(0.0),
    );
}
