//! §4.4 "Practical Considerations" made concrete: the RP array lives on a
//! (simulated) block device behind an LRU buffer pool while the overlay
//! stays in RAM. Compares the box-aligned page layout the paper
//! recommends against a flat row-major layout, in page I/O per operation.
//!
//! ```text
//! cargo run --release --example disk_simulation
//! ```

use rps::analysis::Table;
use rps::core::BoxGrid;
use rps::storage::{DeviceConfig, DiskRpsEngine};
use rps::workload::{CubeGen, QueryGen, RegionSpec, UpdateGen};
use rps::RangeSumEngine;

fn main() {
    const N: usize = 256;
    const K: usize = 16; // √n — and one box region = 256 cells = 1 page
    let dims = [N, N];
    let device = DeviceConfig {
        cells_per_page: K * K,
    };
    let pool_frames = 64;

    let cube = CubeGen::new(1).uniform(&dims, 0, 9).expect("valid dims");
    let grid = BoxGrid::new(cube.shape().clone(), &[K, K]).unwrap();

    let mut engines = [
        (
            "box-aligned",
            DiskRpsEngine::from_cube_with_grid(&cube, grid.clone(), device, pool_frames, true)
                .expect("build disk engine"),
        ),
        (
            "row-major",
            DiskRpsEngine::from_cube_with_grid(&cube, grid, device, pool_frames, false)
                .expect("build disk engine"),
        ),
    ];

    println!(
        "cube {N}×{N}, boxes {K}×{K}, page = {} cells, pool = {} frames",
        device.cells_per_page, pool_frames
    );
    println!(
        "overlay in RAM: {} cells ({:.2}% of RP's {} cells)\n",
        engines[0].1.overlay_cells(),
        100.0 * engines[0].1.overlay_cells() as f64 / (N * N) as f64,
        N * N
    );

    let mut table = Table::new(&[
        "RP layout",
        "RP pages",
        "reads/query",
        "reads/update",
        "writes/update",
    ]);

    for (name, engine) in &mut engines {
        // 500 mid-size queries.
        let mut qg = QueryGen::new(&dims, 5, RegionSpec::Fraction(0.4));
        engine.reset_io_stats();
        for r in qg.take(500) {
            engine.query(&r).unwrap();
        }
        let q_io = engine.io_stats();

        // 500 updates (uniform positions).
        let mut ug = UpdateGen::uniform(&dims, 6, 50);
        engine.reset_io_stats();
        for (c, delta) in ug.take(500) {
            engine.update(&c, delta).unwrap();
        }
        engine.flush().expect("flush");
        let u_io = engine.io_stats();

        table.row(&[
            name.to_string(),
            engine.rp_pages().to_string(),
            format!("{:.2}", q_io.page_reads as f64 / 500.0),
            format!("{:.2}", u_io.page_reads as f64 / 500.0),
            format!("{:.2}", u_io.page_writes as f64 / 500.0),
        ]);
    }
    print!("{}", table.render());

    println!(
        "\nwith the box-aligned layout an update's RP cascade stays inside one\n\
         box = one page (§4.4: 'both queries and updates will then require\n\
         only a constant number of disk reads or writes'); row-major spreads\n\
         the same cascade over ~k pages."
    );
}
