//! Head-to-head: all five range-sum methods on the identical mixed
//! workload, reporting the paper's figures of merit — cells read per
//! query, cells written per update, and the query·update product.
//!
//! ```text
//! cargo run --release --example method_comparison
//! ```

use rps::analysis::Table;
use rps::core::ChunkedEngine;
use rps::ndcube::NdCube;
use rps::workload::{CubeGen, MixedWorkload, Op, QueryGen, RegionSpec, UpdateGen};
use rps::{FenwickEngine, NaiveEngine, PrefixSumEngine, RangeSumEngine, RpsEngine};

fn drive(engine: &mut dyn RangeSumEngine<i64>, ops: &[Op]) -> (f64, f64, i64) {
    engine.reset_stats();
    let mut checksum = 0i64;
    for op in ops {
        match op {
            Op::Query(r) => checksum = checksum.wrapping_add(engine.query(r).unwrap()),
            Op::Update { coords, delta } => engine.update(coords, *delta).unwrap(),
        }
    }
    let s = engine.stats();
    (
        s.reads_per_query().unwrap_or(0.0),
        s.writes_per_update().unwrap_or(0.0),
        checksum,
    )
}

fn main() {
    const N: usize = 128;
    let dims = [N, N];

    let cube: NdCube<i64> = CubeGen::new(42).uniform(&dims, 0, 9).expect("valid dims");
    let ops = MixedWorkload::new(
        UpdateGen::uniform(&dims, 7, 100),
        QueryGen::new(&dims, 8, RegionSpec::Fraction(0.5)),
        0.5,
        9,
    )
    .take(2_000);

    let mut engines: Vec<Box<dyn RangeSumEngine<i64>>> = vec![
        Box::new(NaiveEngine::from_cube(cube.clone())),
        Box::new(ChunkedEngine::from_cube(&cube)), // materialized block totals
        Box::new(PrefixSumEngine::from_cube(&cube)),
        Box::new(RpsEngine::from_cube(&cube)), // k = ⌈√n⌉
        Box::new(FenwickEngine::from_cube(&cube)),
    ];

    println!("cube {N}×{N}, 2,000 ops (50% range queries / 50% point updates)\n");
    let mut table = Table::new(&[
        "method",
        "reads/query",
        "writes/update",
        "query·update",
        "storage cells",
    ]);
    let mut checksums = Vec::new();
    for engine in &mut engines {
        let (rq, wu, checksum) = drive(engine.as_mut(), &ops);
        checksums.push(checksum);
        table.row(&[
            engine.name().to_string(),
            format!("{rq:.1}"),
            format!("{wu:.1}"),
            format!("{:.0}", rq * wu),
            engine.storage_cells().to_string(),
        ]);
    }
    print!("{}", table.render());

    // Every method must have produced identical query answers.
    assert!(
        checksums.windows(2).all(|w| w[0] == w[1]),
        "engines disagree!"
    );
    println!(
        "\nall methods returned identical query results (checksum {})",
        checksums[0]
    );
    println!(
        "\nreading the table: naive pays at query time; the chunked baseline\n\
         (materialized block totals, what 1990s OLAP servers shipped) improves\n\
         queries to O((n/k)²+boundary) but is still far from O(1); prefix-sum\n\
         pays at update time; RPS balances both at O(n^(d/2)) = O(n) for d = 2;\n\
         Fenwick trades a higher query constant for O(log² n) updates."
    );
}
