//! The nightly-refresh pipeline the paper motivates: a persistent cube
//! absorbs a day's batch of sales, choosing incremental updates or a
//! full rebuild with the cost model, then snapshots itself for the next
//! session — while analysts' query answers stay exact throughout.
//!
//! ```text
//! cargo run --release --example batch_refresh
//! ```

use rps::core::snapshot;
use rps::workload::SalesScenario;
use rps::{RangeSumEngine, RpsEngine};

fn main() {
    const AGES: usize = 100;
    const DAYS: usize = 365;
    let mut scenario = SalesScenario::new(AGES, DAYS, 99);

    // Day 0: initial load, built in parallel, persisted.
    let base = scenario.base_cube();
    let mut engine = RpsEngine::from_cube_parallel(&base, 4);
    let mut store = Vec::new();
    snapshot::save_rps(&engine, &mut store).unwrap();
    println!(
        "initial load: {} cells, box size {:?}, snapshot {} bytes",
        engine.shape().len(),
        engine.grid().box_size(),
        store.len()
    );

    // Five "nights" of refreshes with growing batch sizes.
    for (night, &batch_size) in [200usize, 2_000, 20_000, 60_000, 120_000]
        .iter()
        .enumerate()
    {
        // Restore yesterday's state (round-trips the snapshot).
        let mut restored: RpsEngine<i64> = snapshot::load_rps(&store[..]).unwrap();
        let before = restored.total();

        let batch: Vec<(Vec<usize>, i64)> = scenario
            .sales_batch(batch_size)
            .into_iter()
            .map(|([a, d], amount)| (vec![a, d], amount))
            .collect();
        let expected_delta: i64 = batch.iter().map(|(_, v)| v).sum();

        restored.reset_stats();
        let est = restored.estimated_update_cost();
        let rebuilt = restored.apply_batch(&batch).unwrap();
        let writes = restored.stats().cell_writes;

        assert_eq!(restored.total(), before + expected_delta);
        println!(
            "night {}: batch {:>6} → {:<11} ({} cell writes; est {:.0}/update, \
             rebuild ≈ {:.0})",
            night + 1,
            batch_size,
            if rebuilt { "REBUILD" } else { "incremental" },
            writes,
            est,
            (restored.shape().ndim() as f64 + 2.0) * restored.shape().len() as f64,
        );

        store.clear();
        snapshot::save_rps(&restored, &mut store).unwrap();
        engine = restored;
    }

    // The analysts' view stays exact: compare a spot query against a
    // brute-force rebuild of the final state.
    let check = RpsEngine::from_cube(&engine.to_cube());
    let q = scenario.age_window_query(37, 52, 90);
    assert_eq!(engine.query(&q).unwrap(), check.query(&q).unwrap());
    println!(
        "\nfinal state verified: 90-day window query = {} (exact after {} nights)",
        engine.query(&q).unwrap(),
        5
    );
}
