//! A multi-threaded OLAP service: analyst threads run concurrent O(1)
//! range queries through attribute-level schemas while a feed thread
//! streams in sales — the paper's "near-current information" requirement
//! under real concurrency.
//!
//! ```text
//! cargo run --release --example concurrent_analytics
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use rps::core::SharedEngine;
use rps::workload::{CubeSchema, Dimension, Key, SalesScenario};
use rps::RpsEngine;

fn main() {
    // SALES by CUSTOMER_AGE (18–99) × DAY (0–364).
    let schema = CubeSchema::new(vec![
        Dimension::numeric("CUSTOMER_AGE", 18, 99),
        Dimension::numeric("DAY", 0, 364),
    ]);
    let dims = schema.dims();
    let engine = SharedEngine::new(RpsEngine::<i64>::zeros(&dims).unwrap());
    let stop = Arc::new(AtomicBool::new(false));

    // Feed thread: recency-skewed sales arrive continuously.
    let feed = {
        let engine = engine.clone();
        let stop = Arc::clone(&stop);
        let dims = dims.clone();
        thread::spawn(move || {
            let mut scenario = SalesScenario::new(dims[0], dims[1], 777);
            let mut applied = 0u64;
            let mut volume = 0i64;
            while !stop.load(Ordering::Relaxed) {
                let ([age, day], amount) = scenario.next_sale();
                engine.update(&[age, day], amount).unwrap();
                applied += 1;
                volume += amount;
            }
            (applied, volume)
        })
    };

    // Analyst threads: each owns a demographic band and keeps asking the
    // paper's query shape against live data.
    let analysts: Vec<_> = [(18i64, 29i64), (30, 45), (37, 52), (60, 99)]
        .into_iter()
        .map(|(lo_age, hi_age)| {
            let engine = engine.clone();
            let schema = schema.clone();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let region = schema
                    .region(
                        &[Key::Num(lo_age), Key::Num(275)],
                        &[Key::Num(hi_age), Key::Num(364)],
                    )
                    .unwrap();
                let mut last = 0i64;
                let mut observations = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let now: i64 = engine.query(&region).unwrap();
                    assert!(now >= last, "range sum regressed under concurrency");
                    last = now;
                    observations += 1;
                }
                (lo_age, hi_age, last, observations)
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(600));
    stop.store(true, Ordering::Relaxed);

    let (applied, volume) = feed.join().unwrap();
    println!("feed: applied {applied} sales totalling {volume}");
    for a in analysts {
        let (lo, hi, last, obs) = a.join().unwrap();
        println!("analyst ages {lo}–{hi}: {obs} live queries, final 90-day window sum {last}");
    }

    // Global consistency: the cube total equals everything the feed sent.
    let total: i64 = engine.total();
    assert_eq!(total, volume);
    println!(
        "\nconsistency: cube total {total} == fed volume {volume} ✓  \
         ({} queries, {} updates served)",
        engine.query_count(),
        engine.update_count()
    );
}
