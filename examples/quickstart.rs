//! Quickstart: build a data cube, run O(1) range-sum queries, apply
//! cheap point updates.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rps::ndcube::{NdCube, Region};
use rps::{RangeSumEngine, RpsEngine};

fn main() {
    // A SALES data cube over CUSTOMER_AGE (0..100) × DAY (0..365),
    // as in the paper's motivating example.
    let sales = NdCube::from_fn(&[100, 365], |c| ((c[0] * 13 + c[1] * 7) % 97) as i64).unwrap();

    // The relative prefix sum engine with the paper-recommended k = ⌈√n⌉.
    let mut engine = RpsEngine::from_cube(&sales);
    println!(
        "engine: {} over {:?} cells, box size {:?}, storage {} cells",
        engine.name(),
        engine.shape().dims(),
        engine.grid().box_size(),
        engine.storage_cells()
    );

    // "Find the total sales for customers with an age from 37 to 52,
    //  over the past three months."
    let query = Region::new(&[37, 275], &[52, 364]).unwrap();
    let total = engine.query(&query).unwrap();
    println!("total sales, ages 37–52, days 275–364: {total}");

    // Cost accounting: the query touched a constant number of cells.
    let s = engine.stats();
    println!(
        "query cost: {} cell reads (vs {} cells scanned by a naive sum)",
        s.cell_reads,
        query.cell_count()
    );

    // A new sale arrives — update in place, no cube rebuild.
    engine.reset_stats();
    engine.update(&[41, 364], 250).unwrap();
    println!(
        "update cost: {} cell writes (vs {} the prefix-sum method would rewrite)",
        engine.stats().cell_writes,
        100 * 365 // worst case for an update near the origin
    );

    let after = engine.query(&query).unwrap();
    assert_eq!(after, total + 250);
    println!("re-run query: {after} (reflects the new sale immediately)");
}
