//! A guided tour of the paper's running example: every array and every
//! worked number from Figures 1–15, computed live and checked against the
//! values printed in the paper.
//!
//! ```text
//! cargo run --example paper_walkthrough
//! ```

use rps::core::testdata;
use rps::ndcube::Region;
use rps::{PrefixSumEngine, RangeSumEngine, RpsEngine};

fn main() {
    let a = testdata::paper_array_a();

    println!("Figure 1 — data cube A (9×9):\n{a}");

    // --- Prefix sum method (Figures 2–4) ---
    let mut ps = PrefixSumEngine::from_cube(&a);
    assert_eq!(ps.p_array(), &testdata::paper_array_p());
    println!("Figure 2 — prefix array P:\n{}", ps.p_array());
    println!(
        "P[4,0] = {} (paper: 19), P[2,1] = {} (paper: 24), P[8,8] = {} (paper: 290)\n",
        ps.prefix_sum(&[4, 0]).unwrap(),
        ps.prefix_sum(&[2, 1]).unwrap(),
        ps.prefix_sum(&[8, 8]).unwrap()
    );

    ps.reset_stats();
    ps.update(&[1, 1], 1).unwrap();
    println!(
        "Figure 4 — updating A[1,1] in the prefix-sum method rewrites {} cells\n",
        ps.stats().cell_writes
    );

    // --- Relative prefix sum method (Figures 5–15) ---
    let mut rps = RpsEngine::from_cube_uniform(&a, testdata::PAPER_BOX_SIZE).unwrap();
    println!(
        "Figure 10 — relative prefix array RP (3×3 overlay boxes):\n{}",
        rps.rp_array()
    );
    assert_eq!(rps.rp_array(), &testdata::paper_array_rp());

    println!("Figure 13 — overlay values (anchor + borders per box):");
    for chunk in testdata::paper_overlay_cells().chunks(5) {
        let line: Vec<String> = chunk
            .iter()
            .map(|&(r, c, v)| {
                let got = *rps.overlay().value_at(&[r, c]).unwrap();
                assert_eq!(got, v, "overlay ({r},{c})");
                format!("O[{r},{c}]={got}")
            })
            .collect();
        println!("  {}", line.join("  "));
    }

    // §3.3's complete region sum.
    let sum = rps.prefix_sum(&[7, 5]).unwrap();
    println!(
        "\n§3.3 — region sum A[0,0]:A[7,5] = anchor 86 + border 51 + border 8 + RP 23 = {sum}"
    );
    assert_eq!(sum, 168);

    // §4.2 / Figure 15: the update example.
    rps.reset_stats();
    rps.update(&[1, 1], 1).unwrap();
    let writes = rps.stats().cell_writes;
    println!(
        "\nFigure 15 — updating A[1,1] in the RPS method touches {writes} cells \
         (paper: 12 overlay + 4 RP = 16), vs 64 for the prefix-sum method"
    );
    assert_eq!(writes, 16);

    // Queries still agree with a fresh brute-force scan after the update.
    let region = Region::new(&[0, 0], &[8, 8]).unwrap();
    println!(
        "\ntotal after update: {} (was 290 before the +1)",
        rps.query(&region).unwrap()
    );
    assert_eq!(rps.query(&region).unwrap(), 291);
    println!("\nevery figure value matched the paper ✓");
}
