//! Engine conformance over non-`i64` value types: the group-generic
//! engines must behave identically for `SumCount` pairs (exact) and stay
//! within floating-point tolerance for `f64` (where summation order
//! differs between methods).

use ndcube::{NdCube, Region};
use rps_core::{FenwickEngine, NaiveEngine, PrefixSumEngine, RangeSumEngine, RpsEngine, SumCount};

fn regions() -> Vec<Region> {
    vec![
        Region::new(&[0, 0], &[11, 11]).unwrap(),
        Region::new(&[3, 2], &[9, 10]).unwrap(),
        Region::point(&[5, 5]).unwrap(),
        Region::new(&[0, 7], &[11, 7]).unwrap(),
    ]
}

#[test]
fn sumcount_engines_agree_exactly() {
    let cube = NdCube::from_fn(&[12, 12], |c| {
        SumCount::new((c[0] * 13 + c[1] * 7) as i64, (c[0] + 1) as i64)
    })
    .unwrap();
    let naive = NaiveEngine::from_cube(cube.clone());
    let mut rps = RpsEngine::from_cube_uniform(&cube, 4).unwrap();
    let ps = PrefixSumEngine::from_cube(&cube);
    let fw = FenwickEngine::from_cube(&cube);

    for r in regions() {
        let want = naive.query(&r).unwrap();
        assert_eq!(rps.query(&r).unwrap(), want, "rps {r:?}");
        assert_eq!(ps.query(&r).unwrap(), want, "prefix {r:?}");
        assert_eq!(fw.query(&r).unwrap(), want, "fenwick {r:?}");
    }

    // Updates carry both components.
    rps.update(&[6, 6], SumCount::new(100, 3)).unwrap();
    let total = rps.total();
    let naive_total = naive.total();
    assert_eq!(total.sum, naive_total.sum + 100);
    assert_eq!(total.count, naive_total.count + 3);
}

#[test]
fn f64_engines_agree_within_tolerance() {
    // Different methods sum in different orders; exact equality is not
    // guaranteed for floats, but relative error must stay tiny for
    // well-conditioned data.
    let cube = NdCube::from_fn(&[12, 12], |c| {
        0.1 + (c[0] as f64) * 0.37 + (c[1] as f64) * 0.59
    })
    .unwrap();
    let naive = NaiveEngine::from_cube(cube.clone());
    let rps = RpsEngine::from_cube_uniform(&cube, 4).unwrap();
    let ps = PrefixSumEngine::from_cube(&cube);

    for r in regions() {
        let want = naive.query(&r).unwrap();
        for (name, got) in [
            ("rps", rps.query(&r).unwrap()),
            ("prefix", ps.query(&r).unwrap()),
        ] {
            let rel = ((got - want) / want.max(1e-12)).abs();
            assert!(rel < 1e-9, "{name} {r:?}: {got} vs {want} (rel {rel})");
        }
    }
}

#[test]
fn f64_update_round_trip_tolerance() {
    let cube = NdCube::from_fn(&[10, 10], |c| (c[0] + c[1]) as f64 * 0.25).unwrap();
    let mut rps = RpsEngine::from_cube_uniform(&cube, 3).unwrap();
    let full = Region::new(&[0, 0], &[9, 9]).unwrap();
    let before = rps.query(&full).unwrap();
    rps.update(&[4, 4], 2.5).unwrap();
    rps.update(&[4, 4], -2.5).unwrap();
    let after = rps.query(&full).unwrap();
    assert!((after - before).abs() < 1e-9, "{before} vs {after}");
}

#[test]
fn paired_measures_track_independently() {
    // (SALES, UNITS) in one engine via the tuple group.
    let mut e = RpsEngine::<(i64, i64)>::zeros(&[8, 8]).unwrap();
    e.update(&[1, 1], (250, 1)).unwrap();
    e.update(&[1, 2], (100, 2)).unwrap();
    let r = Region::new(&[0, 0], &[3, 3]).unwrap();
    assert_eq!(e.query(&r).unwrap(), (350, 3));
}
