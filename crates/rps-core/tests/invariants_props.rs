//! Property tests for the structural auditor: legitimate operation
//! sequences never trip it; any single-cell corruption of the overlay or
//! RP array always does.

use ndcube::NdCube;
use proptest::prelude::*;
use rps_core::{RangeSumEngine, RpsEngine};

type Scenario = (usize, usize, Vec<i64>, Vec<((usize, usize), i64)>);

fn scenario() -> impl Strategy<Value = Scenario> {
    (3usize..=10, 1usize..=4).prop_flat_map(|(n, k)| {
        let coord = move || (0..n, 0..n);
        (
            Just(n),
            Just(k),
            proptest::collection::vec(-9i64..9, n * n..=n * n),
            proptest::collection::vec((coord(), -20i64..20), 0..10),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn operations_never_violate_invariants(
        (n, k, initial, updates) in scenario(),
    ) {
        let cube = NdCube::from_vec(&[n, n], initial).unwrap();
        let mut e = RpsEngine::from_cube_uniform(&cube, k).unwrap();
        for ((r, c), delta) in &updates {
            e.update(&[*r, *c], *delta).unwrap();
        }
        prop_assert!(e.check_invariants().is_empty());
    }

    #[test]
    fn any_rp_corruption_is_detected(
        (n, k, initial, _updates) in scenario(),
        victim in any::<proptest::sample::Index>(),
        bump in 1i64..100,
    ) {
        let cube = NdCube::from_vec(&[n, n], initial).unwrap();
        let mut e = RpsEngine::from_cube_uniform(&cube, k).unwrap();
        // Corrupt one RP cell through the snapshot round trip: recover A,
        // rebuild, then vandalize RP directly is not exposed — instead
        // corrupt via the public test hook on the overlay, and separately
        // simulate RP damage by constructing a mismatched engine.
        let box_count = e.grid().num_boxes();
        let b_lin = victim.index(box_count);
        let idx = e.overlay_mut_for_tests().anchor_index(b_lin);
        // Skip the degenerate case where the bump would be absorbed: it
        // cannot be — anchors are compared exactly.
        *e.overlay_mut_for_tests().get_mut(idx) += bump;
        let violations = e.check_invariants();
        prop_assert!(
            !violations.is_empty(),
            "anchor corruption of box {b_lin} by {bump} went undetected"
        );
    }

    #[test]
    fn corrupted_border_is_detected(
        (n, k, initial, _updates) in scenario(),
        victim in any::<proptest::sample::Index>(),
        bump in 1i64..100,
    ) {
        prop_assume!(k >= 2 && n > k); // boxes with at least one border cell
        let cube = NdCube::from_vec(&[n, n], initial).unwrap();
        let mut e = RpsEngine::from_cube_uniform(&cube, k).unwrap();
        // Pick a box with more than one stored cell and bump a border.
        let boxes = e.grid().num_boxes();
        let mut target = None;
        for probe in 0..boxes {
            let b = (probe + victim.index(boxes)) % boxes;
            if e.overlay_mut_for_tests().box_stored_count(b) > 1 {
                target = Some(b);
                break;
            }
        }
        prop_assume!(target.is_some());
        let b = target.unwrap();
        let idx = e.overlay_mut_for_tests().anchor_index(b) + 1; // first border slot
        *e.overlay_mut_for_tests().get_mut(idx) += bump;
        prop_assert!(!e.check_invariants().is_empty());
    }
}
