//! Property tests for the commutative-group laws of every `GroupValue`
//! instance the engines rely on (§2: "any binary operator + for which
//! there exists an inverse binary operator −").

use proptest::prelude::*;
use rps_core::value::{GroupValue, SumCount};

fn laws<T: GroupValue>(a: &T, b: &T, c: &T) {
    // identity
    assert_eq!(a.add(&T::zero()), *a);
    assert_eq!(T::zero().add(a), *a);
    // commutativity
    assert_eq!(a.add(b), b.add(a));
    // associativity
    assert_eq!(a.add(b).add(c), a.add(&b.add(c)));
    // inverse: a + b − b = a
    assert_eq!(a.add(b).sub(b), *a);
    assert_eq!(a.add(&a.neg()), T::zero());
    // assign forms agree
    let mut x = a.clone();
    x.add_assign(b);
    assert_eq!(x, a.add(b));
    x.sub_assign(b);
    assert_eq!(x, *a);
}

proptest! {
    #[test]
    fn i64_laws(a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
        laws(&a, &b, &c);
    }

    #[test]
    fn i32_laws(a in any::<i32>(), b in any::<i32>(), c in any::<i32>()) {
        laws(&a, &b, &c);
    }

    #[test]
    fn u64_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        laws(&a, &b, &c);
    }

    #[test]
    fn i128_laws(a in any::<i128>(), b in any::<i128>(), c in any::<i128>()) {
        laws(&a, &b, &c);
    }

    #[test]
    fn sum_count_laws(
        (s1, c1) in (any::<i64>(), any::<i64>()),
        (s2, c2) in (any::<i64>(), any::<i64>()),
        (s3, c3) in (any::<i64>(), any::<i64>()),
    ) {
        laws(&SumCount::new(s1, c1), &SumCount::new(s2, c2), &SumCount::new(s3, c3));
    }

    #[test]
    fn pair_laws(
        a in (any::<i64>(), any::<i32>()),
        b in (any::<i64>(), any::<i32>()),
        c in (any::<i64>(), any::<i32>()),
    ) {
        laws(&a, &b, &c);
    }

    /// Floats form a group only approximately; we check the exact laws on
    /// the dyadic rationals where IEEE addition is exact.
    #[test]
    fn f64_laws_on_exact_values(a in -1_000_000i32..1_000_000, b in -1_000_000i32..1_000_000) {
        let (x, y) = (a as f64 * 0.5, b as f64 * 0.25);
        assert_eq!(x.add(&f64::zero()), x);
        assert_eq!(x.add(&y), y.add(&x));
        assert_eq!(x.add(&y).sub(&y), x);
    }
}
