//! Loom interleaving tests for the concurrent paths.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (see `scripts/loom.sh`),
//! where `rps_core::sync_compat` swaps `std::sync` for loom's
//! instrumented primitives. Each test body runs under `loom::model`,
//! which explores thread interleavings (exhaustively with upstream
//! loom; via the stress scheduler with the in-tree compat shim) and
//! fails on any schedule that violates an assertion.
//!
//! Models are deliberately tiny — a handful of operations on 2–3
//! threads — because loom's state space is exponential in the number
//! of synchronization events.

#![cfg(loom)]

use ndcube::Region;
use rps_core::{BufferedEngine, NaiveEngine, RpsEngine, SharedEngine};

/// A query racing one update must observe either none or all of it:
/// the RP cascade + overlay walk happens entirely under the write
/// lock, so a partially-applied update (some RP cells bumped, overlay
/// not yet) must never be visible.
#[test]
fn query_sees_update_atomically() {
    loom::model(|| {
        let shared = SharedEngine::new(RpsEngine::<i64>::zeros(&[4, 4]).unwrap());
        let full = Region::new(&[0, 0], &[3, 3]).unwrap();

        let writer = {
            let shared = shared.clone();
            loom::thread::spawn(move || {
                // One update touches many RP/overlay cells — plenty of
                // intermediate states for a racing reader to catch.
                shared.update(&[1, 1], 7).unwrap();
            })
        };
        let total: i64 = shared.query(&full).unwrap();
        assert!(
            total == 0 || total == 7,
            "query observed a half-applied update: {total}"
        );
        writer.join().unwrap();
        assert_eq!(shared.total(), 7);
    });
}

/// Two writers racing on different cells: both deltas must land, and
/// the op counters must agree with what the threads did.
#[test]
fn concurrent_updates_all_land() {
    loom::model(|| {
        let shared = SharedEngine::new(RpsEngine::<i64>::zeros(&[4, 4]).unwrap());
        let handles: Vec<_> = [(0usize, 0usize, 3i64), (3, 3, 4)]
            .into_iter()
            .map(|(r, c, d)| {
                let shared = shared.clone();
                loom::thread::spawn(move || shared.update(&[r, c], d).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.total(), 7);
        assert_eq!(shared.update_count(), 2);
    });
}

/// Two writers racing on the SAME cell: deltas commute, so the final
/// cell value must be the sum regardless of lock acquisition order.
#[test]
fn same_cell_updates_commute() {
    loom::model(|| {
        let shared = SharedEngine::new(RpsEngine::<i64>::zeros(&[4, 4]).unwrap());
        let a = {
            let shared = shared.clone();
            loom::thread::spawn(move || shared.update(&[2, 2], 5).unwrap())
        };
        let b = {
            let shared = shared.clone();
            loom::thread::spawn(move || shared.update(&[2, 2], -2).unwrap())
        };
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(shared.cell(&[2, 2]).unwrap(), 3);
    });
}

/// A reader racing a buffered engine's threshold flush: the merge
/// drains the delta buffer into the main structure inside one write
/// lock hold, so a query must never see a delta counted zero or two
/// times (dropped mid-drain or double-counted by `main ⊕ delta`).
#[test]
fn buffered_flush_is_atomic_to_readers() {
    loom::model(|| {
        // Threshold 2 ⇒ the second update triggers a merge.
        let shared = SharedEngine::new(BufferedEngine::new(
            NaiveEngine::<i64>::zeros(&[4, 4]).unwrap(),
            2,
        ));
        let full = Region::new(&[0, 0], &[3, 3]).unwrap();

        let writer = {
            let shared = shared.clone();
            loom::thread::spawn(move || {
                shared.update(&[0, 0], 1).unwrap();
                shared.update(&[1, 1], 1).unwrap(); // flush happens here
            })
        };
        let t: i64 = shared.query(&full).unwrap();
        assert!(
            (0..=2).contains(&t),
            "reader saw a torn buffer flush: total = {t}"
        );
        writer.join().unwrap();
        // After the flush everything lives in the main engine.
        assert_eq!(shared.total(), 2);
        assert_eq!(shared.read(|b| b.pending()), 0);
        assert_eq!(shared.read(|b| b.merges()), 1);
    });
}

/// Query/update counters are updated outside the engine lock with
/// relaxed atomics — interleavings may reorder the bumps relative to
/// each other, but every completed operation must be counted exactly
/// once by the time all threads join.
#[test]
fn op_counters_exact_after_join() {
    loom::model(|| {
        let shared = SharedEngine::new(RpsEngine::<i64>::zeros(&[4, 4]).unwrap());
        let full = Region::new(&[0, 0], &[3, 3]).unwrap();
        let w = {
            let shared = shared.clone();
            loom::thread::spawn(move || {
                shared.update(&[1, 2], 1).unwrap();
            })
        };
        let r = {
            let shared = shared.clone();
            let full = full.clone();
            loom::thread::spawn(move || {
                let _: i64 = shared.query(&full).unwrap();
            })
        };
        w.join().unwrap();
        r.join().unwrap();
        assert_eq!(shared.update_count(), 1);
        assert_eq!(shared.query_count(), 1);
    });
}

/// A whole parallel batch runs under ONE shared-lock hold
/// ([`SharedEngine::query_many_parallel`]), so a racing update must be
/// invisible to the entire batch or visible to the entire batch — the
/// shards may interleave freely with each other, but never with the
/// writer. Any mixed answer vector means a shard re-read the engine
/// after the lock was released.
#[test]
fn parallel_batch_queries_see_one_snapshot() {
    loom::model(|| {
        let shared = SharedEngine::new(RpsEngine::<i64>::zeros(&[4, 4]).unwrap());
        let full = Region::new(&[0, 0], &[3, 3]).unwrap();
        // 8 identical full-cube regions across 2 shards: enough to beat
        // the serial fall-back (len >= 2 * threads) while keeping the
        // schedule space small.
        let regions: Vec<Region> = (0..8).map(|_| full.clone()).collect();

        let writer = {
            let shared = shared.clone();
            loom::thread::spawn(move || {
                shared.update(&[1, 1], 7).unwrap();
            })
        };
        let answers = shared.query_many_parallel::<i64>(&regions, 2).unwrap();
        let first = answers[0];
        assert!(
            first == 0 || first == 7,
            "batch observed a half-applied update: {first}"
        );
        assert!(
            answers.iter().all(|&a| a == first),
            "shards disagree within one lock hold: {answers:?}"
        );
        writer.join().unwrap();
        assert_eq!(shared.total(), 7);
    });
}

/// Shard-local stats/obs counters merge into the shared atomics once,
/// on join — not per shard, not per query. Two concurrent batches of
/// 12 regions each must bump the handle's query counter by exactly 24
/// regardless of how the four worker shards interleave.
#[test]
fn parallel_query_stats_merge_once_on_join() {
    loom::model(|| {
        let shared = SharedEngine::new(RpsEngine::<i64>::zeros(&[4, 4]).unwrap());
        let regions: Vec<Region> = (0..12)
            .map(|i| Region::new(&[i % 3, i % 4], &[3, 3]).unwrap())
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let shared = shared.clone();
                let regions = regions.clone();
                loom::thread::spawn(move || {
                    let answers = shared.query_many_parallel::<i64>(&regions, 2).unwrap();
                    assert!(answers.iter().all(|&a| a == 0));
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(
            shared.query_count(),
            24,
            "each region counted exactly once on join"
        );
    });
}
