//! Property tests for the versioned-snapshot engine (S3): snapshot
//! monotonicity and batch atomicity.
//!
//! The versioned engine's contract is that every snapshot is
//! bit-identical to a serial [`RpsEngine`] that applied some *prefix* of
//! the update sequence — never a reordering, never a partial batch.
//! These properties drive random cubes (d = 1..=3), random box sizes,
//! and random interleavings of writer publishes with reader-pinned
//! queries, and check every snapshot against serial replays of all
//! possible prefixes.

use ndcube::{NdCube, Region};
use proptest::prelude::*;
use rps_core::{RangeSumEngine, RpsEngine, VersionedEngine};

type Coords = Vec<usize>;

#[derive(Debug, Clone)]
struct Scenario {
    dims: Vec<usize>,
    k: Vec<usize>,
    initial: Vec<i64>,
    /// Update batches; each is published atomically via `apply_batch`.
    batches: Vec<Vec<(Coords, i64)>>,
    /// Probe region, clamped in-bounds.
    probe: (Coords, Coords),
}

fn scenario(d: usize) -> impl Strategy<Value = Scenario> {
    proptest::collection::vec(2usize..=7, d..=d)
        .prop_flat_map(move |dims| {
            let n: usize = dims.iter().product();
            let coord = dims.iter().map(|&n_i| 0..n_i).collect::<Vec<_>>();
            let k = dims.iter().map(|&n_i| 1..=n_i).collect::<Vec<_>>();
            (
                Just(dims.clone()),
                k,
                proptest::collection::vec(-9i64..9, n..=n),
                proptest::collection::vec(
                    proptest::collection::vec((coord.clone(), -20i64..20), 1..4),
                    0..5,
                ),
                (coord.clone(), coord),
            )
        })
        .prop_map(|(dims, k, initial, batches, probe)| Scenario {
            dims,
            k,
            initial,
            batches,
            probe,
        })
}

impl Scenario {
    fn probe_region(&self) -> Region {
        let lo: Vec<usize> = self
            .probe
            .0
            .iter()
            .zip(&self.probe.1)
            .map(|(&a, &b)| a.min(b))
            .collect();
        let hi: Vec<usize> = self
            .probe
            .0
            .iter()
            .zip(&self.probe.1)
            .map(|(&a, &b)| a.max(b))
            .collect();
        Region::new(&lo, &hi).unwrap()
    }

    fn cube(&self) -> NdCube<i64> {
        NdCube::from_vec(&self.dims, self.initial.clone()).unwrap()
    }

    /// The probe answer of a serial engine that applied the first
    /// `prefix` whole batches.
    fn serial_answer_after(&self, prefix: usize, region: &Region) -> i64 {
        let mut serial = RpsEngine::from_cube_with_box_size(&self.cube(), &self.k).unwrap();
        for batch in &self.batches[..prefix] {
            for (c, delta) in batch {
                serial.update(c, *delta).unwrap();
            }
        }
        serial.query(region).unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Snapshot monotonicity: with a reader pinning between every
    // publish, each pinned snapshot answers exactly as a serial engine
    // that applied some prefix of the batch sequence — and the prefix
    // lengths observed by successive pins never decrease. One instance
    // per dimension count so shrinking stays within one shape family.

    /// d = 1.
    #[test]
    fn monotone_prefixes_d1(s in scenario(1)) {
        check_monotone_prefixes(&s);
    }

    /// d = 2.
    #[test]
    fn monotone_prefixes_d2(s in scenario(2)) {
        check_monotone_prefixes(&s);
    }

    /// d = 3.
    #[test]
    fn monotone_prefixes_d3(s in scenario(3)) {
        check_monotone_prefixes(&s);
    }

    /// Negative test (batch atomicity): a reader pinned *before* a
    /// multi-update batch publishes never sees any proper subset of it
    /// — the pinned answer matches a whole-batch prefix exactly.
    #[test]
    fn pinned_reader_never_sees_partial_batches(s in scenario(2)) {
        prop_assume!(!s.batches.is_empty());
        let region = s.probe_region();
        let v = VersionedEngine::new(
            RpsEngine::from_cube_with_box_size(&s.cube(), &s.k).unwrap(),
        );
        let mut reader = v.reader();

        // Pin before anything publishes, hold across every publish.
        let pinned = reader.pin();
        let before = pinned.query(&region).unwrap();
        for batch in &s.batches {
            v.apply_batch(batch).unwrap();
        }
        // The held pin still answers from prefix 0 — not from any
        // partially-applied state of the batches published meanwhile.
        prop_assert_eq!(pinned.query(&region).unwrap(), before);
        prop_assert_eq!(before, s.serial_answer_after(0, &region));
        drop(pinned);

        // Every fresh pin lands exactly on a whole-batch boundary: its
        // update_count equals the length of some batch prefix, and its
        // answer matches the serial replay of exactly that prefix.
        let pinned = reader.pin();
        let total_updates: usize = s.batches.iter().map(Vec::len).sum();
        prop_assert_eq!(pinned.update_count(), total_updates as u64);
        prop_assert_eq!(
            pinned.query(&region).unwrap(),
            s.serial_answer_after(s.batches.len(), &region)
        );
    }
}

/// Shared body: publish batches one at a time, pinning between each
/// publish; every pinned answer must equal the serial replay of the
/// exact whole-batch prefix the snapshot's metadata claims, and the
/// claimed prefixes must be monotone.
fn check_monotone_prefixes(s: &Scenario) {
    let region = s.probe_region();
    let v = VersionedEngine::new(RpsEngine::from_cube_with_box_size(&s.cube(), &s.k).unwrap());
    let mut reader = v.reader();

    // Cumulative batch sizes → map a snapshot's update_count back to
    // the batch prefix it claims to be.
    let mut boundaries = vec![0usize];
    for b in &s.batches {
        boundaries.push(boundaries.last().unwrap() + b.len());
    }

    let mut last_count = 0u64;
    for (i, batch) in s.batches.iter().enumerate() {
        {
            let pinned = reader.pin();
            let count = pinned.update_count();
            // Monotone: a later pin never observes an older prefix.
            assert!(count >= last_count, "prefix went backwards");
            last_count = count;
            // The claimed prefix is a whole-batch boundary…
            let prefix = boundaries
                .iter()
                .position(|&b| b as u64 == count)
                .expect("snapshot landed inside a batch");
            // …and the answer matches the serial replay of exactly it.
            assert_eq!(
                pinned.query(&region).unwrap(),
                s.serial_answer_after(prefix, &region),
                "snapshot diverged from serial prefix {prefix}"
            );
        }
        v.apply_batch(batch).unwrap();
        let _ = i;
    }
    // Final state: full sequence.
    assert_eq!(
        v.query(&region).unwrap(),
        s.serial_answer_after(s.batches.len(), &region)
    );
}
