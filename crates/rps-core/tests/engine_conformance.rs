//! Cross-engine conformance: every engine must agree with the naive scan
//! on arbitrary shapes, box sizes, update sequences and query regions.
//!
//! This is the main correctness net for the RPS reconstruction — in
//! particular the d ≥ 3 alternating-border query and the orthant-walk
//! update, neither of which is spelled out in the paper body.

use ndcube::{NdCube, Region};
use proptest::prelude::*;
use rps_core::{FenwickEngine, NaiveEngine, PrefixSumEngine, RangeSumEngine, RpsEngine};

/// A random cube of 1..=4 dimensions with small per-dimension sizes,
/// a compatible box size per dimension, a batch of point updates and a
/// batch of query regions.
#[derive(Debug, Clone)]
struct Scenario {
    dims: Vec<usize>,
    box_size: Vec<usize>,
    initial: Vec<i64>,
    updates: Vec<(Vec<usize>, i64)>,
    queries: Vec<(Vec<usize>, Vec<usize>)>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (1usize..=4)
        .prop_flat_map(|d| {
            (
                proptest::collection::vec(1usize..=7, d..=d),
                proptest::collection::vec(1usize..=5, d..=d),
            )
        })
        .prop_flat_map(|(dims, box_size)| {
            let n: usize = dims.iter().product();
            let coord = {
                let dims = dims.clone();
                move || {
                    let dims: Vec<usize> = dims.clone();
                    proptest::collection::vec(0usize..usize::MAX, dims.len()).prop_map(move |raw| {
                        raw.iter()
                            .zip(&dims)
                            .map(|(&r, &s)| r % s)
                            .collect::<Vec<_>>()
                    })
                }
            };
            let corners = {
                (coord(), coord()).prop_map(move |(a, b)| {
                    let lo: Vec<usize> = a.iter().zip(&b).map(|(&x, &y)| x.min(y)).collect();
                    let hi: Vec<usize> = a.iter().zip(&b).map(|(&x, &y)| x.max(y)).collect();
                    (lo, hi)
                })
            };
            (
                Just(dims),
                Just(box_size),
                proptest::collection::vec(-50i64..50, n..=n),
                proptest::collection::vec((coord(), -100i64..100), 0..12),
                proptest::collection::vec(corners, 1..8),
            )
        })
        .prop_map(|(dims, box_size, initial, updates, queries)| Scenario {
            dims,
            box_size,
            initial,
            updates,
            queries,
        })
}

fn run_against_naive<E: RangeSumEngine<i64>>(mut engine: E, sc: &Scenario) {
    let cube = NdCube::from_vec(&sc.dims, sc.initial.clone()).unwrap();
    let mut naive = NaiveEngine::from_cube(cube);
    for (c, delta) in &sc.updates {
        engine.update(c, *delta).unwrap();
        naive.update(c, *delta).unwrap();
    }
    for (lo, hi) in &sc.queries {
        let r = Region::new(lo, hi).unwrap();
        assert_eq!(
            engine.query(&r).unwrap(),
            naive.query(&r).unwrap(),
            "{} disagrees with naive on {r:?} (scenario {sc:?})",
            engine.name()
        );
    }
    assert_eq!(engine.total(), naive.total());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn rps_matches_naive(sc in scenario()) {
        let cube = NdCube::from_vec(&sc.dims, sc.initial.clone()).unwrap();
        let engine = RpsEngine::from_cube_with_box_size(&cube, &sc.box_size).unwrap();
        run_against_naive(engine, &sc);
    }

    #[test]
    fn rps_sqrt_boxes_match_naive(sc in scenario()) {
        let cube = NdCube::from_vec(&sc.dims, sc.initial.clone()).unwrap();
        let engine = RpsEngine::from_cube(&cube);
        run_against_naive(engine, &sc);
    }

    #[test]
    fn prefix_sum_matches_naive(sc in scenario()) {
        let cube = NdCube::from_vec(&sc.dims, sc.initial.clone()).unwrap();
        let engine = PrefixSumEngine::from_cube(&cube);
        run_against_naive(engine, &sc);
    }

    #[test]
    fn fenwick_matches_naive(sc in scenario()) {
        let cube = NdCube::from_vec(&sc.dims, sc.initial.clone()).unwrap();
        let engine = FenwickEngine::from_cube(&cube);
        run_against_naive(engine, &sc);
    }

    #[test]
    fn rps_incremental_equals_rebuilt(sc in scenario()) {
        // Applying updates incrementally must produce the *same internal
        // state* as rebuilding from the updated cube.
        let mut cube = NdCube::from_vec(&sc.dims, sc.initial.clone()).unwrap();
        let mut engine = RpsEngine::from_cube_with_box_size(&cube, &sc.box_size).unwrap();
        for (c, delta) in &sc.updates {
            engine.update(c, *delta).unwrap();
            let old = cube.get(c);
            cube.set(c, old + *delta);
        }
        let rebuilt = RpsEngine::from_cube_with_box_size(&cube, &sc.box_size).unwrap();
        prop_assert_eq!(engine.rp_array(), rebuilt.rp_array());
        // Overlay equality via every prefix sum (covers anchors + borders).
        for (lo, _hi) in &sc.queries {
            prop_assert_eq!(
                engine.prefix_sum(lo).unwrap(),
                rebuilt.prefix_sum(lo).unwrap()
            );
        }
    }

    #[test]
    fn set_then_cell_round_trips(sc in scenario()) {
        let cube = NdCube::from_vec(&sc.dims, sc.initial.clone()).unwrap();
        let mut engine = RpsEngine::from_cube_with_box_size(&cube, &sc.box_size).unwrap();
        for (i, (c, v)) in sc.updates.iter().enumerate() {
            let value = *v + i as i64;
            engine.set(c, value).unwrap();
            prop_assert_eq!(engine.cell(c).unwrap(), value);
        }
    }

    #[test]
    fn materialize_recovers_cube(sc in scenario()) {
        let cube = NdCube::from_vec(&sc.dims, sc.initial.clone()).unwrap();
        let engine = RpsEngine::from_cube_with_box_size(&cube, &sc.box_size).unwrap();
        prop_assert_eq!(engine.materialize(), cube);
    }
}

#[test]
fn four_dimensional_smoke() {
    // A deterministic 4-d case exercising the alternating query signs
    // (d − 1 − |S| spans both parities).
    let a = NdCube::from_fn(&[4, 4, 4, 4], |c| {
        (c[0] * 27 + c[1] * 9 + c[2] * 3 + c[3] + 1) as i64
    })
    .unwrap();
    let mut rps = RpsEngine::from_cube_uniform(&a, 2).unwrap();
    let naive = NaiveEngine::from_cube(a);
    let regions = [
        Region::new(&[1, 1, 1, 1], &[2, 3, 2, 3]).unwrap(),
        Region::new(&[0, 0, 0, 0], &[3, 3, 3, 3]).unwrap(),
        Region::new(&[1, 0, 2, 1], &[1, 0, 2, 1]).unwrap(),
        Region::new(&[0, 2, 1, 3], &[3, 3, 1, 3]).unwrap(),
    ];
    for r in &regions {
        assert_eq!(rps.query(r).unwrap(), naive.query(r).unwrap(), "{r:?}");
    }
    rps.update(&[1, 2, 3, 0], 1000).unwrap();
    let r = Region::new(&[0, 0, 0, 0], &[3, 3, 3, 3]).unwrap();
    assert_eq!(rps.query(&r).unwrap(), naive.query(&r).unwrap() + 1000);
}

#[test]
fn large_2d_engines_agree() {
    let a = NdCube::from_fn(&[64, 64], |c| ((c[0] * 131 + c[1] * 7) % 23) as i64).unwrap();
    let rps = RpsEngine::from_cube(&a);
    let ps = PrefixSumEngine::from_cube(&a);
    let fw = FenwickEngine::from_cube(&a);
    let naive = NaiveEngine::from_cube(a);
    for (lo, hi) in [
        ([0, 0], [63, 63]),
        ([17, 3], [61, 58]),
        ([32, 32], [32, 32]),
    ] {
        let r = Region::new(&lo, &hi).unwrap();
        let want = naive.query(&r).unwrap();
        assert_eq!(rps.query(&r).unwrap(), want);
        assert_eq!(ps.query(&r).unwrap(), want);
        assert_eq!(fw.query(&r).unwrap(), want);
    }
}
