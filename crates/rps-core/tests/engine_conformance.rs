//! Cross-engine conformance: every engine must agree with the naive scan
//! on arbitrary shapes, box sizes, update sequences and query regions.
//!
//! This is the main correctness net for the RPS reconstruction — in
//! particular the d ≥ 3 alternating-border query and the orthant-walk
//! update, neither of which is spelled out in the paper body.

use ndcube::{NdCube, Region, Shape};
use proptest::prelude::*;
use rps_core::{
    BlockedFenwickEngine, FenwickEngine, NaiveEngine, PrefixSumEngine, RangeSumEngine, RpsEngine,
};

/// A random cube of 1..=4 dimensions with small per-dimension sizes,
/// a compatible box size per dimension, a batch of point updates and a
/// batch of query regions.
#[derive(Debug, Clone)]
struct Scenario {
    dims: Vec<usize>,
    box_size: Vec<usize>,
    initial: Vec<i64>,
    updates: Vec<(Vec<usize>, i64)>,
    queries: Vec<(Vec<usize>, Vec<usize>)>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (1usize..=4)
        .prop_flat_map(|d| {
            (
                proptest::collection::vec(1usize..=7, d..=d),
                proptest::collection::vec(1usize..=5, d..=d),
            )
        })
        .prop_flat_map(|(dims, box_size)| {
            let n: usize = dims.iter().product();
            let coord = {
                let dims = dims.clone();
                move || {
                    let dims: Vec<usize> = dims.clone();
                    proptest::collection::vec(0usize..usize::MAX, dims.len()).prop_map(move |raw| {
                        raw.iter()
                            .zip(&dims)
                            .map(|(&r, &s)| r % s)
                            .collect::<Vec<_>>()
                    })
                }
            };
            let corners = {
                (coord(), coord()).prop_map(move |(a, b)| {
                    let lo: Vec<usize> = a.iter().zip(&b).map(|(&x, &y)| x.min(y)).collect();
                    let hi: Vec<usize> = a.iter().zip(&b).map(|(&x, &y)| x.max(y)).collect();
                    (lo, hi)
                })
            };
            (
                Just(dims),
                Just(box_size),
                proptest::collection::vec(-50i64..50, n..=n),
                proptest::collection::vec((coord(), -100i64..100), 0..12),
                proptest::collection::vec(corners, 1..8),
            )
        })
        .prop_map(|(dims, box_size, initial, updates, queries)| Scenario {
            dims,
            box_size,
            initial,
            updates,
            queries,
        })
}

fn run_against_naive<E: RangeSumEngine<i64>>(mut engine: E, sc: &Scenario) {
    let cube = NdCube::from_vec(&sc.dims, sc.initial.clone()).unwrap();
    let mut naive = NaiveEngine::from_cube(cube);
    for (c, delta) in &sc.updates {
        engine.update(c, *delta).unwrap();
        naive.update(c, *delta).unwrap();
    }
    for (lo, hi) in &sc.queries {
        let r = Region::new(lo, hi).unwrap();
        assert_eq!(
            engine.query(&r).unwrap(),
            naive.query(&r).unwrap(),
            "{} disagrees with naive on {r:?} (scenario {sc:?})",
            engine.name()
        );
    }
    assert_eq!(engine.total(), naive.total());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn rps_matches_naive(sc in scenario()) {
        let cube = NdCube::from_vec(&sc.dims, sc.initial.clone()).unwrap();
        let engine = RpsEngine::from_cube_with_box_size(&cube, &sc.box_size).unwrap();
        run_against_naive(engine, &sc);
    }

    #[test]
    fn rps_sqrt_boxes_match_naive(sc in scenario()) {
        let cube = NdCube::from_vec(&sc.dims, sc.initial.clone()).unwrap();
        let engine = RpsEngine::from_cube(&cube);
        run_against_naive(engine, &sc);
    }

    #[test]
    fn prefix_sum_matches_naive(sc in scenario()) {
        let cube = NdCube::from_vec(&sc.dims, sc.initial.clone()).unwrap();
        let engine = PrefixSumEngine::from_cube(&cube);
        run_against_naive(engine, &sc);
    }

    #[test]
    fn fenwick_matches_naive(sc in scenario()) {
        let cube = NdCube::from_vec(&sc.dims, sc.initial.clone()).unwrap();
        let engine = FenwickEngine::from_cube(&cube);
        run_against_naive(engine, &sc);
    }

    #[test]
    fn rps_incremental_equals_rebuilt(sc in scenario()) {
        // Applying updates incrementally must produce the *same internal
        // state* as rebuilding from the updated cube.
        let mut cube = NdCube::from_vec(&sc.dims, sc.initial.clone()).unwrap();
        let mut engine = RpsEngine::from_cube_with_box_size(&cube, &sc.box_size).unwrap();
        for (c, delta) in &sc.updates {
            engine.update(c, *delta).unwrap();
            let old = cube.get(c);
            cube.set(c, old + *delta);
        }
        let rebuilt = RpsEngine::from_cube_with_box_size(&cube, &sc.box_size).unwrap();
        prop_assert_eq!(engine.rp_array(), rebuilt.rp_array());
        // Overlay equality via every prefix sum (covers anchors + borders).
        for (lo, _hi) in &sc.queries {
            prop_assert_eq!(
                engine.prefix_sum(lo).unwrap(),
                rebuilt.prefix_sum(lo).unwrap()
            );
        }
    }

    #[test]
    fn set_then_cell_round_trips(sc in scenario()) {
        let cube = NdCube::from_vec(&sc.dims, sc.initial.clone()).unwrap();
        let mut engine = RpsEngine::from_cube_with_box_size(&cube, &sc.box_size).unwrap();
        for (i, (c, v)) in sc.updates.iter().enumerate() {
            let value = *v + i as i64;
            engine.set(c, value).unwrap();
            prop_assert_eq!(engine.cell(c).unwrap(), value);
        }
    }

    #[test]
    fn materialize_recovers_cube(sc in scenario()) {
        let cube = NdCube::from_vec(&sc.dims, sc.initial.clone()).unwrap();
        let engine = RpsEngine::from_cube_with_box_size(&cube, &sc.box_size).unwrap();
        prop_assert_eq!(engine.materialize(), cube);
    }
}

// ---------------------------------------------------------------------
// Range-update conformance: interleaved point and rectangle updates on
// every engine must be bit-identical to a per-cell flat-array oracle —
// the oracle never goes through any engine's fast path.
// ---------------------------------------------------------------------

/// One update operation: a point delta or a rectangle delta.
#[derive(Debug, Clone)]
enum Op {
    Point(Vec<usize>, i64),
    Range(Vec<usize>, Vec<usize>, i64),
}

/// Mixed point/range workload over a random cube of 1..=3 dimensions.
/// The innermost dimension ranges past one blocked-Fenwick block (8), so
/// non-divisible tail blocks are exercised.
#[derive(Debug, Clone)]
struct RangeScenario {
    dims: Vec<usize>,
    box_size: Vec<usize>,
    initial: Vec<i64>,
    ops: Vec<Op>,
    queries: Vec<(Vec<usize>, Vec<usize>)>,
}

fn range_scenario() -> impl Strategy<Value = RangeScenario> {
    (1usize..=3)
        .prop_flat_map(|d| {
            (
                proptest::collection::vec(1usize..=11, d..=d),
                proptest::collection::vec(1usize..=5, d..=d),
            )
        })
        .prop_flat_map(|(dims, box_size)| {
            let n: usize = dims.iter().product();
            let coord = {
                let dims = dims.clone();
                move || {
                    let dims: Vec<usize> = dims.clone();
                    proptest::collection::vec(0usize..usize::MAX, dims.len()).prop_map(move |raw| {
                        raw.iter()
                            .zip(&dims)
                            .map(|(&r, &s)| r % s)
                            .collect::<Vec<_>>()
                    })
                }
            };
            let corners = {
                let coord = coord.clone();
                move || {
                    (coord(), coord()).prop_map(|(a, b)| {
                        let lo: Vec<usize> = a.iter().zip(&b).map(|(&x, &y)| x.min(y)).collect();
                        let hi: Vec<usize> = a.iter().zip(&b).map(|(&x, &y)| x.max(y)).collect();
                        (lo, hi)
                    })
                }
            };
            let op = (any::<bool>(), coord(), corners(), -100i64..100).prop_map(
                |(is_range, c, (lo, hi), v)| {
                    if is_range {
                        Op::Range(lo, hi, v)
                    } else {
                        Op::Point(c, v)
                    }
                },
            );
            (
                Just(dims),
                Just(box_size),
                proptest::collection::vec(-50i64..50, n..=n),
                proptest::collection::vec(op, 0..14),
                proptest::collection::vec(corners(), 1..8),
            )
        })
        .prop_map(|(dims, box_size, initial, ops, queries)| RangeScenario {
            dims,
            box_size,
            initial,
            ops,
            queries,
        })
}

/// Applies the scenario's ops to `engine` and to a flat per-cell oracle,
/// then checks every query region, every single cell, and the total.
fn run_range_ops<E: RangeSumEngine<i64>>(mut engine: E, sc: &RangeScenario) {
    let shape = Shape::new(&sc.dims).unwrap();
    let mut oracle = sc.initial.clone();
    for op in &sc.ops {
        match op {
            Op::Point(c, delta) => {
                engine.update(c, *delta).unwrap();
                oracle[shape.linear(c).unwrap()] += *delta;
            }
            Op::Range(lo, hi, delta) => {
                let r = Region::new(lo, hi).unwrap();
                engine.range_update(&r, *delta).unwrap();
                for c in r.iter() {
                    oracle[shape.linear(&c).unwrap()] += *delta;
                }
            }
        }
    }
    for (lo, hi) in &sc.queries {
        let r = Region::new(lo, hi).unwrap();
        let mut want = 0i64;
        for c in r.iter() {
            want += oracle[shape.linear(&c).unwrap()];
        }
        assert_eq!(
            engine.query(&r).unwrap(),
            want,
            "{} disagrees with the per-cell oracle on {r:?} (scenario {sc:?})",
            engine.name()
        );
    }
    assert_eq!(
        engine.materialize(),
        NdCube::from_vec(&sc.dims, oracle.clone()).unwrap(),
        "{} materializes differently from the oracle",
        engine.name()
    );
    assert_eq!(engine.total(), oracle.iter().sum::<i64>());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn naive_range_updates_match_oracle(sc in range_scenario()) {
        let cube = NdCube::from_vec(&sc.dims, sc.initial.clone()).unwrap();
        run_range_ops(NaiveEngine::from_cube(cube), &sc);
    }

    #[test]
    fn prefix_sum_range_updates_match_oracle(sc in range_scenario()) {
        let cube = NdCube::from_vec(&sc.dims, sc.initial.clone()).unwrap();
        run_range_ops(PrefixSumEngine::from_cube(&cube), &sc);
    }

    #[test]
    fn rps_range_updates_match_oracle(sc in range_scenario()) {
        let cube = NdCube::from_vec(&sc.dims, sc.initial.clone()).unwrap();
        let engine = RpsEngine::from_cube_with_box_size(&cube, &sc.box_size).unwrap();
        run_range_ops(engine, &sc);
    }

    #[test]
    fn fenwick_range_updates_match_oracle(sc in range_scenario()) {
        let cube = NdCube::from_vec(&sc.dims, sc.initial.clone()).unwrap();
        run_range_ops(FenwickEngine::from_cube(&cube), &sc);
    }

    #[test]
    fn blocked_fenwick_range_updates_match_oracle(sc in range_scenario()) {
        let cube = NdCube::from_vec(&sc.dims, sc.initial.clone()).unwrap();
        run_range_ops(BlockedFenwickEngine::from_cube(&cube), &sc);
    }
}

#[test]
fn range_update_edge_regions_all_engines() {
    // Deterministic edge coverage on a 5×13 cube: the innermost extent
    // 13 = 8 + 5 gives the blocked-Fenwick layout a non-divisible tail
    // block. Point region, full region, full row, and a box that ends
    // exactly on the 8-boundary.
    let dims = [5usize, 13];
    let cube = NdCube::from_fn(&dims, |c| (c[0] * 13 + c[1]) as i64 % 9).unwrap();
    let edges = [
        Region::new(&[2, 7], &[2, 7]).unwrap(),   // single cell
        Region::new(&[0, 0], &[4, 12]).unwrap(),  // full cube
        Region::new(&[3, 0], &[3, 12]).unwrap(),  // full row
        Region::new(&[1, 0], &[2, 7]).unwrap(),   // ends on the block edge
        Region::new(&[0, 8], &[4, 12]).unwrap(),  // entirely in the tail block
    ];
    let sc = RangeScenario {
        dims: dims.to_vec(),
        box_size: vec![2, 4],
        initial: cube.as_slice().to_vec(),
        ops: edges
            .iter()
            .enumerate()
            .map(|(i, r)| Op::Range(r.lo().to_vec(), r.hi().to_vec(), 3 * i as i64 - 5))
            .collect(),
        queries: edges
            .iter()
            .map(|r| (r.lo().to_vec(), r.hi().to_vec()))
            .collect(),
    };
    run_range_ops(NaiveEngine::from_cube(cube.clone()), &sc);
    run_range_ops(PrefixSumEngine::from_cube(&cube), &sc);
    run_range_ops(
        RpsEngine::from_cube_with_box_size(&cube, &sc.box_size).unwrap(),
        &sc,
    );
    run_range_ops(FenwickEngine::from_cube(&cube), &sc);
    run_range_ops(BlockedFenwickEngine::from_cube(&cube), &sc);
}

#[test]
fn four_dimensional_smoke() {
    // A deterministic 4-d case exercising the alternating query signs
    // (d − 1 − |S| spans both parities).
    let a = NdCube::from_fn(&[4, 4, 4, 4], |c| {
        (c[0] * 27 + c[1] * 9 + c[2] * 3 + c[3] + 1) as i64
    })
    .unwrap();
    let mut rps = RpsEngine::from_cube_uniform(&a, 2).unwrap();
    let naive = NaiveEngine::from_cube(a);
    let regions = [
        Region::new(&[1, 1, 1, 1], &[2, 3, 2, 3]).unwrap(),
        Region::new(&[0, 0, 0, 0], &[3, 3, 3, 3]).unwrap(),
        Region::new(&[1, 0, 2, 1], &[1, 0, 2, 1]).unwrap(),
        Region::new(&[0, 2, 1, 3], &[3, 3, 1, 3]).unwrap(),
    ];
    for r in &regions {
        assert_eq!(rps.query(r).unwrap(), naive.query(r).unwrap(), "{r:?}");
    }
    rps.update(&[1, 2, 3, 0], 1000).unwrap();
    let r = Region::new(&[0, 0, 0, 0], &[3, 3, 3, 3]).unwrap();
    assert_eq!(rps.query(&r).unwrap(), naive.query(&r).unwrap() + 1000);
}

#[test]
fn large_2d_engines_agree() {
    let a = NdCube::from_fn(&[64, 64], |c| ((c[0] * 131 + c[1] * 7) % 23) as i64).unwrap();
    let rps = RpsEngine::from_cube(&a);
    let ps = PrefixSumEngine::from_cube(&a);
    let fw = FenwickEngine::from_cube(&a);
    let naive = NaiveEngine::from_cube(a);
    for (lo, hi) in [
        ([0, 0], [63, 63]),
        ([17, 3], [61, 58]),
        ([32, 32], [32, 32]),
    ] {
        let r = Region::new(&lo, &hi).unwrap();
        let want = naive.query(&r).unwrap();
        assert_eq!(rps.query(&r).unwrap(), want);
        assert_eq!(ps.query(&r).unwrap(), want);
        assert_eq!(fw.query(&r).unwrap(), want);
    }
}
