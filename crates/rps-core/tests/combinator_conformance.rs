//! Property tests for the engine combinators: the delta buffer and the
//! shared (thread-safe) wrapper must be behaviour-transparent — any
//! op sequence gives the same answers as the bare engine — and snapshots
//! must round-trip arbitrary states.

use ndcube::{NdCube, Region};
use proptest::prelude::*;
use rps_core::snapshot;
use rps_core::{
    BufferedEngine, NaiveEngine, PrefixSumEngine, RangeSumEngine, RpsEngine, SharedEngine,
};

#[derive(Debug, Clone)]
struct Ops {
    n: usize,
    initial: Vec<i64>,
    updates: Vec<((usize, usize), i64)>,
    queries: Vec<((usize, usize), (usize, usize))>,
    merge_threshold: usize,
}

fn ops() -> impl Strategy<Value = Ops> {
    (3usize..=9)
        .prop_flat_map(|n| {
            let coord = move || (0..n, 0..n);
            let corners = (coord(), coord())
                .prop_map(|((a, b), (c, d))| ((a.min(c), b.min(d)), (a.max(c), b.max(d))));
            (
                Just(n),
                proptest::collection::vec(-9i64..9, n * n..=n * n),
                proptest::collection::vec((coord(), -30i64..30), 0..15),
                proptest::collection::vec(corners, 1..6),
                1usize..6,
            )
        })
        .prop_map(|(n, initial, updates, queries, merge_threshold)| Ops {
            n,
            initial,
            updates,
            queries,
            merge_threshold,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn buffered_engine_is_transparent(sc in ops()) {
        let cube = NdCube::from_vec(&[sc.n, sc.n], sc.initial.clone()).unwrap();
        let mut oracle = NaiveEngine::from_cube(cube.clone());
        let mut buffered =
            BufferedEngine::new(PrefixSumEngine::from_cube(&cube), sc.merge_threshold);
        for (i, ((r, c), delta)) in sc.updates.iter().enumerate() {
            oracle.update(&[*r, *c], *delta).unwrap();
            buffered.update(&[*r, *c], *delta).unwrap();
            // Interleave queries with updates so both merged and
            // unmerged buffer states are exercised.
            if let Some(((r0, c0), (r1, c1))) = sc.queries.get(i % sc.queries.len()) {
                let region = Region::new(&[*r0, *c0], &[*r1, *c1]).unwrap();
                prop_assert_eq!(
                    buffered.query(&region).unwrap(),
                    oracle.query(&region).unwrap()
                );
            }
        }
        // Final merge must not change answers.
        buffered.merge().unwrap();
        for ((r0, c0), (r1, c1)) in &sc.queries {
            let region = Region::new(&[*r0, *c0], &[*r1, *c1]).unwrap();
            prop_assert_eq!(buffered.query(&region).unwrap(), oracle.query(&region).unwrap());
        }
    }

    #[test]
    fn shared_engine_is_transparent(sc in ops()) {
        let cube = NdCube::from_vec(&[sc.n, sc.n], sc.initial.clone()).unwrap();
        let mut oracle = NaiveEngine::from_cube(cube.clone());
        let shared = SharedEngine::new(RpsEngine::from_cube(&cube));
        for ((r, c), delta) in &sc.updates {
            oracle.update(&[*r, *c], *delta).unwrap();
            shared.update(&[*r, *c], *delta).unwrap();
        }
        for ((r0, c0), (r1, c1)) in &sc.queries {
            let region = Region::new(&[*r0, *c0], &[*r1, *c1]).unwrap();
            let got: i64 = shared.query(&region).unwrap();
            prop_assert_eq!(got, oracle.query(&region).unwrap());
        }
        prop_assert_eq!(shared.update_count(), sc.updates.len() as u64);
    }

    #[test]
    fn snapshot_round_trips_arbitrary_state(sc in ops()) {
        let cube = NdCube::from_vec(&[sc.n, sc.n], sc.initial.clone()).unwrap();
        let mut engine = RpsEngine::from_cube(&cube);
        for ((r, c), delta) in &sc.updates {
            engine.update(&[*r, *c], *delta).unwrap();
        }
        let mut buf = Vec::new();
        snapshot::save_rps(&engine, &mut buf).unwrap();
        let loaded = snapshot::load_rps(&buf[..]).unwrap();
        prop_assert_eq!(loaded.to_cube(), engine.to_cube());
        for ((r0, c0), (r1, c1)) in &sc.queries {
            let region = Region::new(&[*r0, *c0], &[*r1, *c1]).unwrap();
            prop_assert_eq!(loaded.query(&region).unwrap(), engine.query(&region).unwrap());
        }
    }

    #[test]
    fn snapshot_rejects_any_single_byte_corruption(
        sc in ops(),
        victim in any::<proptest::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let cube = NdCube::from_vec(&[sc.n, sc.n], sc.initial.clone()).unwrap();
        let mut buf = Vec::new();
        snapshot::save_cube(&cube, &mut buf).unwrap();
        let pos = victim.index(buf.len());
        buf[pos] ^= flip;
        // Corruption anywhere must be detected (magic, header, payload,
        // or checksum) — loading must never silently return a different
        // cube.
        match snapshot::load_cube(&buf[..]) {
            Err(_) => {}
            Ok(loaded) => prop_assert_eq!(loaded, cube, "corruption at byte {} missed", pos),
        }
    }
}
