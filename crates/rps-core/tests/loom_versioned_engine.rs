//! Loom interleaving tests for the versioned engine's publication and
//! reclamation protocol (`rps_core::versioned`).
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (see `scripts/loom.sh`),
//! where `rps_core::sync_compat` swaps `std::sync` for loom's
//! instrumented primitives. The protocol under test is the safe-Rust
//! arc-swap: writer fills a ring slot then bumps `current` (SeqCst),
//! readers announce an epoch then revalidate `current` before cloning
//! out of the slot, and the writer's reclaim scan must never clear a
//! slot a validated pin still needs.
//!
//! Models are deliberately tiny — a handful of operations on 2–3
//! threads — because loom's state space is exponential in the number
//! of synchronization events.

#![cfg(loom)]

use ndcube::Region;
use rps_core::{RpsEngine, VersionedEngine};

/// A pin racing one publish must observe a complete version: either the
/// pre-update snapshot or the post-update one, never a mix, and the
/// snapshot's `update_count` must agree with the value it reports.
#[test]
fn pin_races_publish_atomically() {
    loom::model(|| {
        let v = VersionedEngine::new(RpsEngine::<i64>::zeros(&[4, 4]).unwrap());
        let full = Region::new(&[0, 0], &[3, 3]).unwrap();

        let writer = {
            let v = v.clone();
            loom::thread::spawn(move || {
                v.update(&[1, 1], 7).unwrap();
            })
        };
        let mut reader = v.reader();
        let pinned = reader.pin();
        let total = pinned.query(&full).unwrap();
        assert!(
            total == 0 || total == 7,
            "pin observed a half-published version: {total}"
        );
        // The snapshot is internally consistent with its own metadata.
        assert_eq!(total, 7 * i64::try_from(pinned.update_count()).unwrap());
        drop(pinned);
        writer.join().unwrap();
        assert_eq!(v.total(), 7);
        assert_eq!(v.current_version(), 1);
    });
}

/// Reclamation racing a pin: the writer publishes twice (the second
/// publish's reclaim scan is the adversary) while a reader pins and
/// queries. A validated pin must keep answering from a complete
/// version even if its ring slot is concurrently reclaimed — the `Arc`
/// clone is the backstop.
#[test]
fn reclaim_never_invalidates_a_pin() {
    loom::model(|| {
        let v = VersionedEngine::new(RpsEngine::<i64>::zeros(&[4, 4]).unwrap());
        let full = Region::new(&[0, 0], &[3, 3]).unwrap();

        let writer = {
            let v = v.clone();
            loom::thread::spawn(move || {
                v.update(&[0, 0], 1).unwrap();
                v.update(&[3, 3], 1).unwrap();
            })
        };
        let mut reader = v.reader();
        let pinned = reader.pin();
        let n = pinned.update_count();
        let total = pinned.query(&full).unwrap();
        // Whatever prefix was pinned, the snapshot reports exactly it.
        assert_eq!(total, i64::try_from(n).unwrap());
        // Re-querying the same pin later (after any reclamation) still
        // answers from the same version.
        assert_eq!(pinned.query(&full).unwrap(), total);
        drop(pinned);
        writer.join().unwrap();
        assert_eq!(v.total(), 2);
    });
}

/// Two readers pinning around a publish observe a monotone sequence of
/// versions: a pin taken after another pin was dropped can never see an
/// older version than the first.
#[test]
fn successive_pins_are_monotone() {
    loom::model(|| {
        let v = VersionedEngine::new(RpsEngine::<i64>::zeros(&[4, 4]).unwrap());

        let writer = {
            let v = v.clone();
            loom::thread::spawn(move || {
                v.update(&[2, 2], 1).unwrap();
            })
        };
        let mut reader = v.reader();
        let first = reader.pin().number();
        let second = reader.pin().number();
        assert!(second >= first, "pin went backwards: {first} → {second}");
        writer.join().unwrap();
        assert_eq!(v.snapshot().number(), 1);
    });
}

/// Unpinned snapshots racing publishes: `snapshot()` (pin-free path,
/// no epoch slot) must still always return a complete version.
#[test]
fn unpinned_snapshot_races_publish() {
    loom::model(|| {
        let v = VersionedEngine::new(RpsEngine::<i64>::zeros(&[4, 4]).unwrap());
        let full = Region::new(&[0, 0], &[3, 3]).unwrap();

        let writer = {
            let v = v.clone();
            loom::thread::spawn(move || {
                v.update(&[1, 2], 5).unwrap();
            })
        };
        let snap = v.snapshot();
        let total = snap.query(&full).unwrap();
        assert!(total == 0 || total == 5, "torn snapshot: {total}");
        writer.join().unwrap();
        assert_eq!(v.total(), 5);
    });
}
