//! Instrumented-cost bounds: the engines' measured cell accesses must obey
//! the closed-form bounds of §2 and §4.3 on every input.

use ndcube::{NdCube, Region};
use proptest::prelude::*;
use rps_core::{NaiveEngine, PrefixSumEngine, RangeSumEngine, RpsEngine};

/// §4.3 worst-case RPS update bound, evaluated for a concrete shape/box:
/// `(k−1)^d` RP cells… we use the *exact* structural bound rather than the
/// paper's approximation: RP ≤ ∏kᵢ cells, overlay ≤ total stored overlay
/// cells, so their sum is a hard ceiling; the sharper per-term checks are
/// in the assertions below.
fn rps_update_ceiling(dims: &[usize], k: &[usize]) -> u64 {
    let box_cells: usize = k.iter().zip(dims).map(|(&ki, &n)| ki.min(n)).product();
    // overlay stored cells total
    let num_boxes: usize = dims.iter().zip(k).map(|(&n, &ki)| n.div_ceil(ki)).product();
    let stored_per_box: usize = {
        let all: usize = k.iter().zip(dims).map(|(&ki, &n)| ki.min(n)).product();
        let interior: usize = k.iter().zip(dims).map(|(&ki, &n)| ki.min(n) - 1).product();
        all - interior
    };
    (box_cells + num_boxes * stored_per_box) as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn naive_query_reads_equal_region_size(
        dims in proptest::collection::vec(2usize..8, 1..4),
        seed in any::<u64>(),
    ) {
        let cube = NdCube::from_fn(&dims, |c| {
            (c.iter().sum::<usize>() as i64).wrapping_mul(seed as i64 | 1)
        }).unwrap();
        let hi: Vec<usize> = dims.iter().map(|&n| n - 1).collect();
        let lo: Vec<usize> = dims.iter().map(|&n| n / 2).collect();
        let r = Region::new(&lo, &hi).unwrap();
        let e = NaiveEngine::from_cube(cube);
        e.reset_stats();
        e.query(&r).unwrap();
        prop_assert_eq!(e.stats().cell_reads, r.cell_count() as u64);
    }

    #[test]
    fn prefix_query_reads_at_most_2_pow_d(
        dims in proptest::collection::vec(2usize..8, 1..4),
    ) {
        let cube = NdCube::from_fn(&dims, |c| c[0] as i64).unwrap();
        let e = PrefixSumEngine::from_cube(&cube);
        let hi: Vec<usize> = dims.iter().map(|&n| n - 1).collect();
        let lo: Vec<usize> = dims.iter().map(|&n| n / 2).collect();
        let r = Region::new(&lo, &hi).unwrap();
        e.reset_stats();
        e.query(&r).unwrap();
        prop_assert!(e.stats().cell_reads <= 1 << dims.len());
    }

    #[test]
    fn prefix_update_writes_equal_dominated_region(
        dims in proptest::collection::vec(2usize..8, 1..4),
        raw in proptest::collection::vec(0usize..usize::MAX, 3),
    ) {
        let d = dims.len();
        let c: Vec<usize> = (0..d).map(|i| raw[i % 3] % dims[i]).collect();
        let mut e = PrefixSumEngine::<i64>::zeros(&dims).unwrap();
        e.reset_stats();
        e.update(&c, 7).unwrap();
        let expected: usize = dims.iter().zip(&c).map(|(&n, &ci)| n - ci).product();
        prop_assert_eq!(e.stats().cell_writes, expected as u64);
    }

    #[test]
    fn rps_query_reads_at_most_4_pow_d(
        dims in proptest::collection::vec(2usize..8, 1..4),
        k in proptest::collection::vec(1usize..5, 3),
    ) {
        let d = dims.len();
        let ks: Vec<usize> = (0..d).map(|i| k[i % 3]).collect();
        let cube = NdCube::from_fn(&dims, |c| c.iter().sum::<usize>() as i64).unwrap();
        let e = RpsEngine::from_cube_with_box_size(&cube, &ks).unwrap();
        let hi: Vec<usize> = dims.iter().map(|&n| n - 1).collect();
        let lo: Vec<usize> = dims.iter().map(|&n| n / 3).collect();
        let r = Region::new(&lo, &hi).unwrap();
        e.reset_stats();
        e.query(&r).unwrap();
        // 2^d corners × ≤ 2^d reads per reconstructed prefix sum.
        prop_assert!(
            e.stats().cell_reads <= 1u64 << (2 * d),
            "reads {} > 4^{d}", e.stats().cell_reads
        );
    }

    #[test]
    fn rps_update_writes_below_structural_ceiling(
        dims in proptest::collection::vec(2usize..9, 1..4),
        k in proptest::collection::vec(1usize..5, 3),
        raw in proptest::collection::vec(0usize..usize::MAX, 3),
    ) {
        let d = dims.len();
        let ks: Vec<usize> = (0..d).map(|i| k[i % 3]).collect();
        let c: Vec<usize> = (0..d).map(|i| raw[i % 3] % dims[i]).collect();
        let mut e = RpsEngine::<i64>::zeros(&dims).ok().and_then(|_|
            RpsEngine::from_cube_with_box_size(
                &NdCube::filled(&dims, 0i64).unwrap(), &ks).ok()).unwrap();
        e.reset_stats();
        e.update(&c, 3).unwrap();
        prop_assert!(
            e.stats().cell_writes <= rps_update_ceiling(&dims, &ks),
            "writes {} exceed ceiling {}",
            e.stats().cell_writes,
            rps_update_ceiling(&dims, &ks)
        );
    }
}

/// §4.3: with k = √n the measured worst-case update touches O(n^{d/2})
/// cells — concretely, far fewer than the prefix-sum method's n^d, and the
/// measured count is within the paper's formula ceiling
/// `k^d + d·n·k^{d−2} + (n/k)^d`.
#[test]
fn sqrt_box_worst_case_update_within_formula() {
    for n in [16usize, 36, 64, 100] {
        let k = (n as f64).sqrt() as usize;
        let mut e = RpsEngine::<i64>::zeros_uniform(&[n, n], k).unwrap();
        e.reset_stats();
        // Worst position: just past the first anchor in both dims.
        e.update(&[1, 1], 1).unwrap();
        let measured = e.stats().cell_writes as f64;
        let d = 2f64;
        let formula = (k as f64).powf(d)
            + d * n as f64 * (k as f64).powf(d - 2.0)
            + (n as f64 / k as f64).powf(d);
        assert!(
            measured <= formula,
            "n={n}: measured {measured} > formula {formula}"
        );
        // And it must actually beat prefix-sum's cascade by a wide margin.
        let mut ps = PrefixSumEngine::<i64>::zeros(&[n, n]).unwrap();
        ps.reset_stats();
        ps.update(&[1, 1], 1).unwrap();
        assert!(measured * 2.0 < ps.stats().cell_writes as f64);
    }
}

/// The Figure 15 example again, but through the public stats surface:
/// RPS 16 cells vs prefix-sum 64 cells on the identical update.
#[test]
fn paper_update_example_cost_ratio() {
    let a = rps_core::testdata::paper_array_a();
    let mut rps = RpsEngine::from_cube_uniform(&a, 3).unwrap();
    let mut ps = PrefixSumEngine::from_cube(&a);
    rps.reset_stats();
    ps.reset_stats();
    rps.update(&[1, 1], 1).unwrap();
    ps.update(&[1, 1], 1).unwrap();
    assert_eq!(rps.stats().cell_writes, 16);
    assert_eq!(ps.stats().cell_writes, 64);
}
