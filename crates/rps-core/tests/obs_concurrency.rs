//! Concurrency smoke test for the observability layer: the process-wide
//! engine counters are relaxed atomics bumped from inside the query and
//! update paths, and under concurrent load through [`SharedEngine`]
//! every operation must be counted exactly once — no lost increments,
//! no double counting, and (with timing enabled) one histogram sample
//! per timed operation.
//!
//! This is the full-size, real-thread complement to the loom
//! interleaving tests in `loom_shared_engine.rs`: `SharedEngine` funnels
//! its primitives through `rps_core::sync_compat`, so the lock and
//! counter traffic exercised here is the same code loom model-checks at
//! small scale.
//!
//! The test lives alone in its own integration binary because the
//! counters are process-global: a sibling `#[test]` running engine ops
//! on another thread would legitimately move them mid-measurement.

use ndcube::Region;
use rps_core::sync_compat::Arc;
use rps_core::{RpsEngine, SharedEngine};

#[test]
fn concurrent_queries_and_updates_are_counted_exactly() {
    const THREADS: usize = 8;
    const OPS: usize = 500;

    let metrics = rps_core::obs::engine(rps_core::obs::EngineKind::Rps);
    rps_obs::set_timing(true);
    let queries_before = metrics.queries.get();
    let updates_before = metrics.updates.get();
    let query_samples_before = metrics.query_ns.count();
    let update_samples_before = metrics.update_ns.count();

    let shared = Arc::new(SharedEngine::new(
        RpsEngine::<i64>::zeros(&[16, 16]).expect("valid dims"),
    ));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let shared = Arc::clone(&shared);
            s.spawn(move || {
                let region = Region::new(&[t % 4, t % 4], &[15, 15]).expect("in bounds");
                for i in 0..OPS {
                    let _: i64 = shared.query(&region).expect("in bounds");
                    shared.update(&[t, i % 16], 1i64).expect("in bounds");
                }
            });
        }
    });
    rps_obs::set_timing(false);

    let expected = (THREADS * OPS) as u64;
    assert_eq!(
        metrics.queries.get() - queries_before,
        expected,
        "every concurrent query must be counted exactly once"
    );
    assert_eq!(
        metrics.updates.get() - updates_before,
        expected,
        "every concurrent update must be counted exactly once"
    );
    assert_eq!(
        metrics.query_ns.count() - query_samples_before,
        expected,
        "with timing on, every query records exactly one latency sample"
    );
    assert_eq!(
        metrics.update_ns.count() - update_samples_before,
        expected,
        "with timing on, every update records exactly one latency sample"
    );

    // The engine's own per-instance accounting and the process-wide
    // counters saw the same operations.
    assert_eq!(shared.query_count(), expected);
    assert_eq!(shared.update_count(), expected);
}
