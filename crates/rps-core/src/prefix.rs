//! The prefix sum method of Ho, Agrawal, Megiddo and Srikant (SIGMOD'97),
//! as described in §2 of the RPS paper.
//!
//! A precomputed array `P` of the same size as `A` stores
//! `P[x] = Sum(A[0,…,0] : A[x])`. Any range sum is then 2^d reads of `P`
//! (Figure 3) — O(1). The price is the cascading update of Figure 4: a
//! point update to `A[c]` must rewrite every `P[x]` with `x ≥ c`
//! componentwise, O(n^d) in the worst case.

use ndcube::{NdCube, NdError, Region, Shape};

use crate::corners::range_sum_from_prefix;
use crate::engine::RangeSumEngine;
use crate::rps::kernels;
use crate::stats::{CostStats, StatsCell};
use crate::value::GroupValue;

/// Range-sum engine backed by the prefix-sum array `P`.
///
/// Only `P` is stored (the cell values of `A` are recovered by point
/// queries), matching the paper's storage accounting of one array the size
/// of the data cube.
#[derive(Debug, Clone)]
pub struct PrefixSumEngine<T> {
    p: NdCube<T>,
    stats: StatsCell,
}

/// Computes the prefix-sum cube of `a` in place via d sweeps (one running
/// sum per dimension) — O(d·N) rather than the naive O(N·2^d) or worse.
///
/// Exposed for reuse by the RPS build (which needs `P` transiently to
/// derive overlay anchors and borders).
pub fn prefix_sums_in_place<T: GroupValue>(a: &mut NdCube<T>) {
    let shape = a.shape().clone();
    for dim in 0..shape.ndim() {
        sweep_dim_forward(
            a.as_mut_slice(),
            shape.strides()[dim],
            shape.dim(dim),
            usize::MAX,
        );
    }
}

/// One dimension's forward running-sum sweep over a row-major buffer:
/// every cell whose `dim`-coordinate is ≥ 1 (and, when `k ≠ usize::MAX`,
/// not a multiple of `k` — the box-boundary reset of the RP sweep)
/// accumulates its predecessor along `dim`.
///
/// Two regimes, both built on the lane kernels:
///
/// * `stride == 1` (the innermost dimension): each period is one
///   contiguous run and the running sum is a loop-carried scan —
///   [`kernels::prefix_scan_run`] per run.
/// * `stride > 1` (outer dimensions): consecutive coordinates are rows of
///   `stride` contiguous cells that combine *elementwise*
///   ([`kernels::add_rows`], lane-widened), tiled into
///   [`kernels::tile_width`]-sized column blocks so the row pair being
///   combined stays resident in L1 across the whole coordinate walk.
///
/// This kernel is the build path's inner loop for P, RP and the RP
/// inverse.
pub(crate) fn sweep_dim_forward<T: GroupValue>(data: &mut [T], stride: usize, n: usize, k: usize) {
    if stride == 1 {
        for run in data.chunks_mut(n) {
            kernels::prefix_scan_run(run, k);
        }
        return;
    }
    let period = stride * n;
    let tile = kernels::tile_width::<T>(stride);
    let mut lane_rows = 0u64;
    let mut base = 0usize;
    while base < data.len() {
        let block = &mut data[base..base + period];
        let mut col = 0usize;
        while col < stride {
            let w = tile.min(stride - col);
            for coord in 1..n {
                if k != usize::MAX && coord % k == 0 {
                    continue; // first cell of a box along `dim`: no carry-in
                }
                let row = coord * stride;
                let (prev, cur) = block.split_at_mut(row);
                kernels::add_rows(&mut cur[col..col + w], &prev[row - stride + col..][..w]);
                lane_rows += u64::from(kernels::is_lane_run(w));
            }
            col += w;
        }
        base += period;
    }
    if lane_rows > 0 {
        // Coalesced: one relaxed add per sweep, not one per row.
        crate::obs::core().lane_runs.add(lane_rows);
    }
}

/// The inverse of [`sweep_dim_backward`]'s forward twin: processes
/// coordinates in descending order so each cell subtracts a predecessor
/// that is still in its summed state. Same lane/tile structure as
/// [`sweep_dim_forward`] with [`kernels::sub_rows`] /
/// [`kernels::inverse_prefix_scan_run`].
pub(crate) fn sweep_dim_backward<T: GroupValue>(data: &mut [T], stride: usize, n: usize, k: usize) {
    if stride == 1 {
        for run in data.chunks_mut(n) {
            kernels::inverse_prefix_scan_run(run, k);
        }
        return;
    }
    let period = stride * n;
    let tile = kernels::tile_width::<T>(stride);
    let mut base = 0usize;
    while base < data.len() {
        let block = &mut data[base..base + period];
        let mut col = 0usize;
        while col < stride {
            let w = tile.min(stride - col);
            for coord in (1..n).rev() {
                if k != usize::MAX && coord % k == 0 {
                    continue;
                }
                let row = coord * stride;
                let (prev, cur) = block.split_at_mut(row);
                kernels::sub_rows(&mut cur[col..col + w], &prev[row - stride + col..][..w]);
            }
            col += w;
        }
        base += period;
    }
}

/// The original per-cell sweeps, kept verbatim as the oracle the lane
/// kernels are property-tested against (bit-identical results for every
/// dimension, stride, and box size k, including k = 1 and non-divisible
/// n/k tails).
#[cfg(test)]
pub(crate) mod sweep_oracle {
    use crate::value::GroupValue;

    pub fn sweep_dim_forward<T: GroupValue>(data: &mut [T], stride: usize, n: usize, k: usize) {
        let period = stride * n;
        let mut base = 0usize;
        while base < data.len() {
            for coord in 1..n {
                if k != usize::MAX && coord % k == 0 {
                    continue;
                }
                let row = base + coord * stride;
                for off in 0..stride {
                    let prev = data[row + off - stride].clone();
                    data[row + off].add_assign(&prev);
                }
            }
            base += period;
        }
    }

    pub fn sweep_dim_backward<T: GroupValue>(data: &mut [T], stride: usize, n: usize, k: usize) {
        let period = stride * n;
        let mut base = 0usize;
        while base < data.len() {
            for coord in (1..n).rev() {
                if k != usize::MAX && coord % k == 0 {
                    continue;
                }
                let row = base + coord * stride;
                for off in 0..stride {
                    let prev = data[row + off - stride].clone();
                    data[row + off].sub_assign(&prev);
                }
            }
            base += period;
        }
    }
}

impl<T: GroupValue> PrefixSumEngine<T> {
    /// Builds the engine over an all-zero cube.
    pub fn zeros(dims: &[usize]) -> Result<Self, NdError> {
        Ok(PrefixSumEngine {
            p: NdCube::filled(dims, T::zero())?,
            stats: StatsCell::new(),
        })
    }

    /// Builds `P` from a data cube `A` (O(d·N) construction).
    pub fn from_cube(a: &NdCube<T>) -> Self {
        let mut p = a.clone();
        prefix_sums_in_place(&mut p);
        PrefixSumEngine {
            p,
            stats: StatsCell::new(),
        }
    }

    /// Read-only access to the prefix array `P` (Figure 2).
    pub fn p_array(&self) -> &NdCube<T> {
        &self.p
    }

    /// The prefix region sum `Sum(A[0,…,0] : A[x])`: one read of `P`.
    pub fn prefix_sum(&self, x: &[usize]) -> Result<T, NdError> {
        let lin = self.p.shape().linear(x)?;
        self.stats.reads(1);
        Ok(self.p.get_linear(lin).clone())
    }
}

impl<T: GroupValue> RangeSumEngine<T> for PrefixSumEngine<T> {
    fn name(&self) -> &'static str {
        "prefix-sum"
    }

    fn shape(&self) -> &Shape {
        self.p.shape()
    }

    fn query(&self, region: &Region) -> Result<T, NdError> {
        self.p.shape().check_region(region)?;
        let shape = self.p.shape();
        let stats = &self.stats;
        let p = &self.p;
        let sum = range_sum_from_prefix(region, |corner| {
            stats.reads(1);
            p.get_linear(shape.linear_unchecked(corner)).clone()
        });
        self.stats.query();
        Ok(sum)
    }

    fn update(&mut self, coords: &[usize], delta: T) -> Result<(), NdError> {
        self.p.shape().check(coords)?;
        // Cascading update (Figure 4): every P[x] with x ≥ coords
        // (componentwise) contains A[coords] and must change.
        let shape = self.p.shape().clone();
        let hi: Vec<usize> = shape.dims().iter().map(|&n| n - 1).collect();
        // lint:allow(L2): shape.check(coords) above proves coords ≤ n−1 per axis
        let region = Region::new(coords, &hi).expect("coords ≤ hi");
        let mut writes = 0u64;
        for lin in shape.linear_region_iter(&region) {
            self.p.get_linear_mut(lin).add_assign(&delta);
            writes += 1;
        }
        self.stats.writes(writes);
        self.stats.update();
        Ok(())
    }

    // Fast path: a rectangle update changes `P[x]` by
    // `delta · ∏ᵢ (min(xᵢ,hiᵢ) − loᵢ + 1)` for every `x ≥ lo` — the count
    // of updated source cells inside the prefix region of `x`. The count
    // is separable, so each innermost-axis row of the affected suffix is
    // one ramp ([`kernels::add_ramp_run`]) up to `hi` followed by one
    // constant add past it — O(suffix) total instead of the per-cell
    // loop's O(|region| · suffix).
    fn range_update(&mut self, region: &Region, delta: T) -> Result<(), NdError> {
        self.p.shape().check_region(region)?;
        let m = crate::obs::core();
        m.range_update_fast.inc();
        m.range_update_cells
            .add(u64::try_from(region.cell_count()).unwrap_or(u64::MAX));
        if delta.is_zero() {
            return Ok(());
        }
        let _span = rps_obs::Span::enter("prefix.range_update", &m.range_update_ns);
        let (shape, data) = self.p.parts_mut();
        let d = shape.ndim();
        let last = d - 1;
        let (lo, hi) = (region.lo(), region.hi());
        let n_last = shape.dim(last);
        let mut writes = 0u64;
        // Odometer over the outer coordinates of the affected suffix
        // `lo ..= n−1`; the innermost row is handled as two slices.
        let mut cur: Vec<usize> = lo[..last].to_vec();
        let mut base: usize = cur
            .iter()
            .zip(shape.strides())
            .map(|(&c, &s)| c * s)
            .sum();
        'rows: loop {
            // lint:allow(L4): per-dimension counts multiply to ≤ shape.len() ≤ u64::MAX
            let mult = cur
                .iter()
                .enumerate()
                .fold(1u64, |acc, (i, &c)| acc * (c.min(hi[i]) - lo[i] + 1) as u64); // lint:allow(L4): counts fit u64
            let row = &mut data[base + lo[last]..base + n_last];
            let ramp_len = hi[last] - lo[last] + 1;
            let step = delta.scale(mult);
            let (ramp, rest) = row.split_at_mut(ramp_len);
            let acc = kernels::add_ramp_run(ramp, &step);
            kernels::add_delta_run(rest, &acc);
            writes += u64::try_from(ramp_len + rest.len()).unwrap_or(u64::MAX);
            // Advance the outer odometer within `lo ..= dims−1`.
            let mut dim = last;
            loop {
                if dim == 0 {
                    break 'rows;
                }
                dim -= 1;
                if cur[dim] < shape.dim(dim) - 1 {
                    cur[dim] += 1;
                    base += shape.strides()[dim];
                    break;
                }
                let span = cur[dim] - lo[dim];
                base -= span * shape.strides()[dim];
                cur[dim] = lo[dim];
            }
        }
        self.stats.writes(writes);
        self.stats.update();
        Ok(())
    }

    fn stats(&self) -> CostStats {
        self.stats.get()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }

    fn storage_cells(&self) -> usize {
        self.p.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::{paper_array_a, paper_array_p};

    #[test]
    fn figure2_p_array_reproduced() {
        let e = PrefixSumEngine::from_cube(&paper_array_a());
        assert_eq!(e.p_array(), &paper_array_p());
    }

    #[test]
    fn figure2_spot_values() {
        // "cell P[4,0] contains the sum of A[0,0]..A[4,0], or 19, while
        //  P[2,1] contains the sum of A[0,0]..A[2,1], or 24"
        let e = PrefixSumEngine::from_cube(&paper_array_a());
        assert_eq!(e.prefix_sum(&[4, 0]).unwrap(), 19);
        assert_eq!(e.prefix_sum(&[2, 1]).unwrap(), 24);
        assert_eq!(e.prefix_sum(&[8, 8]).unwrap(), 290);
    }

    #[test]
    fn queries_match_naive_scan() {
        let a = paper_array_a();
        let e = PrefixSumEngine::from_cube(&a);
        for (lo, hi) in [
            ([0, 0], [8, 8]),
            ([2, 3], [7, 5]),
            ([4, 4], [4, 4]),
            ([0, 5], [3, 8]),
        ] {
            let r = Region::new(&lo, &hi).unwrap();
            let brute: i64 = a
                .shape()
                .linear_region_iter(&r)
                .map(|l| *a.get_linear(l))
                .sum();
            assert_eq!(e.query(&r).unwrap(), brute, "region {r:?}");
        }
    }

    #[test]
    fn figure4_update_cascade() {
        // Updating A[1,1] by +1 must add 1 to the shaded region
        // P[1..=8, 1..=8] — 64 cells — and leave the rest untouched.
        let mut e = PrefixSumEngine::from_cube(&paper_array_a());
        e.reset_stats();
        e.update(&[1, 1], 1).unwrap();
        assert_eq!(e.stats().cell_writes, 64);

        let before = paper_array_p();
        for r in 0..9 {
            for c in 0..9 {
                let expect = before.get(&[r, c]) + i64::from(r >= 1 && c >= 1);
                assert_eq!(e.p_array().get(&[r, c]), expect, "P[{r},{c}]");
            }
        }
    }

    #[test]
    fn worst_case_update_touches_whole_cube() {
        let mut e = PrefixSumEngine::from_cube(&paper_array_a());
        e.reset_stats();
        e.update(&[0, 0], 1).unwrap();
        assert_eq!(e.stats().cell_writes, 81);
    }

    #[test]
    fn query_cost_constant() {
        let e = PrefixSumEngine::from_cube(&paper_array_a());
        e.reset_stats();
        let r = Region::new(&[2, 3], &[7, 5]).unwrap();
        e.query(&r).unwrap();
        assert_eq!(e.stats().cell_reads, 4); // 2^d with d = 2
    }

    #[test]
    fn set_and_cell_via_point_queries() {
        let mut e = PrefixSumEngine::from_cube(&paper_array_a());
        assert_eq!(e.cell(&[1, 1]).unwrap(), 3);
        e.set(&[1, 1], 4).unwrap(); // the Figure 4 update as a "set"
        assert_eq!(e.cell(&[1, 1]).unwrap(), 4);
        assert_eq!(e.total(), 291);
    }

    #[test]
    fn three_dim_prefix_sweep() {
        let a = NdCube::from_fn(&[3, 3, 3], |c| (c[0] + 2 * c[1] + 4 * c[2]) as i64).unwrap();
        let e = PrefixSumEngine::from_cube(&a);
        let r = Region::new(&[1, 0, 1], &[2, 2, 2]).unwrap();
        let brute: i64 = a
            .shape()
            .linear_region_iter(&r)
            .map(|l| *a.get_linear(l))
            .sum();
        assert_eq!(e.query(&r).unwrap(), brute);
        // 3-dim full-cube prefix equals total.
        assert_eq!(e.prefix_sum(&[2, 2, 2]).unwrap(), e.total());
    }

    #[test]
    fn rejects_bad_input() {
        let mut e = PrefixSumEngine::<i64>::zeros(&[3, 3]).unwrap();
        assert!(e.update(&[0, 3], 1).is_err());
        assert!(e.prefix_sum(&[3, 0]).is_err());
    }

    #[test]
    fn lane_sweeps_match_oracle_on_wide_rows() {
        // A stride (37) well past one lane exercises full chunks, the
        // remainder tail, and tiling in a single deterministic case.
        let dims = [7usize, 37];
        let shape = Shape::new(&dims).unwrap();
        let data: Vec<i64> = (0..shape.len())
            .map(|i| (i as i64 * 31) % 101 - 50)
            .collect();
        for dim in 0..dims.len() {
            for k in [1usize, 3, 5, usize::MAX] {
                let mut a = data.clone();
                let mut b = data.clone();
                sweep_dim_forward(&mut a, shape.strides()[dim], shape.dim(dim), k);
                sweep_oracle::sweep_dim_forward(&mut b, shape.strides()[dim], shape.dim(dim), k);
                assert_eq!(a, b, "forward dim {dim} k {k}");
                sweep_dim_backward(&mut a, shape.strides()[dim], shape.dim(dim), k);
                sweep_oracle::sweep_dim_backward(&mut b, shape.strides()[dim], shape.dim(dim), k);
                assert_eq!(a, b, "backward dim {dim} k {k}");
                assert_eq!(a, data, "round trip dim {dim} k {k}");
            }
        }
    }
}

#[cfg(test)]
mod sweep_props {
    use super::*;
    use proptest::prelude::*;

    /// Random geometry + contents + box size, for d ∈ 1..=4.
    fn sweep_case() -> impl Strategy<Value = (Vec<usize>, Vec<i64>, usize)> {
        (1usize..=4)
            .prop_flat_map(|d| proptest::collection::vec(1usize..=6, d))
            .prop_flat_map(|dims| {
                let len: usize = dims.iter().product();
                (
                    Just(dims),
                    proptest::collection::vec(-100i64..100, len..=len),
                    1usize..=7,
                )
            })
    }

    proptest! {
        /// The lane-widened sweeps are bit-identical to the retained
        /// per-cell oracle for every dimension, every stride, and box
        /// sizes k ∈ {1, random, ∞} — including non-divisible n/k tails
        /// — and backward exactly inverts forward.
        #[test]
        fn lane_sweeps_match_scalar_oracle((dims, data, k) in sweep_case()) {
            let shape = Shape::new(&dims).unwrap();
            for dim in 0..dims.len() {
                for kk in [1usize, k, usize::MAX] {
                    let mut a = data.clone();
                    let mut b = data.clone();
                    sweep_dim_forward(&mut a, shape.strides()[dim], shape.dim(dim), kk);
                    sweep_oracle::sweep_dim_forward(&mut b, shape.strides()[dim], shape.dim(dim), kk);
                    prop_assert_eq!(&a, &b, "forward dim {} k {}", dim, kk);
                    sweep_dim_backward(&mut a, shape.strides()[dim], shape.dim(dim), kk);
                    sweep_oracle::sweep_dim_backward(&mut b, shape.strides()[dim], shape.dim(dim), kk);
                    prop_assert_eq!(&a, &b, "backward dim {} k {}", dim, kk);
                    prop_assert_eq!(&a, &data, "round trip dim {} k {}", dim, kk);
                }
            }
        }
    }
}
