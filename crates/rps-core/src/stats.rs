//! Cost instrumentation.
//!
//! The paper's evaluation is expressed in **cells touched** (e.g. the
//! Figure 15 update modifies 16 cells where the prefix-sum method modifies
//! 64), not wall-clock time. Every engine therefore counts the cells it
//! reads and writes, so the benches can reproduce the paper's arithmetic
//! exactly.

use std::fmt;
use std::ops::{Add, Sub};
use std::sync::atomic::{AtomicU64, Ordering};

/// Running totals of cell accesses and operations for one engine.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CostStats {
    /// Cells read from any backing array (A, P, RP, or overlay).
    pub cell_reads: u64,
    /// Cells written to any backing array.
    pub cell_writes: u64,
    /// Range queries answered.
    pub queries: u64,
    /// Point updates applied.
    pub updates: u64,
}

impl CostStats {
    /// Total cells touched (reads + writes).
    pub fn cells_touched(&self) -> u64 {
        self.cell_reads + self.cell_writes
    }

    /// Mean cells read per query, or `None` before the first query.
    pub fn reads_per_query(&self) -> Option<f64> {
        // lint:allow(L4): diagnostics; f64 rounding beyond 2^53 ops is irrelevant
        (self.queries != 0).then(|| self.cell_reads as f64 / self.queries as f64)
    }

    /// Mean cells written per update, or `None` before the first update.
    pub fn writes_per_update(&self) -> Option<f64> {
        // lint:allow(L4): diagnostics; f64 rounding beyond 2^53 ops is irrelevant
        (self.updates != 0).then(|| self.cell_writes as f64 / self.updates as f64)
    }
}

impl Add for CostStats {
    type Output = CostStats;

    fn add(self, rhs: CostStats) -> CostStats {
        CostStats {
            cell_reads: self.cell_reads + rhs.cell_reads,
            cell_writes: self.cell_writes + rhs.cell_writes,
            queries: self.queries + rhs.queries,
            updates: self.updates + rhs.updates,
        }
    }
}

impl Sub for CostStats {
    type Output = CostStats;

    fn sub(self, rhs: CostStats) -> CostStats {
        CostStats {
            cell_reads: self.cell_reads - rhs.cell_reads,
            cell_writes: self.cell_writes - rhs.cell_writes,
            queries: self.queries - rhs.queries,
            updates: self.updates - rhs.updates,
        }
    }
}

impl fmt::Display for CostStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} writes={} queries={} updates={}",
            self.cell_reads, self.cell_writes, self.queries, self.updates
        )
    }
}

/// Interior-mutable counter an engine embeds so `&self` queries can record
/// their reads.
///
/// Backed by relaxed atomics so engines stay `Sync` and can sit behind
/// [`crate::SharedEngine`]'s read lock; relaxed ordering is sufficient
/// because the counters carry no synchronization responsibility.
#[derive(Debug, Default)]
pub struct StatsCell {
    cell_reads: AtomicU64,
    cell_writes: AtomicU64,
    queries: AtomicU64,
    updates: AtomicU64,
}

impl StatsCell {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        StatsCell::default()
    }

    /// Snapshot of the current totals.
    pub fn get(&self) -> CostStats {
        CostStats {
            cell_reads: self.cell_reads.load(Ordering::Relaxed),
            cell_writes: self.cell_writes.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.cell_reads.store(0, Ordering::Relaxed);
        self.cell_writes.store(0, Ordering::Relaxed);
        self.queries.store(0, Ordering::Relaxed);
        self.updates.store(0, Ordering::Relaxed);
    }

    /// Records `n` cell reads.
    #[inline]
    pub fn reads(&self, n: u64) {
        self.cell_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` cell writes.
    #[inline]
    pub fn writes(&self, n: u64) {
        self.cell_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one answered query.
    #[inline]
    pub fn query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one applied update.
    #[inline]
    pub fn update(&self) {
        self.updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` applied updates in one add — batch paths coalesce
    /// their op counting the same way they coalesce cell counts.
    #[inline]
    pub fn updates_n(&self, n: u64) {
        self.updates.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` answered queries in one add — the parallel query
    /// front-end merges shard-local counts on join instead of touching
    /// the shared counter once per query.
    #[inline]
    pub fn queries_n(&self, n: u64) {
        self.queries.fetch_add(n, Ordering::Relaxed);
    }

    /// Folds a whole snapshot into the counters (e.g. carrying history
    /// across a structure rebuild).
    pub fn add_snapshot(&self, s: CostStats) {
        self.cell_reads.fetch_add(s.cell_reads, Ordering::Relaxed);
        self.cell_writes.fetch_add(s.cell_writes, Ordering::Relaxed);
        self.queries.fetch_add(s.queries, Ordering::Relaxed);
        self.updates.fetch_add(s.updates, Ordering::Relaxed);
    }
}

impl Clone for StatsCell {
    fn clone(&self) -> Self {
        let snap = self.get();
        let c = StatsCell::new();
        c.reads(snap.cell_reads);
        c.writes(snap.cell_writes);
        c.queries.store(snap.queries, Ordering::Relaxed);
        c.updates.store(snap.updates, Ordering::Relaxed);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = StatsCell::new();
        s.reads(3);
        s.writes(2);
        s.reads(1);
        s.query();
        s.update();
        let snap = s.get();
        assert_eq!(snap.cell_reads, 4);
        assert_eq!(snap.cell_writes, 2);
        assert_eq!(snap.queries, 1);
        assert_eq!(snap.updates, 1);
        assert_eq!(snap.cells_touched(), 6);
    }

    #[test]
    fn updates_n_matches_repeated_update() {
        let a = StatsCell::new();
        let b = StatsCell::new();
        for _ in 0..5 {
            a.update();
        }
        b.updates_n(5);
        assert_eq!(a.get(), b.get());
    }

    #[test]
    fn queries_n_matches_repeated_query() {
        let a = StatsCell::new();
        let b = StatsCell::new();
        for _ in 0..7 {
            a.query();
        }
        b.queries_n(7);
        assert_eq!(a.get(), b.get());
    }

    #[test]
    fn reset_zeroes() {
        let s = StatsCell::new();
        s.reads(10);
        s.reset();
        assert_eq!(s.get(), CostStats::default());
    }

    #[test]
    fn per_op_averages() {
        let mut s = CostStats::default();
        assert_eq!(s.reads_per_query(), None);
        s.queries = 4;
        s.cell_reads = 16;
        assert_eq!(s.reads_per_query(), Some(4.0));
        s.updates = 2;
        s.cell_writes = 10;
        assert_eq!(s.writes_per_update(), Some(5.0));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = CostStats {
            cell_reads: 5,
            cell_writes: 3,
            queries: 2,
            updates: 1,
        };
        let b = CostStats {
            cell_reads: 1,
            cell_writes: 1,
            queries: 1,
            updates: 0,
        };
        assert_eq!((a + b) - b, a);
    }
}
