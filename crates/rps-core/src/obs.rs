//! Engine metrics: the observability layer's view of the cost model.
//!
//! The paper's trade-off — O(1)-read queries against O(n^{d/2}) updates
//! — is counted per engine instance by [`crate::stats::StatsCell`];
//! this module adds the *process-wide* layer on top: operation counts
//! and latency histograms per engine kind, scratch-reuse accounting,
//! and the `query_many` corner-cache hit rate, all registered with
//! [`rps_obs::registry()`] for `rps-cube stats` / `--metrics-file`
//! exposition (see docs/OBSERVABILITY.md for the full catalog).
//!
//! Everything here follows the crate's hot-path rules: metrics are
//! `static` relaxed atomics touched directly (registration happens once
//! behind a `OnceLock`), latency spans obey the global
//! [`rps_obs::set_timing`] gate, and nothing allocates per operation.

use std::sync::OnceLock;

use rps_obs::{registry, Counter, Gauge, Histogram};

/// Which engine implementation emitted an operation — the `engine`
/// label on the `rps_engine_*` metric families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// In-memory [`crate::RpsEngine`].
    Rps,
    /// Disk-resident `rps-storage::DiskRpsEngine` (RP array on pages).
    Disk,
    /// WAL-fronted `rps-storage::DurableEngine`.
    Durable,
}

/// Operation counters and latency histograms for one engine kind.
#[derive(Debug)]
pub struct EngineMetrics {
    /// Range-sum queries served (attempts, counted at entry).
    pub queries: Counter,
    /// Point updates applied (attempts, counted at entry).
    pub updates: Counter,
    /// Batch-update calls.
    pub batches: Counter,
    /// Individual updates folded into batches.
    pub batch_updates: Counter,
    /// Query latency (ns; populated only while timing is enabled).
    pub query_ns: Histogram,
    /// Update latency (ns; populated only while timing is enabled).
    pub update_ns: Histogram,
}

impl EngineMetrics {
    const fn new() -> Self {
        EngineMetrics {
            queries: Counter::new(),
            updates: Counter::new(),
            batches: Counter::new(),
            batch_updates: Counter::new(),
            query_ns: Histogram::new(),
            update_ns: Histogram::new(),
        }
    }
}

/// Cross-engine metrics owned by `rps-core` itself.
#[derive(Debug)]
pub struct CoreMetrics {
    /// `query_many` prefix reconstructions answered from the corner
    /// cache instead of recomputed.
    pub query_many_corner_hits: Counter,
    /// `query_many` corner-cache misses (actual reconstructions).
    pub query_many_corner_misses: Counter,
    /// Hot-path ops served by the thread-local reusable scratch.
    pub scratch_reuse: Counter,
    /// Ops that fell back to a fresh scratch (re-entrant `with_scratch`).
    pub scratch_fresh: Counter,
    /// Worker shards fanned out by `query_many_parallel` batches.
    pub parallel_query_shards: Counter,
    /// Contiguous runs processed by the lane-width kernels (runs of at
    /// least [`crate::rps::kernels::LANES`] cells).
    pub lane_runs: Counter,
    /// `range_update` calls answered by an engine fast path (anything
    /// cheaper than the per-cell default loop).
    pub range_update_fast: Counter,
    /// `range_update` calls that fell through to the per-cell default.
    pub range_update_slow: Counter,
    /// Conceptual cells covered by `range_update` regions (the work a
    /// per-cell loop would have done, fast path or not).
    pub range_update_cells: Counter,
    /// `range_update` latency (ns; populated only while timing is
    /// enabled).
    pub range_update_ns: Histogram,
}

/// Metrics for the versioned snapshot engine
/// ([`crate::versioned::VersionedEngine`]).
#[derive(Debug)]
pub struct SnapshotMetrics {
    /// Immutable versions published by the writer.
    pub versions: Counter,
    /// Box granules (overlay or RP) cloned copy-on-write because a
    /// published version still referenced them.
    pub cow_boxes: Counter,
    /// Reader handles currently registered in an epoch slot.
    pub readers: Gauge,
    /// Readers currently holding a pinned snapshot.
    pub pinned_readers: Gauge,
}

static RPS: EngineMetrics = EngineMetrics::new();
static DISK: EngineMetrics = EngineMetrics::new();
static DURABLE: EngineMetrics = EngineMetrics::new();
static CORE: CoreMetrics = CoreMetrics {
    query_many_corner_hits: Counter::new(),
    query_many_corner_misses: Counter::new(),
    scratch_reuse: Counter::new(),
    scratch_fresh: Counter::new(),
    parallel_query_shards: Counter::new(),
    lane_runs: Counter::new(),
    range_update_fast: Counter::new(),
    range_update_slow: Counter::new(),
    range_update_cells: Counter::new(),
    range_update_ns: Histogram::new(),
};
static SNAPSHOT: SnapshotMetrics = SnapshotMetrics {
    versions: Counter::new(),
    cow_boxes: Counter::new(),
    readers: Gauge::new(),
    pinned_readers: Gauge::new(),
};

fn register_kind(m: &'static EngineMetrics, labels: &'static [(&'static str, &'static str)]) {
    let reg = registry();
    reg.counter(
        "rps_engine_queries_total",
        "Range-sum queries served",
        "ops",
        "rps-core",
        labels,
        &m.queries,
    );
    reg.counter(
        "rps_engine_updates_total",
        "Point updates applied",
        "ops",
        "rps-core",
        labels,
        &m.updates,
    );
    reg.counter(
        "rps_engine_batches_total",
        "Batch-update calls",
        "ops",
        "rps-core",
        labels,
        &m.batches,
    );
    reg.counter(
        "rps_engine_batch_updates_total",
        "Updates applied through batches",
        "ops",
        "rps-core",
        labels,
        &m.batch_updates,
    );
    reg.histogram(
        "rps_engine_query_ns",
        "Query latency",
        "ns",
        "rps-core",
        labels,
        &m.query_ns,
    );
    reg.histogram(
        "rps_engine_update_ns",
        "Update latency",
        "ns",
        "rps-core",
        labels,
        &m.update_ns,
    );
}

fn register_all() {
    register_kind(&RPS, &[("engine", "rps")]);
    register_kind(&DISK, &[("engine", "disk")]);
    register_kind(&DURABLE, &[("engine", "durable")]);
    let reg = registry();
    reg.counter(
        "rps_query_many_corner_hits_total",
        "query_many prefix reconstructions served from the corner cache",
        "ops",
        "rps-core",
        &[],
        &CORE.query_many_corner_hits,
    );
    reg.counter(
        "rps_query_many_corner_misses_total",
        "query_many corner-cache misses (reconstructions computed)",
        "ops",
        "rps-core",
        &[],
        &CORE.query_many_corner_misses,
    );
    reg.counter(
        "rps_scratch_reuse_total",
        "Hot-path ops served by the thread-local reusable scratch",
        "ops",
        "rps-core",
        &[],
        &CORE.scratch_reuse,
    );
    reg.counter(
        "rps_scratch_fresh_total",
        "Ops that fell back to a fresh scratch (re-entrant with_scratch)",
        "ops",
        "rps-core",
        &[],
        &CORE.scratch_fresh,
    );
    reg.counter(
        "rps_parallel_query_shards_total",
        "Worker shards fanned out by query_many_parallel batches",
        "ops",
        "rps-core",
        &[],
        &CORE.parallel_query_shards,
    );
    reg.counter(
        "rps_lane_runs_total",
        "Contiguous runs processed by the lane-width kernels",
        "ops",
        "rps-core",
        &[],
        &CORE.lane_runs,
    );
    reg.counter(
        "rps_range_update_fast_total",
        "range_update calls answered by an engine fast path",
        "ops",
        "rps-core",
        &[],
        &CORE.range_update_fast,
    );
    reg.counter(
        "rps_range_update_slow_total",
        "range_update calls served by the per-cell default loop",
        "ops",
        "rps-core",
        &[],
        &CORE.range_update_slow,
    );
    reg.counter(
        "rps_range_update_cells_total",
        "Conceptual cells covered by range_update regions",
        "cells",
        "rps-core",
        &[],
        &CORE.range_update_cells,
    );
    reg.histogram(
        "rps_range_update_ns",
        "range_update latency",
        "ns",
        "rps-core",
        &[],
        &CORE.range_update_ns,
    );
    reg.counter(
        "rps_snapshot_versions_total",
        "Immutable versions published by the versioned engine's writer",
        "ops",
        "rps-core",
        &[],
        &SNAPSHOT.versions,
    );
    reg.counter(
        "rps_snapshot_cow_boxes_total",
        "Box granules cloned copy-on-write during versioned publishes",
        "boxes",
        "rps-core",
        &[],
        &SNAPSHOT.cow_boxes,
    );
    reg.gauge(
        "rps_snapshot_readers",
        "Reader handles currently registered with a versioned engine",
        "readers",
        "rps-core",
        &[],
        &SNAPSHOT.readers,
    );
    reg.gauge(
        "rps_snapshot_pinned_readers",
        "Readers currently holding a pinned versioned snapshot",
        "readers",
        "rps-core",
        &[],
        &SNAPSHOT.pinned_readers,
    );
}

#[inline]
fn ensure_registered() {
    static REGISTERED: OnceLock<()> = OnceLock::new();
    REGISTERED.get_or_init(register_all);
}

/// The metrics for one engine kind. First call registers every
/// `rps-core` metric with the global registry; afterwards this is one
/// initialized-`OnceLock` load.
#[inline]
pub fn engine(kind: EngineKind) -> &'static EngineMetrics {
    ensure_registered();
    match kind {
        EngineKind::Rps => &RPS,
        EngineKind::Disk => &DISK,
        EngineKind::Durable => &DURABLE,
    }
}

/// The cross-engine `rps-core` metrics (registering on first use, like
/// [`engine`]).
#[inline]
pub fn core() -> &'static CoreMetrics {
    ensure_registered();
    &CORE
}

/// The versioned-snapshot metrics (registering on first use, like
/// [`engine`]).
#[inline]
pub fn snapshot() -> &'static SnapshotMetrics {
    ensure_registered();
    &SNAPSHOT
}
