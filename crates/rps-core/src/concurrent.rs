//! A thread-safe engine wrapper for read-heavy OLAP service workloads.
//!
//! The paper's target deployment — many analysts querying while a feed
//! applies updates — is naturally a readers–writer problem: queries are
//! `&self` and side-effect-free on every engine, updates are `&mut self`.
//! [`SharedEngine`] wraps any engine in an `RwLock` so queries run
//! concurrently and updates serialize, with snapshot-consistent answers
//! (a query never observes a half-applied update, since updates hold the
//! write lock across the whole RP-cascade + overlay walk).
//!
//! Note: the per-engine [`crate::CostStats`] counters use `Cell` and are
//! *not* shared across threads; `SharedEngine` therefore exposes its own
//! atomic op counters instead of the cell-level ones.
//!
//! For workloads where readers dominate and writer stalls are
//! unacceptable, prefer [`crate::VersionedEngine`]: it removes the
//! reader side of this lock entirely by publishing immutable
//! copy-on-write snapshots (see `docs/PERFORMANCE.md` §8 for the
//! trade-off).

use crate::sync_compat::{Arc, AtomicU64, Ordering, RwLock};

use ndcube::{NdError, Region};

use crate::engine::RangeSumEngine;
use crate::value::GroupValue;

/// Cheap-to-clone, thread-safe handle around a range-sum engine.
///
/// ```
/// use rps_core::{RpsEngine, SharedEngine};
/// use ndcube::Region;
///
/// let shared = SharedEngine::new(RpsEngine::<i64>::zeros(&[8, 8]).unwrap());
/// let handle = shared.clone();
/// std::thread::spawn(move || handle.update(&[2, 2], 5).unwrap())
///     .join()
///     .unwrap();
/// let total: i64 = shared.query(&Region::new(&[0, 0], &[7, 7]).unwrap()).unwrap();
/// assert_eq!(total, 5);
/// ```
#[derive(Debug)]
pub struct SharedEngine<E> {
    inner: Arc<Shared<E>>,
}

#[derive(Debug)]
struct Shared<E> {
    // The sanctioned nestings, enforced workspace-wide by the L7 lint:
    // the engine RwLock is always the outermost guard, and a disk-backed
    // engine's page-pool RefCell (`DiskRpsEngine::pool` in the storage
    // crate) may only be borrowed while it is held. In the versioned
    // engine (`crate::versioned`), the writer mutex is the outermost
    // guard and publication-ring slot locks are only taken beneath it;
    // reader pins take a slot lock alone, never the writer mutex.
    // lock-order: engine < pool
    // lock-order: writer < slot
    engine: RwLock<E>,
    queries: AtomicU64,
    updates: AtomicU64,
}

impl<E> Clone for SharedEngine<E> {
    fn clone(&self) -> Self {
        SharedEngine {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<E> SharedEngine<E> {
    /// Wraps an engine.
    pub fn new(engine: E) -> Self {
        SharedEngine {
            inner: Arc::new(Shared {
                engine: RwLock::new(engine),
                queries: AtomicU64::new(0),
                updates: AtomicU64::new(0),
            }),
        }
    }

    /// Total queries served across all handles.
    pub fn query_count(&self) -> u64 {
        self.inner.queries.load(Ordering::Relaxed)
    }

    /// Total updates applied across all handles.
    pub fn update_count(&self) -> u64 {
        self.inner.updates.load(Ordering::Relaxed)
    }

    /// Runs a closure with shared (read) access to the engine.
    pub fn read<R>(&self, f: impl FnOnce(&E) -> R) -> R {
        // lint:allow(L2): poisoning means a writer already panicked; fail fast is the policy
        f(&self.inner.engine.read().expect("engine lock poisoned"))
    }

    /// Runs a closure with exclusive (write) access to the engine.
    pub fn write<R>(&self, f: impl FnOnce(&mut E) -> R) -> R {
        // lint:allow(L2): poisoning means a writer already panicked; fail fast is the policy
        f(&mut self.inner.engine.write().expect("engine lock poisoned"))
    }
}

impl<E> SharedEngine<E> {
    /// Concurrent range-sum query (shared lock).
    pub fn query<T: GroupValue>(&self, region: &Region) -> Result<T, NdError>
    where
        E: RangeSumEngine<T>,
    {
        let out = self.read(|e| e.query(region));
        if out.is_ok() {
            self.inner.queries.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Serialized point update (exclusive lock).
    pub fn update<T: GroupValue>(&self, coords: &[usize], delta: T) -> Result<(), NdError>
    where
        E: RangeSumEngine<T>,
    {
        let out = self.write(|e| e.update(coords, delta));
        if out.is_ok() {
            self.inner.updates.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Serialized bulk range update (exclusive lock): the whole rectangle
    /// becomes visible atomically, like a single point update.
    pub fn range_update<T: GroupValue>(&self, region: &Region, delta: T) -> Result<(), NdError>
    where
        E: RangeSumEngine<T>,
    {
        let out = self.write(|e| e.range_update(region, delta));
        if out.is_ok() {
            self.inner.updates.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Reads one cell.
    pub fn cell<T: GroupValue>(&self, coords: &[usize]) -> Result<T, NdError>
    where
        E: RangeSumEngine<T>,
    {
        self.read(|e| e.cell(coords))
    }

    /// Answers a batch of queries, fanned out across `threads` worker
    /// shards, under one shared-lock hold — the whole batch observes one
    /// snapshot, exactly like a single [`SharedEngine::query`] does.
    pub fn query_many_parallel<T>(
        &self,
        regions: &[Region],
        threads: usize,
    ) -> Result<Vec<T>, NdError>
    where
        T: GroupValue + Send + Sync,
        E: std::borrow::Borrow<crate::RpsEngine<T>>,
    {
        let out = self.read(|e| e.borrow().query_many_parallel(regions, threads));
        if out.is_ok() {
            self.inner.queries.fetch_add(
                u64::try_from(regions.len()).unwrap_or(u64::MAX),
                Ordering::Relaxed,
            );
        }
        out
    }

    /// Sum of the entire cube.
    pub fn total<T: GroupValue>(&self) -> T
    where
        E: RangeSumEngine<T>,
    {
        self.read(super::engine::RangeSumEngine::total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveEngine;
    use crate::rps::RpsEngine;
    use crate::testdata::paper_array_a;
    use std::thread;

    #[test]
    fn basic_shared_ops() {
        let shared = SharedEngine::new(RpsEngine::from_cube_uniform(&paper_array_a(), 3).unwrap());
        let all = Region::new(&[0, 0], &[8, 8]).unwrap();
        assert_eq!(shared.query(&all).unwrap(), 290);
        shared.update(&[1, 1], 1).unwrap();
        assert_eq!(shared.query(&all).unwrap(), 291);
        assert_eq!(shared.query_count(), 2);
        assert_eq!(shared.update_count(), 1);
    }

    #[test]
    fn clones_share_state() {
        let a = SharedEngine::new(RpsEngine::<i64>::zeros(&[8, 8]).unwrap());
        let b = a.clone();
        b.update(&[3, 3], 42).unwrap();
        assert_eq!(a.cell(&[3, 3]).unwrap(), 42);
    }

    #[test]
    fn concurrent_readers_and_writer_stay_consistent() {
        // 4 reader threads hammer full-cube queries while a writer applies
        // deltas that always come in consistent ±pairs within one lock
        // hold... they don't — each update is atomic, so the only invariant
        // readers can check is that the total matches SOME prefix of the
        // update sequence: totals must be non-decreasing (all deltas ≥ 0).
        let shared = SharedEngine::new(RpsEngine::<i64>::zeros(&[32, 32]).unwrap());
        let full = Region::new(&[0, 0], &[31, 31]).unwrap();

        let writer = {
            let shared = shared.clone();
            thread::spawn(move || {
                for i in 0..500usize {
                    shared.update(&[i % 32, (i * 7) % 32], 1).unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let shared = shared.clone();
                let full = full.clone();
                thread::spawn(move || {
                    let mut last = 0i64;
                    for _ in 0..200 {
                        let t = shared.query(&full).unwrap();
                        assert!(t >= last, "total went backwards: {last} → {t}");
                        assert!(t <= 500);
                        last = t;
                    }
                })
            })
            .collect();

        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(shared.total(), 500);
        assert_eq!(shared.update_count(), 500);
    }

    #[test]
    fn parallel_writers_all_land() {
        let shared = SharedEngine::new(NaiveEngine::<i64>::zeros(&[16, 16]).unwrap());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let shared = shared.clone();
                thread::spawn(move || {
                    for i in 0..100usize {
                        shared.update(&[(t * 2) % 16, i % 16], 1).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.total(), 800);
    }

    #[test]
    fn shared_query_many_parallel_matches_serial_queries() {
        let shared = SharedEngine::new(RpsEngine::from_cube_uniform(&paper_array_a(), 3).unwrap());
        let regions: Vec<Region> = (0..24)
            .map(|i| Region::new(&[i % 5, i % 4], &[(i % 5) + 3, (i % 4) + 4]).unwrap())
            .collect();
        let serial: Vec<i64> = regions.iter().map(|r| shared.query(r).unwrap()).collect();
        let before = shared.query_count();
        let par = shared.query_many_parallel::<i64>(&regions, 4).unwrap();
        assert_eq!(par, serial);
        assert_eq!(shared.query_count(), before + 24);
    }

    #[test]
    fn read_write_escape_hatches() {
        let shared = SharedEngine::new(RpsEngine::<i64>::zeros(&[9, 9]).unwrap());
        shared.write(|e| e.apply_batch(&[(vec![0, 0], 5), (vec![8, 8], 6)]).unwrap());
        let k = shared.read(|e| e.grid().box_size().to_vec());
        assert_eq!(k, vec![3, 3]);
        assert_eq!(shared.total(), 11);
    }
}
