//! A d-dimensional Fenwick tree (binary indexed tree) engine.
//!
//! Not part of the ICDE'99 paper itself, but the classic point on the
//! query/update trade-off curve that later range-sum work (e.g. Chan &
//! Ioannidis, SIGMOD'99) compares against: O(log^d n) for **both** queries
//! and updates, with a query·update product of O(log^{2d} n) — asymptotically
//! far below O(n^{d/2}) but with a larger constant per query than RPS's
//! 2^d·(d+2) reads. Including it lets the benches show where each method
//! wins.

use ndcube::{NdCube, NdError, Region, Shape};

use crate::corners::range_sum_from_prefix;
use crate::engine::RangeSumEngine;
use crate::stats::{CostStats, StatsCell};
use crate::value::GroupValue;

/// Range-sum engine backed by a d-dimensional Fenwick tree.
///
/// The tree array has the same cell count as `A` (1-based internally).
///
/// ```
/// use rps_core::{FenwickEngine, RangeSumEngine};
/// use ndcube::Region;
///
/// let mut e = FenwickEngine::<i64>::zeros(&[16, 16]).unwrap();
/// e.update(&[3, 4], 10).unwrap();
/// e.update(&[12, 9], 5).unwrap();
/// let r = Region::new(&[0, 0], &[10, 10]).unwrap();
/// assert_eq!(e.query(&r).unwrap(), 10);
/// assert_eq!(e.total(), 15);
/// ```
///
/// **Range updates** use the classic dual-BIT trick generalized to `d`
/// dimensions: a suffix-add of `δ` at corner `p` contributes
/// `δ·∏ᵢ(yᵢ − pᵢ + 1)` to `prefix(y)` for `y ≥ p`; expanding
/// `∏ᵢ((yᵢ+1) − pᵢ)` over subsets `S` of the dimensions turns that into
/// `2^d` auxiliary trees, where tree `S` takes a point-add of
/// `(−1)^{d−|S|}·δ·∏_{i∉S} pᵢ` at `p` and contributes
/// `prefix_S(y)·∏_{i∈S}(yᵢ+1)` to every later query. A range update is
/// the usual `2^d`-corner inclusion–exclusion of suffix-adds — so
/// `O(4^d·log^d n)` total, independent of the rectangle size. The
/// auxiliary trees are allocated on the first range update; point-only
/// workloads keep the original single-tree footprint.
#[derive(Debug, Clone)]
pub struct FenwickEngine<T> {
    tree: NdCube<T>,
    /// `2^d` auxiliary trees for the dual-BIT range-update decomposition
    /// (empty until the first range update). `aux[s]` accumulates the
    /// corner terms whose query-side factor is `∏_{i∈s}(yᵢ+1)`.
    aux: Vec<NdCube<T>>,
    /// Cached grand total, bumped on every update — `total()` in O(1).
    total: T,
    stats: StatsCell,
}

/// One Fenwick prefix chain walk over `tree` (recursive over dimensions).
fn tree_prefix_rec<T: GroupValue>(
    tree: &NdCube<T>,
    stats: &StatsCell,
    x: &[usize],
    dim: usize,
    idx: &mut [usize],
) -> T {
    let mut acc = T::zero();
    // 1-based chain: i = x[dim]+1; i > 0; i -= i & (-i)
    let mut i = x[dim] + 1;
    while i > 0 {
        idx[dim] = i - 1;
        if dim + 1 == x.len() {
            let lin = tree.shape().linear_unchecked(idx);
            stats.reads(1);
            acc.add_assign(tree.get_linear(lin));
        } else {
            let sub = tree_prefix_rec(tree, stats, x, dim + 1, idx);
            acc.add_assign(&sub);
        }
        i -= i & i.wrapping_neg();
    }
    acc
}

/// One Fenwick point-add chain walk over `tree` (recursive over
/// dimensions).
fn tree_add_rec<T: GroupValue>(
    tree: &mut NdCube<T>,
    stats: &StatsCell,
    coords: &[usize],
    dim: usize,
    idx: &mut [usize],
    delta: &T,
) {
    let n = tree.shape().dim(dim);
    let mut i = coords[dim] + 1;
    while i <= n {
        idx[dim] = i - 1;
        if dim + 1 == coords.len() {
            let lin = tree.shape().linear_unchecked(idx);
            tree.get_linear_mut(lin).add_assign(delta);
            stats.writes(1);
        } else {
            tree_add_rec(tree, stats, coords, dim + 1, idx, delta);
        }
        i += i & i.wrapping_neg();
    }
}

/// Applies the `2^d`-corner dual-BIT decomposition of a range update to
/// the auxiliary trees, allocating them on first use — shared by
/// [`FenwickEngine`] and [`crate::BlockedFenwickEngine`], whose base
/// layouts differ but whose range-update mechanism is identical.
pub(crate) fn range_update_aux<T: GroupValue>(
    shape: &Shape,
    aux: &mut Vec<NdCube<T>>,
    stats: &StatsCell,
    region: &Region,
    delta: &T,
) {
    let d = shape.ndim();
    if aux.is_empty() {
        // One-time lazy allocation on the first range update; point-only
        // workloads never pay for the auxiliary trees.
        *aux = (0..1usize << d)
            .map(|_| {
                NdCube::filled(shape.dims(), T::zero())
                    // lint:allow(L2): dims come from the engine's own valid shape
                    .expect("valid dims")
            })
            .collect();
    }
    let mut p = vec![0usize; d];
    let mut idx = vec![0usize; d];
    // Inclusion–exclusion over the 2^d region corners: +δ at lo-side
    // corners, −δ past the hi side; corners past the cube edge are empty
    // suffixes and vanish.
    'corners: for c in 0..1usize << d {
        let mut corner_sign = false;
        for i in 0..d {
            if c & (1 << i) != 0 {
                let past = region.hi()[i] + 1;
                if past >= shape.dim(i) {
                    continue 'corners;
                }
                p[i] = past;
                corner_sign = !corner_sign;
            } else {
                p[i] = region.lo()[i];
            }
        }
        for (s, tree) in aux.iter_mut().enumerate() {
            // lint:allow(L4): ∏ pᵢ ≤ the cube's cell count fits u64
            let mut coeff = 1u64;
            let mut sign = corner_sign;
            for (i, &pi) in p.iter().enumerate() {
                if s & (1 << i) == 0 {
                    coeff *= pi as u64; // lint:allow(L4): pᵢ ≤ n fits u64
                    sign = !sign;
                }
            }
            if coeff == 0 {
                continue; // a zero coordinate outside S: no term
            }
            let mut val = delta.scale(coeff);
            if sign {
                val = T::zero().sub(&val);
            }
            tree_add_rec(tree, stats, &p, 0, &mut idx, &val);
        }
    }
}

/// The auxiliary trees' share of a prefix sum:
/// `Σ_S prefix_S(x) · ∏_{i∈S}(xᵢ+1)`. Zero work while `aux` is empty.
pub(crate) fn aux_prefix_part<T: GroupValue>(
    aux: &[NdCube<T>],
    stats: &StatsCell,
    x: &[usize],
    idx: &mut [usize],
) -> T {
    let mut acc = T::zero();
    // lint:allow(L4): per-dimension factors (≤ dim size) multiply to ≤
    // the cube's cell count, which fits u64.
    for (s, tree) in aux.iter().enumerate() {
        let part = tree_prefix_rec(tree, stats, x, 0, idx);
        if part.is_zero() {
            continue;
        }
        let factor = x
            .iter()
            .enumerate()
            .filter(|&(i, _)| s & (1 << i) != 0)
            .fold(1u64, |f, (_, &xi)| f * (xi + 1) as u64); // lint:allow(L4): ∏(xᵢ+1) ≤ cell count fits u64
        acc.add_assign(&part.scale(factor));
    }
    acc
}

impl<T: GroupValue> FenwickEngine<T> {
    /// Builds the engine over an all-zero cube.
    pub fn zeros(dims: &[usize]) -> Result<Self, NdError> {
        Ok(FenwickEngine {
            tree: NdCube::filled(dims, T::zero())?,
            aux: Vec::new(),
            total: T::zero(),
            stats: StatsCell::new(),
        })
    }

    /// Builds the engine from a data cube by N point updates —
    /// O(N·log^d n) total, amortized fine for the workloads here.
    pub fn from_cube(a: &NdCube<T>) -> Self {
        // lint:allow(L2): dims come from an existing valid shape
        let mut e = FenwickEngine::zeros(a.shape().dims()).expect("valid dims");
        let full = a.shape().full_region();
        let mut total = T::zero();
        a.shape().for_each_region_cell(&full, |coords, lin| {
            let v = a.get_linear(lin);
            total.add_assign(v);
            if !v.is_zero() {
                e.add_internal(coords, v);
            }
        });
        e.total = total;
        e.reset_stats();
        e
    }

    /// Inclusive prefix sum `Sum(A[0,…,0] : A[x])` — O(log^d n) reads
    /// (`O(2^d·log^d n)` once range updates have populated the auxiliary
    /// trees).
    pub fn prefix_sum(&self, x: &[usize]) -> Result<T, NdError> {
        self.tree.shape().check(x)?;
        Ok(self.prefix_internal(x))
    }

    fn prefix_internal(&self, x: &[usize]) -> T {
        let d = x.len();
        let mut idx = vec![0usize; d];
        let mut acc = tree_prefix_rec(&self.tree, &self.stats, x, 0, &mut idx);
        acc.add_assign(&aux_prefix_part(&self.aux, &self.stats, x, &mut idx));
        acc
    }

    fn add_internal(&mut self, coords: &[usize], delta: &T) {
        let d = coords.len();
        let mut idx = vec![0usize; d];
        tree_add_rec(&mut self.tree, &self.stats, coords, 0, &mut idx, delta);
    }
}

impl<T: GroupValue> RangeSumEngine<T> for FenwickEngine<T> {
    fn name(&self) -> &'static str {
        "fenwick"
    }

    fn shape(&self) -> &Shape {
        self.tree.shape()
    }

    fn query(&self, region: &Region) -> Result<T, NdError> {
        self.tree.shape().check_region(region)?;
        let sum = range_sum_from_prefix(region, |corner| self.prefix_internal(corner));
        self.stats.query();
        Ok(sum)
    }

    fn update(&mut self, coords: &[usize], delta: T) -> Result<(), NdError> {
        self.tree.shape().check(coords)?;
        self.total.add_assign(&delta);
        self.add_internal(coords, &delta);
        self.stats.update();
        Ok(())
    }

    // Fast path: the d-dimensional dual-BIT decomposition — 2^d corner
    // suffix-adds into 2^d auxiliary trees, O(4^d·log^d n) regardless of
    // the rectangle size (see the type-level docs).
    fn range_update(&mut self, region: &Region, delta: T) -> Result<(), NdError> {
        let shape = self.tree.shape().clone();
        shape.check_region(region)?;
        let m = crate::obs::core();
        m.range_update_fast.inc();
        m.range_update_cells
            .add(u64::try_from(region.cell_count()).unwrap_or(u64::MAX));
        if delta.is_zero() {
            self.stats.update();
            return Ok(());
        }
        let _span = rps_obs::Span::enter("fenwick.range_update", &m.range_update_ns);
        self.total
            .add_assign(&delta.scale(u64::try_from(region.cell_count()).unwrap_or(u64::MAX)));
        range_update_aux(&shape, &mut self.aux, &self.stats, region, &delta);
        self.stats.update();
        Ok(())
    }

    fn stats(&self) -> CostStats {
        self.stats.get()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }

    fn storage_cells(&self) -> usize {
        self.tree.len() + self.aux.iter().map(NdCube::len).sum::<usize>()
    }

    // O(1): the cached running total, maintained by both update paths.
    fn total(&self) -> T {
        self.total.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::paper_array_a;

    #[test]
    fn matches_brute_force_on_paper_array() {
        let a = paper_array_a();
        let e = FenwickEngine::from_cube(&a);
        for (lo, hi) in [
            ([0, 0], [8, 8]),
            ([2, 3], [7, 5]),
            ([4, 4], [4, 4]),
            ([0, 5], [3, 8]),
        ] {
            let r = Region::new(&lo, &hi).unwrap();
            let brute: i64 = a
                .shape()
                .linear_region_iter(&r)
                .map(|l| *a.get_linear(l))
                .sum();
            assert_eq!(e.query(&r).unwrap(), brute, "region {r:?}");
        }
    }

    #[test]
    fn update_then_query() {
        let mut e = FenwickEngine::<i64>::zeros(&[8, 8]).unwrap();
        e.update(&[3, 4], 10).unwrap();
        e.update(&[0, 0], 1).unwrap();
        e.update(&[7, 7], 5).unwrap();
        assert_eq!(e.total(), 16);
        assert_eq!(
            e.query(&Region::new(&[0, 0], &[3, 4]).unwrap()).unwrap(),
            11
        );
        assert_eq!(e.cell(&[3, 4]).unwrap(), 10);
    }

    #[test]
    fn logarithmic_update_cost() {
        // n = 16: an update touches at most ⌈log2(17)⌉ = 5 chain entries
        // per dimension, so ≤ 25 writes for d = 2 — far below n^d = 256.
        let mut e = FenwickEngine::<i64>::zeros(&[16, 16]).unwrap();
        e.reset_stats();
        e.update(&[0, 0], 1).unwrap(); // worst case: longest chains
        assert!(
            e.stats().cell_writes <= 25,
            "writes = {}",
            e.stats().cell_writes
        );
        assert!(e.stats().cell_writes >= 4);
    }

    #[test]
    fn logarithmic_query_cost() {
        let a = NdCube::from_fn(&[16, 16], |c| (c[0] + c[1]) as i64).unwrap();
        let e = FenwickEngine::from_cube(&a);
        e.reset_stats();
        e.query(&Region::new(&[1, 1], &[14, 14]).unwrap()).unwrap();
        // 4 corners × ≤ 4·4 chain reads each.
        assert!(
            e.stats().cell_reads <= 64,
            "reads = {}",
            e.stats().cell_reads
        );
    }

    #[test]
    fn three_dimensional() {
        let a = NdCube::from_fn(&[5, 4, 6], |c| (c[0] * 31 + c[1] * 7 + c[2]) as i64).unwrap();
        let e = FenwickEngine::from_cube(&a);
        let r = Region::new(&[1, 0, 2], &[4, 3, 5]).unwrap();
        let brute: i64 = a
            .shape()
            .linear_region_iter(&r)
            .map(|l| *a.get_linear(l))
            .sum();
        assert_eq!(e.query(&r).unwrap(), brute);
    }

    #[test]
    fn one_dimensional() {
        let mut e = FenwickEngine::<i64>::zeros(&[10]).unwrap();
        for i in 0..10 {
            e.update(&[i], i as i64).unwrap();
        }
        assert_eq!(
            e.query(&Region::new(&[3], &[6]).unwrap()).unwrap(),
            3 + 4 + 5 + 6
        );
    }

    #[test]
    fn rejects_out_of_bounds() {
        let mut e = FenwickEngine::<i64>::zeros(&[4, 4]).unwrap();
        assert!(e.update(&[4, 0], 1).is_err());
        assert!(e.prefix_sum(&[0, 4]).is_err());
    }

    #[test]
    fn range_update_matches_per_cell_loop() {
        let a = paper_array_a();
        let mut fast = FenwickEngine::from_cube(&a);
        let mut slow = FenwickEngine::from_cube(&a);
        for (lo, hi, delta) in [
            ([0usize, 0usize], [8usize, 8usize], 3i64),
            ([2, 3], [7, 5], -4),
            ([4, 4], [4, 4], 9), // point region
            ([0, 5], [3, 8], 1), // flush against the hi edge
            ([8, 0], [8, 8], -7),
        ] {
            let r = Region::new(&lo, &hi).unwrap();
            fast.range_update(&r, delta).unwrap();
            for c in r.iter() {
                slow.update(&c, delta).unwrap();
            }
            for (qlo, qhi) in [
                ([0usize, 0usize], [8usize, 8usize]),
                ([1, 2], [6, 7]),
                ([8, 8], [8, 8]),
                ([0, 0], [0, 0]),
            ] {
                let q = Region::new(&qlo, &qhi).unwrap();
                assert_eq!(
                    fast.query(&q).unwrap(),
                    slow.query(&q).unwrap(),
                    "query {q:?} after range {r:?}"
                );
            }
        }
    }

    #[test]
    fn range_update_3d_matches_per_cell_loop() {
        let a = NdCube::from_fn(&[5, 4, 6], |c| (c[0] * 31 + c[1] * 7 + c[2]) as i64).unwrap();
        let mut fast = FenwickEngine::from_cube(&a);
        let mut slow = FenwickEngine::from_cube(&a);
        let r = Region::new(&[1, 0, 2], &[4, 2, 5]).unwrap();
        fast.range_update(&r, -13).unwrap();
        for c in r.iter() {
            slow.update(&c, -13).unwrap();
        }
        assert_eq!(fast.materialize(), slow.materialize());
    }

    #[test]
    fn cached_total_is_o1_and_exact() {
        let mut e = FenwickEngine::from_cube(&paper_array_a());
        assert_eq!(e.total(), 290);
        e.update(&[3, 4], 7).unwrap();
        e.range_update(&Region::new(&[1, 1], &[5, 6]).unwrap(), -2)
            .unwrap();
        let full = e.shape().full_region();
        assert_eq!(e.total(), e.query(&full).unwrap());
        // O(1): the cached total reads no tree cells.
        e.reset_stats();
        let _ = e.total();
        assert_eq!(e.stats().cell_reads, 0);
    }

    #[test]
    fn point_only_workloads_allocate_no_aux_trees() {
        let mut e = FenwickEngine::<i64>::zeros(&[16, 16]).unwrap();
        e.update(&[3, 4], 10).unwrap();
        assert_eq!(e.storage_cells(), 256);
        e.range_update(&Region::new(&[0, 0], &[7, 7]).unwrap(), 1)
            .unwrap();
        assert_eq!(e.storage_cells(), 256 * 5); // base + 2² aux trees
    }
}
