//! A d-dimensional Fenwick tree (binary indexed tree) engine.
//!
//! Not part of the ICDE'99 paper itself, but the classic point on the
//! query/update trade-off curve that later range-sum work (e.g. Chan &
//! Ioannidis, SIGMOD'99) compares against: O(log^d n) for **both** queries
//! and updates, with a query·update product of O(log^{2d} n) — asymptotically
//! far below O(n^{d/2}) but with a larger constant per query than RPS's
//! 2^d·(d+2) reads. Including it lets the benches show where each method
//! wins.

use ndcube::{NdCube, NdError, Region, Shape};

use crate::corners::range_sum_from_prefix;
use crate::engine::RangeSumEngine;
use crate::stats::{CostStats, StatsCell};
use crate::value::GroupValue;

/// Range-sum engine backed by a d-dimensional Fenwick tree.
///
/// The tree array has the same cell count as `A` (1-based internally).
///
/// ```
/// use rps_core::{FenwickEngine, RangeSumEngine};
/// use ndcube::Region;
///
/// let mut e = FenwickEngine::<i64>::zeros(&[16, 16]).unwrap();
/// e.update(&[3, 4], 10).unwrap();
/// e.update(&[12, 9], 5).unwrap();
/// let r = Region::new(&[0, 0], &[10, 10]).unwrap();
/// assert_eq!(e.query(&r).unwrap(), 10);
/// assert_eq!(e.total(), 15);
/// ```
#[derive(Debug, Clone)]
pub struct FenwickEngine<T> {
    tree: NdCube<T>,
    stats: StatsCell,
}

impl<T: GroupValue> FenwickEngine<T> {
    /// Builds the engine over an all-zero cube.
    pub fn zeros(dims: &[usize]) -> Result<Self, NdError> {
        Ok(FenwickEngine {
            tree: NdCube::filled(dims, T::zero())?,
            stats: StatsCell::new(),
        })
    }

    /// Builds the engine from a data cube by N point updates —
    /// O(N·log^d n) total, amortized fine for the workloads here.
    pub fn from_cube(a: &NdCube<T>) -> Self {
        // lint:allow(L2): dims come from an existing valid shape
        let mut e = FenwickEngine::zeros(a.shape().dims()).expect("valid dims");
        let full = a.shape().full_region();
        a.shape().for_each_region_cell(&full, |coords, lin| {
            let v = a.get_linear(lin);
            if !v.is_zero() {
                e.add_internal(coords, v);
            }
        });
        e.reset_stats();
        e
    }

    /// Inclusive prefix sum `Sum(A[0,…,0] : A[x])` — O(log^d n) reads.
    pub fn prefix_sum(&self, x: &[usize]) -> Result<T, NdError> {
        self.tree.shape().check(x)?;
        Ok(self.prefix_internal(x))
    }

    fn prefix_internal(&self, x: &[usize]) -> T {
        // Recursive descent over dimensions; at the last dimension the
        // index chain reads tree cells directly.
        let d = x.len();
        let mut idx = vec![0usize; d];
        self.prefix_rec(x, 0, &mut idx)
    }

    fn prefix_rec(&self, x: &[usize], dim: usize, idx: &mut Vec<usize>) -> T {
        let mut acc = T::zero();
        // 1-based chain: i = x[dim]+1; i > 0; i -= i & (-i)
        let mut i = x[dim] + 1;
        while i > 0 {
            idx[dim] = i - 1;
            if dim + 1 == x.len() {
                let lin = self.tree.shape().linear_unchecked(idx);
                self.stats.reads(1);
                acc.add_assign(self.tree.get_linear(lin));
            } else {
                let sub = self.prefix_rec(x, dim + 1, idx);
                acc.add_assign(&sub);
            }
            i -= i & i.wrapping_neg();
        }
        acc
    }

    fn add_internal(&mut self, coords: &[usize], delta: &T) {
        let d = coords.len();
        let mut idx = vec![0usize; d];
        self.add_rec(coords, 0, &mut idx, delta);
    }

    fn add_rec(&mut self, coords: &[usize], dim: usize, idx: &mut Vec<usize>, delta: &T) {
        let n = self.tree.shape().dim(dim);
        let mut i = coords[dim] + 1;
        while i <= n {
            idx[dim] = i - 1;
            if dim + 1 == coords.len() {
                let lin = self.tree.shape().linear_unchecked(idx);
                self.tree.get_linear_mut(lin).add_assign(delta);
                self.stats.writes(1);
            } else {
                self.add_rec(coords, dim + 1, idx, delta);
            }
            i += i & i.wrapping_neg();
        }
    }
}

impl<T: GroupValue> RangeSumEngine<T> for FenwickEngine<T> {
    fn name(&self) -> &'static str {
        "fenwick"
    }

    fn shape(&self) -> &Shape {
        self.tree.shape()
    }

    fn query(&self, region: &Region) -> Result<T, NdError> {
        self.tree.shape().check_region(region)?;
        let sum = range_sum_from_prefix(region, |corner| self.prefix_internal(corner));
        self.stats.query();
        Ok(sum)
    }

    fn update(&mut self, coords: &[usize], delta: T) -> Result<(), NdError> {
        self.tree.shape().check(coords)?;
        self.add_internal(coords, &delta);
        self.stats.update();
        Ok(())
    }

    fn stats(&self) -> CostStats {
        self.stats.get()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }

    fn storage_cells(&self) -> usize {
        self.tree.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::paper_array_a;

    #[test]
    fn matches_brute_force_on_paper_array() {
        let a = paper_array_a();
        let e = FenwickEngine::from_cube(&a);
        for (lo, hi) in [
            ([0, 0], [8, 8]),
            ([2, 3], [7, 5]),
            ([4, 4], [4, 4]),
            ([0, 5], [3, 8]),
        ] {
            let r = Region::new(&lo, &hi).unwrap();
            let brute: i64 = a
                .shape()
                .linear_region_iter(&r)
                .map(|l| *a.get_linear(l))
                .sum();
            assert_eq!(e.query(&r).unwrap(), brute, "region {r:?}");
        }
    }

    #[test]
    fn update_then_query() {
        let mut e = FenwickEngine::<i64>::zeros(&[8, 8]).unwrap();
        e.update(&[3, 4], 10).unwrap();
        e.update(&[0, 0], 1).unwrap();
        e.update(&[7, 7], 5).unwrap();
        assert_eq!(e.total(), 16);
        assert_eq!(
            e.query(&Region::new(&[0, 0], &[3, 4]).unwrap()).unwrap(),
            11
        );
        assert_eq!(e.cell(&[3, 4]).unwrap(), 10);
    }

    #[test]
    fn logarithmic_update_cost() {
        // n = 16: an update touches at most ⌈log2(17)⌉ = 5 chain entries
        // per dimension, so ≤ 25 writes for d = 2 — far below n^d = 256.
        let mut e = FenwickEngine::<i64>::zeros(&[16, 16]).unwrap();
        e.reset_stats();
        e.update(&[0, 0], 1).unwrap(); // worst case: longest chains
        assert!(
            e.stats().cell_writes <= 25,
            "writes = {}",
            e.stats().cell_writes
        );
        assert!(e.stats().cell_writes >= 4);
    }

    #[test]
    fn logarithmic_query_cost() {
        let a = NdCube::from_fn(&[16, 16], |c| (c[0] + c[1]) as i64).unwrap();
        let e = FenwickEngine::from_cube(&a);
        e.reset_stats();
        e.query(&Region::new(&[1, 1], &[14, 14]).unwrap()).unwrap();
        // 4 corners × ≤ 4·4 chain reads each.
        assert!(
            e.stats().cell_reads <= 64,
            "reads = {}",
            e.stats().cell_reads
        );
    }

    #[test]
    fn three_dimensional() {
        let a = NdCube::from_fn(&[5, 4, 6], |c| (c[0] * 31 + c[1] * 7 + c[2]) as i64).unwrap();
        let e = FenwickEngine::from_cube(&a);
        let r = Region::new(&[1, 0, 2], &[4, 3, 5]).unwrap();
        let brute: i64 = a
            .shape()
            .linear_region_iter(&r)
            .map(|l| *a.get_linear(l))
            .sum();
        assert_eq!(e.query(&r).unwrap(), brute);
    }

    #[test]
    fn one_dimensional() {
        let mut e = FenwickEngine::<i64>::zeros(&[10]).unwrap();
        for i in 0..10 {
            e.update(&[i], i as i64).unwrap();
        }
        assert_eq!(
            e.query(&Region::new(&[3], &[6]).unwrap()).unwrap(),
            3 + 4 + 5 + 6
        );
    }

    #[test]
    fn rejects_out_of_bounds() {
        let mut e = FenwickEngine::<i64>::zeros(&[4, 4]).unwrap();
        assert!(e.update(&[4, 0], 1).is_err());
        assert!(e.prefix_sum(&[0, 4]).is_err());
    }
}
