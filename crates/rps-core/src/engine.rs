//! The common interface of every range-sum method.

use ndcube::{NdCube, NdError, Region, Shape};

use crate::stats::CostStats;
use crate::value::GroupValue;

/// A dynamic range-sum structure over a dense data cube.
///
/// Every method in the paper — naive, prefix sum, relative prefix sum —
/// plus the Fenwick extension implements this trait, so workloads, tests,
/// and benches can drive them interchangeably.
///
/// Semantics: the engine represents a conceptual cube `A`; `query` returns
/// `⊕` over all cells of `A` inside the (inclusive) region; `update` adds a
/// delta to a single cell of `A`.
pub trait RangeSumEngine<T: GroupValue> {
    /// Human-readable method name ("naive", "prefix-sum", …).
    fn name(&self) -> &'static str;

    /// The shape of the conceptual cube `A`.
    fn shape(&self) -> &Shape;

    /// Range-sum over an inclusive region.
    fn query(&self, region: &Region) -> Result<T, NdError>;

    /// Adds `delta` to cell `coords` of the conceptual cube.
    fn update(&mut self, coords: &[usize], delta: T) -> Result<(), NdError>;

    /// Adds `delta` to **every** cell of the (inclusive) region — the bulk
    /// form real OLAP write streams use when a whole sub-array is adjusted
    /// at once (a price change over a date range, a reclassified slice).
    ///
    /// Default: one point update per cell, so every implementor is
    /// conformant by construction. Engines with a cheaper bulk path
    /// override it; the conformance suite pins every override bit-identical
    /// to this per-cell loop.
    fn range_update(&mut self, region: &Region, delta: T) -> Result<(), NdError> {
        self.shape().check_region(region)?;
        let m = crate::obs::core();
        m.range_update_slow.inc();
        m.range_update_cells
            .add(u64::try_from(region.cell_count()).unwrap_or(u64::MAX));
        if delta.is_zero() {
            return Ok(());
        }
        for coords in region.iter() {
            self.update(&coords, delta.clone())?;
        }
        Ok(())
    }

    /// Running cell-access counters.
    fn stats(&self) -> CostStats;

    /// Resets the counters (the structure itself is untouched).
    fn reset_stats(&self);

    /// Cells of storage allocated by this engine across all of its backing
    /// structures (used for the Figure 16 style storage accounting).
    fn storage_cells(&self) -> usize;

    /// The current value of one cell of `A`.
    ///
    /// Default: a point-region query, which every method answers in O(1)
    /// (or O(n^d) for naive, where it is a direct read anyway).
    fn cell(&self, coords: &[usize]) -> Result<T, NdError> {
        self.query(&Region::point(coords)?)
    }

    /// Overwrites a cell with `value` (the paper's "given any new value for
    /// a cell" update model), implemented as a read plus a delta update.
    fn set(&mut self, coords: &[usize], value: T) -> Result<(), NdError> {
        let old = self.cell(coords)?;
        self.update(coords, value.sub(&old))
    }

    /// Sum over the whole cube.
    fn total(&self) -> T {
        self.query(&self.shape().full_region())
            // lint:allow(L2): the engine's own full region always passes its own check
            .expect("full region is always valid")
    }

    /// Materializes the conceptual cube `A` cell by cell. Intended for
    /// tests and debugging (O(N) point queries).
    fn materialize(&self) -> NdCube<T> {
        let shape = self.shape().clone();
        // lint:allow(L2): from_fn yields only in-bounds coordinates of the engine's own shape
        NdCube::from_fn(shape.dims(), |c| self.cell(c).expect("in-bounds cell"))
            // lint:allow(L2): dims come from an existing valid shape
            .expect("valid shape")
    }
}

#[cfg(test)]
mod tests {
    // The trait itself is exercised through its implementors; shared
    // behavioural tests live in `tests/engine_conformance.rs`.
}
