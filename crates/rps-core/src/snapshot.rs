//! Snapshot persistence: a small, versioned, checksummed binary format
//! for data cubes and RPS engines.
//!
//! Warehouse refresh cycles (the paper's "updated weekly or daily")
//! need the structure to survive restarts without an O(N·2^d) reload
//! from queries. A snapshot stores the recovered cube `A` plus the box
//! geometry; loading rebuilds RP and the overlay in O(d·N).
//!
//! ```
//! use rps_core::{snapshot, RangeSumEngine, RpsEngine};
//!
//! let mut engine = RpsEngine::<i64>::zeros(&[8, 8]).unwrap();
//! engine.update(&[3, 3], 42).unwrap();
//! let mut buf = Vec::new();
//! snapshot::save_rps(&engine, &mut buf).unwrap();
//! let restored = snapshot::load_rps(&buf[..]).unwrap();
//! assert_eq!(restored.total(), 42);
//! ```
//!
//! Format (little-endian):
//!
//! ```text
//! magic  "RPS1"            4 bytes
//! kind   u8                1 = i64 cube, 2 = rps engine, 3 = (sum,count) cube
//! ndim   u32, dims…        shape
//! [kind 2] box sizes…      u32 per dimension
//! cells  8 bytes each      i64 payload, row-major (16 bytes for kind 3)
//! crc    u64               FNV-1a over everything above
//! ```

use std::io::{self, Read, Write};

use ndcube::NdCube;

use crate::engine::RangeSumEngine;
use crate::rps::RpsEngine;

const MAGIC: &[u8; 4] = b"RPS1";

/// Ceiling on the cell count a snapshot may declare (2^28 cells = 2 GiB
/// of i64 payload) — rejects corrupted headers before allocation.
const MAX_SNAPSHOT_CELLS: u64 = 1 << 28;
const KIND_CUBE: u8 = 1;
const KIND_RPS: u8 = 2;
const KIND_SUMCOUNT: u8 = 3;

/// Errors from snapshot encoding/decoding.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a snapshot, or an unsupported version.
    BadMagic,
    /// The snapshot holds a different kind of structure.
    WrongKind {
        /// Kind byte found in the header.
        found: u8,
    },
    /// Declared geometry is invalid.
    BadGeometry(String),
    /// Payload checksum mismatch (corruption or truncation).
    ChecksumMismatch,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not an RPS1 snapshot"),
            SnapshotError::WrongKind { found } => {
                write!(f, "snapshot holds kind {found}, expected another")
            }
            SnapshotError::BadGeometry(msg) => write!(f, "bad geometry: {msg}"),
            SnapshotError::ChecksumMismatch => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

use crate::checksum::Fnv1a;

/// A writer that checksums everything passing through it.
struct SummingWriter<W> {
    inner: W,
    sum: Fnv1a,
}

impl<W: Write> SummingWriter<W> {
    fn new(inner: W) -> Self {
        SummingWriter {
            inner,
            sum: Fnv1a::new(),
        }
    }

    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.sum.update(bytes);
        self.inner.write_all(bytes)
    }

    fn finish(mut self) -> io::Result<()> {
        let crc = self.sum.value();
        self.inner.write_all(&crc.to_le_bytes())?;
        // Flush here so a buffered writer's deferred I/O errors surface
        // as a save failure instead of being swallowed by Drop.
        self.inner.flush()
    }
}

/// A reader that checksums everything passing through it.
struct SummingReader<R> {
    inner: R,
    sum: Fnv1a,
}

impl<R: Read> SummingReader<R> {
    fn new(inner: R) -> Self {
        SummingReader {
            inner,
            sum: Fnv1a::new(),
        }
    }

    fn take(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read_exact(buf)?;
        self.sum.update(buf);
        Ok(())
    }

    fn take_u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.take(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn take_i64(&mut self) -> io::Result<i64> {
        let mut b = [0u8; 8];
        self.take(&mut b)?;
        Ok(i64::from_le_bytes(b))
    }

    fn verify(mut self) -> Result<(), SnapshotError> {
        let expect = self.sum.value();
        let mut b = [0u8; 8];
        self.inner.read_exact(&mut b)?;
        if u64::from_le_bytes(b) == expect {
            Ok(())
        } else {
            Err(SnapshotError::ChecksumMismatch)
        }
    }
}

/// The kind of structure a snapshot holds (its header byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A plain `i64` cube (kind byte 1).
    Cube,
    /// An RPS engine: recovered cube + box geometry (kind byte 2).
    RpsEngine,
    /// A `(sum, count)` facts cube (kind byte 3).
    SumCountCube,
}

/// Reads just the magic and kind byte — a cheap dispatch helper so
/// tools don't have to probe formats by attempting (and swallowing the
/// real errors of) each full loader in turn.
pub fn peek_kind<R: Read>(mut r: R) -> Result<SnapshotKind, SnapshotError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    match u8::from_le_bytes(kind) {
        KIND_CUBE => Ok(SnapshotKind::Cube),
        KIND_RPS => Ok(SnapshotKind::RpsEngine),
        KIND_SUMCOUNT => Ok(SnapshotKind::SumCountCube),
        other => Err(SnapshotError::WrongKind { found: other }),
    }
}

/// Writer-side mirror of the loader's geometry limits: what we cannot
/// load, we refuse to save (instead of silently truncating dimensions to
/// u32 or emitting a snapshot every loader rejects).
fn check_writable_geometry(dims: &[usize]) -> Result<(), SnapshotError> {
    if dims.is_empty() || dims.len() > 16 {
        return Err(SnapshotError::BadGeometry(format!("ndim {}", dims.len())));
    }
    let mut cells: u128 = 1;
    for &d in dims {
        if d == 0 || u32::try_from(d).is_err() {
            return Err(SnapshotError::BadGeometry(format!("dimension size {d}")));
        }
        // lint:allow(L4): usize → u128 is a lossless widening
        cells = cells.saturating_mul(d as u128);
    }
    // lint:allow(L4): usize → u128 is a lossless widening
    if cells > MAX_SNAPSHOT_CELLS as u128 {
        return Err(SnapshotError::BadGeometry(format!(
            "cell count {cells} exceeds limit {MAX_SNAPSHOT_CELLS}"
        )));
    }
    Ok(())
}

fn write_header<W: Write>(
    w: &mut SummingWriter<W>,
    kind: u8,
    dims: &[usize],
) -> Result<(), SnapshotError> {
    check_writable_geometry(dims)?;
    w.put(MAGIC)?;
    w.put(&[kind])?;
    // lint:allow(L4): ndim ≤ 16 enforced by check_writable_geometry
    w.put(&(dims.len() as u32).to_le_bytes())?;
    for &d in dims {
        // lint:allow(L4): d ≤ u32::MAX enforced by check_writable_geometry
        w.put(&(d as u32).to_le_bytes())?;
    }
    Ok(())
}

fn read_header<R: Read>(r: &mut SummingReader<R>) -> Result<(u8, Vec<usize>), SnapshotError> {
    let mut magic = [0u8; 4];
    r.take(&mut magic)?;
    if &magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut kind = [0u8; 1];
    r.take(&mut kind)?;
    // lint:allow(L4): u32 → usize is lossless on every supported target
    let ndim = r.take_u32()? as usize;
    if ndim == 0 || ndim > 16 {
        return Err(SnapshotError::BadGeometry(format!("ndim {ndim}")));
    }
    let mut dims = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        // lint:allow(L4): u32 → usize is lossless on every supported target
        dims.push(r.take_u32()? as usize);
    }
    // Guard against corrupted headers declaring absurd geometry: the
    // checksum would catch it eventually, but only after we tried to
    // allocate the declared payload.
    let mut cells: u128 = 1;
    for &d in &dims {
        if d == 0 {
            return Err(SnapshotError::BadGeometry("zero-sized dimension".into()));
        }
        // lint:allow(L4): usize → u128 is a lossless widening
        cells = cells.saturating_mul(d as u128);
    }
    // lint:allow(L4): usize → u128 is a lossless widening
    if cells > MAX_SNAPSHOT_CELLS as u128 {
        return Err(SnapshotError::BadGeometry(format!(
            "declared cell count {cells} exceeds limit {MAX_SNAPSHOT_CELLS}"
        )));
    }
    Ok((u8::from_le_bytes(kind), dims))
}

/// Writes a cube snapshot.
pub fn save_cube<W: Write>(cube: &NdCube<i64>, w: W) -> Result<(), SnapshotError> {
    let mut w = SummingWriter::new(w);
    write_header(&mut w, KIND_CUBE, cube.shape().dims())?;
    for v in cube.as_slice() {
        w.put(&v.to_le_bytes())?;
    }
    w.finish()?;
    Ok(())
}

/// Reads a cube snapshot.
pub fn load_cube<R: Read>(r: R) -> Result<NdCube<i64>, SnapshotError> {
    let mut r = SummingReader::new(r);
    let (kind, dims) = read_header(&mut r)?;
    if kind != KIND_CUBE {
        return Err(SnapshotError::WrongKind { found: kind });
    }
    let len: usize = dims.iter().product();
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        data.push(r.take_i64()?);
    }
    r.verify()?;
    NdCube::from_vec(&dims, data).map_err(|e| SnapshotError::BadGeometry(e.to_string()))
}

/// Writes a (sum, count) cube snapshot — the payload behind AVERAGE
/// cubes ([`crate::aggregate::AverageCube`]).
pub fn save_sumcount_cube<W: Write>(
    cube: &NdCube<crate::value::SumCount<i64>>,
    w: W,
) -> Result<(), SnapshotError> {
    let mut w = SummingWriter::new(w);
    write_header(&mut w, KIND_SUMCOUNT, cube.shape().dims())?;
    for v in cube.as_slice() {
        w.put(&v.sum.to_le_bytes())?;
        w.put(&v.count.to_le_bytes())?;
    }
    w.finish()?;
    Ok(())
}

/// Reads a (sum, count) cube snapshot.
pub fn load_sumcount_cube<R: Read>(
    r: R,
) -> Result<NdCube<crate::value::SumCount<i64>>, SnapshotError> {
    let mut r = SummingReader::new(r);
    let (kind, dims) = read_header(&mut r)?;
    if kind != KIND_SUMCOUNT {
        return Err(SnapshotError::WrongKind { found: kind });
    }
    let len: usize = dims.iter().product();
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        let sum = r.take_i64()?;
        let count = r.take_i64()?;
        data.push(crate::value::SumCount::new(sum, count));
    }
    r.verify()?;
    NdCube::from_vec(&dims, data).map_err(|e| SnapshotError::BadGeometry(e.to_string()))
}

/// Writes an RPS engine snapshot (cube + box geometry; structures are
/// rebuilt on load).
pub fn save_rps<W: Write>(engine: &RpsEngine<i64>, w: W) -> Result<(), SnapshotError> {
    let mut w = SummingWriter::new(w);
    write_header(&mut w, KIND_RPS, engine.shape().dims())?;
    for &k in engine.grid().box_size() {
        let k32 =
            u32::try_from(k).map_err(|_| SnapshotError::BadGeometry(format!("box size {k}")))?;
        w.put(&k32.to_le_bytes())?;
    }
    let cube = engine.to_cube();
    for v in cube.as_slice() {
        w.put(&v.to_le_bytes())?;
    }
    w.finish()?;
    Ok(())
}

/// Reads an RPS engine snapshot, rebuilding RP and the overlay.
pub fn load_rps<R: Read>(r: R) -> Result<RpsEngine<i64>, SnapshotError> {
    let mut r = SummingReader::new(r);
    let (kind, dims) = read_header(&mut r)?;
    if kind != KIND_RPS {
        return Err(SnapshotError::WrongKind { found: kind });
    }
    let mut box_size = Vec::with_capacity(dims.len());
    for _ in 0..dims.len() {
        // lint:allow(L4): u32 → usize is lossless on every supported target
        box_size.push(r.take_u32()? as usize);
    }
    let len: usize = dims.iter().product();
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        data.push(r.take_i64()?);
    }
    r.verify()?;
    let cube =
        NdCube::from_vec(&dims, data).map_err(|e| SnapshotError::BadGeometry(e.to_string()))?;
    RpsEngine::from_cube_with_box_size(&cube, &box_size)
        .map_err(|e| SnapshotError::BadGeometry(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RangeSumEngine;
    use crate::testdata::paper_array_a;
    use ndcube::Region;

    #[test]
    fn cube_round_trip() {
        let cube = paper_array_a();
        let mut buf = Vec::new();
        save_cube(&cube, &mut buf).unwrap();
        let loaded = load_cube(&buf[..]).unwrap();
        assert_eq!(loaded, cube);
    }

    #[test]
    fn rps_round_trip_preserves_answers() {
        let mut e = RpsEngine::from_cube_uniform(&paper_array_a(), 3).unwrap();
        e.update(&[4, 4], 17).unwrap();
        let mut buf = Vec::new();
        save_rps(&e, &mut buf).unwrap();
        let loaded = load_rps(&buf[..]).unwrap();
        assert_eq!(loaded.grid().box_size(), e.grid().box_size());
        for (lo, hi) in [([0, 0], [8, 8]), ([2, 2], [7, 5])] {
            let r = Region::new(&lo, &hi).unwrap();
            assert_eq!(loaded.query(&r).unwrap(), e.query(&r).unwrap());
        }
    }

    #[test]
    fn detects_corruption() {
        let mut buf = Vec::new();
        save_cube(&paper_array_a(), &mut buf).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        match load_cube(&buf[..]) {
            Err(SnapshotError::ChecksumMismatch) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn detects_truncation() {
        let mut buf = Vec::new();
        save_cube(&paper_array_a(), &mut buf).unwrap();
        buf.truncate(buf.len() - 9);
        assert!(load_cube(&buf[..]).is_err());
    }

    #[test]
    fn peek_kind_dispatches_without_full_load() {
        let mut cube_buf = Vec::new();
        save_cube(&paper_array_a(), &mut cube_buf).unwrap();
        assert_eq!(peek_kind(&cube_buf[..]).unwrap(), SnapshotKind::Cube);

        let e = RpsEngine::from_cube_uniform(&paper_array_a(), 3).unwrap();
        let mut rps_buf = Vec::new();
        save_rps(&e, &mut rps_buf).unwrap();
        assert_eq!(peek_kind(&rps_buf[..]).unwrap(), SnapshotKind::RpsEngine);

        assert!(matches!(
            peek_kind(&b"NOPE...."[..]),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn writers_enforce_loader_geometry_limits() {
        // What cannot be loaded must not be saveable.
        let seventeen_d = NdCube::<i64>::zeros(&[2usize; 17]);
        let mut buf = Vec::new();
        assert!(matches!(
            save_cube(&seventeen_d, &mut buf),
            Err(SnapshotError::BadGeometry(_))
        ));

        let too_many_cells = NdCube::<i64>::zeros(&[1 << 15, 1 << 14]); // 2^29 > 2^28
        let mut buf = Vec::new();
        assert!(matches!(
            save_cube(&too_many_cells, &mut buf),
            Err(SnapshotError::BadGeometry(_))
        ));
    }

    #[test]
    fn rejects_absurd_declared_geometry_before_allocating() {
        // Corrupting a dims byte to declare a multi-billion-cell cube must
        // fail cleanly (BadGeometry), never attempt the allocation.
        let mut buf = Vec::new();
        save_cube(&paper_array_a(), &mut buf).unwrap();
        // Header layout: magic(4) + kind(1) + ndim(4) + dim0(4) + dim1(4).
        buf[9..13].copy_from_slice(&u32::MAX.to_le_bytes()); // dim0 = 2^32−1
        match load_cube(&buf[..]) {
            Err(SnapshotError::BadGeometry(_)) => {}
            other => panic!("expected BadGeometry, got {other:?}"),
        }
    }

    #[test]
    fn rejects_wrong_magic_and_kind() {
        assert!(matches!(
            load_cube(&b"NOPE"[..]),
            Err(SnapshotError::BadMagic)
        ));
        let mut buf = Vec::new();
        save_cube(&paper_array_a(), &mut buf).unwrap();
        match load_rps(&buf[..]) {
            Err(SnapshotError::WrongKind { found }) => assert_eq!(found, KIND_CUBE),
            other => panic!("expected wrong kind, got {other:?}"),
        }
    }

    #[test]
    fn sumcount_cube_round_trip() {
        use crate::value::SumCount;
        let cube = NdCube::from_fn(&[3, 4], |c| {
            SumCount::new((c[0] * 4 + c[1]) as i64 * 7, c[0] as i64 + 1)
        })
        .unwrap();
        let mut buf = Vec::new();
        save_sumcount_cube(&cube, &mut buf).unwrap();
        let loaded = load_sumcount_cube(&buf[..]).unwrap();
        assert_eq!(loaded, cube);
        // Kind confusion is detected both ways.
        assert!(matches!(
            load_cube(&buf[..]),
            Err(SnapshotError::WrongKind { found: 3 })
        ));
        let mut plain = Vec::new();
        save_cube(&paper_array_a(), &mut plain).unwrap();
        assert!(matches!(
            load_sumcount_cube(&plain[..]),
            Err(SnapshotError::WrongKind { found: 1 })
        ));
    }

    #[test]
    fn three_dim_engine_round_trip() {
        let cube = NdCube::from_fn(&[5, 4, 6], |c| (c[0] * 31 + c[1] * 7 + c[2]) as i64).unwrap();
        let e = RpsEngine::from_cube_with_box_size(&cube, &[2, 2, 3]).unwrap();
        let mut buf = Vec::new();
        save_rps(&e, &mut buf).unwrap();
        let loaded = load_rps(&buf[..]).unwrap();
        assert_eq!(loaded.to_cube(), cube);
    }
}
