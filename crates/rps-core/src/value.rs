//! The value algebra range-sum engines operate over.
//!
//! Section 2 of the paper notes that the techniques apply to SUM, COUNT,
//! AVERAGE, ROLLING SUM/AVERAGE, "and any binary operator ⊕ for which there
//! exists an inverse binary operator ⊖ such that a ⊕ b ⊖ b = a" — i.e. any
//! commutative group. [`GroupValue`] captures exactly that contract; MIN and
//! MAX have no inverse and deliberately have no instance.

use std::fmt::Debug;
use std::num::Wrapping;

/// A commutative group: associative, commutative ⊕ with identity and
/// inverse. All engines in this crate are generic over it.
///
/// Laws (checked by property tests in `tests/value_laws.rs`):
/// * `a ⊕ zero = a`
/// * `a ⊕ b = b ⊕ a`
/// * `(a ⊕ b) ⊕ c = a ⊕ (b ⊕ c)`
/// * `a ⊕ b ⊖ b = a`
///
/// Floating-point instances satisfy these laws only approximately; the
/// engines remain *usable* with `f64` (as OLAP systems are in practice) but
/// exactness guarantees hold for the integer instances.
pub trait GroupValue: Clone + PartialEq + Debug + 'static {
    /// The group identity (0 for sums).
    fn zero() -> Self;

    /// The group operation ⊕ (addition for sums).
    #[must_use]
    fn add(&self, other: &Self) -> Self;

    /// The inverse element (negation for sums).
    #[must_use]
    fn neg(&self) -> Self;

    /// `self ⊖ other`, defaulting to `self ⊕ (−other)`.
    #[must_use]
    fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    /// In-place ⊕, the hot-path form used by array sweeps.
    fn add_assign(&mut self, other: &Self) {
        *self = self.add(other);
    }

    /// In-place ⊖.
    fn sub_assign(&mut self, other: &Self) {
        *self = self.sub(other);
    }

    /// Whether this value is the identity.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// `self ⊕ self ⊕ … ⊕ self`, `count` times (`zero()` when `count`
    /// is 0) — the "n·x" of the group, needed by the range-update fast
    /// paths, where one stored cell absorbs the deltas of many source
    /// cells at once.
    ///
    /// Default: double-and-add, O(log count) group operations, exact for
    /// every lawful group. The fixed-width integer instances override it
    /// with a wrapping machine multiply, which agrees with repeated
    /// wrapping addition modulo 2^w; the float instances override with a
    /// plain multiply (the usual approximate-group caveat applies).
    #[must_use]
    fn scale(&self, count: u64) -> Self {
        let mut acc = Self::zero();
        let mut base = self.clone();
        let mut n = count;
        while n > 0 {
            if n & 1 == 1 {
                acc.add_assign(&base);
            }
            n >>= 1;
            if n > 0 {
                base = base.add(&base);
            }
        }
        acc
    }
}

macro_rules! impl_group_for_int {
    ($($t:ty),*) => {$(
        impl GroupValue for $t {
            #[inline]
            fn zero() -> Self { 0 }
            #[inline]
            fn add(&self, other: &Self) -> Self { self.wrapping_add(*other) }
            #[inline]
            fn neg(&self) -> Self { self.wrapping_neg() }
            #[inline]
            fn sub(&self, other: &Self) -> Self { self.wrapping_sub(*other) }
            #[inline]
            fn add_assign(&mut self, other: &Self) { *self = self.wrapping_add(*other); }
            #[inline]
            fn sub_assign(&mut self, other: &Self) { *self = self.wrapping_sub(*other); }
            #[inline]
            // lint:allow(L4): truncation is the point — scaling by count mod 2^w
            // is exactly repeated wrapping addition in Z/2^w.
            fn scale(&self, count: u64) -> Self { self.wrapping_mul(count as $t) }
        }
    )*};
}

// Wrapping arithmetic makes every fixed-width integer a genuine group
// (two's complement Z/2^w), so the inclusion–exclusion identities hold even
// under overflow instead of panicking in debug builds.
impl_group_for_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, u128);

macro_rules! impl_group_for_float {
    ($($t:ty),*) => {$(
        impl GroupValue for $t {
            #[inline]
            fn zero() -> Self { 0.0 }
            #[inline]
            fn add(&self, other: &Self) -> Self { self + other }
            #[inline]
            fn neg(&self) -> Self { -self }
            #[inline]
            fn sub(&self, other: &Self) -> Self { self - other }
            #[inline]
            fn add_assign(&mut self, other: &Self) { *self += other; }
            #[inline]
            fn sub_assign(&mut self, other: &Self) { *self -= other; }
            #[inline]
            // lint:allow(L4): floats are an approximate group anyway; a single
            // multiply loses no more than the repeated-addition default.
            fn scale(&self, count: u64) -> Self { self * (count as $t) }
        }
    )*};
}

impl_group_for_float!(f32, f64);

macro_rules! impl_group_for_wrapping {
    ($($t:ty),*) => {$(
        impl GroupValue for Wrapping<$t> {
            #[inline]
            fn zero() -> Self { Wrapping(0) }
            #[inline]
            fn add(&self, other: &Self) -> Self { *self + *other }
            #[inline]
            fn neg(&self) -> Self { Wrapping(0) - *self }
            #[inline]
            fn sub(&self, other: &Self) -> Self { *self - *other }
        }
    )*};
}

impl_group_for_wrapping!(u32, u64, i32, i64);

/// A (sum, count) pair: the group product used to derive AVERAGE range
/// queries from two SUM-style aggregations (paper §2).
///
/// ```
/// use rps_core::value::{GroupValue, SumCount};
/// let a = SumCount::new(10i64, 2);
/// let b = SumCount::new(5, 1);
/// let c = a.add(&b);
/// assert_eq!(c.average_f64(), Some(5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SumCount<T> {
    /// Accumulated sum of the measure attribute.
    pub sum: T,
    /// Number of contributing facts.
    pub count: i64,
}

impl<T> SumCount<T> {
    /// A pair from a sum and a fact count.
    pub fn new(sum: T, count: i64) -> Self {
        SumCount { sum, count }
    }
}

impl SumCount<i64> {
    /// `sum / count` as a float, or `None` for an empty region.
    pub fn average_f64(&self) -> Option<f64> {
        // lint:allow(L4): averages are reporting output; f64 rounding is acceptable
        (self.count != 0).then(|| self.sum as f64 / self.count as f64)
    }
}

impl SumCount<f64> {
    /// `sum / count`, or `None` for an empty region.
    pub fn average(&self) -> Option<f64> {
        // lint:allow(L4): averages are reporting output; f64 rounding is acceptable
        (self.count != 0).then(|| self.sum / self.count as f64)
    }
}

impl<T: GroupValue> GroupValue for SumCount<T> {
    fn zero() -> Self {
        SumCount {
            sum: T::zero(),
            count: 0,
        }
    }

    fn add(&self, other: &Self) -> Self {
        SumCount {
            sum: self.sum.add(&other.sum),
            count: self.count.wrapping_add(other.count),
        }
    }

    fn neg(&self) -> Self {
        SumCount {
            sum: self.sum.neg(),
            count: self.count.wrapping_neg(),
        }
    }
}

/// A pair of independent group values; lets one engine maintain two
/// measures at once (e.g. SALES and UNITS) with a single structure.
impl<A: GroupValue, B: GroupValue> GroupValue for (A, B) {
    fn zero() -> Self {
        (A::zero(), B::zero())
    }

    fn add(&self, other: &Self) -> Self {
        (self.0.add(&other.0), self.1.add(&other.1))
    }

    fn neg(&self) -> Self {
        (self.0.neg(), self.1.neg())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_group_laws_smoke() {
        let a = 17i64;
        let b = -4i64;
        assert_eq!(GroupValue::add(&a, &i64::zero()), a);
        assert_eq!(GroupValue::sub(&GroupValue::add(&a, &b), &b), a);
        assert_eq!(GroupValue::add(&a, &b), GroupValue::add(&b, &a));
    }

    #[test]
    fn int_wrapping_behaviour() {
        let a = i64::MAX;
        let b = 1i64;
        // Group laws hold even across overflow.
        assert_eq!(GroupValue::sub(&GroupValue::add(&a, &b), &b), a);
    }

    #[test]
    fn unsigned_group_has_inverse() {
        let a = 5u32;
        assert_eq!(GroupValue::add(&a, &a.neg()), 0);
        assert_eq!(GroupValue::sub(&3u32, &5u32), 3u32.wrapping_sub(5));
    }

    #[test]
    fn float_group_smoke() {
        let a = 1.5f64;
        let b = 2.25f64;
        assert_eq!(GroupValue::sub(&GroupValue::add(&a, &b), &b), a);
    }

    #[test]
    fn sum_count_average() {
        let mut acc = SumCount::<i64>::zero();
        for v in [10, 20, 30] {
            acc.add_assign(&SumCount::new(v, 1));
        }
        assert_eq!(acc.sum, 60);
        assert_eq!(acc.count, 3);
        assert_eq!(acc.average_f64(), Some(20.0));
        assert_eq!(SumCount::<i64>::zero().average_f64(), None);
    }

    #[test]
    fn sum_count_inverse() {
        let a = SumCount::new(42i64, 7);
        assert_eq!(GroupValue::add(&a, &a.neg()), SumCount::zero());
    }

    #[test]
    fn pair_group() {
        let a = (1i64, 2.0f64);
        let b = (3i64, 4.0f64);
        assert_eq!(GroupValue::add(&a, &b), (4, 6.0));
        assert_eq!(GroupValue::sub(&GroupValue::add(&a, &b), &b), a);
    }

    #[test]
    fn is_zero() {
        assert!(0i64.is_zero());
        assert!(!3i64.is_zero());
        assert!(SumCount::<i64>::zero().is_zero());
    }

    #[test]
    fn scale_matches_repeated_addition() {
        for count in [0u64, 1, 2, 7, 63, 64, 1000] {
            let mut want = 0i64;
            for _ in 0..count {
                want = want.wrapping_add(-13);
            }
            assert_eq!((-13i64).scale(count), want, "count {count}");
            // The composite default (double-and-add) agrees too.
            let sc = SumCount::new(-13i64, 2);
            let mut acc = SumCount::zero();
            for _ in 0..count {
                acc.add_assign(&sc);
            }
            assert_eq!(sc.scale(count), acc, "count {count}");
        }
    }

    #[test]
    fn scale_wraps_like_repeated_wrapping_addition() {
        // i8 exercises the truncating cast: count mod 2^8 is what matters.
        let x = 100i8;
        assert_eq!(x.scale(300), x.wrapping_mul((300 % 256) as i8));
        // Large i64 values wrap exactly like the sum would.
        let big = i64::MAX / 2 + 7;
        assert_eq!(big.scale(5), big.wrapping_mul(5));
    }
}
