//! A delta-buffer ("differential file") combinator.
//!
//! The classic warehouse-refresh technique the paper's introduction
//! alludes to when it says systems tolerate update cost by batching:
//! absorb point updates into a small side structure with O(1) updates,
//! answer queries as `main ⊕ delta`, and merge the buffer into the main
//! structure when it grows past a threshold. Wrapped around the
//! prefix-sum engine this trades its O(n^d) per-update cost for an
//! amortized one; wrapped around RPS it trims the constant further for
//! update-heavy phases. `exp_batch_updates` measures the trade-off.
//!
//! The versioned engine offers the same batching lever on its write
//! path: [`crate::VersionedEngine::with_publish_threshold`] buffers
//! accepted updates inside the writer and publishes them as one
//! copy-on-write version, amortizing the per-publish slab clones the
//! way this combinator amortizes the wrapped engine's per-update cost —
//! but with snapshot-atomic visibility instead of read-time merging.

use std::collections::HashMap;

use ndcube::{NdError, Region, Shape};

use crate::engine::RangeSumEngine;
use crate::stats::{CostStats, StatsCell};
use crate::value::GroupValue;

/// A sparse bag of pending deltas, itself a (deliberately naive)
/// range-sum engine: O(1) updates, O(m) queries over `m` buffered cells.
#[derive(Debug, Clone)]
pub struct SparseDelta<T> {
    shape: Shape,
    entries: HashMap<Vec<usize>, T>,
    stats: StatsCell,
}

impl<T: GroupValue> SparseDelta<T> {
    /// An empty buffer for a cube of the given shape.
    pub fn new(shape: Shape) -> Self {
        SparseDelta {
            shape,
            entries: HashMap::new(),
            stats: StatsCell::new(),
        }
    }

    /// Number of distinct buffered cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drains the buffer, yielding every (cell, accumulated delta) pair.
    pub fn drain(&mut self) -> Vec<(Vec<usize>, T)> {
        self.entries.drain().collect()
    }

    /// Iterates buffered entries without draining.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<usize>, &T)> {
        self.entries.iter()
    }
}

impl<T: GroupValue> RangeSumEngine<T> for SparseDelta<T> {
    fn name(&self) -> &'static str {
        "sparse-delta"
    }

    fn shape(&self) -> &Shape {
        &self.shape
    }

    fn query(&self, region: &Region) -> Result<T, NdError> {
        self.shape.check_region(region)?;
        let mut acc = T::zero();
        let mut reads = 0u64;
        for (coords, delta) in &self.entries {
            reads += 1;
            if region.contains(coords) {
                acc.add_assign(delta);
            }
        }
        self.stats.reads(reads);
        self.stats.query();
        Ok(acc)
    }

    fn update(&mut self, coords: &[usize], delta: T) -> Result<(), NdError> {
        self.shape.check(coords)?;
        let entry = self.entries.entry(coords.to_vec()).or_insert_with(T::zero);
        entry.add_assign(&delta);
        if entry.is_zero() {
            // Keep the buffer tight: a cancelled delta costs queries.
            self.entries.remove(coords);
        }
        self.stats.writes(1);
        self.stats.update();
        Ok(())
    }

    fn stats(&self) -> CostStats {
        self.stats.get()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }

    fn storage_cells(&self) -> usize {
        self.entries.len()
    }
}

/// `main ⊕ delta`: queries hit both structures; updates hit only the
/// buffer until it reaches `merge_threshold`, then flush into `main`.
///
/// ```
/// use rps_core::{BufferedEngine, PrefixSumEngine, RangeSumEngine};
/// use ndcube::{NdCube, Region};
///
/// let cube = NdCube::from_fn(&[9, 9], |_| 1i64).unwrap();
/// let mut b = BufferedEngine::new(PrefixSumEngine::from_cube(&cube), 100);
/// b.update(&[0, 0], 10).unwrap(); // O(1): lands in the buffer
/// let all = Region::new(&[0, 0], &[8, 8]).unwrap();
/// assert_eq!(b.query(&all).unwrap(), 81 + 10); // visible immediately
/// assert_eq!(b.pending(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BufferedEngine<M, T> {
    main: M,
    delta: SparseDelta<T>,
    merge_threshold: usize,
    merges: u64,
}

impl<T: GroupValue, M: RangeSumEngine<T>> BufferedEngine<M, T> {
    /// Wraps `main` with a delta buffer that flushes at
    /// `merge_threshold` distinct buffered cells (≥ 1).
    pub fn new(main: M, merge_threshold: usize) -> Self {
        assert!(merge_threshold >= 1);
        let shape = main.shape().clone();
        BufferedEngine {
            main,
            delta: SparseDelta::new(shape),
            merge_threshold,
            merges: 0,
        }
    }

    /// The wrapped main engine.
    pub fn main(&self) -> &M {
        &self.main
    }

    /// Cells currently buffered.
    pub fn pending(&self) -> usize {
        self.delta.len()
    }

    /// Number of merges performed so far.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Flushes every buffered delta into the main structure.
    pub fn merge(&mut self) -> Result<(), NdError> {
        for (coords, delta) in self.delta.drain() {
            self.main.update(&coords, delta)?;
        }
        self.merges += 1;
        Ok(())
    }
}

impl<T: GroupValue + Send + Sync> BufferedEngine<crate::RpsEngine<T>, T> {
    /// Batch query with the main RPS structure answered by the sharded
    /// parallel front-end; buffered deltas are folded in serially (the
    /// buffer is small by construction — at most `merge_threshold` cells).
    pub fn query_many_parallel(
        &self,
        regions: &[Region],
        threads: usize,
    ) -> Result<Vec<T>, NdError> {
        let mut out = self.main.query_many_parallel(regions, threads)?;
        for (acc, region) in out.iter_mut().zip(regions) {
            acc.add_assign(&self.delta.query(region)?);
        }
        Ok(out)
    }
}

impl<T: GroupValue, M: RangeSumEngine<T>> RangeSumEngine<T> for BufferedEngine<M, T> {
    fn name(&self) -> &'static str {
        "buffered"
    }

    fn shape(&self) -> &Shape {
        self.main.shape()
    }

    fn query(&self, region: &Region) -> Result<T, NdError> {
        let mut acc = self.main.query(region)?;
        acc.add_assign(&self.delta.query(region)?);
        Ok(acc)
    }

    fn update(&mut self, coords: &[usize], delta: T) -> Result<(), NdError> {
        self.delta.update(coords, delta)?;
        if self.delta.len() >= self.merge_threshold {
            self.merge()?;
        }
        Ok(())
    }

    // Bulk updates bypass the buffer: flush pending point deltas first so
    // order-dependent observers (stats, merges) stay coherent, then hand
    // the rectangle to the wrapped engine's own fast path — buffering it
    // per-cell would turn one O(fast) operation into |R| buffer entries.
    fn range_update(&mut self, region: &Region, delta: T) -> Result<(), NdError> {
        self.shape().check_region(region)?;
        if !self.delta.is_empty() {
            self.merge()?;
        }
        self.main.range_update(region, delta)?;
        // Book the logical operation on the buffer's op counters, where
        // `stats()` reads user-facing query/update counts from.
        self.delta.stats.update();
        Ok(())
    }

    fn stats(&self) -> CostStats {
        // Reads/writes aggregate across both structures, but each logical
        // query/update passes through the delta buffer exactly once —
        // counting the main engine's op counters too would double-count
        // queries (and book merge flushes as user updates).
        let m = self.main.stats();
        let d = self.delta.stats();
        CostStats {
            cell_reads: m.cell_reads + d.cell_reads,
            cell_writes: m.cell_writes + d.cell_writes,
            queries: d.queries,
            updates: d.updates,
        }
    }

    fn reset_stats(&self) {
        self.main.reset_stats();
        self.delta.reset_stats();
    }

    fn storage_cells(&self) -> usize {
        self.main.storage_cells() + self.delta.storage_cells()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveEngine;
    use crate::prefix::PrefixSumEngine;
    use crate::rps::RpsEngine;
    use crate::testdata::paper_array_a;

    #[test]
    fn sparse_delta_is_an_engine() {
        let mut d = SparseDelta::<i64>::new(Shape::new(&[5, 5]).unwrap());
        d.update(&[1, 1], 3).unwrap();
        d.update(&[4, 4], 7).unwrap();
        d.update(&[1, 1], 2).unwrap();
        assert_eq!(d.len(), 2);
        let all = Region::new(&[0, 0], &[4, 4]).unwrap();
        assert_eq!(d.query(&all).unwrap(), 12);
        let corner = Region::new(&[0, 0], &[2, 2]).unwrap();
        assert_eq!(d.query(&corner).unwrap(), 5);
    }

    #[test]
    fn cancelled_deltas_evicted() {
        let mut d = SparseDelta::<i64>::new(Shape::new(&[3, 3]).unwrap());
        d.update(&[1, 1], 5).unwrap();
        d.update(&[1, 1], -5).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn buffered_prefix_sum_matches_naive() {
        let a = paper_array_a();
        let mut buffered = BufferedEngine::new(PrefixSumEngine::from_cube(&a), 4);
        let mut naive = NaiveEngine::from_cube(a);
        let updates = [
            ([1usize, 1usize], 3i64),
            ([0, 8], 2),
            ([5, 5], -1),
            ([1, 1], 4),
            ([8, 8], 9),
        ];
        for (c, delta) in updates {
            buffered.update(&c, delta).unwrap();
            naive.update(&c, delta).unwrap();
            // Queries must see buffered deltas immediately.
            let r = Region::new(&[0, 0], &[8, 8]).unwrap();
            assert_eq!(buffered.query(&r).unwrap(), naive.query(&r).unwrap());
        }
        assert!(buffered.merges() >= 1, "threshold 4 must have merged");
    }

    #[test]
    fn explicit_merge_empties_buffer() {
        let a = paper_array_a();
        let mut b = BufferedEngine::new(RpsEngine::from_cube_uniform(&a, 3).unwrap(), 100);
        b.update(&[2, 2], 10).unwrap();
        b.update(&[7, 7], 20).unwrap();
        assert_eq!(b.pending(), 2);
        b.merge().unwrap();
        assert_eq!(b.pending(), 0);
        assert_eq!(b.main().cell(&[2, 2]).unwrap(), 2 + 10);
        assert_eq!(b.total(), 290 + 30);
    }

    #[test]
    fn buffering_cuts_prefix_sum_update_cost() {
        // 100 updates into buffered prefix-sum (threshold 100) write ~100
        // buffer cells + one merge; plain prefix-sum writes ~n²/4 × 100.
        let a = paper_array_a();
        let mut plain = PrefixSumEngine::from_cube(&a);
        let mut buffered = BufferedEngine::new(PrefixSumEngine::from_cube(&a), 1000);
        plain.reset_stats();
        buffered.reset_stats();
        for i in 0..100usize {
            let c = [i % 9, (i * 3) % 9];
            plain.update(&c, 1).unwrap();
            buffered.update(&c, 1).unwrap();
        }
        assert!(
            buffered.stats().cell_writes * 10 < plain.stats().cell_writes,
            "buffered {} vs plain {}",
            buffered.stats().cell_writes,
            plain.stats().cell_writes
        );
        // And the answers still agree.
        let r = Region::new(&[0, 0], &[8, 8]).unwrap();
        assert_eq!(buffered.query(&r).unwrap(), plain.query(&r).unwrap());
    }

    #[test]
    fn buffered_query_many_parallel_sees_pending_deltas() {
        let a = paper_array_a();
        let mut b = BufferedEngine::new(RpsEngine::from_cube_uniform(&a, 3).unwrap(), 100);
        b.update(&[2, 2], 10).unwrap();
        b.update(&[7, 7], -4).unwrap();
        assert_eq!(b.pending(), 2, "deltas must still be buffered");
        let regions: Vec<Region> = (0..16)
            .map(|i| Region::new(&[i % 4, i % 3], &[(i % 4) + 4, (i % 3) + 5]).unwrap())
            .collect();
        let serial: Vec<i64> = regions.iter().map(|r| b.query(r).unwrap()).collect();
        for threads in [1, 2, 4] {
            assert_eq!(b.query_many_parallel(&regions, threads).unwrap(), serial);
        }
    }

    #[test]
    fn set_through_buffer() {
        let mut b = BufferedEngine::new(RpsEngine::<i64>::zeros(&[6, 6]).unwrap(), 3);
        b.set(&[1, 2], 41).unwrap();
        b.set(&[1, 2], 17).unwrap();
        assert_eq!(b.cell(&[1, 2]).unwrap(), 17);
    }
}
