//! The 2^d-corner inclusion–exclusion of Figure 3.
//!
//! Every O(1)-query method reduces a range sum over `lo ..= hi` to an
//! alternating sum of *prefix* region sums `Sum(A[0,…,0] : A[x])`:
//!
//! ```text
//! Sum(lo..=hi) = Σ_{S ⊆ D} (−1)^|S| · P(corner_S)
//! corner_S[i]  = lo[i] − 1   if i ∈ S      (dropped when lo[i] = 0)
//!              = hi[i]        otherwise
//! ```
//!
//! The paper's Figure 3 is the d = 2 instance:
//! `Sum(E) = Sum(A) − Sum(B) − Sum(C) + Sum(D)`.

use ndcube::Region;

use crate::value::GroupValue;

/// Evaluates the inclusion–exclusion over a region given a prefix-sum
/// oracle.
///
/// ```
/// use rps_core::corners::range_sum_from_prefix;
/// use ndcube::Region;
///
/// // 1-d prefix oracle over [1, 2, 3, 4]: P[i] = 1 + 2 + … + (i+1).
/// let prefix = |x: &[usize]| ((x[0] + 1) * (x[0] + 2) / 2) as i64;
/// let r = Region::new(&[1], &[3]).unwrap();
/// assert_eq!(range_sum_from_prefix(&r, prefix), 2 + 3 + 4);
/// ```
///
/// `prefix(x)` must return `Sum(A[0,…,0] : A[x])` for in-bounds `x`;
/// corners where any coordinate of `lo − 1` underflows contribute zero and
/// `prefix` is *not* called for them, so oracles never see invalid input.
///
/// The corner buffer is reused across the 2^d evaluations: no per-corner
/// allocation.
pub fn range_sum_from_prefix<T: GroupValue>(
    region: &Region,
    prefix: impl FnMut(&[usize]) -> T,
) -> T {
    let mut corner = Vec::new();
    range_sum_from_prefix_with(region, &mut corner, prefix)
}

/// [`range_sum_from_prefix`] with a caller-provided corner buffer — zero
/// allocations, for hot paths evaluating many regions with one reused
/// buffer (cleared and resized to `region.ndim()` on entry).
pub fn range_sum_from_prefix_with<T: GroupValue>(
    region: &Region,
    corner: &mut Vec<usize>,
    mut prefix: impl FnMut(&[usize]) -> T,
) -> T {
    let d = region.ndim();
    // lint:allow(L4): u32 → usize is lossless on every supported target
    debug_assert!(d < usize::BITS as usize, "dimension count fits in a mask");
    corner.clear();
    corner.resize(d, 0);
    let mut acc = T::zero();
    for mask in 0u64..(1u64 << d) {
        let mut skip = false;
        for (i, c) in corner.iter_mut().enumerate() {
            if mask & (1 << i) != 0 {
                if region.lo()[i] == 0 {
                    // This corner's prefix region is empty: contributes 0.
                    skip = true;
                    break;
                }
                *c = region.lo()[i] - 1;
            } else {
                *c = region.hi()[i];
            }
        }
        if skip {
            continue;
        }
        let term = prefix(corner);
        if mask.count_ones() % 2 == 0 {
            acc.add_assign(&term);
        } else {
            acc.sub_assign(&term);
        }
    }
    acc
}

/// Number of prefix evaluations `range_sum_from_prefix` will make for a
/// region: 2^d minus the corners suppressed by zero lower bounds.
///
/// Used by tests to pin down the constant in the O(1) query-cost claim.
pub fn corner_count(region: &Region) -> usize {
    let zero_lb = region.lo().iter().filter(|&&l| l == 0).count();
    // Each dimension with lo = 0 halves the surviving corner set.
    1usize << (region.ndim() - zero_lb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndcube::{NdCube, Shape};

    /// Brute-force prefix oracle over a literal cube.
    fn prefix_oracle(cube: &NdCube<i64>) -> impl FnMut(&[usize]) -> i64 + '_ {
        move |x: &[usize]| {
            let region = Region::prefix(x).unwrap();
            cube.shape()
                .linear_region_iter(&region)
                .map(|lin| *cube.get_linear(lin))
                .sum()
        }
    }

    fn brute(cube: &NdCube<i64>, region: &Region) -> i64 {
        cube.shape()
            .linear_region_iter(region)
            .map(|lin| *cube.get_linear(lin))
            .sum()
    }

    #[test]
    fn two_dim_matches_brute_force() {
        let cube = NdCube::from_fn(&[5, 6], |c| (c[0] * 7 + c[1] * 3 + 1) as i64).unwrap();
        for lo0 in 0..5 {
            for hi0 in lo0..5 {
                for lo1 in 0..6 {
                    for hi1 in lo1..6 {
                        let r = Region::new(&[lo0, lo1], &[hi0, hi1]).unwrap();
                        let got = range_sum_from_prefix(&r, prefix_oracle(&cube));
                        assert_eq!(got, brute(&cube, &r), "region {r:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn three_dim_spot_checks() {
        let cube = NdCube::from_fn(&[4, 3, 5], |c| (c[0] * 100 + c[1] * 10 + c[2]) as i64).unwrap();
        let regions = [
            Region::new(&[0, 0, 0], &[3, 2, 4]).unwrap(),
            Region::new(&[1, 1, 1], &[2, 2, 3]).unwrap(),
            Region::new(&[3, 0, 2], &[3, 2, 2]).unwrap(),
            Region::point(&[2, 1, 4]).unwrap(),
        ];
        for r in &regions {
            let got = range_sum_from_prefix(r, prefix_oracle(&cube));
            assert_eq!(got, brute(&cube, r), "region {r:?}");
        }
    }

    #[test]
    fn one_dim_is_p_hi_minus_p_lo_minus_1() {
        let cube = NdCube::from_vec(&[6], vec![1i64, 2, 3, 4, 5, 6]).unwrap();
        let r = Region::new(&[2], &[4]).unwrap();
        assert_eq!(range_sum_from_prefix(&r, prefix_oracle(&cube)), 12);
        let full = Region::new(&[0], &[5]).unwrap();
        assert_eq!(range_sum_from_prefix(&full, prefix_oracle(&cube)), 21);
    }

    #[test]
    fn with_variant_matches_and_reuses_buffer() {
        let cube = NdCube::from_fn(&[5, 6], |c| (c[0] * 7 + c[1] * 3 + 1) as i64).unwrap();
        // Pre-dirtied, wrongly-sized buffer: must be cleared and resized.
        let mut corner = vec![42usize; 7];
        for r in [
            Region::new(&[0, 0], &[4, 5]).unwrap(),
            Region::new(&[1, 2], &[3, 4]).unwrap(),
            Region::point(&[2, 3]).unwrap(),
        ] {
            let got = range_sum_from_prefix_with(&r, &mut corner, prefix_oracle(&cube));
            assert_eq!(got, brute(&cube, &r), "region {r:?}");
            assert_eq!(corner.len(), 2);
        }
    }

    #[test]
    fn corner_count_formula() {
        let r = Region::new(&[0, 3, 0], &[5, 5, 5]).unwrap();
        assert_eq!(corner_count(&r), 2); // two dims have lo = 0
        let r2 = Region::new(&[1, 1], &[2, 2]).unwrap();
        assert_eq!(corner_count(&r2), 4);
        let r3 = Region::prefix(&[4, 4, 4]).unwrap();
        assert_eq!(corner_count(&r3), 1);
    }

    #[test]
    fn oracle_called_exactly_corner_count_times() {
        let shape = Shape::new(&[5, 5]).unwrap();
        let _ = shape;
        let r = Region::new(&[0, 2], &[4, 4]).unwrap();
        let mut calls = 0usize;
        let _ = range_sum_from_prefix(&r, |_x| {
            calls += 1;
            0i64
        });
        assert_eq!(calls, corner_count(&r));
    }
}
