//! The FNV-1a checksum shared by every on-disk format in this workspace
//! (snapshot footers and WAL record frames — see `docs/FORMATS.md`).
//!
//! One implementation, used by both, so the documented byte format can
//! never drift between the two.

/// Incremental 64-bit FNV-1a.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// The standard FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Folds more bytes into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// The current hash value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// One-shot FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.value(), fnv1a(b"foobar"));
    }

    #[test]
    fn single_byte_change_changes_hash() {
        // The torn-tail detection in the WAL relies on this.
        let a = fnv1a(b"RPS1 payload");
        let b = fnv1a(b"RPS1 payloae");
        assert_ne!(a, b);
    }
}
