//! The naive method (paper §2): store `A` itself.
//!
//! Queries scan every cell of the region — O(n^d) worst case — while
//! updates write a single cell, O(1). The query·update cost product is
//! O(n^d), the figure the relative prefix sum method improves on.

use ndcube::{NdCube, NdError, Region, Shape};

use crate::engine::RangeSumEngine;
use crate::rps::kernels;
use crate::stats::{CostStats, StatsCell};
use crate::value::GroupValue;

/// Range-sum engine backed by the raw data cube `A`.
#[derive(Debug, Clone)]
pub struct NaiveEngine<T> {
    a: NdCube<T>,
    stats: StatsCell,
}

impl<T: GroupValue> NaiveEngine<T> {
    /// Builds the engine over an all-zero cube of the given dimensions.
    pub fn zeros(dims: &[usize]) -> Result<Self, NdError> {
        Ok(NaiveEngine {
            a: NdCube::filled(dims, T::zero())?,
            stats: StatsCell::new(),
        })
    }

    /// Builds the engine from an existing cube (takes ownership; no copy).
    pub fn from_cube(a: NdCube<T>) -> Self {
        NaiveEngine {
            a,
            stats: StatsCell::new(),
        }
    }

    /// Read-only access to the backing cube.
    pub fn cube(&self) -> &NdCube<T> {
        &self.a
    }
}

impl<T: GroupValue> RangeSumEngine<T> for NaiveEngine<T> {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn shape(&self) -> &Shape {
        self.a.shape()
    }

    fn query(&self, region: &Region) -> Result<T, NdError> {
        self.a.shape().check_region(region)?;
        let mut acc = T::zero();
        let mut cells = 0u64;
        for lin in self.a.shape().linear_region_iter(region) {
            acc.add_assign(self.a.get_linear(lin));
            cells += 1;
        }
        self.stats.reads(cells);
        self.stats.query();
        Ok(acc)
    }

    fn update(&mut self, coords: &[usize], delta: T) -> Result<(), NdError> {
        let lin = self.a.shape().linear(coords)?;
        self.a.get_linear_mut(lin).add_assign(&delta);
        self.stats.writes(1);
        self.stats.update();
        Ok(())
    }

    // Fast path: `A` is stored directly, so a range update is one
    // lane-kernel delta add per contiguous run of the region.
    fn range_update(&mut self, region: &Region, delta: T) -> Result<(), NdError> {
        self.a.shape().check_region(region)?;
        let m = crate::obs::core();
        m.range_update_fast.inc();
        m.range_update_cells
            .add(u64::try_from(region.cell_count()).unwrap_or(u64::MAX));
        if delta.is_zero() {
            return Ok(());
        }
        let _span = rps_obs::Span::enter("naive.range_update", &m.range_update_ns);
        let mut writes = 0u64;
        let mut lane_runs = 0u64;
        let mut cur = Vec::with_capacity(region.ndim());
        let (shape, data) = self.a.parts_mut();
        shape.for_each_contiguous_run_in_bounds(region.lo(), region.hi(), &mut cur, |start, len| {
            // lint:allow(L1): run bounds come from the shape's own region walk
            kernels::add_delta_run(&mut data[start..start + len], &delta);
            writes += u64::try_from(len).unwrap_or(u64::MAX);
            lane_runs += u64::from(kernels::is_lane_run(len));
        });
        if lane_runs > 0 {
            m.lane_runs.add(lane_runs);
        }
        self.stats.writes(writes);
        self.stats.update();
        Ok(())
    }

    fn stats(&self) -> CostStats {
        self.stats.get()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }

    fn storage_cells(&self) -> usize {
        self.a.len()
    }

    // Direct read: cheaper and clearer than the default point query, and
    // it keeps `set` O(1) for this engine as the paper describes.
    fn cell(&self, coords: &[usize]) -> Result<T, NdError> {
        let lin = self.a.shape().linear(coords)?;
        self.stats.reads(1);
        Ok(self.a.get_linear(lin).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_array_a() -> NdCube<i64> {
        crate::testdata::paper_array_a()
    }

    #[test]
    fn zeros_total_is_zero() {
        let e = NaiveEngine::<i64>::zeros(&[4, 4]).unwrap();
        assert_eq!(e.total(), 0);
    }

    #[test]
    fn full_region_sums_everything() {
        let e = NaiveEngine::from_cube(paper_array_a());
        // Figure 2: P[8,8] = 290 is the sum of the entire A array.
        assert_eq!(e.total(), 290);
    }

    #[test]
    fn row_query_matches_paper_example() {
        // "total sales to 37-year-old customers from days 20 to 22" analog:
        // sum A[1, 3..=5] = 6 + 8 + 7 = 21.
        let e = NaiveEngine::from_cube(paper_array_a());
        let r = Region::new(&[1, 3], &[1, 5]).unwrap();
        assert_eq!(e.query(&r).unwrap(), 21);
    }

    #[test]
    fn update_then_query() {
        let mut e = NaiveEngine::from_cube(paper_array_a());
        e.update(&[1, 1], 1).unwrap(); // Figure 4's A[1,1]: 3 → 4
        assert_eq!(e.cell(&[1, 1]).unwrap(), 4);
        assert_eq!(e.total(), 291);
    }

    #[test]
    fn set_overwrites() {
        let mut e = NaiveEngine::<i64>::zeros(&[3, 3]).unwrap();
        e.set(&[1, 2], 9).unwrap();
        e.set(&[1, 2], 4).unwrap();
        assert_eq!(e.cell(&[1, 2]).unwrap(), 4);
        assert_eq!(e.total(), 4);
    }

    #[test]
    fn query_cost_is_region_size() {
        let e = NaiveEngine::from_cube(paper_array_a());
        e.reset_stats();
        let r = Region::new(&[2, 2], &[4, 5]).unwrap();
        e.query(&r).unwrap();
        let s = e.stats();
        assert_eq!(s.cell_reads, 12); // 3 × 4 cells scanned
        assert_eq!(s.queries, 1);
    }

    #[test]
    fn update_cost_is_one_write() {
        let mut e = NaiveEngine::from_cube(paper_array_a());
        e.reset_stats();
        e.update(&[0, 0], 5).unwrap();
        assert_eq!(e.stats().cell_writes, 1);
    }

    #[test]
    fn rejects_out_of_bounds() {
        let mut e = NaiveEngine::<i64>::zeros(&[3, 3]).unwrap();
        assert!(e.update(&[3, 0], 1).is_err());
        assert!(e.query(&Region::new(&[0, 0], &[3, 3]).unwrap()).is_err());
    }

    #[test]
    fn storage_is_exactly_a() {
        let e = NaiveEngine::<i64>::zeros(&[9, 9]).unwrap();
        assert_eq!(e.storage_cells(), 81);
    }
}
