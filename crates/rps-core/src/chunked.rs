//! The materialized-block-aggregate baseline ("chunked" method).
//!
//! Not from the RPS paper, but the approach practical OLAP engines of the
//! era actually shipped: keep the raw cube `A` plus one precomputed total
//! per `k^d` block. A range query sums whole blocks from the coarse cube
//! and scans raw cells only along the region's boundary; an update writes
//! two cells (the raw cell and its block total).
//!
//! Costs for a hypercube (side n, block side k):
//!
//! * query  — O((n/k)^d) block reads + O(d·k·n^{d−1}/k^{d−1}) … in the
//!   2-d case O((n/k)² + k·n/k·…) ≈ O((n/k)² + n) boundary cells: *not*
//!   O(1), which is exactly why Ho et al. and the RPS paper improve on
//!   it; including it lets the benches show the gap to a realistic
//!   deployed baseline, not just the naive strawman.
//! * update — O(2): raw cell + block total.
//!
//! The engine reuses [`BoxGrid`] for its block geometry.

use ndcube::{NdCube, NdError, Region, Shape};

use crate::engine::RangeSumEngine;
use crate::rps::BoxGrid;
use crate::stats::{CostStats, StatsCell};
use crate::value::GroupValue;

/// Range-sum engine over raw cells plus per-block totals.
///
/// ```
/// use rps_core::{ChunkedEngine, RangeSumEngine};
/// use ndcube::{NdCube, Region};
///
/// let cube = NdCube::from_fn(&[9, 9], |c| (c[0] * c[1]) as i64).unwrap();
/// let e = ChunkedEngine::from_cube_uniform(&cube, 3).unwrap();
/// // A block-aligned query reads only block totals: 1 cell here.
/// e.query(&Region::new(&[3, 3], &[5, 5]).unwrap()).unwrap();
/// assert_eq!(e.stats().cell_reads, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ChunkedEngine<T> {
    grid: BoxGrid,
    a: NdCube<T>,
    /// One total per block, shaped like the block grid.
    blocks: NdCube<T>,
    stats: StatsCell,
}

impl<T: GroupValue> ChunkedEngine<T> {
    /// Builds with uniform block side `k`.
    pub fn from_cube_uniform(a: &NdCube<T>, k: usize) -> Result<Self, NdError> {
        let grid = BoxGrid::new(a.shape().clone(), &vec![k; a.ndim()])?;
        Ok(Self::from_cube_with_grid(a, grid))
    }

    /// Builds with `k = ⌈√n⌉` per dimension.
    pub fn from_cube(a: &NdCube<T>) -> Self {
        Self::from_cube_with_grid(a, BoxGrid::with_sqrt_boxes(a.shape().clone()))
    }

    fn from_cube_with_grid(a: &NdCube<T>, grid: BoxGrid) -> Self {
        let mut blocks =
            // lint:allow(L2): the grid shape is derived from an already-validated cube shape
            NdCube::filled(grid.grid_shape().dims(), T::zero()).expect("grid shape valid");
        let full = a.shape().full_region();
        a.shape().for_each_region_cell(&full, |coords, lin| {
            let b = grid.box_index_of(coords);
            let blin = grid.grid_shape().linear_unchecked(&b);
            blocks.get_linear_mut(blin).add_assign(a.get_linear(lin));
        });
        ChunkedEngine {
            grid,
            a: a.clone(),
            blocks,
            stats: StatsCell::new(),
        }
    }

    /// An all-zero engine.
    pub fn zeros(dims: &[usize]) -> Result<Self, NdError> {
        let a = NdCube::filled(dims, T::zero())?;
        Ok(Self::from_cube(&a))
    }

    /// The block geometry.
    pub fn grid(&self) -> &BoxGrid {
        &self.grid
    }
}

impl<T: GroupValue> RangeSumEngine<T> for ChunkedEngine<T> {
    fn name(&self) -> &'static str {
        "chunked"
    }

    fn shape(&self) -> &Shape {
        self.a.shape()
    }

    fn query(&self, region: &Region) -> Result<T, NdError> {
        self.a.shape().check_region(region)?;
        let mut acc = T::zero();
        let mut reads = 0u64;

        // Walk the grid of blocks intersecting the region; fully covered
        // blocks contribute their total, partial blocks are scanned raw.
        let lo_b = self.grid.box_index_of(region.lo());
        let hi_b = self.grid.box_index_of(region.hi());
        // lint:allow(L2): box_index_of is componentwise monotone, so lo_b ≤ hi_b
        let block_span = Region::new(&lo_b, &hi_b).expect("block corners ordered");
        ndcube::RegionIter::for_each_coords(&block_span, |b| {
            let block_region = self.grid.box_region(b);
            if region.contains_region(&block_region) {
                let blin = self.grid.grid_shape().linear_unchecked(b);
                acc.add_assign(self.blocks.get_linear(blin));
                reads += 1;
            } else {
                let part = block_region
                    .intersect(region)
                    // lint:allow(L2): block_span enumerates only boxes overlapping the region
                    .expect("block intersects the region by construction");
                for lin in self.a.shape().linear_region_iter(&part) {
                    acc.add_assign(self.a.get_linear(lin));
                    reads += 1;
                }
            }
        });
        self.stats.reads(reads);
        self.stats.query();
        Ok(acc)
    }

    fn update(&mut self, coords: &[usize], delta: T) -> Result<(), NdError> {
        let lin = self.a.shape().linear(coords)?;
        self.a.get_linear_mut(lin).add_assign(&delta);
        let b = self.grid.box_index_of(coords);
        let blin = self.grid.grid_shape().linear_unchecked(&b);
        self.blocks.get_linear_mut(blin).add_assign(&delta);
        self.stats.writes(2);
        self.stats.update();
        Ok(())
    }

    fn stats(&self) -> CostStats {
        self.stats.get()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }

    fn storage_cells(&self) -> usize {
        self.a.len() + self.blocks.len()
    }

    fn cell(&self, coords: &[usize]) -> Result<T, NdError> {
        let lin = self.a.shape().linear(coords)?;
        self.stats.reads(1);
        Ok(self.a.get_linear(lin).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveEngine;
    use crate::testdata::paper_array_a;

    #[test]
    fn matches_naive_on_paper_array() {
        let a = paper_array_a();
        let e = ChunkedEngine::from_cube_uniform(&a, 3).unwrap();
        let naive = NaiveEngine::from_cube(a);
        for (lo, hi) in [
            ([0, 0], [8, 8]),
            ([2, 3], [7, 5]),
            ([4, 4], [4, 4]),
            ([0, 5], [3, 8]),
            ([3, 3], [5, 5]),
        ] {
            let r = Region::new(&lo, &hi).unwrap();
            assert_eq!(e.query(&r).unwrap(), naive.query(&r).unwrap(), "{r:?}");
        }
    }

    #[test]
    fn aligned_query_reads_only_block_totals() {
        let a = paper_array_a();
        let e = ChunkedEngine::from_cube_uniform(&a, 3).unwrap();
        e.reset_stats();
        // [3,3]..[5,5] is exactly one block.
        let r = Region::new(&[3, 3], &[5, 5]).unwrap();
        e.query(&r).unwrap();
        assert_eq!(e.stats().cell_reads, 1);
        // Whole cube = 9 block totals.
        e.reset_stats();
        e.query(&Region::new(&[0, 0], &[8, 8]).unwrap()).unwrap();
        assert_eq!(e.stats().cell_reads, 9);
    }

    #[test]
    fn misaligned_query_scans_boundaries() {
        let a = paper_array_a();
        let e = ChunkedEngine::from_cube_uniform(&a, 3).unwrap();
        e.reset_stats();
        // [1,1]..[7,7]: one fully covered block (the centre), 8 partial.
        let r = Region::new(&[1, 1], &[7, 7]).unwrap();
        e.query(&r).unwrap();
        // 1 block read + boundary cells (49 − 9 = 40 raw cells).
        assert_eq!(e.stats().cell_reads, 1 + 40);
    }

    #[test]
    fn update_costs_two_writes() {
        let mut e = ChunkedEngine::from_cube_uniform(&paper_array_a(), 3).unwrap();
        e.reset_stats();
        e.update(&[4, 4], 7).unwrap();
        assert_eq!(e.stats().cell_writes, 2);
        assert_eq!(e.total(), 297);
    }

    #[test]
    fn updates_keep_blocks_consistent() {
        let a = paper_array_a();
        let mut e = ChunkedEngine::from_cube_uniform(&a, 3).unwrap();
        let mut naive = NaiveEngine::from_cube(a);
        for (c, d) in [
            ([0usize, 0usize], 5i64),
            ([8, 8], -2),
            ([4, 5], 9),
            ([3, 0], 1),
        ] {
            e.update(&c, d).unwrap();
            naive.update(&c, d).unwrap();
        }
        for (lo, hi) in [([0, 0], [8, 8]), ([0, 0], [2, 2]), ([2, 2], [6, 6])] {
            let r = Region::new(&lo, &hi).unwrap();
            assert_eq!(e.query(&r).unwrap(), naive.query(&r).unwrap(), "{r:?}");
        }
    }

    #[test]
    fn ragged_blocks() {
        let a = NdCube::from_fn(&[7, 5], |c| (c[0] * 5 + c[1]) as i64).unwrap();
        let e = ChunkedEngine::from_cube_uniform(&a, 3).unwrap();
        let naive = NaiveEngine::from_cube(a);
        for (lo, hi) in [([0, 0], [6, 4]), ([5, 3], [6, 4]), ([2, 0], [6, 2])] {
            let r = Region::new(&lo, &hi).unwrap();
            assert_eq!(e.query(&r).unwrap(), naive.query(&r).unwrap(), "{r:?}");
        }
    }

    #[test]
    fn three_dimensional() {
        let a = NdCube::from_fn(&[6, 6, 6], |c| (c[0] + 2 * c[1] + 4 * c[2]) as i64).unwrap();
        let mut e = ChunkedEngine::from_cube_uniform(&a, 2).unwrap();
        let naive = NaiveEngine::from_cube(a);
        let r = Region::new(&[1, 0, 3], &[4, 5, 5]).unwrap();
        assert_eq!(e.query(&r).unwrap(), naive.query(&r).unwrap());
        e.update(&[3, 3, 3], 11).unwrap();
        assert_eq!(e.query(&r).unwrap(), naive.query(&r).unwrap() + 11);
    }

    #[test]
    fn storage_is_raw_plus_blocks() {
        let e = ChunkedEngine::<i64>::zeros(&[9, 9]).unwrap();
        assert_eq!(e.storage_cells(), 81 + 9);
    }
}
