//! The paper's running example: the 9×9 arrays of Figures 1, 2, 10 and 13.
//!
//! Exposed publicly so integration tests, examples and benches can assert
//! the exact numbers printed in the paper.

use ndcube::NdCube;

/// Figure 1: the two-dimensional data cube `A` (9×9).
pub fn paper_array_a() -> NdCube<i64> {
    #[rustfmt::skip]
    let rows: [[i64; 9]; 9] = [
        [3, 5, 1, 2, 2, 4, 6, 3, 3],
        [7, 3, 2, 6, 8, 7, 1, 2, 4],
        [2, 4, 2, 3, 3, 3, 4, 5, 7],
        [3, 2, 1, 5, 3, 5, 2, 8, 2],
        [4, 2, 1, 3, 3, 4, 7, 1, 3],
        [2, 3, 3, 6, 1, 8, 5, 1, 1],
        [4, 5, 2, 7, 1, 9, 3, 3, 4],
        [2, 4, 2, 2, 3, 1, 9, 1, 3],
        [5, 4, 3, 1, 3, 2, 1, 9, 6],
    ];
    // lint:allow(L2): a literal 81-element table always matches the 9×9 shape
    NdCube::from_vec(&[9, 9], rows.into_iter().flatten().collect()).unwrap()
}

/// Figure 2: the prefix-sum array `P` for [`paper_array_a`].
pub fn paper_array_p() -> NdCube<i64> {
    #[rustfmt::skip]
    let rows: [[i64; 9]; 9] = [
        [ 3,  8,  9,  11,  13,  17,  23,  26,  29],
        [10, 18, 21,  29,  39,  50,  57,  62,  69],
        [12, 24, 29,  40,  53,  67,  78,  88, 102],
        [15, 29, 35,  51,  67,  86,  99, 117, 133],
        [19, 35, 42,  61,  80, 103, 123, 142, 161],
        [21, 40, 50,  75,  95, 126, 151, 171, 191],
        [25, 49, 61,  93, 114, 154, 182, 205, 229],
        [27, 55, 69, 103, 127, 168, 205, 229, 256],
        [32, 64, 81, 116, 143, 186, 224, 257, 290],
    ];
    // lint:allow(L2): a literal 81-element table always matches the 9×9 shape
    NdCube::from_vec(&[9, 9], rows.into_iter().flatten().collect()).unwrap()
}

/// Figure 10: the relative-prefix array `RP` for [`paper_array_a`] with
/// 3×3 overlay boxes.
pub fn paper_array_rp() -> NdCube<i64> {
    #[rustfmt::skip]
    let rows: [[i64; 9]; 9] = [
        [ 3,  8,  9,  2,  4,  8,  6,  9, 12],
        [10, 18, 21,  8, 18, 29,  7, 12, 19],
        [12, 24, 29, 11, 24, 38, 11, 21, 35],
        [ 3,  5,  6,  5,  8, 13,  2, 10, 12],
        [ 7, 11, 13,  8, 14, 23,  9, 18, 23],
        [ 9, 16, 21, 14, 21, 38, 14, 24, 30],
        [ 4,  9, 11,  7,  8, 17,  3,  6, 10],
        [ 6, 15, 19,  9, 13, 23, 12, 16, 23],
        [11, 24, 31, 10, 17, 29, 13, 26, 39],
    ];
    // lint:allow(L2): a literal 81-element table always matches the 9×9 shape
    NdCube::from_vec(&[9, 9], rows.into_iter().flatten().collect()).unwrap()
}

/// The overlay box side length used throughout the paper's example.
pub const PAPER_BOX_SIZE: usize = 3;

/// Figure 13's overlay values, addressed by the position the overlay cell
/// occupies in the conceptual 9×9 grid: `(row, col, value)`.
///
/// The anchor of each box is the first entry of its triple-group; the other
/// entries are border cells. Cells not listed are not stored by the
/// overlay.
pub fn paper_overlay_cells() -> Vec<(usize, usize, i64)> {
    vec![
        // Box (0,0)
        (0, 0, 0),
        (0, 1, 0),
        (0, 2, 0),
        (1, 0, 0),
        (2, 0, 0),
        // Box (0,3)
        (0, 3, 9),
        (0, 4, 0),
        (0, 5, 0),
        (1, 3, 12),
        (2, 3, 20),
        // Box (0,6)
        (0, 6, 17),
        (0, 7, 0),
        (0, 8, 0),
        (1, 6, 33),
        (2, 6, 50),
        // Box (3,0)
        (3, 0, 12),
        (3, 1, 12),
        (3, 2, 17),
        (4, 0, 0),
        (5, 0, 0),
        // Box (3,3)
        (3, 3, 46),
        (3, 4, 13),
        (3, 5, 27),
        (4, 3, 7),
        (5, 3, 15),
        // Box (3,6)
        (3, 6, 97),
        (3, 7, 10),
        (3, 8, 24),
        (4, 6, 17),
        (5, 6, 40),
        // Box (6,0)
        (6, 0, 21),
        (6, 1, 19),
        (6, 2, 29),
        (7, 0, 0),
        (8, 0, 0),
        // Box (6,3)
        (6, 3, 86),
        (6, 4, 20),
        (6, 5, 51),
        (7, 3, 8),
        (8, 3, 20),
        // Box (6,6)
        (6, 6, 179),
        (6, 7, 20),
        (6, 8, 40),
        (7, 6, 14),
        (8, 6, 32),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_p_is_prefix_of_figure1_a() {
        // Cross-check the transcription: P[x] must equal the brute-force
        // prefix sum of A at every cell.
        let a = paper_array_a();
        let p = paper_array_p();
        for r in 0..9 {
            for c in 0..9 {
                let mut sum = 0i64;
                for i in 0..=r {
                    for j in 0..=c {
                        sum += a.get(&[i, j]);
                    }
                }
                assert_eq!(p.get(&[r, c]), sum, "P[{r},{c}]");
            }
        }
    }

    #[test]
    fn figure10_rp_is_box_local_prefix() {
        let a = paper_array_a();
        let rp = paper_array_rp();
        let k = PAPER_BOX_SIZE;
        for r in 0..9 {
            for c in 0..9 {
                let (ar, ac) = ((r / k) * k, (c / k) * k);
                let mut sum = 0i64;
                for i in ar..=r {
                    for j in ac..=c {
                        sum += a.get(&[i, j]);
                    }
                }
                assert_eq!(rp.get(&[r, c]), sum, "RP[{r},{c}]");
            }
        }
    }

    #[test]
    fn figure13_overlay_values_consistent() {
        // Anchor: SUM(A[0,0]:A[a]) − A[a]. Border at p: P[p] − RP[p] − anchor.
        let a = paper_array_a();
        let p = paper_array_p();
        let rp = paper_array_rp();
        let k = PAPER_BOX_SIZE;
        for (r, c, v) in paper_overlay_cells() {
            let (ar, ac) = ((r / k) * k, (c / k) * k);
            let anchor = p.get(&[ar, ac]) - a.get(&[ar, ac]);
            let expected = if (r, c) == (ar, ac) {
                anchor
            } else {
                p.get(&[r, c]) - rp.get(&[r, c]) - anchor
            };
            assert_eq!(v, expected, "overlay cell ({r},{c})");
        }
    }
}
