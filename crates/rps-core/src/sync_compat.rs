//! Switchable synchronization primitives for the concurrent paths.
//!
//! Under a normal build these re-export `std::sync`; under
//! `RUSTFLAGS="--cfg loom"` they re-export the loom model-checker's
//! instrumented twins instead, so [`crate::SharedEngine`]'s lock and
//! counter traffic runs through loom's scheduler in the
//! `tests/loom_shared_engine.rs` / `tests/loom_versioned_engine.rs`
//! interleaving tests without any change to the production code.
//! Everything `concurrent.rs` and `versioned.rs` touch funnels through
//! this one module — add new primitives here, not via direct
//! `std::sync` imports.

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(loom)]
pub use loom::sync::{Arc, Mutex, RwLock};

#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
pub use std::sync::{Arc, Mutex, RwLock};
