//! Derived aggregations (paper §2): COUNT, AVERAGE, ROLLING SUM and
//! ROLLING AVERAGE, built on SUM engines over the appropriate group.
//!
//! "The techniques presented here can also be applied to obtain COUNT,
//! AVERAGE, ROLLING SUM, ROLLING AVERAGE, and any binary operator + for
//! which there exists an inverse binary operator −."

use ndcube::{NdError, Region};

use crate::engine::RangeSumEngine;
use crate::value::{GroupValue, SumCount};

/// The inclusive `(lo, hi)` bounds of `base` along `dim`, through the
/// checked accessors. Callers validate `dim` before calling.
fn axis_bounds(base: &Region, dim: usize) -> (usize, usize) {
    // lint:allow(L2): every public entry point asserts dim < base.ndim()
    let lo = *base.lo().get(dim).expect("dim validated by caller");
    // lint:allow(L2): every public entry point asserts dim < base.ndim()
    let hi = *base.hi().get(dim).expect("dim validated by caller");
    (lo, hi)
}

/// Sets `corner[dim] = value` through the checked accessor. Callers
/// validate `dim` before calling.
fn set_axis(corner: &mut [usize], dim: usize, value: usize) {
    // lint:allow(L2): every public entry point asserts dim < base.ndim()
    *corner.get_mut(dim).expect("dim validated by caller") = value;
}

/// AVERAGE (and COUNT) range queries, layered over any engine that sums
/// [`SumCount`] pairs.
///
/// ```
/// use rps_core::aggregate::AverageCube;
/// use rps_core::RpsEngine;
/// use ndcube::Region;
///
/// let mut avg = AverageCube::new(RpsEngine::zeros(&[10, 10]).unwrap());
/// avg.record(&[2, 3], 100).unwrap(); // one fact worth 100
/// avg.record(&[2, 4], 50).unwrap();
/// let r = Region::new(&[0, 0], &[9, 9]).unwrap();
/// assert_eq!(avg.count(&r).unwrap(), 2);
/// assert_eq!(avg.average(&r).unwrap(), Some(75.0));
/// ```
#[derive(Debug, Clone)]
pub struct AverageCube<E> {
    engine: E,
}

impl<E: RangeSumEngine<SumCount<i64>>> AverageCube<E> {
    /// Wraps a `SumCount`-valued engine.
    pub fn new(engine: E) -> Self {
        AverageCube { engine }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Records one fact of the measure attribute at a cell.
    pub fn record(&mut self, coords: &[usize], amount: i64) -> Result<(), NdError> {
        self.engine.update(coords, SumCount::new(amount, 1))
    }

    /// Records `count` facts totalling `amount` at a cell.
    pub fn record_many(
        &mut self,
        coords: &[usize],
        amount: i64,
        count: i64,
    ) -> Result<(), NdError> {
        self.engine.update(coords, SumCount::new(amount, count))
    }

    /// Removes one previously recorded fact (inverse operator in action).
    pub fn retract(&mut self, coords: &[usize], amount: i64) -> Result<(), NdError> {
        self.engine.update(coords, SumCount::new(amount, 1).neg())
    }

    /// SUM over a region.
    pub fn sum(&self, region: &Region) -> Result<i64, NdError> {
        Ok(self.engine.query(region)?.sum)
    }

    /// COUNT over a region.
    pub fn count(&self, region: &Region) -> Result<i64, NdError> {
        Ok(self.engine.query(region)?.count)
    }

    /// AVERAGE over a region (`None` when the region holds no facts).
    pub fn average(&self, region: &Region) -> Result<Option<f64>, NdError> {
        Ok(self.engine.query(region)?.average_f64())
    }
}

/// ROLLING SUM: the sums of a window of width `window` sliding along
/// dimension `dim`, with every other dimension fixed to `base`'s range.
///
/// Returns one value per window position (`extent(dim) − window + 1`
/// positions). Each position is a single O(1) range query on the engine,
/// so a whole rolling series over `m` positions costs O(m) — this is the
/// paper's "find the total sales … over the past three months" query
/// repeated for every reporting period.
pub fn rolling_sum<T, E>(
    engine: &E,
    base: &Region,
    dim: usize,
    window: usize,
) -> Result<Vec<T>, NdError>
where
    T: GroupValue,
    E: RangeSumEngine<T>,
{
    assert!(window >= 1, "window must be at least 1");
    assert!(dim < base.ndim(), "dim out of range");
    let (lo_d, hi_d) = axis_bounds(base, dim);
    let extent = hi_d - lo_d + 1;
    if window > extent {
        return Ok(Vec::new());
    }
    let mut out = Vec::with_capacity(extent - window + 1);
    let mut lo = base.lo().to_vec();
    let mut hi = base.hi().to_vec();
    for start in lo_d..=hi_d + 1 - window {
        set_axis(&mut lo, dim, start);
        set_axis(&mut hi, dim, start + window - 1);
        // lint:allow(L2): start ≤ start+window−1 ≤ hi_d, other axes untouched
        let r = Region::new(&lo, &hi).expect("window within base");
        out.push(engine.query(&r)?);
    }
    Ok(out)
}

/// GROUP BY along one dimension: partitions `base`'s extent in `dim`
/// into consecutive buckets of `bucket` cells (the last bucket may be
/// shorter) and returns one range sum per bucket.
///
/// This is the OLAP *roll-up* — e.g. monthly totals from a daily cube
/// with `bucket = 30` — at one O(1) query per bucket.
///
/// ```
/// use rps_core::aggregate::group_by_sums;
/// use rps_core::{NaiveEngine, RangeSumEngine};
/// use ndcube::{NdCube, Region};
///
/// let daily = NdCube::from_vec(&[1, 6], vec![1i64, 2, 3, 4, 5, 6]).unwrap();
/// let engine = NaiveEngine::from_cube(daily);
/// let base = Region::new(&[0, 0], &[0, 5]).unwrap();
/// // "Bi-daily" totals along the day dimension.
/// assert_eq!(group_by_sums(&engine, &base, 1, 2).unwrap(), vec![3, 7, 11]);
/// ```
pub fn group_by_sums<T, E>(
    engine: &E,
    base: &Region,
    dim: usize,
    bucket: usize,
) -> Result<Vec<T>, NdError>
where
    T: GroupValue,
    E: RangeSumEngine<T>,
{
    assert!(bucket >= 1, "bucket must be at least 1");
    assert!(dim < base.ndim(), "dim out of range");
    let (lo_d, hi_d) = axis_bounds(base, dim);
    let mut out = Vec::with_capacity((hi_d - lo_d) / bucket + 1);
    let mut lo = base.lo().to_vec();
    let mut hi = base.hi().to_vec();
    let mut start = lo_d;
    while start <= hi_d {
        let end = (start + bucket - 1).min(hi_d);
        set_axis(&mut lo, dim, start);
        set_axis(&mut hi, dim, end);
        // lint:allow(L2): start ≤ end ≤ hi_d by the min() above, other axes untouched
        let r = Region::new(&lo, &hi).expect("bucket within base");
        out.push(engine.query(&r)?);
        start = end + 1;
    }
    Ok(out)
}

/// Two-dimensional GROUP BY (a cross-tab): buckets `dim_a` and `dim_b`
/// simultaneously, returning a `rows × cols` table of range sums in
/// row-major order along with its dimensions.
///
/// The OLAP cross-tabulation of the data-cube paper lineage (Gray et
/// al.), computed from O(1) range queries.
pub fn cross_tab<T, E>(
    engine: &E,
    base: &Region,
    dim_a: usize,
    bucket_a: usize,
    dim_b: usize,
    bucket_b: usize,
) -> Result<(Vec<T>, usize, usize), NdError>
where
    T: GroupValue,
    E: RangeSumEngine<T>,
{
    assert_ne!(dim_a, dim_b, "cross-tab needs two distinct dimensions");
    assert!(
        dim_a < base.ndim() && dim_b < base.ndim(),
        "dims out of range"
    );
    assert!(bucket_a >= 1 && bucket_b >= 1);
    let buckets = |dim: usize, bucket: usize| -> Vec<(usize, usize)> {
        let (lo_d, hi_d) = axis_bounds(base, dim);
        let mut v = Vec::new();
        let mut start = lo_d;
        while start <= hi_d {
            let end = (start + bucket - 1).min(hi_d);
            v.push((start, end));
            start = end + 1;
        }
        v
    };
    let rows = buckets(dim_a, bucket_a);
    let cols = buckets(dim_b, bucket_b);
    let mut out = Vec::with_capacity(rows.len() * cols.len());
    let mut lo = base.lo().to_vec();
    let mut hi = base.hi().to_vec();
    for &(ra, rb) in &rows {
        for &(ca, cb) in &cols {
            set_axis(&mut lo, dim_a, ra);
            set_axis(&mut hi, dim_a, rb);
            set_axis(&mut lo, dim_b, ca);
            set_axis(&mut hi, dim_b, cb);
            // lint:allow(L2): start ≤ end ≤ hi_d by the min() above, other axes untouched
            let r = Region::new(&lo, &hi).expect("bucket within base");
            out.push(engine.query(&r)?);
        }
    }
    Ok((out, rows.len(), cols.len()))
}

/// ROLLING AVERAGE over a `SumCount` engine: one `Option<f64>` per window
/// position (see [`rolling_sum`]).
pub fn rolling_average<E>(
    engine: &E,
    base: &Region,
    dim: usize,
    window: usize,
) -> Result<Vec<Option<f64>>, NdError>
where
    E: RangeSumEngine<SumCount<i64>>,
{
    Ok(rolling_sum(engine, base, dim, window)?
        .into_iter()
        .map(|sc| sc.average_f64())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveEngine;
    use crate::rps::RpsEngine;

    #[test]
    fn average_cube_basics() {
        let mut avg = AverageCube::new(RpsEngine::zeros(&[8, 8]).unwrap());
        avg.record(&[1, 1], 10).unwrap();
        avg.record(&[1, 2], 20).unwrap();
        avg.record(&[5, 5], 60).unwrap();
        let all = Region::new(&[0, 0], &[7, 7]).unwrap();
        assert_eq!(avg.sum(&all).unwrap(), 90);
        assert_eq!(avg.count(&all).unwrap(), 3);
        assert_eq!(avg.average(&all).unwrap(), Some(30.0));

        let corner = Region::new(&[0, 0], &[2, 2]).unwrap();
        assert_eq!(avg.average(&corner).unwrap(), Some(15.0));

        let empty = Region::new(&[6, 0], &[7, 3]).unwrap();
        assert_eq!(avg.average(&empty).unwrap(), None);
    }

    #[test]
    fn retract_inverts_record() {
        let mut avg = AverageCube::new(RpsEngine::zeros(&[4, 4]).unwrap());
        avg.record(&[2, 2], 42).unwrap();
        avg.retract(&[2, 2], 42).unwrap();
        let all = Region::new(&[0, 0], &[3, 3]).unwrap();
        assert_eq!(avg.count(&all).unwrap(), 0);
        assert_eq!(avg.sum(&all).unwrap(), 0);
    }

    #[test]
    fn rolling_sum_1d() {
        let cube = ndcube::NdCube::from_vec(&[6], vec![1i64, 2, 3, 4, 5, 6]).unwrap();
        let e = NaiveEngine::from_cube(cube);
        let base = Region::new(&[0], &[5]).unwrap();
        assert_eq!(rolling_sum(&e, &base, 0, 3).unwrap(), vec![6, 9, 12, 15]);
        assert_eq!(rolling_sum(&e, &base, 0, 6).unwrap(), vec![21]);
        assert_eq!(
            rolling_sum::<i64, _>(&e, &base, 0, 7).unwrap(),
            Vec::<i64>::new()
        );
    }

    #[test]
    fn rolling_sum_2d_with_fixed_rows() {
        let cube = crate::testdata::paper_array_a();
        let e = RpsEngine::from_cube_uniform(&cube, 3).unwrap();
        let naive = NaiveEngine::from_cube(cube);
        // Sliding 3-wide column window over rows 2..=4.
        let base = Region::new(&[2, 0], &[4, 8]).unwrap();
        let got = rolling_sum(&e, &base, 1, 3).unwrap();
        let want = rolling_sum(&naive, &base, 1, 3).unwrap();
        assert_eq!(got, want);
        assert_eq!(got.len(), 7);
    }

    #[test]
    fn group_by_rolls_up_exactly() {
        let cube = crate::testdata::paper_array_a();
        let naive = NaiveEngine::from_cube(cube.clone());
        let rps = RpsEngine::from_cube_uniform(&cube, 3).unwrap();
        let base = Region::new(&[0, 0], &[8, 8]).unwrap();
        // Bucket columns in threes: three bucket sums per full rows.
        let got = group_by_sums(&rps, &base, 1, 3).unwrap();
        let want = group_by_sums(&naive, &base, 1, 3).unwrap();
        assert_eq!(got, want);
        assert_eq!(got.len(), 3);
        assert_eq!(got.iter().sum::<i64>(), 290);
    }

    #[test]
    fn group_by_ragged_last_bucket() {
        let cube = ndcube::NdCube::from_vec(&[1, 7], vec![1i64, 2, 3, 4, 5, 6, 7]).unwrap();
        let e = NaiveEngine::from_cube(cube);
        let base = Region::new(&[0, 0], &[0, 6]).unwrap();
        let sums = group_by_sums(&e, &base, 1, 3).unwrap();
        assert_eq!(sums, vec![6, 15, 7]); // 1+2+3, 4+5+6, 7
    }

    #[test]
    fn cross_tab_partitions_total() {
        let cube = crate::testdata::paper_array_a();
        let rps = RpsEngine::from_cube_uniform(&cube, 3).unwrap();
        let base = Region::new(&[0, 0], &[8, 8]).unwrap();
        let (cells, rows, cols) = cross_tab(&rps, &base, 0, 4, 1, 4).unwrap();
        assert_eq!((rows, cols), (3, 3)); // buckets 4,4,1 each way
        assert_eq!(cells.len(), 9);
        assert_eq!(cells.iter().sum::<i64>(), 290);
        // Top-left 4×4 bucket checked against a direct query.
        let tl = rps.query(&Region::new(&[0, 0], &[3, 3]).unwrap()).unwrap();
        assert_eq!(cells[0], tl);
    }

    #[test]
    fn rolling_average_matches_manual() {
        let mut avg = AverageCube::new(RpsEngine::zeros(&[1, 6]).unwrap());
        for (day, amount) in [(0, 10), (1, 20), (2, 30), (3, 40)] {
            avg.record(&[0, day], amount).unwrap();
        }
        let base = Region::new(&[0, 0], &[0, 5]).unwrap();
        let rolls = rolling_average(avg.engine(), &base, 1, 2).unwrap();
        assert_eq!(
            rolls,
            vec![Some(15.0), Some(25.0), Some(35.0), Some(40.0), None]
        );
    }
}
