//! # rps-core — range-sum engines for dynamic OLAP data cubes
//!
//! A faithful, production-quality reproduction of
//! **"Relative Prefix Sums: An Efficient Approach for Querying Dynamic
//! OLAP Data Cubes"** (Geffner, Agrawal, El Abbadi, Smith — ICDE 1999),
//! together with the baselines the paper defines and one classic
//! extension:
//!
//! | Engine | Query | Update | Query·Update |
//! |--------|-------|--------|--------------|
//! | [`NaiveEngine`] (§2) | O(n^d) | O(1) | O(n^d) |
//! | [`PrefixSumEngine`] (Ho et al., §2) | O(1) | O(n^d) | O(n^d) |
//! | [`RpsEngine`] (**the paper**, §3–4) | O(1) | O(n^{d/2})¹ | **O(n^{d/2})¹** |
//! | [`FenwickEngine`] (extension) | O(log^d n) | O(log^d n) | O(log^{2d} n) |
//! | [`BlockedFenwickEngine`] (extension) | O(log^{d−1} n·(8 + log n/8)) | O(log^{d−1} n·log n/8) | as Fenwick, fewer cache misses |
//!
//! ¹ exact at d = 2 (the paper's demonstrated case); Θ(n^{d−1}) for
//! d ≥ 3 with the paper's stored-value definitions — still strictly
//! below the baselines' Θ(n^d); see DESIGN.md and `exp_dimensionality`.
//!
//! All engines implement [`RangeSumEngine`] over any commutative group
//! ([`GroupValue`]): SUM on integers/floats, COUNT, and AVERAGE via
//! [`value::SumCount`], exactly the operator family §2 of the paper
//! admits. Every engine counts the cells it reads and writes
//! ([`CostStats`]) so the paper's cell-count arithmetic (e.g. the 16 vs 64
//! cells of Figures 15 vs 4) is reproduced exactly.
//!
//! ## Quick start
//!
//! ```
//! use rps_core::{RangeSumEngine, RpsEngine};
//! use ndcube::{NdCube, Region};
//!
//! // SALES by CUSTOMER_AGE (0..100) × DAY (0..365)
//! let sales = NdCube::from_fn(&[100, 365], |c| (c[0] + c[1]) as i64).unwrap();
//! let mut engine = RpsEngine::from_cube(&sales); // k = ⌈√n⌉ per dimension
//!
//! // Total sales, ages 37..=52, days 300..=364 — answered in O(1).
//! let q = Region::new(&[37, 300], &[52, 364]).unwrap();
//! let total = engine.query(&q).unwrap();
//!
//! // A new sale arrives: constant-bounded update, no full rebuild.
//! engine.update(&[41, 320], 250).unwrap();
//! assert_eq!(engine.query(&q).unwrap(), total + 250);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod blocked_fenwick;
pub mod buffered;
pub mod checksum;
pub mod chunked;
pub mod concurrent;
pub mod corners;
pub mod engine;
pub mod fenwick;
pub mod naive;
pub mod obs;
pub mod prefix;
pub mod rps;
pub mod snapshot;
pub mod stats;
pub mod sync_compat;
pub mod testdata;
pub mod value;
pub mod versioned;

pub use blocked_fenwick::BlockedFenwickEngine;
pub use buffered::{BufferedEngine, SparseDelta};
pub use chunked::ChunkedEngine;
pub use concurrent::SharedEngine;
pub use engine::RangeSumEngine;
pub use fenwick::FenwickEngine;
pub use naive::NaiveEngine;
pub use prefix::PrefixSumEngine;
pub use rps::{BoxGrid, Overlay, RpsEngine};
pub use stats::{CostStats, StatsCell};
pub use value::{GroupValue, SumCount};
pub use versioned::{PinnedSnapshot, ReaderHandle, Version, VersionedEngine};
