//! A cache-blocked b-ary Fenwick engine (b = one cache line of lanes).
//!
//! The classic binary Fenwick tree pays `log₂ n` *dependent* memory
//! touches per dimension — every chain step is a pointer-chase into a
//! different cache line. This engine flattens the bottom of the tree
//! along the innermost (stride-1) dimension into blocks of
//! `B = `[`LANES`]` = 8` **raw** cells, so for 8-byte values one block
//! spans exactly one 64-byte cache line:
//!
//! * `cells` — the cube's own shape; outer dimensions are
//!   Fenwick-aggregated as usual, the innermost dimension stores raw
//!   (per-cell) values.
//! * `blocks` — the outer dimensions unchanged, the innermost dimension
//!   shrunk to `⌈n/B⌉` entries holding a **binary** Fenwick tree over
//!   per-block totals.
//!
//! A prefix sum along the innermost dimension is then: one contiguous
//! `≤ B`-cell partial summed lane-wide by [`crate::rps::kernels::sum_run`]
//! (a single cache line, no dependence chain), plus a `log₂⌈n/B⌉` chain
//! over block totals — three fewer dependent touches than binary Fenwick
//! at every innermost chain, in exchange for ≤ 8 contiguous reads the
//! prefetcher serves for free. A point update writes **one** raw cell
//! plus the block chain. Outer dimensions keep the standard chains, so
//! queries cost `O(log^{d−1} n · (B + log(n/B)))` and updates
//! `O(log^{d−1} n · log(n/B))`.
//!
//! Range updates reuse the d-dimensional dual-BIT decomposition shared
//! with [`crate::FenwickEngine`] (see [`crate::fenwick::range_update_aux`]):
//! the auxiliary trees are plain binary Fenwick cubes allocated on the
//! first range update, so point-only workloads keep the blocked-only
//! footprint.
//!
//! Like the RPS kernels this module is allocation-free on its hot paths
//! (enforced by the workspace lint `L5`): queries borrow the
//! thread-local [`Scratch`] via [`with_scratch`], updates reuse an
//! engine-owned [`KernelScratch`].

use ndcube::{NdCube, NdError, Region, Shape};

use crate::corners::range_sum_from_prefix_with;
use crate::engine::RangeSumEngine;
use crate::fenwick::{aux_prefix_part, range_update_aux};
use crate::rps::kernels::{sum_run, LANES};
use crate::rps::{with_scratch, KernelScratch};
use crate::stats::{CostStats, StatsCell};
use crate::value::GroupValue;

/// Cells per innermost-dimension block: one 64-byte cache line of 8-byte
/// lanes, matching the kernels' vector width.
pub const BLOCK: usize = LANES;

/// Range-sum engine backed by a cache-blocked b-ary Fenwick tree
/// (`b = `[`BLOCK`]` = 8`): raw innermost-dimension cells grouped into
/// cache-line blocks with a binary Fenwick tree over block totals, and
/// standard Fenwick aggregation across the outer dimensions. See the
/// [module docs](self) for the layout and cost model.
///
/// ```
/// use rps_core::{BlockedFenwickEngine, RangeSumEngine};
/// use ndcube::Region;
///
/// let mut e = BlockedFenwickEngine::<i64>::zeros(&[16, 100]).unwrap();
/// e.update(&[3, 40], 10).unwrap();
/// e.range_update(&Region::new(&[0, 0], &[7, 49]).unwrap(), 2).unwrap();
/// let r = Region::new(&[0, 0], &[10, 60]).unwrap();
/// assert_eq!(e.query(&r).unwrap(), 10 + 2 * 8 * 50);
/// assert_eq!(e.total(), 10 + 2 * 8 * 50);
/// ```
#[derive(Debug, Clone)]
pub struct BlockedFenwickEngine<T> {
    /// The cube's shape; outer dims Fenwick-aggregated, innermost raw.
    cells: NdCube<T>,
    /// Outer dims as in `cells`; innermost dim is a binary Fenwick tree
    /// over the `⌈n/B⌉` per-block totals.
    blocks: NdCube<T>,
    /// `2^d` auxiliary binary trees for the dual-BIT range-update
    /// decomposition (empty until the first range update).
    aux: Vec<NdCube<T>>,
    /// Cached grand total, bumped on every update — `total()` in O(1).
    total: T,
    stats: StatsCell,
    /// Workspace for the `&mut self` update paths; queries use the
    /// thread-local scratch instead to stay `Sync`.
    scratch: KernelScratch,
}

/// One blocked prefix chain walk: standard descending Fenwick chains over
/// the outer dimensions (mirrored into both index buffers — `cells` and
/// `blocks` share those dimensions), then at the innermost dimension a
/// lane-wide sum of the `≤ B` raw cells inside the target's block plus a
/// binary chain over the preceding block totals.
fn blocked_prefix_rec<T: GroupValue>(
    cells: &NdCube<T>,
    blocks: &NdCube<T>,
    stats: &StatsCell,
    x: &[usize],
    dim: usize,
    idx_c: &mut [usize],
    idx_b: &mut [usize],
) -> T {
    if dim + 1 == x.len() {
        let y = x[dim];
        let q = y / BLOCK;
        idx_c[dim] = q * BLOCK;
        let start = cells.shape().linear_unchecked(idx_c);
        // The block's raw cells up to and including y: stride-1, ≤ B long,
        // within one cache line — summed with lane-wide partials.
        let run = &cells.as_slice()[start..=start + (y - q * BLOCK)];
        stats.reads(run.len() as u64); // lint:allow(L4): run length ≤ B fits u64
        let mut acc = sum_run(run);
        // Binary Fenwick chain over the q complete blocks before it.
        let mut i = q;
        while i > 0 {
            idx_b[dim] = i - 1;
            let lin = blocks.shape().linear_unchecked(idx_b);
            stats.reads(1);
            acc.add_assign(blocks.get_linear(lin));
            i -= i & i.wrapping_neg();
        }
        acc
    } else {
        let mut acc = T::zero();
        let mut i = x[dim] + 1;
        while i > 0 {
            idx_c[dim] = i - 1;
            idx_b[dim] = i - 1;
            let sub = blocked_prefix_rec(cells, blocks, stats, x, dim + 1, idx_c, idx_b);
            acc.add_assign(&sub);
            i -= i & i.wrapping_neg();
        }
        acc
    }
}

/// One blocked point-add chain walk: ascending Fenwick chains over the
/// outer dimensions of both arrays, then at the innermost dimension a
/// single raw-cell write plus the ascending binary chain over block
/// totals.
#[allow(clippy::too_many_arguments)] // mirrors `blocked_prefix_rec`
fn blocked_add_rec<T: GroupValue>(
    cells: &mut NdCube<T>,
    blocks: &mut NdCube<T>,
    stats: &StatsCell,
    coords: &[usize],
    dim: usize,
    idx_c: &mut [usize],
    idx_b: &mut [usize],
    delta: &T,
) {
    if dim + 1 == coords.len() {
        idx_c[dim] = coords[dim];
        let lin = cells.shape().linear_unchecked(idx_c);
        cells.get_linear_mut(lin).add_assign(delta);
        stats.writes(1);
        let nb = blocks.shape().dim(dim);
        let mut i = coords[dim] / BLOCK + 1;
        while i <= nb {
            idx_b[dim] = i - 1;
            let lin = blocks.shape().linear_unchecked(idx_b);
            blocks.get_linear_mut(lin).add_assign(delta);
            stats.writes(1);
            i += i & i.wrapping_neg();
        }
    } else {
        let n = cells.shape().dim(dim);
        let mut i = coords[dim] + 1;
        while i <= n {
            idx_c[dim] = i - 1;
            idx_b[dim] = i - 1;
            blocked_add_rec(cells, blocks, stats, coords, dim + 1, idx_c, idx_b, delta);
            i += i & i.wrapping_neg();
        }
    }
}

impl<T: GroupValue> BlockedFenwickEngine<T> {
    /// Builds the engine over an all-zero cube. The innermost dimension
    /// need not be a multiple of [`BLOCK`]; the last block is simply
    /// short.
    pub fn zeros(dims: &[usize]) -> Result<Self, NdError> {
        let cells = NdCube::filled(dims, T::zero())?;
        // lint:allow(L5): one-time shape construction at engine build
        let mut bdims = dims.to_vec();
        if let Some(last) = bdims.last_mut() {
            *last = last.div_ceil(BLOCK);
        }
        Ok(BlockedFenwickEngine {
            cells,
            blocks: NdCube::filled(&bdims, T::zero())?,
            // lint:allow(L5): construction-time placeholder; aux trees allocate lazily on the first range update
            aux: Vec::new(),
            total: T::zero(),
            stats: StatsCell::new(),
            scratch: KernelScratch::new(),
        })
    }

    /// Builds the engine from a data cube by N point updates.
    pub fn from_cube(a: &NdCube<T>) -> Self {
        // lint:allow(L2): dims come from an existing valid shape
        let mut e = BlockedFenwickEngine::zeros(a.shape().dims()).expect("valid dims");
        let full = a.shape().full_region();
        let mut total = T::zero();
        // lint:allow(L5): one-time build-side coordinate buffers
        let (mut idx_c, mut idx_b) = (vec![0; a.ndim()], vec![0; a.ndim()]);
        a.shape().for_each_region_cell(&full, |coords, lin| {
            let v = a.get_linear(lin);
            total.add_assign(v);
            if !v.is_zero() {
                blocked_add_rec(
                    &mut e.cells,
                    &mut e.blocks,
                    &e.stats,
                    coords,
                    0,
                    &mut idx_c,
                    &mut idx_b,
                    v,
                );
            }
        });
        e.total = total;
        e.reset_stats();
        e
    }

    /// Inclusive prefix sum `Sum(A[0,…,0] : A[x])`.
    pub fn prefix_sum(&self, x: &[usize]) -> Result<T, NdError> {
        self.cells.shape().check(x)?;
        Ok(with_scratch(|s| self.prefix_with(x, &mut s.kernel)))
    }

    /// Prefix reconstruction against caller-provided coordinate buffers:
    /// the blocked base walk plus the auxiliary trees' range-update share.
    fn prefix_with(&self, x: &[usize], ks: &mut KernelScratch) -> T {
        ks.ensure(x.len());
        let KernelScratch {
            lo: idx_c,
            hi: idx_b,
            ..
        } = ks;
        let mut acc =
            blocked_prefix_rec(&self.cells, &self.blocks, &self.stats, x, 0, idx_c, idx_b);
        if !self.aux.is_empty() {
            acc.add_assign(&aux_prefix_part(&self.aux, &self.stats, x, idx_c));
        }
        acc
    }
}

impl<T: GroupValue> RangeSumEngine<T> for BlockedFenwickEngine<T> {
    fn name(&self) -> &'static str {
        "blocked-fenwick"
    }

    fn shape(&self) -> &Shape {
        self.cells.shape()
    }

    fn query(&self, region: &Region) -> Result<T, NdError> {
        self.cells.shape().check_region(region)?;
        let sum = with_scratch(|s| {
            let (corner, ks) = s.split();
            range_sum_from_prefix_with(region, corner, |c| self.prefix_with(c, ks))
        });
        self.stats.query();
        Ok(sum)
    }

    fn update(&mut self, coords: &[usize], delta: T) -> Result<(), NdError> {
        self.cells.shape().check(coords)?;
        self.total.add_assign(&delta);
        self.scratch.ensure(coords.len());
        let KernelScratch {
            lo: idx_c,
            hi: idx_b,
            ..
        } = &mut self.scratch;
        blocked_add_rec(
            &mut self.cells,
            &mut self.blocks,
            &self.stats,
            coords,
            0,
            idx_c,
            idx_b,
            &delta,
        );
        self.stats.update();
        Ok(())
    }

    // Fast path: the same d-dimensional dual-BIT decomposition as
    // `FenwickEngine` — the blocked base layout is untouched; the 2^d
    // corner suffix-adds land in the shared auxiliary trees.
    fn range_update(&mut self, region: &Region, delta: T) -> Result<(), NdError> {
        let shape = self.cells.shape().clone();
        shape.check_region(region)?;
        let m = crate::obs::core();
        m.range_update_fast.inc();
        m.range_update_cells
            .add(u64::try_from(region.cell_count()).unwrap_or(u64::MAX));
        if delta.is_zero() {
            self.stats.update();
            return Ok(());
        }
        let _span = rps_obs::Span::enter("blocked_fenwick.range_update", &m.range_update_ns);
        self.total
            .add_assign(&delta.scale(u64::try_from(region.cell_count()).unwrap_or(u64::MAX)));
        range_update_aux(&shape, &mut self.aux, &self.stats, region, &delta);
        self.stats.update();
        Ok(())
    }

    fn stats(&self) -> CostStats {
        self.stats.get()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }

    fn storage_cells(&self) -> usize {
        self.cells.len() + self.blocks.len() + self.aux.iter().map(NdCube::len).sum::<usize>()
    }

    // O(1): the cached running total, maintained by both update paths.
    fn total(&self) -> T {
        self.total.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fenwick::FenwickEngine;
    use crate::testdata::paper_array_a;
    use proptest::prelude::*;

    #[test]
    fn matches_brute_force_on_paper_array() {
        let a = paper_array_a();
        let e = BlockedFenwickEngine::from_cube(&a);
        for (lo, hi) in [
            ([0, 0], [8, 8]),
            ([2, 3], [7, 5]),
            ([4, 4], [4, 4]),
            ([0, 5], [3, 8]),
            ([7, 0], [8, 8]), // spans the short tail block (9 = 8 + 1)
        ] {
            let r = Region::new(&lo, &hi).unwrap();
            let brute: i64 = a
                .shape()
                .linear_region_iter(&r)
                .map(|l| *a.get_linear(l))
                .sum();
            assert_eq!(e.query(&r).unwrap(), brute, "region {r:?}");
        }
    }

    #[test]
    fn non_divisible_tail_blocks() {
        // n = 13: blocks of 8 + a 5-cell tail; every prefix crosses or
        // lands inside a partial block at some point.
        let a = NdCube::from_fn(&[13], |c| (3 * c[0] + 1) as i64).unwrap();
        let e = BlockedFenwickEngine::from_cube(&a);
        for y in 0..13 {
            let brute: i64 = (0..=y).map(|i| (3 * i + 1) as i64).sum();
            assert_eq!(e.prefix_sum(&[y]).unwrap(), brute, "prefix {y}");
        }
    }

    #[test]
    fn update_then_query() {
        let mut e = BlockedFenwickEngine::<i64>::zeros(&[8, 8]).unwrap();
        e.update(&[3, 4], 10).unwrap();
        e.update(&[0, 0], 1).unwrap();
        e.update(&[7, 7], 5).unwrap();
        assert_eq!(e.total(), 16);
        assert_eq!(
            e.query(&Region::new(&[0, 0], &[3, 4]).unwrap()).unwrap(),
            11
        );
        assert_eq!(e.cell(&[3, 4]).unwrap(), 10);
    }

    #[test]
    fn three_dimensional() {
        let a = NdCube::from_fn(&[5, 4, 11], |c| (c[0] * 31 + c[1] * 7 + c[2]) as i64).unwrap();
        let e = BlockedFenwickEngine::from_cube(&a);
        let r = Region::new(&[1, 0, 2], &[4, 3, 9]).unwrap();
        let brute: i64 = a
            .shape()
            .linear_region_iter(&r)
            .map(|l| *a.get_linear(l))
            .sum();
        assert_eq!(e.query(&r).unwrap(), brute);
    }

    #[test]
    fn point_update_write_cost_beats_binary_innermost() {
        // n = 64 innermost: binary Fenwick touches up to 7 chain entries;
        // blocked writes 1 raw cell + ≤ ⌈log2(9)⌉ = 4 block entries.
        let mut e = BlockedFenwickEngine::<i64>::zeros(&[64]).unwrap();
        e.reset_stats();
        e.update(&[0], 1).unwrap(); // worst case: longest chain
        let writes = e.stats().cell_writes;
        assert!(writes <= 5, "writes = {writes}");
    }

    #[test]
    fn range_update_matches_per_cell_loop() {
        let a = paper_array_a();
        let mut fast = BlockedFenwickEngine::from_cube(&a);
        let mut slow = BlockedFenwickEngine::from_cube(&a);
        for (lo, hi, delta) in [
            ([0usize, 0usize], [8usize, 8usize], 3i64),
            ([2, 3], [7, 5], -4),
            ([4, 4], [4, 4], 9), // point region
            ([0, 5], [3, 8], 1), // flush against the hi edge
        ] {
            let r = Region::new(&lo, &hi).unwrap();
            fast.range_update(&r, delta).unwrap();
            for c in r.iter() {
                slow.update(&c, delta).unwrap();
            }
            assert_eq!(fast.materialize(), slow.materialize(), "after {r:?}");
            assert_eq!(fast.total(), slow.total());
        }
    }

    #[test]
    fn storage_accounts_blocks_and_lazy_aux() {
        let mut e = BlockedFenwickEngine::<i64>::zeros(&[16, 16]).unwrap();
        // 256 raw cells + 16 rows × ⌈16/8⌉ = 32 block totals.
        assert_eq!(e.storage_cells(), 256 + 32);
        e.range_update(&Region::new(&[0, 0], &[7, 7]).unwrap(), 1)
            .unwrap();
        // + 2² full-shape aux trees.
        assert_eq!(e.storage_cells(), 256 + 32 + 4 * 256);
    }

    #[test]
    fn rejects_out_of_bounds() {
        let mut e = BlockedFenwickEngine::<i64>::zeros(&[4, 4]).unwrap();
        assert!(e.update(&[4, 0], 1).is_err());
        assert!(e.prefix_sum(&[0, 4]).is_err());
        assert!(e
            .range_update(&Region::new(&[0, 0], &[4, 0]).unwrap(), 1)
            .is_err());
    }

    proptest! {
        /// Random cubes and op sequences: blocked engine stays
        /// bit-identical to the plain binary Fenwick engine (which the
        /// conformance suite in turn pins to the materialized oracle).
        #[test]
        fn agrees_with_binary_fenwick(
            (dims, ops) in (1usize..=3)
                .prop_flat_map(|d| proptest::collection::vec(1usize..=19, d))
                .prop_flat_map(|dims| {
                    let coord = dims
                        .iter()
                        .map(|&n| 0..n)
                        .collect::<Vec<_>>();
                    let op = (
                        proptest::collection::vec(coord.clone(), 2),
                        -50i64..50,
                        any::<bool>(),
                    );
                    (Just(dims), proptest::collection::vec(op, 1..8))
                })
        ) {
            let mut blocked = BlockedFenwickEngine::<i64>::zeros(&dims).unwrap();
            let mut binary = FenwickEngine::<i64>::zeros(&dims).unwrap();
            for (corners, delta, ranged) in &ops {
                let lo: Vec<usize> = corners[0].iter().zip(&corners[1]).map(|(&a, &b)| a.min(b)).collect();
                let hi: Vec<usize> = corners[0].iter().zip(&corners[1]).map(|(&a, &b)| a.max(b)).collect();
                let r = Region::new(&lo, &hi).unwrap();
                if *ranged {
                    blocked.range_update(&r, *delta).unwrap();
                    binary.range_update(&r, *delta).unwrap();
                } else {
                    blocked.update(&lo, *delta).unwrap();
                    binary.update(&lo, *delta).unwrap();
                }
                prop_assert_eq!(blocked.query(&r).unwrap(), binary.query(&r).unwrap());
            }
            prop_assert_eq!(blocked.materialize(), binary.materialize());
            prop_assert_eq!(blocked.total(), binary.total());
        }
    }
}
