//! Versioned-snapshot (MVCC-lite) engine: a lock-free read path for the
//! paper's read-heavy OLAP deployment.
//!
//! [`crate::SharedEngine`] serializes every reader against the writer
//! with one `RwLock`; a single update stalls a whole
//! `query_many_parallel` batch. [`VersionedEngine`] removes the reader
//! side of that lock entirely:
//!
//! * The **writer** owns the RPS structures chunked into per-box-row
//!   *slabs* (`Arc<Vec<T>>`), applies update batches copy-on-write —
//!   the RPS box partition is the natural granule, so only the box rows
//!   an update's RP cascade and overlay walk touch are cloned — and
//!   publishes each batch as a new immutable [`Version`] into a small
//!   ring of publication slots.
//! * **Readers** pin an epoch ([`ReaderHandle::pin`]), run
//!   [`Version::query`] / [`Version::query_many`] /
//!   [`Version::query_many_parallel`] against their pinned version
//!   without ever taking the write lock, and unpin on drop. A pinned
//!   version is never reclaimed from under a reader.
//!
//! # Publication protocol (all safe Rust)
//!
//! The crate forbids `unsafe`, so the classic `AtomicPtr` arc-swap is
//! built instead from a `current` version counter, a fixed ring of
//! `RwLock<Option<Arc<Version>>>` slots (slot `v % RING` holds version
//! `v`), and one atomic epoch slot per registered reader:
//!
//! * **Publish** (writer, under the `writer` mutex): store the new
//!   `Arc<Version>` into its ring slot, then `current.store(v,
//!   SeqCst)`, then scan reader epochs and eagerly clear ring slots no
//!   pinned reader can still need.
//! * **Pin** (reader, lock-free w.r.t. the writer): load `current → v`,
//!   announce `epochs[i] = v` (SeqCst), then *revalidate* `current ==
//!   v`. If revalidation passes, SeqCst ordering gives the Dekker-style
//!   guarantee that the writer's subsequent reclaim scans observe the
//!   announcement, so slot `v` survives until unpin; the reader then
//!   clones the `Arc` out of the slot (checking the stored version
//!   number to defeat ring wrap-around) and is done with shared state.
//!
//! `Arc` reference counts are the memory-safety backstop throughout:
//! the epoch protocol only governs how *eagerly* ring slots are
//! recycled, so every failure mode degrades to "retry the pin" or
//! "reclaim later", never to a dangling read. Interleavings are
//! exercised by `tests/loom_versioned_engine.rs` and the whole module
//! runs under TSan in CI (`scripts/tsan.sh`).

use crate::sync_compat::{Arc, AtomicU64, Mutex, Ordering, RwLock};

use ndcube::{NdCube, NdError, Region, Shape};

use crate::corners::range_sum_from_prefix_with;
use crate::rps::{
    effective_threads, kernels, overlay_prefix_part_src, overlay_range_walk, overlay_update_walk,
    rp_range_box, slab_sizes, with_scratch, BoxGrid, KernelScratch, OverlaySource, RpsEngine,
    Scratch,
};
use crate::value::GroupValue;

/// Publication-ring capacity. A reader that loads `current` can fall at
/// most `RING − 1` publishes behind before its validated pin loop
/// retries against a newer version; history beyond the ring is only
/// reachable through `Arc`s readers already hold.
const RING: usize = 8;

/// Epoch slots available to [`VersionedEngine::reader`] handles.
/// Registration past this count degrades gracefully: the handle still
/// pins safely (the `Arc` it clones keeps its version alive), it just
/// no longer holds back eager ring-slot reclamation.
const MAX_READERS: usize = 64;

/// Epoch-slot sentinel: the slot is unassigned.
const FREE: u64 = u64::MAX;
/// Epoch-slot sentinel: a reader owns the slot but holds no pin.
const IDLE: u64 = u64::MAX - 1;

/// The ring slot a version number is published into.
fn ring_slot(v: u64) -> usize {
    // lint:allow(L4): RING is a small constant; the remainder fits usize
    (v % (RING as u64)) as usize
}

/// The RPS structures of one immutable version, chunked into per-box-row
/// copy-on-write slabs.
///
/// Slab `r` of the overlay holds the stored cells of every box whose
/// dim-0 grid index is `r` (flat indices `ov_base[r] .. ov_base[r+1]`);
/// slab `r` of the RP array holds cube rows `r·k₀ .. (r+1)·k₀`. The
/// writer shares untouched slabs between consecutive versions by `Arc`
/// clone, so a publish clones only the box rows its batch wrote.
#[derive(Debug)]
struct VersionData<T> {
    grid: BoxGrid,
    shape: Shape,
    /// Per-box slot offsets (shared by every version; never mutated).
    box_offsets: Arc<Vec<usize>>,
    /// `ov_base[r]` = first flat overlay index of box row `r`
    /// (`rows + 1` entries; also shared and immutable).
    ov_base: Arc<Vec<usize>>,
    ov_slabs: Vec<Arc<Vec<T>>>,
    rp_slabs: Vec<Arc<Vec<T>>>,
    /// Dim-0 box side: cube row `x₀` lives in slab `x₀ / k0`.
    k0: usize,
    /// Dim-0 stride of the cube shape (cells per cube row).
    stride0: usize,
}

impl<T: GroupValue> OverlaySource<T> for VersionData<T> {
    #[inline]
    fn offsets(&self) -> &[usize] {
        &self.box_offsets
    }

    #[inline]
    fn cell(&self, box_row: usize, idx: usize) -> &T {
        &self.ov_slabs[box_row][idx - self.ov_base[box_row]]
    }
}

impl<T: GroupValue> VersionData<T> {
    /// The RP cell at cube coordinate `x`, located through its slab.
    #[inline]
    fn rp_cell(&self, x: &[usize]) -> &T {
        let row = x[0] / self.k0;
        let lin = self.shape.linear_unchecked(x);
        &self.rp_slabs[row][lin - row * self.k0 * self.stride0]
    }

    /// One prefix reconstruction against this version's slabs — the same
    /// arithmetic as [`crate::rps::overlay_prefix_part_with`], routed
    /// through the storage-generic kernel.
    fn prefix_kernel(&self, x: &[usize], ks: &mut KernelScratch) -> T {
        let (mut acc, _reads) = overlay_prefix_part_src(&self.grid, self, x, ks);
        acc.add_assign(self.rp_cell(x));
        acc
    }
}

/// One immutable published state of a [`VersionedEngine`].
///
/// All query methods are `&self`, allocation-free after scratch warm-up
/// (the same thread-local [`Scratch`] as [`RpsEngine`]), and
/// bit-identical to a serial [`RpsEngine`] that applied the same prefix
/// of the update sequence.
#[derive(Debug)]
pub struct Version<T> {
    number: u64,
    total_updates: u64,
    data: VersionData<T>,
}

impl<T: GroupValue> Version<T> {
    /// This version's publication number (0 = the initial build).
    pub fn number(&self) -> u64 {
        self.number
    }

    /// Total updates folded into this version since the initial build —
    /// the length of the update-sequence prefix this version reflects.
    pub fn update_count(&self) -> u64 {
        self.total_updates
    }

    /// The cube shape.
    pub fn shape(&self) -> &Shape {
        &self.data.shape
    }

    /// Range-sum query against this version (the paper's O(1) corner
    /// reconstruction).
    pub fn query(&self, region: &Region) -> Result<T, NdError> {
        self.data.shape.check_region(region)?;
        Ok(with_scratch(|s| {
            let (corner_buf, ks) = s.split();
            range_sum_from_prefix_with(region, corner_buf, |corner| {
                self.data.prefix_kernel(corner, ks)
            })
        }))
    }

    /// Reads one cell (a point-region query).
    pub fn cell(&self, coords: &[usize]) -> Result<T, NdError> {
        self.query(&Region::point(coords)?)
    }

    /// Sum over the whole cube.
    pub fn total(&self) -> T {
        self.query(&self.data.shape.full_region())
            // lint:allow(L2): the shape's own full region always validates
            .expect("full region is always valid")
    }

    /// Answers a batch of range queries, sharing reconstructed prefix
    /// sums across them (the corner cache of
    /// [`RpsEngine::query_many`], keyed by linear cell index so the
    /// batch stays allocation-free after warm-up).
    pub fn query_many(&self, regions: &[Region]) -> Result<Vec<T>, NdError> {
        use std::collections::HashMap;
        for r in regions {
            self.data.shape.check_region(r)?;
        }
        let mut cache: HashMap<usize, T> =
            HashMap::with_capacity(corner_capacity(regions.len(), self.data.shape.ndim()));
        Ok(with_scratch(|s| {
            let (corner_buf, ks) = s.split();
            regions
                .iter()
                .map(|r| {
                    range_sum_from_prefix_with(r, corner_buf, |corner| {
                        cache
                            .entry(self.data.shape.linear_unchecked(corner))
                            .or_insert_with(|| self.data.prefix_kernel(corner, ks))
                            .clone()
                    })
                })
                .collect()
        }))
    }
}

impl<T: GroupValue + Send + Sync> Version<T> {
    /// Answers a batch of range queries sharded across up to `threads`
    /// scoped worker threads, like
    /// [`RpsEngine::query_many_parallel`] — but against an immutable
    /// version, so the whole batch observes one snapshot *without any
    /// lock hold at all*. Results are bit-identical to
    /// [`Version::query_many`].
    pub fn query_many_parallel(
        &self,
        regions: &[Region],
        threads: usize,
    ) -> Result<Vec<T>, NdError> {
        use std::collections::HashMap;
        // Unit-test and loom builds skip the host clamp so the shard
        // path stays exercised on 1-CPU hosts.
        let threads = if cfg!(any(test, loom)) {
            threads.max(1)
        } else {
            effective_threads(threads)
        };
        if threads == 1 || regions.len() < 2 * threads {
            return self.query_many(regions);
        }
        for r in regions {
            self.data.shape.check_region(r)?;
        }
        let shard_sizes = slab_sizes(regions.len(), 1, 1, threads);
        let cap_per_region = corner_capacity(1, self.data.shape.ndim());
        let mut out = vec![T::zero(); regions.len()];
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(shard_sizes.len());
            let mut out_rest = out.as_mut_slice();
            let mut reg_rest = regions;
            for &size in &shard_sizes {
                let (my_out, out_tail) = out_rest.split_at_mut(size);
                out_rest = out_tail;
                let (my_regs, reg_tail) = reg_rest.split_at(size);
                reg_rest = reg_tail;
                handles.push(scope.spawn(move || {
                    let mut scratch = Scratch::new();
                    let (corner_buf, ks) = scratch.split();
                    let mut cache: HashMap<usize, T> =
                        HashMap::with_capacity(my_regs.len().saturating_mul(cap_per_region));
                    for (slot, r) in my_out.iter_mut().zip(my_regs) {
                        *slot = range_sum_from_prefix_with(r, corner_buf, |corner| {
                            cache
                                .entry(self.data.shape.linear_unchecked(corner))
                                .or_insert_with(|| self.data.prefix_kernel(corner, ks))
                                .clone()
                        });
                    }
                }));
            }
            for h in handles {
                // lint:allow(L2): a worker panic is already a bug; propagate it
                h.join().expect("parallel query worker panicked");
            }
        });
        Ok(out)
    }
}

/// Worst-case distinct corners for a query batch: 2^d per region.
fn corner_capacity(regions: usize, d: usize) -> usize {
    regions.saturating_mul(
        1usize
            .checked_shl(u32::try_from(d).unwrap_or(u32::MAX))
            .unwrap_or(usize::MAX),
    )
}

/// One accepted-but-unpublished write: a point delta or a whole-rectangle
/// delta. Both publish through the same copy-on-write batch path, so a
/// version boundary never splits a rectangle.
#[derive(Debug, Clone)]
enum PendingOp<T> {
    Point(Vec<usize>, T),
    Range(Region, T),
}

/// The writer's private, mutable twin of [`VersionData`]: same slabs,
/// plus the pending batch and reusable scratch.
#[derive(Debug)]
struct WriterState<T> {
    grid: BoxGrid,
    shape: Shape,
    box_offsets: Arc<Vec<usize>>,
    ov_base: Arc<Vec<usize>>,
    ov_slabs: Vec<Arc<Vec<T>>>,
    rp_slabs: Vec<Arc<Vec<T>>>,
    k0: usize,
    stride0: usize,
    scratch: KernelScratch,
    /// Updates accepted but not yet published.
    pending: Vec<PendingOp<T>>,
    /// Publish after this many pending updates (≥ 1; default 1 =
    /// publish every update immediately).
    publish_threshold: usize,
    /// Updates folded into the *published* state so far.
    total_updates: u64,
    /// Number of the most recently published version.
    version: u64,
}

impl<T: GroupValue> WriterState<T> {
    /// An immutable view of the current slabs (cheap: `Arc` clones).
    fn version_data(&self) -> VersionData<T> {
        VersionData {
            grid: self.grid.clone(),
            shape: self.shape.clone(),
            box_offsets: Arc::clone(&self.box_offsets),
            ov_base: Arc::clone(&self.ov_base),
            ov_slabs: self.ov_slabs.iter().map(Arc::clone).collect(),
            rp_slabs: self.rp_slabs.iter().map(Arc::clone).collect(),
            k0: self.k0,
            stride0: self.stride0,
        }
    }

    /// Applies a batch to the slabs copy-on-write. Returns (cells
    /// written, box granules cloned, lane-kernel runs).
    ///
    /// An update at `c` is confined to box rows `b₀ = c₀/k₀ ..` — the RP
    /// cascade stays inside `c`'s own box, and the overlay orthant walk
    /// only ever touches boxes at `b₀` or below (see
    /// [`crate::rps::apply_update_with`]) — so earlier rows keep sharing
    /// their slabs with published versions untouched.
    fn apply_batch(&mut self, batch: &[PendingOp<T>]) -> (u64, u64, u64) {
        let WriterState {
            grid,
            shape,
            box_offsets,
            ov_base,
            ov_slabs,
            rp_slabs,
            k0,
            stride0,
            scratch: ks,
            ..
        } = self;
        let (k0, stride0) = (*k0, *stride0);
        let rows = ov_slabs.len();
        let row_boxes = u64::try_from(grid.grid_shape().strides()[0]).unwrap_or(u64::MAX);
        let mut writes = 0u64;
        let mut cow_boxes = 0u64;
        let mut lane_runs = 0u64;
        for op in batch {
            match op {
                PendingOp::Point(c, delta) => {
                    if delta.is_zero() {
                        continue;
                    }
                    let b0 = c[0] / k0;
                    ks.ensure(c.len());
                    // RP cascade, run-structured through the lane kernel —
                    // the same replay as `apply_updates_parallel`, against
                    // slab b₀.
                    grid.box_hi_of_cell_into(c, &mut ks.hi);
                    {
                        let slab = &mut rp_slabs[b0];
                        if Arc::strong_count(slab) > 1 {
                            cow_boxes += row_boxes;
                        }
                        let cells = Arc::make_mut(slab);
                        let base = b0 * k0 * stride0;
                        shape.for_each_contiguous_run_in_bounds(
                            c,
                            &ks.hi,
                            &mut ks.cur,
                            |start, len| {
                                let lo = start - base;
                                kernels::add_delta_run(&mut cells[lo..lo + len], delta);
                                writes += u64::try_from(len).unwrap_or(u64::MAX);
                                lane_runs += u64::from(kernels::is_lane_run(len));
                            },
                        );
                    }
                    // Overlay orthant walk, clipped to one box-row slab at
                    // a time. Rows before b₀ are never touched (the walk's
                    // row clip would return 0 writes), so they are not
                    // even cloned.
                    for r in b0..rows {
                        let slab = &mut ov_slabs[r];
                        if Arc::strong_count(slab) > 1 {
                            cow_boxes += row_boxes;
                        }
                        let cells = Arc::make_mut(slab);
                        writes += overlay_update_walk(
                            grid,
                            box_offsets,
                            cells,
                            ov_base[r],
                            r,
                            r + 1,
                            c,
                            delta,
                            ks,
                        );
                    }
                }
                PendingOp::Range(region, delta) => {
                    if delta.is_zero() {
                        continue;
                    }
                    let (lo, hi) = (region.lo(), region.hi());
                    let d = lo.len();
                    ks.ensure(d);
                    // RP half: per affected box-row slab, sweep the boxes
                    // of the [box(lo), box(hi)] index rectangle with that
                    // dim-0 index — the slab-clipped form of the serial
                    // engine's box cascade.
                    grid.box_index_into(lo, &mut ks.b);
                    grid.box_index_into(hi, &mut ks.offsets);
                    let b0 = ks.b[0];
                    for r in b0..=ks.offsets[0] {
                        let slab = &mut rp_slabs[r];
                        if Arc::strong_count(slab) > 1 {
                            cow_boxes += row_boxes;
                        }
                        let cells = Arc::make_mut(slab);
                        let base = r * k0 * stride0;
                        let KernelScratch {
                            b,
                            offsets,
                            alpha,
                            lo: rlo,
                            hi: box_hi,
                            cur,
                            e,
                            ..
                        } = &mut *ks;
                        cur.clear();
                        cur.extend_from_slice(b);
                        cur[0] = r;
                        'boxes: loop {
                            writes += rp_range_box(
                                grid, cells, base, cur, lo, hi, delta, alpha, rlo, box_hi, e,
                            );
                            let mut dim = d;
                            loop {
                                if dim == 1 {
                                    break 'boxes; // dim 0 is pinned to this slab
                                }
                                dim -= 1;
                                if cur[dim] < offsets[dim] {
                                    cur[dim] += 1;
                                    continue 'boxes;
                                }
                                cur[dim] = b[dim];
                            }
                        }
                    }
                    // Overlay half: every box row of lo's upper orthant,
                    // one slab-clipped walk per row.
                    for r in b0..rows {
                        let slab = &mut ov_slabs[r];
                        if Arc::strong_count(slab) > 1 {
                            cow_boxes += row_boxes;
                        }
                        let cells = Arc::make_mut(slab);
                        writes += overlay_range_walk(
                            grid,
                            box_offsets,
                            cells,
                            ov_base[r],
                            r,
                            r + 1,
                            lo,
                            hi,
                            delta,
                            ks,
                        );
                    }
                }
            }
        }
        (writes, cow_boxes, lane_runs)
    }
}

/// Shared state behind every [`VersionedEngine`] handle.
#[derive(Debug)]
struct VersionedShared<T> {
    /// Writer-side slabs and pending batch. Always the outermost guard:
    /// ring-slot locks are only acquired beneath it (publish/reclaim)
    /// or on their own (reader pins). The sanctioned nesting
    /// (writer before slot) is declared next to `SharedEngine`'s in
    /// `concurrent.rs`.
    writer: Mutex<WriterState<T>>,
    /// Number of the most recently published version. Readers pin
    /// against this; the writer stores it *after* filling the ring slot.
    current: AtomicU64,
    /// Publication ring: slot `v % RING` holds version `v` until it is
    /// overwritten by version `v + RING` or eagerly reclaimed.
    slots: [RwLock<Option<Arc<Version<T>>>>; RING],
    /// Reader epoch slots: [`FREE`], [`IDLE`], or the pinned version.
    epochs: [AtomicU64; MAX_READERS],
    /// Cube shape (immutable; for lock-free validation).
    shape: Shape,
    queries: AtomicU64,
    updates: AtomicU64,
    cell_writes: AtomicU64,
}

impl<T: GroupValue> VersionedShared<T> {
    /// The validated pin loop (see the module docs for the ordering
    /// argument). With `epoch_slot`, the version is additionally
    /// protected from eager reclamation until the slot is reset.
    fn pin_current(&self, epoch_slot: Option<usize>) -> Arc<Version<T>> {
        loop {
            let v = self.current.load(Ordering::SeqCst);
            if let Some(i) = epoch_slot {
                self.epochs[i].store(v, Ordering::SeqCst);
                if self.current.load(Ordering::SeqCst) != v {
                    // A publish raced our announcement; the writer's
                    // reclaim scan may have missed it. Re-announce
                    // against the newer version.
                    continue;
                }
            }
            let slot = &self.slots[ring_slot(v)];
            // lint:allow(L2): poisoning means a writer already panicked; fail fast is the policy
            let guard = slot.read().expect("engine lock poisoned");
            if let Some(arc) = guard.as_ref() {
                if arc.number == v {
                    return Arc::clone(arc);
                }
            }
            // The ring wrapped (≥ RING publishes between our two loads)
            // or an unpinned slot was reclaimed: retry against the
            // newer `current`. Each retry observes a strictly newer
            // version, so the loop terminates once the writer pauses.
        }
    }

    /// Publishes the pending batch as the next version and eagerly
    /// reclaims ring slots no pinned reader can still need.
    fn publish_locked(&self, w: &mut WriterState<T>) {
        let batch = std::mem::take(&mut w.pending);
        let (writes, cow_boxes, lane_runs) = w.apply_batch(&batch);
        w.total_updates += u64::try_from(batch.len()).unwrap_or(u64::MAX);
        w.version += 1;
        let next = w.version;
        let published = Arc::new(Version {
            number: next,
            total_updates: w.total_updates,
            data: w.version_data(),
        });
        {
            let slot = &self.slots[ring_slot(next)];
            // lint:allow(L2): poisoning means a writer already panicked; fail fast is the policy
            let mut guard = slot.write().expect("engine lock poisoned");
            *guard = Some(published);
        }
        self.current.store(next, Ordering::SeqCst);
        self.reclaim(next);
        self.cell_writes.fetch_add(writes, Ordering::Relaxed);
        let m = crate::obs::snapshot();
        m.versions.inc();
        m.cow_boxes.add(cow_boxes);
        if lane_runs > 0 {
            crate::obs::core().lane_runs.add(lane_runs);
        }
    }

    /// Clears every ring slot holding a version older than the oldest
    /// pinned epoch. Memory safety never depends on this — pinned
    /// readers hold `Arc` clones — it just returns slab memory as soon
    /// as no reader can reach a retired version through the ring.
    fn reclaim(&self, just_published: u64) {
        let mut min_pinned = u64::MAX;
        for e in &self.epochs {
            let v = e.load(Ordering::SeqCst);
            if v < IDLE && v < min_pinned {
                min_pinned = v;
            }
        }
        for (i, s) in self.slots.iter().enumerate() {
            if i == ring_slot(just_published) {
                continue;
            }
            let slot = s;
            // lint:allow(L2): poisoning means a writer already panicked; fail fast is the policy
            let mut guard = slot.write().expect("engine lock poisoned");
            if guard.as_ref().is_some_and(|v| v.number < min_pinned) {
                *guard = None;
            }
        }
    }

    /// Claims a free epoch slot, or `None` when all [`MAX_READERS`] are
    /// taken (the handle then pins without reclamation protection).
    fn acquire_epoch_slot(&self) -> Option<usize> {
        for (i, e) in self.epochs.iter().enumerate() {
            if e.compare_exchange(FREE, IDLE, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Some(i);
            }
        }
        None
    }
}

/// Cheap-to-clone handle around the versioned engine.
///
/// ```
/// use rps_core::{RpsEngine, VersionedEngine};
/// use ndcube::Region;
///
/// let engine = VersionedEngine::new(RpsEngine::<i64>::zeros(&[8, 8]).unwrap());
/// let mut reader = engine.reader();
///
/// let before = reader.pin(); // epoch-pinned: never blocks on the writer
/// engine.update(&[2, 2], 5).unwrap();
///
/// // The pinned snapshot still sees the pre-update state; a fresh pin
/// // sees the published update.
/// let all = Region::new(&[0, 0], &[7, 7]).unwrap();
/// assert_eq!(before.query(&all).unwrap(), 0);
/// drop(before);
/// assert_eq!(reader.pin().query(&all).unwrap(), 5);
/// ```
#[derive(Debug)]
pub struct VersionedEngine<T> {
    inner: Arc<VersionedShared<T>>,
}

impl<T> Clone for VersionedEngine<T> {
    fn clone(&self) -> Self {
        VersionedEngine {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: GroupValue> VersionedEngine<T> {
    /// Takes ownership of a built engine and publishes its state as
    /// version 0.
    pub fn new(engine: RpsEngine<T>) -> Self {
        let (grid, overlay, rp) = engine.into_parts();
        let shape = rp.shape().clone();
        let (box_offsets, cells) = overlay.into_parts();
        let rows = grid.grid_shape().dim(0);
        let row_boxes = grid.grid_shape().strides()[0];
        let k0 = grid.box_size()[0];
        let stride0 = shape.strides()[0];
        let n0 = shape.dim(0);
        let ov_base: Vec<usize> = (0..=rows).map(|r| box_offsets[r * row_boxes]).collect();

        // Chunk the flat buffers into per-box-row slabs.
        let mut ov_slabs = Vec::with_capacity(rows);
        let mut rest = cells;
        for r in 0..rows {
            let tail = rest.split_off(ov_base[r + 1] - ov_base[r]);
            ov_slabs.push(Arc::new(rest));
            rest = tail;
        }
        let mut rp_slabs = Vec::with_capacity(rows);
        let mut rest = rp.into_vec();
        for r in 0..rows {
            let hi = ((r + 1) * k0).min(n0);
            let tail = rest.split_off((hi - r * k0) * stride0);
            rp_slabs.push(Arc::new(rest));
            rest = tail;
        }

        let state = WriterState {
            grid,
            shape: shape.clone(),
            box_offsets: Arc::new(box_offsets),
            ov_base: Arc::new(ov_base),
            ov_slabs,
            rp_slabs,
            k0,
            stride0,
            scratch: KernelScratch::new(),
            pending: Vec::new(),
            publish_threshold: 1,
            total_updates: 0,
            version: 0,
        };
        let initial = Arc::new(Version {
            number: 0,
            total_updates: 0,
            data: state.version_data(),
        });
        let slots: [RwLock<Option<Arc<Version<T>>>>; RING] = std::array::from_fn(|i| {
            RwLock::new(if i == 0 {
                Some(Arc::clone(&initial))
            } else {
                None
            })
        });
        crate::obs::snapshot().versions.inc();
        VersionedEngine {
            inner: Arc::new(VersionedShared {
                writer: Mutex::new(state),
                current: AtomicU64::new(0),
                slots,
                epochs: std::array::from_fn(|_| AtomicU64::new(FREE)),
                shape,
                queries: AtomicU64::new(0),
                updates: AtomicU64::new(0),
                cell_writes: AtomicU64::new(0),
            }),
        }
    }

    /// Builds from a data cube (paper-recommended `k = ⌈√n⌉` boxes).
    pub fn from_cube(a: &NdCube<T>) -> Self {
        Self::new(RpsEngine::from_cube(a))
    }

    /// An all-zero cube with `k = ⌈√n⌉` boxes.
    pub fn zeros(dims: &[usize]) -> Result<Self, NdError> {
        Ok(Self::new(RpsEngine::zeros(dims)?))
    }

    /// Sets how many accepted updates are buffered before the writer
    /// publishes a version (≥ 1; the default 1 publishes every update
    /// immediately). Buffered updates are invisible to readers until
    /// published by the threshold, [`Self::apply_batch`] or
    /// [`Self::flush`].
    #[must_use]
    pub fn with_publish_threshold(self, n: usize) -> Self {
        {
            // lint:allow(L2): poisoning means a writer already panicked; fail fast is the policy
            let mut w = self.inner.writer.lock().expect("engine lock poisoned");
            w.publish_threshold = n.max(1);
        }
        self
    }

    /// The number of the most recently published version.
    pub fn current_version(&self) -> u64 {
        self.inner.current.load(Ordering::SeqCst)
    }

    /// The cube shape.
    pub fn shape(&self) -> &Shape {
        &self.inner.shape
    }

    /// Total queries served through the engine-level convenience
    /// methods (queries against held snapshots are not counted here).
    pub fn query_count(&self) -> u64 {
        self.inner.queries.load(Ordering::Relaxed)
    }

    /// Total updates accepted across all handles.
    pub fn update_count(&self) -> u64 {
        self.inner.updates.load(Ordering::Relaxed)
    }

    /// Total cells written by published batches (the paper's update-cost
    /// accounting, aggregated across versions).
    pub fn write_count(&self) -> u64 {
        self.inner.cell_writes.load(Ordering::Relaxed)
    }

    /// Registers an epoch-pinning reader.
    pub fn reader(&self) -> ReaderHandle<T> {
        let slot = self.inner.acquire_epoch_slot();
        if slot.is_some() {
            crate::obs::snapshot().readers.add(1);
        }
        ReaderHandle {
            inner: Arc::clone(&self.inner),
            slot,
        }
    }

    /// The current published version, unpinned: the returned `Arc`
    /// keeps it alive, but does not hold back ring-slot reclamation the
    /// way a pinned reader does. The cheap entry point for one-shot
    /// queries and CLI use.
    pub fn snapshot(&self) -> Arc<Version<T>> {
        self.inner.pin_current(None)
    }

    /// Accepts one update. It becomes visible to *new* snapshots once
    /// published (immediately at the default threshold 1).
    pub fn update(&self, coords: &[usize], delta: T) -> Result<(), NdError> {
        self.inner.shape.check(coords)?;
        let m = crate::obs::engine(crate::obs::EngineKind::Rps);
        m.updates.inc();
        // lint:allow(L2): poisoning means a writer already panicked; fail fast is the policy
        let mut w = self.inner.writer.lock().expect("engine lock poisoned");
        w.pending.push(PendingOp::Point(coords.to_vec(), delta));
        self.inner.updates.fetch_add(1, Ordering::Relaxed);
        if w.pending.len() >= w.publish_threshold {
            self.inner.publish_locked(&mut w);
        }
        Ok(())
    }

    /// Accepts one bulk range update: `delta` is added to every cell of
    /// `region`. The rectangle is applied copy-on-write as a single
    /// pending op and published like a point update, so readers always
    /// observe it atomically — one version boundary never splits it.
    pub fn range_update(&self, region: &Region, delta: T) -> Result<(), NdError> {
        self.inner.shape.check_region(region)?;
        let m = crate::obs::core();
        m.range_update_fast.inc();
        m.range_update_cells
            .add(u64::try_from(region.cell_count()).unwrap_or(u64::MAX));
        let _span = rps_obs::Span::enter("versioned.range_update", &m.range_update_ns);
        crate::obs::engine(crate::obs::EngineKind::Rps).updates.inc();
        // lint:allow(L2): poisoning means a writer already panicked; fail fast is the policy
        let mut w = self.inner.writer.lock().expect("engine lock poisoned");
        w.pending.push(PendingOp::Range(region.clone(), delta));
        self.inner.updates.fetch_add(1, Ordering::Relaxed);
        if w.pending.len() >= w.publish_threshold {
            self.inner.publish_locked(&mut w);
        }
        Ok(())
    }

    /// Applies a batch of updates and publishes exactly one new version
    /// for it (plus any updates already pending), so readers observe the
    /// batch atomically — never a partial batch.
    pub fn apply_batch(&self, updates: &[(Vec<usize>, T)]) -> Result<(), NdError> {
        for (coords, _) in updates {
            self.inner.shape.check(coords)?;
        }
        let m = crate::obs::engine(crate::obs::EngineKind::Rps);
        m.batches.inc();
        m.batch_updates
            .add(u64::try_from(updates.len()).unwrap_or(u64::MAX));
        // lint:allow(L2): poisoning means a writer already panicked; fail fast is the policy
        let mut w = self.inner.writer.lock().expect("engine lock poisoned");
        w.pending
            .extend(updates.iter().cloned().map(|(c, v)| PendingOp::Point(c, v)));
        self.inner.updates.fetch_add(
            u64::try_from(updates.len()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        self.inner.publish_locked(&mut w);
        Ok(())
    }

    /// Publishes any pending buffered updates as a new version.
    pub fn flush(&self) {
        // lint:allow(L2): poisoning means a writer already panicked; fail fast is the policy
        let mut w = self.inner.writer.lock().expect("engine lock poisoned");
        if !w.pending.is_empty() {
            self.inner.publish_locked(&mut w);
        }
    }

    /// One-shot query against the current version (pin-free snapshot).
    pub fn query(&self, region: &Region) -> Result<T, NdError> {
        let out = self.snapshot().query(region);
        if out.is_ok() {
            self.inner.queries.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// One-shot batch query against the current version.
    pub fn query_many(&self, regions: &[Region]) -> Result<Vec<T>, NdError> {
        let out = self.snapshot().query_many(regions);
        if out.is_ok() {
            self.inner.queries.fetch_add(
                u64::try_from(regions.len()).unwrap_or(u64::MAX),
                Ordering::Relaxed,
            );
        }
        out
    }

    /// Reads one cell of the current version.
    pub fn cell(&self, coords: &[usize]) -> Result<T, NdError> {
        self.snapshot().cell(coords)
    }

    /// Sum over the whole cube in the current version.
    pub fn total(&self) -> T {
        self.snapshot().total()
    }
}

impl<T: GroupValue + Send + Sync> VersionedEngine<T> {
    /// One-shot sharded batch query against the current version. The
    /// writer is never blocked: the batch runs against an immutable
    /// snapshot while updates continue to publish.
    pub fn query_many_parallel(
        &self,
        regions: &[Region],
        threads: usize,
    ) -> Result<Vec<T>, NdError> {
        let out = self.snapshot().query_many_parallel(regions, threads);
        if out.is_ok() {
            self.inner.queries.fetch_add(
                u64::try_from(regions.len()).unwrap_or(u64::MAX),
                Ordering::Relaxed,
            );
        }
        out
    }
}

/// A registered reader: owns an epoch slot (when one is free) and pins
/// snapshots through it. Dropping the handle frees the slot.
#[derive(Debug)]
pub struct ReaderHandle<T> {
    inner: Arc<VersionedShared<T>>,
    slot: Option<usize>,
}

impl<T: GroupValue> ReaderHandle<T> {
    /// Pins the current version: the returned snapshot's version stays
    /// reachable (and its ring slot unreclaimed) until the pin is
    /// dropped. `&mut self` keeps one pin per handle — a handle is one
    /// reader, and its epoch slot can announce one version at a time.
    pub fn pin(&mut self) -> PinnedSnapshot<'_, T> {
        let version = self.inner.pin_current(self.slot);
        crate::obs::snapshot().pinned_readers.add(1);
        PinnedSnapshot {
            inner: &self.inner,
            slot: self.slot,
            version,
        }
    }

    /// Whether this handle owns an epoch slot (`false` once
    /// `MAX_READERS` handles are live; pinning still works, but no
    /// longer delays ring-slot reclamation).
    pub fn has_epoch_slot(&self) -> bool {
        self.slot.is_some()
    }
}

impl<T> Drop for ReaderHandle<T> {
    fn drop(&mut self) {
        if let Some(i) = self.slot {
            self.inner.epochs[i].store(FREE, Ordering::SeqCst);
            crate::obs::snapshot().readers.sub(1);
        }
    }
}

/// An epoch-pinned snapshot: dereferences to the pinned [`Version`], so
/// every query method is available directly. Unpins on drop.
#[derive(Debug)]
pub struct PinnedSnapshot<'r, T> {
    inner: &'r VersionedShared<T>,
    slot: Option<usize>,
    version: Arc<Version<T>>,
}

impl<T> PinnedSnapshot<'_, T> {
    /// The pinned version.
    pub fn version(&self) -> &Version<T> {
        &self.version
    }
}

impl<T> std::ops::Deref for PinnedSnapshot<'_, T> {
    type Target = Version<T>;

    fn deref(&self) -> &Version<T> {
        &self.version
    }
}

impl<T> Drop for PinnedSnapshot<'_, T> {
    fn drop(&mut self) {
        if let Some(i) = self.slot {
            self.inner.epochs[i].store(IDLE, Ordering::SeqCst);
        }
        crate::obs::snapshot().pinned_readers.sub(1);
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::engine::RangeSumEngine;
    use crate::testdata::paper_array_a;

    fn paper_versioned() -> VersionedEngine<i64> {
        VersionedEngine::new(RpsEngine::from_cube_uniform(&paper_array_a(), 3).unwrap())
    }

    #[test]
    fn initial_version_matches_serial_engine() {
        let serial = RpsEngine::from_cube_uniform(&paper_array_a(), 3).unwrap();
        let v = paper_versioned();
        let snap = v.snapshot();
        assert_eq!(snap.number(), 0);
        for (lo, hi) in [([0, 0], [8, 8]), ([2, 3], [7, 5]), ([4, 4], [4, 4])] {
            let r = Region::new(&lo, &hi).unwrap();
            assert_eq!(snap.query(&r).unwrap(), serial.query(&r).unwrap(), "{r:?}");
        }
        // Every prefix cell agrees too (exercises every slab boundary).
        for x in &snap.shape().full_region() {
            let r = Region::new(&[0; 2], &x).unwrap();
            assert_eq!(snap.query(&r).unwrap(), serial.query(&r).unwrap(), "{x:?}");
        }
    }

    #[test]
    fn updates_publish_new_versions() {
        let v = paper_versioned();
        let all = Region::new(&[0, 0], &[8, 8]).unwrap();
        assert_eq!(v.query(&all).unwrap(), 290);
        v.update(&[1, 1], 10).unwrap();
        assert_eq!(v.current_version(), 1);
        assert_eq!(v.query(&all).unwrap(), 300);
        assert_eq!(v.update_count(), 1);
        assert_eq!(v.query_count(), 2);
    }

    #[test]
    fn pinned_snapshot_is_immutable() {
        let v = paper_versioned();
        let all = Region::new(&[0, 0], &[8, 8]).unwrap();
        let mut reader = v.reader();
        let pinned = reader.pin();
        assert_eq!(pinned.query(&all).unwrap(), 290);
        v.update(&[0, 0], 7).unwrap();
        // The pin still observes version 0; a fresh pin sees version 1.
        assert_eq!(pinned.query(&all).unwrap(), 290);
        assert_eq!(pinned.number(), 0);
        drop(pinned);
        let pinned = reader.pin();
        assert_eq!(pinned.number(), 1);
        assert_eq!(pinned.query(&all).unwrap(), 297);
    }

    #[test]
    fn cow_shares_untouched_slabs() {
        let v = paper_versioned();
        let before = v.snapshot();
        // Update in box row 1 (cube row 4): box row 0's slabs must be
        // shared untouched with version 0; row 1's RP slab must be new.
        v.update(&[4, 4], 1).unwrap();
        let after = v.snapshot();
        assert!(Arc::ptr_eq(
            &before.data.ov_slabs[0],
            &after.data.ov_slabs[0]
        ));
        assert!(Arc::ptr_eq(
            &before.data.rp_slabs[0],
            &after.data.rp_slabs[0]
        ));
        assert!(!Arc::ptr_eq(
            &before.data.rp_slabs[1],
            &after.data.rp_slabs[1]
        ));
        assert!(!Arc::ptr_eq(
            &before.data.ov_slabs[1],
            &after.data.ov_slabs[1]
        ));
        // Write cost matches the serial engine's accounting for the
        // same update.
        let mut serial = RpsEngine::from_cube_uniform(&paper_array_a(), 3).unwrap();
        serial.update(&[4, 4], 1).unwrap();
        assert_eq!(v.write_count(), serial.stats().cell_writes);
    }

    #[test]
    fn batch_is_one_version() {
        let v = paper_versioned();
        v.apply_batch(&[(vec![0, 0], 1), (vec![8, 8], 2), (vec![4, 4], 3)])
            .unwrap();
        assert_eq!(v.current_version(), 1);
        assert_eq!(v.update_count(), 3);
        assert_eq!(v.snapshot().update_count(), 3);
        assert_eq!(v.total(), 296);
    }

    #[test]
    fn publish_threshold_buffers_until_flush() {
        let v = paper_versioned().with_publish_threshold(10);
        v.update(&[0, 0], 5).unwrap();
        v.update(&[1, 1], 5).unwrap();
        // Accepted but unpublished: readers still see version 0.
        assert_eq!(v.current_version(), 0);
        assert_eq!(v.total(), 290);
        v.flush();
        assert_eq!(v.current_version(), 1);
        assert_eq!(v.total(), 300);
        // An empty flush publishes nothing.
        v.flush();
        assert_eq!(v.current_version(), 1);
    }

    #[test]
    fn query_many_variants_match_serial() {
        let v = paper_versioned();
        v.apply_batch(&[(vec![2, 2], 9), (vec![7, 7], -4)]).unwrap();
        let regions: Vec<Region> = (0..24)
            .map(|i| Region::new(&[i % 5, i % 4], &[(i % 5) + 3, (i % 4) + 4]).unwrap())
            .collect();
        let snap = v.snapshot();
        let one_by_one: Vec<i64> = regions.iter().map(|r| snap.query(r).unwrap()).collect();
        assert_eq!(snap.query_many(&regions).unwrap(), one_by_one);
        assert_eq!(snap.query_many_parallel(&regions, 4).unwrap(), one_by_one);
        assert_eq!(v.query_many(&regions).unwrap(), one_by_one);
        assert_eq!(v.query_many_parallel(&regions, 4).unwrap(), one_by_one);
    }

    #[test]
    fn ring_wraparound_keeps_held_snapshots_alive() {
        let v = paper_versioned();
        let old = v.snapshot();
        // Publish far more versions than the ring holds.
        for i in 0..(2 * RING + 3) {
            v.update(&[i % 9, (i * 5) % 9], 1).unwrap();
        }
        // The held Arc still answers from version 0.
        assert_eq!(old.total(), 290);
        assert_eq!(old.number(), 0);
        // And fresh pins see the newest version.
        let newest = v.snapshot();
        assert_eq!(newest.number(), u64::try_from(2 * RING + 3).unwrap());
        assert_eq!(newest.total(), 290 + i64::try_from(2 * RING + 3).unwrap());
    }

    #[test]
    fn pinned_reader_protects_its_ring_slot() {
        let v = paper_versioned();
        let mut reader = v.reader();
        let pinned = reader.pin();
        // Fewer publishes than the ring size: the pinned version's slot
        // is skipped by eager reclamation (min pinned epoch = 0).
        for i in 0..3 {
            v.update(&[i, i], 1).unwrap();
        }
        let slot0 = v.inner.slots[0].read().unwrap();
        assert!(slot0.as_ref().is_some_and(|s| s.number() == 0));
        drop(slot0);
        drop(pinned);
        // With the pin gone, the next publish reclaims version 0's slot.
        v.update(&[5, 5], 1).unwrap();
        assert!(v.inner.slots[0].read().unwrap().is_none());
    }

    #[test]
    fn reader_slots_recycle_and_overflow_degrades() {
        let v = paper_versioned();
        let handles: Vec<_> = (0..MAX_READERS).map(|_| v.reader()).collect();
        assert!(handles.iter().all(ReaderHandle::has_epoch_slot));
        // Slot table exhausted: the next reader degrades gracefully...
        let mut extra = v.reader();
        assert!(!extra.has_epoch_slot());
        assert_eq!(extra.pin().total(), 290);
        // ...and dropping a registered handle frees its slot for reuse.
        drop(handles);
        let recycled = v.reader();
        assert!(recycled.has_epoch_slot());
    }

    #[test]
    fn concurrent_writer_and_pinned_readers() {
        let v = VersionedEngine::new(RpsEngine::<i64>::zeros(&[32, 32]).unwrap());
        let full = Region::new(&[0, 0], &[31, 31]).unwrap();
        let writer = {
            let v = v.clone();
            std::thread::spawn(move || {
                for i in 0..400usize {
                    v.update(&[i % 32, (i * 7) % 32], 1).unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let v = v.clone();
                let full = full.clone();
                std::thread::spawn(move || {
                    let mut reader = v.reader();
                    let mut last = 0i64;
                    for _ in 0..150 {
                        let pinned = reader.pin();
                        let t = pinned.query(&full).unwrap();
                        // Each snapshot is exactly some prefix of the
                        // update sequence (all deltas are +1).
                        assert_eq!(t, i64::try_from(pinned.update_count()).unwrap());
                        assert!(t >= last, "total went backwards: {last} → {t}");
                        last = t;
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(v.total(), 400);
        assert_eq!(v.update_count(), 400);
    }

    #[test]
    fn versioned_matches_serial_after_many_updates() {
        // d = 3, ragged boxes: every slab-boundary case in one sweep.
        let a = NdCube::from_fn(&[6, 5, 4], |c| (c[0] * 20 + c[1] * 4 + c[2]) as i64).unwrap();
        let mut serial = RpsEngine::from_cube_with_box_size(&a, &[2, 3, 2]).unwrap();
        let v = VersionedEngine::new(RpsEngine::from_cube_with_box_size(&a, &[2, 3, 2]).unwrap());
        for i in 0..40usize {
            let c = [i % 6, (i * 3) % 5, (i * 7) % 4];
            let delta = i64::try_from(i).unwrap() % 11 - 5;
            serial.update(&c, delta).unwrap();
            v.update(&c, delta).unwrap();
        }
        let snap = v.snapshot();
        for x in &a.shape().full_region() {
            let r = Region::new(&[0; 3], &x).unwrap();
            assert_eq!(snap.query(&r).unwrap(), serial.query(&r).unwrap(), "{x:?}");
        }
    }

    #[test]
    fn range_update_matches_serial_and_respects_pins() {
        let v = paper_versioned();
        let mut serial = RpsEngine::from_cube_uniform(&paper_array_a(), 3).unwrap();
        let mut reader = v.reader();
        let pinned = reader.pin();
        let r = Region::new(&[1, 2], &[6, 7]).unwrap();
        v.range_update(&r, 5).unwrap();
        serial.range_update(&r, 5).unwrap();
        // The pin still observes the pre-update state...
        assert_eq!(pinned.total(), 290);
        drop(pinned);
        // ...and a fresh pin sees the whole rectangle at once, cell-for-
        // cell identical to the serial engine's fast path.
        let snap = reader.pin();
        for x in &snap.shape().full_region() {
            let pr = Region::new(&[0; 2], &x).unwrap();
            assert_eq!(snap.query(&pr).unwrap(), serial.query(&pr).unwrap(), "{x:?}");
        }
    }

    #[test]
    fn mixed_point_and_range_ops_match_serial_3d() {
        // d = 3, ragged boxes: range rectangles crossing slab boundaries
        // interleaved with point deltas.
        let a = NdCube::from_fn(&[6, 5, 4], |c| (c[0] * 20 + c[1] * 4 + c[2]) as i64).unwrap();
        let mut serial = RpsEngine::from_cube_with_box_size(&a, &[2, 3, 2]).unwrap();
        let v = VersionedEngine::new(RpsEngine::from_cube_with_box_size(&a, &[2, 3, 2]).unwrap());
        for i in 0..24usize {
            let c = [i % 6, (i * 3) % 5, (i * 7) % 4];
            let delta = i64::try_from(i).unwrap() % 11 - 5;
            if i % 3 == 0 {
                let hi = [(c[0] + 3).min(5), (c[1] + 2).min(4), (c[2] + 1).min(3)];
                let r = Region::new(&c, &hi).unwrap();
                serial.range_update(&r, delta).unwrap();
                v.range_update(&r, delta).unwrap();
            } else {
                serial.update(&c, delta).unwrap();
                v.update(&c, delta).unwrap();
            }
        }
        let snap = v.snapshot();
        for x in &a.shape().full_region() {
            let r = Region::new(&[0; 3], &x).unwrap();
            assert_eq!(snap.query(&r).unwrap(), serial.query(&r).unwrap(), "{x:?}");
        }
    }

    #[test]
    fn one_dimensional_cube() {
        let a = NdCube::from_fn(&[17], |c| c[0] as i64).unwrap();
        let v = VersionedEngine::from_cube(&a);
        let serial = RpsEngine::from_cube(&a);
        v.update(&[16], 100).unwrap();
        let snap = v.snapshot();
        for x in 0..17 {
            let r = Region::new(&[0], &[x]).unwrap();
            let expect = serial.query(&r).unwrap() + if x == 16 { 100 } else { 0 };
            assert_eq!(snap.query(&r).unwrap(), expect, "prefix to {x}");
        }
    }

    #[test]
    fn rejects_out_of_bounds() {
        let v = VersionedEngine::<i64>::zeros(&[4, 4]).unwrap();
        assert!(v.update(&[4, 0], 1).is_err());
        assert!(v.query(&Region::new(&[0, 0], &[4, 4]).unwrap()).is_err());
        assert!(v.apply_batch(&[(vec![0, 0], 1), (vec![9, 9], 1)]).is_err());
        // The failed batch published nothing.
        assert_eq!(v.current_version(), 0);
        assert_eq!(v.total(), 0);
    }
}
