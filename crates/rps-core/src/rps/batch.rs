//! Batch updates and structure rebuilds.
//!
//! The paper targets "weekly or daily" refresh cycles: updates arrive in
//! batches, not one at a time. For a batch of m updates the engine can
//! either apply them incrementally (m × the §4.3 per-update cost) or
//! recover `A`, apply the whole batch, and rebuild RP + overlay in
//! O(d·N). The crossover m* ≈ d·N / update_cost(n, d, k) is decided with
//! the paper's own cost model; `exp_batch_updates` measures the ablation.

use ndcube::{NdCube, NdError};

use crate::engine::RangeSumEngine;
use crate::rps::RpsEngine;
use crate::value::GroupValue;

/// Moves a count/extent into the cost model's f64 domain. All lossy
/// numeric entry into the estimator funnels through this one function.
pub(crate) fn est(x: usize) -> f64 {
    // lint:allow(L4): cost estimates tolerate f64 rounding above 2^53
    x as f64
}

impl<T: GroupValue> RpsEngine<T> {
    /// Recovers the data cube `A` from the RP array alone by inverting
    /// the box-local prefix sweeps — O(d·N), no point queries.
    ///
    /// The inverse runs the sweeps backwards: within each box, a cell
    /// subtracts its predecessor along each dimension (in reverse linear
    /// order, so predecessors are still in their summed state when read).
    pub fn to_cube(&self) -> NdCube<T> {
        crate::rps::build::inverse_relative_prefix_sums(self.rp_array(), self.grid())
    }

    /// Rebuilds RP and the overlay from scratch for a new cube of the
    /// same shape and box size — O(d·N).
    pub fn rebuild_from(&mut self, a: &NdCube<T>) -> Result<(), NdError> {
        if a.shape() != self.shape() {
            return Err(NdError::ShapeMismatch {
                expected: self.shape().dims().to_vec(),
                got: a.shape().dims().to_vec(),
            });
        }
        let fresh = RpsEngine::from_cube_with_box_size(a, self.grid().box_size())?;
        // Carry counters across the rebuild.
        let prior = self.stats();
        // lint:allow(L4): the estimate is nonnegative and far below 2^53
        let rebuild_writes = self.rebuild_cost() as u64;
        *self = fresh;
        // The fresh engine starts at zero; restore history and account
        // the reconstruction as the cells it wrote.
        let cell = crate::stats::StatsCell::new();
        cell.add_snapshot(prior);
        cell.writes(rebuild_writes);
        self.set_stats(cell);
        Ok(())
    }

    /// Estimated worst-case per-update write cost for this engine's
    /// geometry — the §4.3 three-term formula generalized dimension-wise
    /// to non-hypercube shapes:
    /// `∏(kᵢ−1)` RP cells + `Σᵢ (nᵢ/kᵢ)·∏_{j≠i} kⱼ` border cells +
    /// `∏(nᵢ/kᵢ − 1)` anchors.
    ///
    /// Reporting/estimation only ([`Self::apply_batch`] *measures* its
    /// crossover instead). Differs deliberately from
    /// `rps_analysis::rps_update_cost` — the paper's literal hypercube
    /// formula — in two ways: per-dimension shapes, and an RP term
    /// clamped to ≥ 1 because the updated cell itself is always written
    /// even at k = 1.
    pub fn estimated_update_cost(&self) -> f64 {
        let dims = self.shape().dims();
        let ks = self.grid().box_size();
        let rp: f64 = ks.iter().map(|&k| (est(k) - 1.0).max(1.0)).product();
        let anchors: f64 = dims
            .iter()
            .zip(ks)
            .map(|(&n, &k)| (est(n) / est(k) - 1.0).max(0.0))
            .product();
        let mut borders = 0.0;
        for (i, (&n, &k)) in dims.iter().zip(ks).enumerate() {
            let mut term = est(n) / est(k);
            for (j, &kj) in ks.iter().enumerate() {
                if j != i {
                    term *= est(kj);
                }
            }
            borders += term;
        }
        rp + borders + anchors
    }

    /// Cell writes a full rebuild costs: recovering A (d sweeps) plus
    /// reconstructing RP and the overlay.
    pub(crate) fn rebuild_cost(&self) -> f64 {
        (est(self.shape().ndim()) + 2.0) * est(self.shape().len())
    }
}

impl<T: GroupValue + Send + Sync> RpsEngine<T> {
    /// Applies a batch of point updates, adaptively choosing between
    /// incremental application and a full rebuild. Returns `true` when
    /// the rebuild path was taken.
    ///
    /// Strategy: apply a small sample incrementally while *measuring* the
    /// actual per-update write cost (the worst-case formula is too
    /// pessimistic for uniform positions), then extrapolate; if the
    /// projected remaining incremental cost exceeds the O((d+2)·N)
    /// rebuild, recover `A`, fold in the rest of the batch, and rebuild.
    ///
    /// Duplicate coordinates in the batch are fine (deltas accumulate).
    /// Large incremental batches are partitioned across worker threads —
    /// see [`Self::apply_batch_parallel`] for the thread-count knob.
    pub fn apply_batch(&mut self, updates: &[(Vec<usize>, T)]) -> Result<bool, NdError> {
        self.apply_batch_parallel(updates, crate::rps::parallel::default_threads())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveEngine;
    use crate::testdata::{paper_array_a, PAPER_BOX_SIZE};
    use ndcube::Region;

    #[test]
    fn to_cube_inverts_build() {
        let a = paper_array_a();
        let e = RpsEngine::from_cube_uniform(&a, PAPER_BOX_SIZE).unwrap();
        assert_eq!(e.to_cube(), a);
    }

    #[test]
    fn to_cube_after_updates() {
        let a = paper_array_a();
        let mut e = RpsEngine::from_cube_uniform(&a, PAPER_BOX_SIZE).unwrap();
        e.update(&[1, 1], 5).unwrap();
        e.update(&[8, 0], -2).unwrap();
        let mut expect = a;
        expect.set(&[1, 1], expect.get(&[1, 1]) + 5);
        expect.set(&[8, 0], expect.get(&[8, 0]) - 2);
        assert_eq!(e.to_cube(), expect);
    }

    #[test]
    fn to_cube_three_dim_ragged() {
        let a = ndcube::NdCube::from_fn(&[5, 7, 4], |c| (c[0] * 100 + c[1] * 10 + c[2]) as i64)
            .unwrap();
        let e = RpsEngine::from_cube_with_box_size(&a, &[2, 3, 3]).unwrap();
        assert_eq!(e.to_cube(), a);
    }

    #[test]
    fn small_batch_stays_incremental() {
        let a = paper_array_a();
        let mut e = RpsEngine::from_cube_uniform(&a, PAPER_BOX_SIZE).unwrap();
        let batch = vec![(vec![1, 1], 1i64), (vec![4, 4], 2)];
        let rebuilt = e.apply_batch(&batch).unwrap();
        assert!(!rebuilt, "tiny batch should apply incrementally");
        assert_eq!(e.cell(&[1, 1]).unwrap(), 4);
        assert_eq!(e.cell(&[4, 4]).unwrap(), 5);
    }

    #[test]
    fn huge_batch_triggers_rebuild() {
        let a = paper_array_a();
        let mut e = RpsEngine::from_cube_uniform(&a, PAPER_BOX_SIZE).unwrap();
        // 9×9 cube: rebuild ≈ 4·81 = 324 vs ~26 per update ⇒ rebuild at
        // a few dozen updates.
        let batch: Vec<(Vec<usize>, i64)> = (0..81).map(|i| (vec![i / 9, i % 9], 1i64)).collect();
        let rebuilt = e.apply_batch(&batch).unwrap();
        assert!(rebuilt, "cube-sized batch should rebuild");
        assert_eq!(e.total(), 290 + 81);
    }

    #[test]
    fn both_paths_agree_with_naive() {
        let a = paper_array_a();
        let batch: Vec<(Vec<usize>, i64)> = (0..30)
            .map(|i| (vec![(i * 7) % 9, (i * 5) % 9], (i % 5) as i64 - 2))
            .collect();

        let mut naive = NaiveEngine::from_cube(a.clone());
        for (c, d) in &batch {
            naive.update(c, *d).unwrap();
        }

        // Force each path and compare against the oracle.
        for force_rebuild in [false, true] {
            let mut e = RpsEngine::from_cube_uniform(&a, PAPER_BOX_SIZE).unwrap();
            if force_rebuild {
                let mut cube = e.to_cube();
                for (c, d) in &batch {
                    let lin = cube.shape().linear_unchecked(c);
                    cube.get_linear_mut(lin).add_assign(d);
                }
                e.rebuild_from(&cube).unwrap();
            } else {
                for (c, d) in &batch {
                    e.update(c, *d).unwrap();
                }
            }
            for (lo, hi) in [([0, 0], [8, 8]), ([2, 2], [7, 5]), ([5, 0], [8, 8])] {
                let r = Region::new(&lo, &hi).unwrap();
                assert_eq!(
                    e.query(&r).unwrap(),
                    naive.query(&r).unwrap(),
                    "rebuild={force_rebuild} {r:?}"
                );
            }
        }
    }

    #[test]
    fn batch_with_duplicates_accumulates() {
        let mut e = RpsEngine::<i64>::zeros(&[6, 6]).unwrap();
        let batch = vec![(vec![2, 2], 3i64), (vec![2, 2], 4), (vec![2, 2], -1)];
        e.apply_batch(&batch).unwrap();
        assert_eq!(e.cell(&[2, 2]).unwrap(), 6);
    }

    #[test]
    fn batch_is_all_or_nothing_on_bad_coords() {
        let mut e = RpsEngine::<i64>::zeros(&[4, 4]).unwrap();
        let batch = vec![(vec![1, 1], 1i64), (vec![9, 9], 1)];
        assert!(e.apply_batch(&batch).is_err());
        // First update must NOT have been applied.
        assert_eq!(e.cell(&[1, 1]).unwrap(), 0);
    }

    #[test]
    fn rebuild_from_rejects_shape_mismatch() {
        let mut e = RpsEngine::<i64>::zeros(&[4, 4]).unwrap();
        let wrong = ndcube::NdCube::<i64>::zeros(&[5, 5]);
        assert!(e.rebuild_from(&wrong).is_err());
    }
}
