//! The overlay structure (§3.1): per-box anchor + border values, stored
//! compactly (only `∏tᵢ − ∏(tᵢ−1)` cells per box, never the full box).

use ndcube::Shape;

use crate::rps::grid::BoxGrid;
use crate::value::GroupValue;

/// Compact storage for every overlay box's anchor and border values.
///
/// All boxes' stored cells live in one flat `Vec`, indexed by a per-box
/// offset table; within a box, cells are numbered by
/// [`BoxGrid::slot_of`] (slot 0 = anchor).
#[derive(Debug, Clone)]
pub struct Overlay<T> {
    grid: BoxGrid,
    /// `box_offsets[b] .. box_offsets[b+1]` is box `b`'s slot range.
    box_offsets: Vec<usize>,
    cells: Vec<T>,
}

impl<T: GroupValue> Overlay<T> {
    /// An all-zero overlay for the given grid (consistent with an all-zero
    /// cube).
    pub fn zeros(grid: BoxGrid) -> Overlay<T> {
        let num_boxes = grid.num_boxes();
        let mut box_offsets = Vec::with_capacity(num_boxes + 1);
        box_offsets.push(0usize);
        let grid_region = grid.grid_shape().full_region();
        let mut total = 0usize;
        ndcube::RegionIter::for_each_coords(&grid_region, |b| {
            total += BoxGrid::stored_cells(&grid.extents_of(b));
            box_offsets.push(total);
        });
        let cells = vec![T::zero(); total];
        Overlay {
            grid,
            box_offsets,
            cells,
        }
    }

    /// The grid this overlay partitions.
    pub fn grid(&self) -> &BoxGrid {
        &self.grid
    }

    /// Total stored cells across all boxes — the overlay's storage
    /// footprint (Figure 16 accounting).
    pub fn storage_cells(&self) -> usize {
        self.cells.len()
    }

    /// Linear box number of a per-dimension box index.
    #[inline]
    pub fn box_linear(&self, box_idx: &[usize]) -> usize {
        self.grid.grid_shape().linear_unchecked(box_idx)
    }

    /// Flat index of a stored cell, or `None` for interior (unstored)
    /// offsets.
    #[inline]
    pub fn cell_index(&self, box_lin: usize, e: &[usize], extents: &[usize]) -> Option<usize> {
        BoxGrid::slot_of(e, extents).map(|slot| self.box_offsets[box_lin] + slot)
    }

    /// Flat index of a box's anchor (always its slot 0).
    #[inline]
    pub fn anchor_index(&self, box_lin: usize) -> usize {
        self.box_offsets[box_lin]
    }

    /// Reads a stored cell by flat index.
    #[inline]
    pub fn get(&self, idx: usize) -> &T {
        &self.cells[idx]
    }

    /// Mutates a stored cell by flat index.
    #[inline]
    pub fn get_mut(&mut self, idx: usize) -> &mut T {
        &mut self.cells[idx]
    }

    /// Reads the overlay value stored for a *global* cube coordinate, or
    /// `None` when that coordinate is an interior cell of its box.
    ///
    /// Convenience for tests and figure reproduction; engines use the flat
    /// index paths.
    pub fn value_at(&self, coords: &[usize]) -> Option<&T> {
        let b = self.grid.box_index_of(coords);
        let anchor = self.grid.anchor_of(&b);
        let extents = self.grid.extents_of(&b);
        let e: Vec<usize> = coords.iter().zip(&anchor).map(|(&c, &a)| c - a).collect();
        let box_lin = self.box_linear(&b);
        self.cell_index(box_lin, &e, &extents)
            .map(|i| &self.cells[i])
    }

    /// The offset table and the mutable flat cell buffer together, for the
    /// update walks: the offset table stays readable while cell slices are
    /// handed out (and split across threads by the parallel batch path).
    #[inline]
    pub(crate) fn parts_mut(&mut self) -> (&[usize], &mut [T]) {
        (&self.box_offsets, &mut self.cells)
    }

    /// The number of stored cells of one box.
    pub fn box_stored_count(&self, box_lin: usize) -> usize {
        self.box_offsets[box_lin + 1] - self.box_offsets[box_lin]
    }

    /// The cube shape this overlay belongs to.
    pub fn cube_shape(&self) -> &Shape {
        self.grid.cube_shape()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndcube::Shape;

    fn overlay_9x9_k3() -> Overlay<i64> {
        let grid = BoxGrid::new(Shape::new(&[9, 9]).unwrap(), &[3, 3]).unwrap();
        Overlay::zeros(grid)
    }

    #[test]
    fn storage_matches_formula() {
        // 9 boxes × 5 stored cells (k^d − (k−1)^d = 5).
        let o = overlay_9x9_k3();
        assert_eq!(o.storage_cells(), 45);
        for b in 0..9 {
            assert_eq!(o.box_stored_count(b), 5);
        }
    }

    #[test]
    fn ragged_storage() {
        let grid = BoxGrid::new(Shape::new(&[5, 5]).unwrap(), &[3, 3]).unwrap();
        let o = Overlay::<i64>::zeros(grid);
        // Boxes: (0,0) 3×3→5, (0,1) 3×2→4, (1,0) 2×3→4, (1,1) 2×2→3.
        assert_eq!(o.storage_cells(), 5 + 4 + 4 + 3);
    }

    #[test]
    fn value_at_distinguishes_stored_and_interior() {
        let mut o = overlay_9x9_k3();
        // (6,3) is an anchor; (7,4) is interior to box (2,1).
        let b = o.grid().box_index_of(&[6, 3]);
        let lin = o.box_linear(&b);
        let idx = o.anchor_index(lin);
        *o.get_mut(idx) = 86;
        assert_eq!(o.value_at(&[6, 3]), Some(&86));
        assert_eq!(o.value_at(&[7, 4]), None);
    }

    #[test]
    fn cell_index_addresses_all_slots_uniquely() {
        let o = overlay_9x9_k3();
        let mut seen = std::collections::HashSet::new();
        let grid_region = o.grid().grid_shape().full_region();
        for b in &grid_region {
            let lin = o.box_linear(&b);
            let extents = o.grid().extents_of(&b);
            for e0 in 0..3 {
                for e1 in 0..3 {
                    if let Some(i) = o.cell_index(lin, &[e0, e1], &extents) {
                        assert!(seen.insert(i), "index {i} reused");
                        assert!(i < o.storage_cells());
                    }
                }
            }
        }
        assert_eq!(seen.len(), 45);
    }
}
