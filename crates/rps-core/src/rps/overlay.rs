//! The overlay structure (§3.1): per-box anchor + border values, stored
//! compactly (only `∏tᵢ − ∏(tᵢ−1)` cells per box, never the full box).

use ndcube::Shape;

use crate::rps::grid::BoxGrid;
use crate::rps::scratch::KernelScratch;
use crate::value::GroupValue;

/// Read-only view of overlay storage, for the prefix reconstruction.
///
/// Implemented by the flat [`Overlay`] and by the chunked per-box-row
/// slabs of the versioned engine's snapshots
/// ([`crate::versioned::VersionedEngine`]), so the inclusion–exclusion
/// arithmetic in [`overlay_prefix_part_src`] — the subtlest in the
/// workspace — exists exactly once regardless of how the cells are laid
/// out.
pub(crate) trait OverlaySource<T> {
    /// The per-box offset table: `offsets()[b] .. offsets()[b+1]` is box
    /// `b`'s slot range in the flat cell numbering.
    fn offsets(&self) -> &[usize];

    /// Reads the stored cell at flat index `idx`. The index always lies
    /// in the slot range of a box whose dim-0 grid index is `box_row` —
    /// chunked implementations use the row to locate the owning slab,
    /// the flat [`Overlay`] ignores it.
    fn cell(&self, box_row: usize, idx: usize) -> &T;
}

impl<T: GroupValue> OverlaySource<T> for Overlay<T> {
    #[inline]
    fn offsets(&self) -> &[usize] {
        &self.box_offsets
    }

    #[inline]
    fn cell(&self, _box_row: usize, idx: usize) -> &T {
        &self.cells[idx]
    }
}

/// The overlay's share of a prefix-sum reconstruction — anchor plus the
/// border combination for `x` — generic over the storage layout.
///
/// This is the single home of the alternating corner sum (see
/// [`crate::rps::RpsEngine::prefix_sum`] for the derivation); the public
/// [`crate::rps::overlay_prefix_part_with`] delegates here with the flat
/// [`Overlay`], the versioned engine's snapshots with their slab view.
/// Returns the accumulated value and the number of overlay cells read.
pub(crate) fn overlay_prefix_part_src<T, S>(
    grid: &BoxGrid,
    src: &S,
    x: &[usize],
    ks: &mut KernelScratch,
) -> (T, u64)
where
    T: GroupValue,
    S: OverlaySource<T> + ?Sized,
{
    let d = x.len();
    ks.ensure(d);
    let KernelScratch {
        b,
        anchor,
        extents,
        offsets,
        e,
        ..
    } = ks;
    grid.box_index_into(x, b);
    let box_lin = grid.grid_shape().linear_unchecked(b);
    let box_row = b.first().copied().unwrap_or(0);
    grid.anchor_into(b, anchor);
    grid.extents_into(b, extents);

    let base = src.offsets()[box_lin];

    // Anchor value: everything preceding the box's anchor cell (the
    // anchor is always slot 0 of its box).
    let mut acc = src.cell(box_row, base).clone();
    let mut reads = 1u64;

    for (o, (&xi, &ai)) in offsets.iter_mut().zip(x.iter().zip(anchor.iter())) {
        *o = xi - ai;
    }

    if offsets.contains(&0) {
        // x itself is a stored overlay cell: every other border term
        // cancels in pairs and the sum telescopes to
        // anchor + border[x] (+ RP[x] added by the caller). At x = α the
        // border is the (zero-valued by definition) anchor slot itself
        // and is skipped.
        if offsets.iter().any(|&o| o != 0) {
            let slot = BoxGrid::slot_of(offsets, extents)
                // lint:allow(L2): x has a non-zero offset, so its border slot is stored
                .expect("zero-offset cells are stored");
            acc.add_assign(src.cell(box_row, base + slot));
            reads += 1;
        }
    } else {
        // Interior x: alternating sum over the proper corner cells of
        // the sub-box α..=x. Subset S of dimensions taking x's offset.
        for mask in 1u64..((1u64 << d) - 1) {
            for (i, (ei, &off)) in e.iter_mut().zip(offsets.iter()).enumerate() {
                *ei = if mask & (1 << i) != 0 { off } else { 0 };
            }
            let slot = BoxGrid::slot_of(e, extents)
                // lint:allow(L2): mask < 2^d−1 keeps at least one zero offset, so the slot is stored
                .expect("corner cells have a zero offset");
            let term = src.cell(box_row, base + slot);
            // lint:allow(L4): u32 → usize is lossless on every supported target
            let s = mask.count_ones() as usize;
            if (d - 1 - s).is_multiple_of(2) {
                acc.add_assign(term);
            } else {
                acc.sub_assign(term);
            }
            reads += 1;
        }
    }
    (acc, reads)
}

/// Compact storage for every overlay box's anchor and border values.
///
/// All boxes' stored cells live in one flat `Vec`, indexed by a per-box
/// offset table; within a box, cells are numbered by
/// [`BoxGrid::slot_of`] (slot 0 = anchor).
#[derive(Debug, Clone)]
pub struct Overlay<T> {
    grid: BoxGrid,
    /// `box_offsets[b] .. box_offsets[b+1]` is box `b`'s slot range.
    box_offsets: Vec<usize>,
    cells: Vec<T>,
}

impl<T: GroupValue> Overlay<T> {
    /// An all-zero overlay for the given grid (consistent with an all-zero
    /// cube).
    pub fn zeros(grid: BoxGrid) -> Overlay<T> {
        let num_boxes = grid.num_boxes();
        let mut box_offsets = Vec::with_capacity(num_boxes + 1);
        box_offsets.push(0usize);
        let grid_region = grid.grid_shape().full_region();
        let mut total = 0usize;
        ndcube::RegionIter::for_each_coords(&grid_region, |b| {
            total += BoxGrid::stored_cells(&grid.extents_of(b));
            box_offsets.push(total);
        });
        let cells = vec![T::zero(); total];
        Overlay {
            grid,
            box_offsets,
            cells,
        }
    }

    /// The grid this overlay partitions.
    pub fn grid(&self) -> &BoxGrid {
        &self.grid
    }

    /// Total stored cells across all boxes — the overlay's storage
    /// footprint (Figure 16 accounting).
    pub fn storage_cells(&self) -> usize {
        self.cells.len()
    }

    /// Linear box number of a per-dimension box index.
    #[inline]
    pub fn box_linear(&self, box_idx: &[usize]) -> usize {
        self.grid.grid_shape().linear_unchecked(box_idx)
    }

    /// Flat index of a stored cell, or `None` for interior (unstored)
    /// offsets.
    #[inline]
    pub fn cell_index(&self, box_lin: usize, e: &[usize], extents: &[usize]) -> Option<usize> {
        BoxGrid::slot_of(e, extents).map(|slot| self.box_offsets[box_lin] + slot)
    }

    /// Flat index of a box's anchor (always its slot 0).
    #[inline]
    pub fn anchor_index(&self, box_lin: usize) -> usize {
        self.box_offsets[box_lin]
    }

    /// Reads a stored cell by flat index.
    #[inline]
    pub fn get(&self, idx: usize) -> &T {
        &self.cells[idx]
    }

    /// Mutates a stored cell by flat index.
    #[inline]
    pub fn get_mut(&mut self, idx: usize) -> &mut T {
        &mut self.cells[idx]
    }

    /// Reads the overlay value stored for a *global* cube coordinate, or
    /// `None` when that coordinate is an interior cell of its box.
    ///
    /// Convenience for tests and figure reproduction; engines use the flat
    /// index paths.
    pub fn value_at(&self, coords: &[usize]) -> Option<&T> {
        let b = self.grid.box_index_of(coords);
        let anchor = self.grid.anchor_of(&b);
        let extents = self.grid.extents_of(&b);
        let e: Vec<usize> = coords.iter().zip(&anchor).map(|(&c, &a)| c - a).collect();
        let box_lin = self.box_linear(&b);
        self.cell_index(box_lin, &e, &extents)
            .map(|i| &self.cells[i])
    }

    /// The offset table and the mutable flat cell buffer together, for the
    /// update walks: the offset table stays readable while cell slices are
    /// handed out (and split across threads by the parallel batch path).
    #[inline]
    pub(crate) fn parts_mut(&mut self) -> (&[usize], &mut [T]) {
        (&self.box_offsets, &mut self.cells)
    }

    /// Consumes the overlay into its offset table and flat cell buffer.
    /// The versioned engine uses this to decompose an overlay into its
    /// copy-on-write box-row slabs.
    #[inline]
    pub(crate) fn into_parts(self) -> (Vec<usize>, Vec<T>) {
        (self.box_offsets, self.cells)
    }

    /// The number of stored cells of one box.
    pub fn box_stored_count(&self, box_lin: usize) -> usize {
        self.box_offsets[box_lin + 1] - self.box_offsets[box_lin]
    }

    /// The cube shape this overlay belongs to.
    pub fn cube_shape(&self) -> &Shape {
        self.grid.cube_shape()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndcube::Shape;

    fn overlay_9x9_k3() -> Overlay<i64> {
        let grid = BoxGrid::new(Shape::new(&[9, 9]).unwrap(), &[3, 3]).unwrap();
        Overlay::zeros(grid)
    }

    #[test]
    fn storage_matches_formula() {
        // 9 boxes × 5 stored cells (k^d − (k−1)^d = 5).
        let o = overlay_9x9_k3();
        assert_eq!(o.storage_cells(), 45);
        for b in 0..9 {
            assert_eq!(o.box_stored_count(b), 5);
        }
    }

    #[test]
    fn ragged_storage() {
        let grid = BoxGrid::new(Shape::new(&[5, 5]).unwrap(), &[3, 3]).unwrap();
        let o = Overlay::<i64>::zeros(grid);
        // Boxes: (0,0) 3×3→5, (0,1) 3×2→4, (1,0) 2×3→4, (1,1) 2×2→3.
        assert_eq!(o.storage_cells(), 5 + 4 + 4 + 3);
    }

    #[test]
    fn value_at_distinguishes_stored_and_interior() {
        let mut o = overlay_9x9_k3();
        // (6,3) is an anchor; (7,4) is interior to box (2,1).
        let b = o.grid().box_index_of(&[6, 3]);
        let lin = o.box_linear(&b);
        let idx = o.anchor_index(lin);
        *o.get_mut(idx) = 86;
        assert_eq!(o.value_at(&[6, 3]), Some(&86));
        assert_eq!(o.value_at(&[7, 4]), None);
    }

    #[test]
    fn cell_index_addresses_all_slots_uniquely() {
        let o = overlay_9x9_k3();
        let mut seen = std::collections::HashSet::new();
        let grid_region = o.grid().grid_shape().full_region();
        for b in &grid_region {
            let lin = o.box_linear(&b);
            let extents = o.grid().extents_of(&b);
            for e0 in 0..3 {
                for e1 in 0..3 {
                    if let Some(i) = o.cell_index(lin, &[e0, e1], &extents) {
                        assert!(seen.insert(i), "index {i} reused");
                        assert!(i < o.storage_cells());
                    }
                }
            }
        }
        assert_eq!(seen.len(), 45);
    }
}
