//! The relative prefix sum method (§3–4) — the paper's contribution.
//!
//! Two structures work in concert:
//!
//! * the **overlay** ([`Overlay`]) — per box, an anchor value (sum of all
//!   cells preceding the anchor) and border values (sums of the slabs
//!   between the origin-facing faces of the box and the cube edge);
//! * the **RP array** ([`relative_prefix_sums`]) — prefix sums *relative
//!   to* each box's anchor, independent across boxes.
//!
//! Any prefix region sum `Sum(A[0,…,0] : A[x])` is reconstructed "on the
//! fly" from the anchor, border values and 1 RP cell (1 + d + 1 reads at
//! the paper's d = 2; up to 2^d reads for d ≥ 3 — see
//! [`RpsEngine::prefix_sum`]); range queries then use the 2^d-corner
//! identity of Figure 3. Updates cascade only within one RP box plus a
//! controlled set of overlay cells: O(n^{d/2}) worst case at `k = √n`
//! for d ≤ 2 (Θ(n^{d−1}) for d ≥ 3; see DESIGN.md).

mod batch;
mod build;
mod grid;
mod invariants;
pub mod kernels;
mod overlay;
mod parallel;
mod scratch;
mod update;

pub use build::{
    build_overlay, build_overlay_from_p, inverse_relative_prefix_sums, relative_prefix_sums,
};
pub use grid::BoxGrid;
pub use invariants::Violation;
pub use overlay::Overlay;
pub(crate) use overlay::{overlay_prefix_part_src, OverlaySource};
pub(crate) use parallel::{effective_threads, slab_sizes};
pub use parallel::{prefix_sums_parallel, relative_prefix_sums_parallel};
pub use scratch::{with_scratch, KernelScratch, Scratch};
pub(crate) use update::{overlay_range_walk, overlay_update_walk, rp_range_box};
pub use update::{
    apply_overlay_update, apply_overlay_update_with, apply_range_update_with, apply_update,
    apply_update_with, for_each_rp_cascade_cell, for_each_stored_offset_geq,
    for_each_stored_offset_geq_with,
};

use ndcube::{NdCube, NdError, Region, Shape};

use crate::corners::range_sum_from_prefix_with;
use crate::engine::RangeSumEngine;
use crate::stats::{CostStats, StatsCell};
use crate::value::GroupValue;

/// Range-sum engine implementing the relative prefix sum method.
///
/// The README quick start, compiled (through the `rps` facade the same
/// code reads `use rps::{RangeSumEngine, RpsEngine};`):
///
/// ```
/// use rps_core::{RangeSumEngine, RpsEngine};
/// use ndcube::{NdCube, Region};
///
/// // SALES by CUSTOMER_AGE × DAY.
/// let sales = NdCube::from_fn(&[100, 365], |c| ((c[0] * 13 + c[1]) % 97) as i64)?;
/// let mut engine = RpsEngine::from_cube(&sales);          // k = ⌈√n⌉ boxes
///
/// // O(1) range sum: ages 37–52, days 275–364.
/// let q = Region::new(&[37, 275], &[52, 364])?;
/// let total = engine.query(&q)?;
///
/// // A new sale arrives: cheap in-place update, no cube rebuild.
/// engine.update(&[41, 364], 250)?;
/// assert_eq!(engine.query(&q)?, total + 250);
/// # Ok::<(), ndcube::NdError>(())
/// ```
///
/// An explicit box side (the `k` the paper's §4.3 optimizes) comes from
/// [`RpsEngine::from_cube_uniform`]:
///
/// ```
/// use rps_core::{RangeSumEngine, RpsEngine};
/// use ndcube::{NdCube, Region};
///
/// let cube = NdCube::from_fn(&[9, 9], |c| (c[0] + c[1]) as i64)?;
/// let mut engine = RpsEngine::from_cube_uniform(&cube, 3)?;
/// let region = Region::new(&[2, 2], &[7, 5])?;
/// let before = engine.query(&region)?;
/// engine.update(&[4, 4], 10)?;
/// assert_eq!(engine.query(&region)?, before + 10);
/// // O(1): the query read at most 2^d·(d+2) = 16 cells.
/// # Ok::<(), ndcube::NdError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RpsEngine<T> {
    grid: BoxGrid,
    overlay: Overlay<T>,
    rp: NdCube<T>,
    stats: StatsCell,
    /// Reusable coordinate buffers for the `&mut self` update path;
    /// queries (`&self`) borrow the thread-local scratch instead.
    scratch: KernelScratch,
}

impl<T: GroupValue> RpsEngine<T> {
    /// Builds from a data cube with the paper-recommended box side
    /// `k = ⌈√n⌉` per dimension.
    pub fn from_cube(a: &NdCube<T>) -> Self {
        let grid = BoxGrid::with_sqrt_boxes(a.shape().clone());
        Self::from_cube_with_grid(a, grid)
    }

    /// Builds from a data cube with a uniform box side `k` in every
    /// dimension (the paper's tunable parameter, §4.3).
    pub fn from_cube_uniform(a: &NdCube<T>, k: usize) -> Result<Self, NdError> {
        // lint:allow(L5): construction path, runs once per engine
        let grid = BoxGrid::new(a.shape().clone(), &vec![k; a.ndim()])?;
        Ok(Self::from_cube_with_grid(a, grid))
    }

    /// Builds from a data cube with explicit per-dimension box sides.
    pub fn from_cube_with_box_size(a: &NdCube<T>, k: &[usize]) -> Result<Self, NdError> {
        let grid = BoxGrid::new(a.shape().clone(), k)?;
        Ok(Self::from_cube_with_grid(a, grid))
    }

    /// Assembles an engine from prebuilt parts (used by the parallel
    /// constructor).
    pub(crate) fn from_parts(grid: BoxGrid, overlay: Overlay<T>, rp: NdCube<T>) -> Self {
        RpsEngine {
            grid,
            overlay,
            rp,
            stats: StatsCell::new(),
            scratch: KernelScratch::new(),
        }
    }

    /// Replaces the engine's counters (used when a rebuild swaps the
    /// whole structure but history must be preserved).
    pub(crate) fn set_stats(&mut self, stats: StatsCell) {
        self.stats = stats;
    }

    /// Mutable overlay access for corruption-injection tests only.
    #[doc(hidden)]
    pub fn overlay_mut_for_tests(&mut self) -> &mut Overlay<T> {
        &mut self.overlay
    }

    /// Decomposes the engine into its structures. The versioned engine's
    /// writer takes ownership this way and re-chunks them into
    /// copy-on-write slabs.
    pub(crate) fn into_parts(self) -> (BoxGrid, Overlay<T>, NdCube<T>) {
        (self.grid, self.overlay, self.rp)
    }

    fn from_cube_with_grid(a: &NdCube<T>, grid: BoxGrid) -> Self {
        let rp = relative_prefix_sums(a, &grid);
        let overlay = build_overlay(a, &rp, grid.clone());
        RpsEngine {
            grid,
            overlay,
            rp,
            stats: StatsCell::new(),
            scratch: KernelScratch::new(),
        }
    }

    /// An all-zero cube with `k = ⌈√n⌉` boxes.
    pub fn zeros(dims: &[usize]) -> Result<Self, NdError> {
        let shape = Shape::new(dims)?;
        let grid = BoxGrid::with_sqrt_boxes(shape.clone());
        let rp = NdCube::filled(dims, T::zero())?;
        let overlay = Overlay::zeros(grid.clone());
        Ok(RpsEngine {
            grid,
            overlay,
            rp,
            stats: StatsCell::new(),
            scratch: KernelScratch::new(),
        })
    }

    /// An all-zero cube with a uniform box side.
    pub fn zeros_uniform(dims: &[usize], k: usize) -> Result<Self, NdError> {
        let shape = Shape::new(dims)?;
        // lint:allow(L5): construction path, runs once per engine
        let grid = BoxGrid::new(shape, &vec![k; dims.len()])?;
        let rp = NdCube::filled(dims, T::zero())?;
        let overlay = Overlay::zeros(grid.clone());
        Ok(RpsEngine {
            grid,
            overlay,
            rp,
            stats: StatsCell::new(),
            scratch: KernelScratch::new(),
        })
    }

    /// The box partition in use.
    pub fn grid(&self) -> &BoxGrid {
        &self.grid
    }

    /// The overlay structure (Figure 13's top-right table).
    pub fn overlay(&self) -> &Overlay<T> {
        &self.overlay
    }

    /// The RP array (Figure 10).
    pub fn rp_array(&self) -> &NdCube<T> {
        &self.rp
    }

    /// The prefix region sum `Sum(A[0,…,0] : A[x])`, reconstructed from
    /// the anchor value, border values and one RP cell (§3.2).
    ///
    /// For `d = 2` this is exactly the paper's rule: anchor + one border
    /// per dimension past the anchor plane + RP — at most `d + 2` reads.
    /// For `d ≥ 3` the paper defers the algorithm to its companion
    /// technical report (unavailable); with the paper's own value
    /// definitions (`anchor = P[α] − A[α]`,
    /// `border[p] = P[p] − RP[p] − anchor`) the *unique* correct
    /// combination — found by solving the inclusion–exclusion identity
    /// over all cell-position patterns, and verified here by property
    /// tests against brute force — is alternating:
    ///
    /// ```text
    /// P[x] = anchor + Σ_{∅≠S⊊D} (−1)^{d−1−|S|} · border[v_S] + RP[x]
    /// v_S[i] = x[i] for i ∈ S, anchor[i] otherwise
    /// ```
    ///
    /// which degenerates to the paper's rule at `d = 2` (all signs `+1`)
    /// and costs `2^d` reads per region sum — still O(1) in `n`. When `x`
    /// lies on an anchor plane in any dimension, the sum telescopes to
    /// `anchor + border[x] + RP[x]` (3 reads), which the implementation
    /// exploits.
    pub fn prefix_sum(&self, x: &[usize]) -> Result<T, NdError> {
        self.rp.shape().check(x)?;
        Ok(with_scratch(|s| {
            let (acc, reads) = self.prefix_kernel(x, &mut s.kernel);
            self.stats.reads(reads);
            acc
        }))
    }

    /// One prefix reconstruction with caller scratch: overlay part plus
    /// the in-box RP cell. Returns (value, cells read) — no stats side
    /// effects, so callers can coalesce many reconstructions into a
    /// single counter add.
    fn prefix_kernel(&self, x: &[usize], ks: &mut KernelScratch) -> (T, u64) {
        let (mut acc, mut reads) = overlay_prefix_part_with(&self.grid, &self.overlay, x, ks);

        // Plus the in-box relative prefix.
        let lin = self.rp.shape().linear_unchecked(x);
        acc.add_assign(self.rp.get_linear(lin));
        reads += 1;
        (acc, reads)
    }
}

/// The overlay's share of a prefix-sum reconstruction: anchor plus the
/// border combination for `x` (the paper's d = 2 rule; the alternating
/// corner sum for d ≥ 3 — see [`RpsEngine::prefix_sum`]). Returns the
/// accumulated value and the number of overlay cells read.
///
/// Compatibility wrapper over [`overlay_prefix_part_with`] using the
/// thread-local scratch.
pub fn overlay_prefix_part<T: GroupValue>(
    grid: &BoxGrid,
    overlay: &Overlay<T>,
    x: &[usize],
) -> (T, u64) {
    with_scratch(|s| overlay_prefix_part_with(grid, overlay, x, &mut s.kernel))
}

/// [`overlay_prefix_part`] with caller scratch — zero heap allocations.
///
/// Shared by the in-memory engine, the disk-resident engine
/// (`rps-storage`) and the versioned snapshots
/// ([`crate::versioned::VersionedEngine`]), which differ only in where
/// the cells come from — this is the subtlest arithmetic in the
/// workspace and it exists exactly once, in the storage-generic
/// `overlay_prefix_part_src` this delegates to with the flat overlay
/// layout.
pub fn overlay_prefix_part_with<T: GroupValue>(
    grid: &BoxGrid,
    overlay: &Overlay<T>,
    x: &[usize],
    ks: &mut KernelScratch,
) -> (T, u64) {
    overlay_prefix_part_src(grid, overlay, x, ks)
}

impl<T: GroupValue> RpsEngine<T> {
    /// Answers a batch of range queries, sharing reconstructed prefix
    /// sums across them.
    ///
    /// Dashboards issue many related queries (rolling windows, group-bys,
    /// cross-tabs) whose 2^d corner sets overlap heavily; caching the
    /// per-corner reconstruction turns `q` queries with `s` distinct
    /// corners into `s` reconstructions instead of `2^d·q`.
    pub fn query_many(&self, regions: &[Region]) -> Result<Vec<T>, NdError> {
        use std::collections::HashMap;
        for r in regions {
            self.rp.shape().check_region(r)?;
        }
        let d = self.rp.shape().ndim();
        // Pre-size for the worst case — every region contributing 2^d
        // distinct corners — so the cache never rehashes mid-batch.
        let cap = regions.len().saturating_mul(
            1usize
                .checked_shl(u32::try_from(d).unwrap_or(u32::MAX))
                .unwrap_or(usize::MAX),
        );
        // Corners are keyed by their linear cell index: the corner
        // enumerator only ever hands this callback in-bounds coordinates
        // (underflowed corners are suppressed upstream), so the linear
        // index is collision-free — and a `usize` key needs no per-corner
        // heap allocation, unlike the owned `Vec` keys this cache used to
        // clone (~4 allocs per region in BENCH_THROUGHPUT.json).
        let shape = self.rp.shape();
        let mut cache: HashMap<usize, T> = HashMap::with_capacity(cap);
        let mut total_reads = 0u64;
        let mut lookups = 0u64;
        let out = with_scratch(|s| {
            let (corner_buf, ks) = s.split();
            regions
                .iter()
                .map(|r| {
                    let sum = range_sum_from_prefix_with(r, corner_buf, |corner| {
                        lookups += 1;
                        // Entry API: one hash per corner whether hit or miss.
                        cache
                            .entry(shape.linear_unchecked(corner))
                            .or_insert_with(|| {
                                let (v, reads) = self.prefix_kernel(corner, ks);
                                total_reads += reads;
                                v
                            })
                            .clone()
                    });
                    self.stats.query();
                    sum
                })
                .collect()
        });
        self.stats.reads(total_reads);
        // Coalesced observability: one add per counter per batch. Misses
        // are exactly the distinct corners the cache ended up owning.
        let m = crate::obs::engine(crate::obs::EngineKind::Rps);
        m.queries
            .add(u64::try_from(regions.len()).unwrap_or(u64::MAX));
        let misses = u64::try_from(cache.len()).unwrap_or(u64::MAX);
        let core = crate::obs::core();
        core.query_many_corner_misses.add(misses);
        core.query_many_corner_hits
            .add(lookups.saturating_sub(misses));
        Ok(out)
    }
}

impl<T: GroupValue> RangeSumEngine<T> for RpsEngine<T> {
    fn name(&self) -> &'static str {
        "relative-prefix-sum"
    }

    fn shape(&self) -> &Shape {
        self.rp.shape()
    }

    fn query(&self, region: &Region) -> Result<T, NdError> {
        self.rp.shape().check_region(region)?;
        let m = crate::obs::engine(crate::obs::EngineKind::Rps);
        m.queries.inc();
        let _span = rps_obs::Span::enter("rps.query", &m.query_ns);
        let sum = with_scratch(|s| {
            let (corner_buf, ks) = s.split();
            let mut reads = 0u64;
            let sum = range_sum_from_prefix_with(region, corner_buf, |corner| {
                let (v, r) = self.prefix_kernel(corner, ks);
                reads += r;
                v
            });
            // One atomic add for the whole query, not one per corner.
            self.stats.reads(reads);
            sum
        });
        self.stats.query();
        Ok(sum)
    }

    fn update(&mut self, coords: &[usize], delta: T) -> Result<(), NdError> {
        self.rp.shape().check(coords)?;
        let m = crate::obs::engine(crate::obs::EngineKind::Rps);
        m.updates.inc();
        let _span = rps_obs::Span::enter("rps.update", &m.update_ns);
        if delta.is_zero() {
            // Adding the identity touches nothing; skip the cascades.
            self.stats.update();
            return Ok(());
        }
        let writes = apply_update_with(
            &self.grid,
            &mut self.overlay,
            &mut self.rp,
            coords,
            &delta,
            &mut self.scratch,
        );
        // One atomic add for the whole update, not one per cascade half.
        self.stats.writes(writes);
        self.stats.update();
        Ok(())
    }

    // Fast path: per-box delta decomposition — each box's RP rows become
    // one ramp + one constant run, overlay cells get counting multiples of
    // the delta — instead of |R| full point-update cascades.
    fn range_update(&mut self, region: &Region, delta: T) -> Result<(), NdError> {
        self.rp.shape().check_region(region)?;
        let core = crate::obs::core();
        core.range_update_fast.inc();
        core.range_update_cells
            .add(u64::try_from(region.cell_count()).unwrap_or(u64::MAX));
        let _span = rps_obs::Span::enter("rps.range_update", &core.range_update_ns);
        if delta.is_zero() {
            self.stats.update();
            return Ok(());
        }
        let writes = apply_range_update_with(
            &self.grid,
            &mut self.overlay,
            &mut self.rp,
            region,
            &delta,
            &mut self.scratch,
        );
        self.stats.writes(writes);
        self.stats.update();
        Ok(())
    }

    fn stats(&self) -> CostStats {
        self.stats.get()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }

    fn storage_cells(&self) -> usize {
        self.rp.len() + self.overlay.storage_cells()
    }
}

/// The original allocating `overlay_prefix_part`, kept verbatim as the
/// oracle the scratch kernel is property-tested against.
#[cfg(test)]
fn oracle_overlay_prefix_part<T: GroupValue>(
    grid: &BoxGrid,
    overlay: &Overlay<T>,
    x: &[usize],
) -> (T, u64) {
    let d = x.len();
    let b = grid.box_index_of(x);
    let box_lin = overlay.box_linear(&b);
    let anchor = grid.anchor_of(&b);
    let extents = grid.extents_of(&b);

    let mut acc = overlay.get(overlay.anchor_index(box_lin)).clone();
    let mut reads = 1u64;

    let offsets: Vec<usize> = x.iter().zip(&anchor).map(|(&xi, &ai)| xi - ai).collect();

    if offsets.contains(&0) {
        if offsets.iter().any(|&e| e != 0) {
            let idx = overlay
                .cell_index(box_lin, &offsets, &extents)
                .expect("zero-offset cells are stored");
            acc.add_assign(overlay.get(idx));
            reads += 1;
        }
    } else {
        let mut e = vec![0usize; d];
        for mask in 1u64..((1u64 << d) - 1) {
            for (i, (ei, &off)) in e.iter_mut().zip(&offsets).enumerate() {
                *ei = if mask & (1 << i) != 0 { off } else { 0 };
            }
            let idx = overlay
                .cell_index(box_lin, &e, &extents)
                .expect("corner cells have a zero offset");
            let term = overlay.get(idx);
            let s = mask.count_ones() as usize;
            if (d - 1 - s).is_multiple_of(2) {
                acc.add_assign(term);
            } else {
                acc.sub_assign(term);
            }
            reads += 1;
        }
    }
    (acc, reads)
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    /// Random geometry + cube contents, for d ∈ 1..=4.
    fn engine_case() -> impl Strategy<Value = (Vec<usize>, Vec<usize>, Vec<i64>)> {
        (1usize..=4)
            .prop_flat_map(|d| {
                (
                    proptest::collection::vec(1usize..=6, d),
                    proptest::collection::vec(1usize..=4, d),
                )
            })
            .prop_flat_map(|(dims, ks)| {
                let len: usize = dims.iter().product();
                (
                    Just(dims),
                    Just(ks),
                    proptest::collection::vec(-100i64..100, len..=len),
                )
            })
    }

    proptest! {
        /// The scratch prefix kernel agrees with the original allocating
        /// path — value AND read count — at every coordinate.
        #[test]
        fn scratch_prefix_matches_oracle((dims, ks, data) in engine_case()) {
            let cube = NdCube::from_vec(&dims, data).unwrap();
            let engine = RpsEngine::from_cube_with_box_size(&cube, &ks).unwrap();
            let mut scratch = KernelScratch::new();
            for x in &cube.shape().full_region() {
                let (v_new, r_new) =
                    overlay_prefix_part_with(&engine.grid, &engine.overlay, &x, &mut scratch);
                let (v_old, r_old) =
                    oracle_overlay_prefix_part(&engine.grid, &engine.overlay, &x);
                prop_assert_eq!(v_new, v_old, "value at {:?}", &x);
                prop_assert_eq!(r_new, r_old, "reads at {:?}", &x);
            }
        }

        /// End to end: queries through the scratch path match a naive
        /// engine on random cubes.
        #[test]
        fn scratch_queries_match_naive((dims, ks, data) in engine_case()) {
            let cube = NdCube::from_vec(&dims, data).unwrap();
            let engine = RpsEngine::from_cube_with_box_size(&cube, &ks).unwrap();
            let naive = crate::naive::NaiveEngine::from_cube(cube);
            let full = engine.shape().full_region();
            prop_assert_eq!(
                engine.query(&full).unwrap(),
                naive.query(&full).unwrap()
            );
            for x in &full {
                let r = Region::new(&vec![0; x.len()], &x).unwrap();
                prop_assert_eq!(
                    engine.query(&r).unwrap(),
                    naive.query(&r).unwrap(),
                    "prefix region to {:?}", &x
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::{paper_array_a, PAPER_BOX_SIZE};

    fn paper_engine() -> RpsEngine<i64> {
        RpsEngine::from_cube_uniform(&paper_array_a(), PAPER_BOX_SIZE).unwrap()
    }

    #[test]
    fn section33_complete_region_sum() {
        // "The complete region sum for A[0,0]:A[7,5] is 86+51+8+23 = 168."
        let e = paper_engine();
        assert_eq!(e.prefix_sum(&[7, 5]).unwrap(), 168);
    }

    #[test]
    fn prefix_sums_match_p_array_everywhere() {
        let e = paper_engine();
        let p = crate::testdata::paper_array_p();
        for r in 0..9 {
            for c in 0..9 {
                assert_eq!(e.prefix_sum(&[r, c]).unwrap(), p.get(&[r, c]), "P[{r},{c}]");
            }
        }
    }

    #[test]
    fn query_cost_at_most_2d_times_d_plus_2() {
        let e = paper_engine();
        e.reset_stats();
        let r = Region::new(&[2, 3], &[7, 5]).unwrap();
        e.query(&r).unwrap();
        // d = 2: ≤ 2² corners × (1 anchor + 2 borders + 1 RP) = 16 reads.
        assert!(
            e.stats().cell_reads <= 16,
            "reads = {}",
            e.stats().cell_reads
        );
        assert_eq!(e.stats().queries, 1);
    }

    #[test]
    fn query_reads_counted_once_per_operation() {
        // Coalesced stats (one atomic add per query) must report the same
        // totals as the old per-cell accounting: the paper query [2,3]..[7,5]
        // touches exactly 4 corners × 4 reads = 16 cells.
        let e = paper_engine();
        e.reset_stats();
        let r = Region::new(&[2, 3], &[7, 5]).unwrap();
        e.query(&r).unwrap();
        assert_eq!(e.stats().cell_reads, 16);
    }

    #[test]
    fn queries_match_naive_on_paper_array() {
        let a = paper_array_a();
        let e = paper_engine();
        for (lo, hi) in [
            ([0, 0], [8, 8]),
            ([2, 3], [7, 5]),
            ([4, 4], [4, 4]),
            ([0, 5], [3, 8]),
            ([6, 6], [8, 8]),
        ] {
            let r = Region::new(&lo, &hi).unwrap();
            let brute: i64 = a
                .shape()
                .linear_region_iter(&r)
                .map(|l| *a.get_linear(l))
                .sum();
            assert_eq!(e.query(&r).unwrap(), brute, "region {r:?}");
        }
    }

    #[test]
    fn figure15_update_touches_16_cells() {
        // "the total update cost … is sixteen cells (twelve overlay cells
        //  and four cells in RP), compared to sixty four … (Figure 4)."
        let mut e = paper_engine();
        e.reset_stats();
        e.update(&[1, 1], 1).unwrap();
        assert_eq!(e.stats().cell_writes, 16);
    }

    #[test]
    fn figure15_exact_cells_changed() {
        let before = paper_engine();
        let mut after = paper_engine();
        after.update(&[1, 1], 1).unwrap();

        // RP: exactly the four cells [1..=2]×[1..=2] change by +1.
        for r in 0..9 {
            for c in 0..9 {
                let expect = before.rp_array().get(&[r, c])
                    + i64::from((1..=2).contains(&r) && (1..=2).contains(&c));
                assert_eq!(after.rp_array().get(&[r, c]), expect, "RP[{r},{c}]");
            }
        }

        // Overlay: the twelve cells named in §4.2 change by +1.
        let changed: std::collections::HashSet<(usize, usize)> = [
            (1, 3),
            (2, 3),
            (1, 6),
            (2, 6), // borders right of the change
            (3, 1),
            (3, 2),
            (6, 1),
            (6, 2), // borders below the change
            (3, 3),
            (3, 6),
            (6, 3),
            (6, 6), // interior anchors
        ]
        .into_iter()
        .collect();
        for (r, c, v) in crate::testdata::paper_overlay_cells() {
            let expect = v + i64::from(changed.contains(&(r, c)));
            assert_eq!(
                after.overlay().value_at(&[r, c]),
                Some(&expect),
                "overlay ({r},{c})"
            );
        }
    }

    #[test]
    fn update_under_anchor_touches_only_anchors() {
        // §4.2: "when an update occurs to a cell directly under an anchor
        // cell, e.g. cell [0,0] … only updating anchor cells in other
        // overlay boxes; no border values would then need to be changed."
        let mut e = paper_engine();
        e.reset_stats();
        e.update(&[0, 0], 1).unwrap();
        // RP: whole box (0,0) = 9 cells; overlay: 8 other anchors.
        assert_eq!(e.stats().cell_writes, 9 + 8);
        for (r, c, v) in crate::testdata::paper_overlay_cells() {
            let is_anchor = r % 3 == 0 && c % 3 == 0;
            let not_own_box = !(r == 0 && c == 0);
            let expect = v + i64::from(is_anchor && not_own_box);
            assert_eq!(e.overlay().value_at(&[r, c]), Some(&expect), "({r},{c})");
        }
    }

    #[test]
    fn updates_preserve_query_answers() {
        let a = paper_array_a();
        let mut rps = paper_engine();
        let mut naive = crate::naive::NaiveEngine::from_cube(a);
        let updates = [
            ([1usize, 1usize], 1i64),
            ([0, 0], 5),
            ([8, 8], -3),
            ([4, 5], 10),
            ([7, 2], 2),
        ];
        for (c, delta) in updates {
            rps.update(&c, delta).unwrap();
            naive.update(&c, delta).unwrap();
        }
        for (lo, hi) in [
            ([0, 0], [8, 8]),
            ([1, 1], [7, 7]),
            ([0, 4], [5, 8]),
            ([8, 0], [8, 8]),
        ] {
            let r = Region::new(&lo, &hi).unwrap();
            assert_eq!(rps.query(&r).unwrap(), naive.query(&r).unwrap(), "{r:?}");
        }
    }

    #[test]
    fn incremental_equals_rebuild() {
        let mut a = paper_array_a();
        let mut e = paper_engine();
        e.update(&[5, 5], 7).unwrap();
        e.update(&[0, 3], -2).unwrap();
        a.set(&[5, 5], a.get(&[5, 5]) + 7);
        a.set(&[0, 3], a.get(&[0, 3]) - 2);
        let rebuilt = RpsEngine::from_cube_uniform(&a, PAPER_BOX_SIZE).unwrap();
        assert_eq!(e.rp_array(), rebuilt.rp_array());
        for r in 0..9 {
            for c in 0..9 {
                assert_eq!(
                    e.overlay().value_at(&[r, c]).is_some(),
                    rebuilt.overlay().value_at(&[r, c]).is_some()
                );
                if let (Some(x), Some(y)) = (
                    e.overlay().value_at(&[r, c]),
                    rebuilt.overlay().value_at(&[r, c]),
                ) {
                    assert_eq!(x, y, "overlay ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn query_many_matches_individual_queries() {
        let e = paper_engine();
        let regions: Vec<Region> = vec![
            Region::new(&[0, 0], &[8, 8]).unwrap(),
            Region::new(&[2, 3], &[7, 5]).unwrap(),
            Region::new(&[2, 3], &[7, 5]).unwrap(), // duplicate
            Region::new(&[0, 3], &[7, 5]).unwrap(), // shares corners
            Region::point(&[4, 4]).unwrap(),
        ];
        let batch = e.query_many(&regions).unwrap();
        let individual: Vec<i64> = regions.iter().map(|r| e.query(r).unwrap()).collect();
        assert_eq!(batch, individual);
    }

    #[test]
    fn query_many_caches_shared_corners() {
        // Rolling windows over one row share half their corners; the
        // batch path must read fewer cells than the individual path.
        let e = paper_engine();
        let windows: Vec<Region> = (0..6)
            .map(|s| Region::new(&[3, s], &[5, s + 3]).unwrap())
            .collect();
        e.reset_stats();
        e.query_many(&windows).unwrap();
        let batch_reads = e.stats().cell_reads;
        e.reset_stats();
        for w in &windows {
            e.query(w).unwrap();
        }
        let individual_reads = e.stats().cell_reads;
        assert!(
            batch_reads < individual_reads,
            "batch {batch_reads} vs individual {individual_reads}"
        );
    }

    #[test]
    fn zero_delta_update_is_free() {
        let mut e = paper_engine();
        e.reset_stats();
        e.update(&[1, 1], 0).unwrap();
        assert_eq!(e.stats().cell_writes, 0);
        assert_eq!(e.stats().updates, 1);
        assert_eq!(e.total(), 290);
    }

    #[test]
    fn storage_accounting() {
        let e = paper_engine();
        // RP (81) + overlay (9 boxes × 5) = 126.
        assert_eq!(e.storage_cells(), 81 + 45);
    }

    #[test]
    fn zeros_engine_consistent() {
        let mut e = RpsEngine::<i64>::zeros(&[10, 10]).unwrap();
        assert_eq!(e.total(), 0);
        e.update(&[3, 7], 5).unwrap();
        e.update(&[9, 9], 2).unwrap();
        assert_eq!(e.total(), 7);
        assert_eq!(e.query(&Region::new(&[0, 0], &[3, 7]).unwrap()).unwrap(), 5);
        assert_eq!(e.cell(&[9, 9]).unwrap(), 2);
    }

    #[test]
    fn three_dimensional_engine() {
        let a = NdCube::from_fn(&[6, 6, 6], |c| (c[0] * 36 + c[1] * 6 + c[2]) as i64).unwrap();
        let mut e = RpsEngine::from_cube_uniform(&a, 2).unwrap();
        let r = Region::new(&[1, 2, 0], &[4, 5, 3]).unwrap();
        let brute: i64 = a
            .shape()
            .linear_region_iter(&r)
            .map(|l| *a.get_linear(l))
            .sum();
        assert_eq!(e.query(&r).unwrap(), brute);
        e.update(&[2, 2, 2], 100).unwrap();
        assert_eq!(e.query(&r).unwrap(), brute + 100);
    }

    #[test]
    fn ragged_engine_matches_naive() {
        let a = NdCube::from_fn(&[7, 10], |c| (3 * c[0] + c[1] * c[1]) as i64).unwrap();
        let e = RpsEngine::from_cube_uniform(&a, 3).unwrap();
        let naive = crate::naive::NaiveEngine::from_cube(a);
        for (lo, hi) in [
            ([0, 0], [6, 9]),
            ([6, 9], [6, 9]),
            ([2, 4], [6, 8]),
            ([0, 9], [6, 9]),
        ] {
            let r = Region::new(&lo, &hi).unwrap();
            assert_eq!(e.query(&r).unwrap(), naive.query(&r).unwrap(), "{r:?}");
        }
    }
}
