//! Reusable coordinate workspaces for the allocation-free hot-path
//! kernels.
//!
//! The query and update kernels need a handful of `d`-length coordinate
//! buffers (box index, anchor, extents, corner offsets, odometer
//! cursors). Allocating them per operation dominated the measured cost
//! of the O(1) query at small `d` (≈ 20 heap allocations per query, see
//! `BENCH_HOTPATH.json`), so every kernel takes a [`KernelScratch`] and
//! the engines thread one through:
//!
//! * **updates** (`&mut self`) reuse an engine-owned scratch;
//! * **queries** (`&self`) must stay `Sync` — [`crate::SharedEngine`]
//!   serves them through a read lock from many threads — so they borrow
//!   a thread-local [`Scratch`] via [`with_scratch`] instead of mutating
//!   engine state.
//!
//! [`Scratch`] additionally carries the 2^d-corner buffer of the
//! inclusion–exclusion layer, kept separate from the kernel buffers so a
//! query can drive [`crate::corners::range_sum_from_prefix_with`] with
//! one buffer while the per-corner kernel borrows the rest
//! ([`Scratch::split`]).

use std::cell::RefCell;

/// Coordinate buffers for one prefix-sum reconstruction or one point
/// update. All buffers hold `d` elements once sized by the kernels;
/// contents between calls are unspecified.
///
/// Opaque outside `rps-core`: obtain one from [`Scratch::split`] (or an
/// engine's own field) and hand it to the `_with` kernels.
#[derive(Debug, Clone, Default)]
pub struct KernelScratch {
    /// Box index of the queried/updated cell.
    pub(crate) b: Vec<usize>,
    /// Anchor coordinate of a box.
    pub(crate) anchor: Vec<usize>,
    /// Clamped extents of a box.
    pub(crate) extents: Vec<usize>,
    /// In-box offsets `x − anchor` of the queried cell.
    pub(crate) offsets: Vec<usize>,
    /// Stored-cell offset cursor (corner terms, border enumeration).
    pub(crate) e: Vec<usize>,
    /// Inclusive lower bound of a walk (orthant ∩ slab clamping).
    pub(crate) lo: Vec<usize>,
    /// Inclusive upper bound of a walk (box corner, orthant corner).
    pub(crate) hi: Vec<usize>,
    /// Anchor coordinate of the box currently visited by an update walk.
    pub(crate) alpha: Vec<usize>,
    /// Per-dimension lower bounds of affected border offsets (§4.2).
    pub(crate) lb: Vec<usize>,
    /// Odometer cursor for region walks.
    pub(crate) cur: Vec<usize>,
}

impl KernelScratch {
    /// A fresh workspace; buffers grow to the engine's dimension count on
    /// first use and are reused afterwards.
    pub fn new() -> KernelScratch {
        KernelScratch::default()
    }

    /// Sizes every fixed-length buffer to `d` elements. No-op (a single
    /// length compare) once sized.
    pub(crate) fn ensure(&mut self, d: usize) {
        if self.b.len() == d {
            return;
        }
        for buf in [
            &mut self.b,
            &mut self.anchor,
            &mut self.extents,
            &mut self.offsets,
            &mut self.e,
            &mut self.lo,
            &mut self.hi,
            &mut self.alpha,
            &mut self.lb,
        ] {
            buf.clear();
            buf.resize(d, 0);
        }
    }
}

/// A full query/update workspace: the inclusion–exclusion corner buffer
/// plus the kernel buffers.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    pub(crate) corner: Vec<usize>,
    pub(crate) kernel: KernelScratch,
}

impl Scratch {
    /// A fresh workspace.
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// Splits into the corner buffer (for
    /// [`crate::corners::range_sum_from_prefix_with`]) and the kernel
    /// buffers (for the per-corner prefix reconstruction) so both layers
    /// can borrow simultaneously.
    pub fn split(&mut self) -> (&mut Vec<usize>, &mut KernelScratch) {
        (&mut self.corner, &mut self.kernel)
    }
}

thread_local! {
    // One workspace per thread, shared by every engine the thread
    // queries. Const-init so first access does not register a
    // destructor-ordering hazard with other TLS users.
    static TLS_SCRATCH: RefCell<Scratch> = const {
        RefCell::new(Scratch {
            corner: Vec::new(),
            kernel: KernelScratch {
                b: Vec::new(),
                anchor: Vec::new(),
                extents: Vec::new(),
                offsets: Vec::new(),
                e: Vec::new(),
                lo: Vec::new(),
                hi: Vec::new(),
                alpha: Vec::new(),
                lb: Vec::new(),
                cur: Vec::new(),
            },
        })
    };
}

/// Runs `f` with the calling thread's reusable [`Scratch`].
///
/// Reentrant calls (a legacy wrapper invoked from inside a `with_scratch`
/// closure) fall back to a fresh, short-lived workspace instead of
/// panicking on the inner borrow, so composing old and new entry points
/// is always safe — the inner call merely loses the reuse benefit.
pub fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    let m = crate::obs::core();
    TLS_SCRATCH.with(|cell| {
        if let Ok(mut scratch) = cell.try_borrow_mut() {
            m.scratch_reuse.inc();
            f(&mut scratch)
        } else {
            m.scratch_fresh.inc();
            f(&mut Scratch::new())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_sizes_all_buffers() {
        let mut ks = KernelScratch::new();
        ks.ensure(3);
        assert_eq!(ks.b.len(), 3);
        assert_eq!(ks.anchor.len(), 3);
        assert_eq!(ks.extents.len(), 3);
        assert_eq!(ks.offsets.len(), 3);
        assert_eq!(ks.e.len(), 3);
        assert_eq!(ks.lo.len(), 3);
        assert_eq!(ks.hi.len(), 3);
        assert_eq!(ks.alpha.len(), 3);
        assert_eq!(ks.lb.len(), 3);
        // Re-sizing to a different dimension count works too.
        ks.ensure(5);
        assert_eq!(ks.b.len(), 5);
        ks.ensure(2);
        assert_eq!(ks.b.len(), 2);
    }

    #[test]
    fn with_scratch_reuses_and_nests() {
        let cap_before = with_scratch(|s| {
            s.corner.reserve(64);
            s.corner.capacity()
        });
        // Same thread: the reserved capacity is still there.
        let cap_again = with_scratch(|s| s.corner.capacity());
        assert!(cap_again >= cap_before);
        // Nested access must not panic; the inner closure simply gets a
        // fresh workspace.
        with_scratch(|outer| {
            outer.kernel.ensure(2);
            with_scratch(|inner| {
                inner.kernel.ensure(4);
                assert_eq!(inner.kernel.b.len(), 4);
            });
            assert_eq!(outer.kernel.b.len(), 2);
        });
    }

    #[test]
    fn split_borrows_are_disjoint() {
        let mut s = Scratch::new();
        let (corner, kernel) = s.split();
        corner.push(1);
        kernel.ensure(2);
        assert_eq!(corner.len(), 1);
        assert_eq!(kernel.b.len(), 2);
    }
}
