//! The RPS point-update algorithm (§4.2, Figures 14–15).
//!
//! An update to `A[c]` with box index `b = c ÷ k` touches:
//!
//! 1. **RP** — only cells of `c`'s own box with coordinates ≥ `c`
//!    (cascading stops at the box boundary): at most `(k−1)^d + …` ≈ `k^d`.
//! 2. **Overlay** — boxes in the "upper orthant" `b' ≥ b`:
//!    * *interior* boxes (`c ≤ α'`, the anchor region sum contains `A[c]`):
//!      anchor gets the delta; borders provably unchanged;
//!    * *border* boxes (same slab as `c` in ≥ 1 dimension, strictly later
//!      in ≥ 1): stored cells `p ≥ c` get the delta — these are the shaded
//!      "cross" regions of Figure 14;
//!    * the box containing `c` itself: overlay untouched (its anchor and
//!      borders describe regions outside the box, none containing `c`).
//!
//! The classification follows from the defining identities
//! `anchor(α) = P[α] − A[α]` and `border(p) = P[p] − RP[p] − anchor`:
//! differencing each with respect to `A[c]` gives
//! `Δborder(p) = Δ·([c≤p] − [α≤c≤p] − [c≤α ∧ c≠α])`, which collapses to
//! the three cases above. Every case is pinned against the paper's
//! Figure 15 numbers in the tests below and against brute-force rebuilds
//! in the property tests.

use ndcube::{NdCube, Region};

use crate::rps::grid::BoxGrid;
use crate::rps::overlay::Overlay;
use crate::stats::StatsCell;
use crate::value::GroupValue;

/// Applies `delta` at `c`, mutating `rp` and `overlay`. Returns nothing;
/// cell-write counts are recorded on `stats`.
///
/// `c` must already be validated against the cube shape.
pub fn apply_update<T: GroupValue>(
    grid: &BoxGrid,
    overlay: &mut Overlay<T>,
    rp: &mut NdCube<T>,
    stats: &StatsCell,
    c: &[usize],
    delta: &T,
) {
    let b = grid.box_index_of(c);

    // --- 1. RP: cascade within the box, clipped to x ≥ c. ---
    let box_region = grid.box_region(&b);
    // lint:allow(L2): c lies inside the box that box_index_of(c) names
    let rp_region = Region::new(c, box_region.hi()).expect("c within its box");
    let shape = rp.shape().clone();
    let mut writes = 0u64;
    for lin in shape.linear_region_iter(&rp_region) {
        rp.get_linear_mut(lin).add_assign(delta);
        writes += 1;
    }
    stats.writes(writes);

    // --- 2. Overlay: walk the upper orthant of boxes. ---
    stats.writes(apply_overlay_update(grid, overlay, c, delta));
}

/// The overlay half of a point update: walks the upper orthant of boxes,
/// adding `delta` to interior anchors and to border cells with offsets
/// `≥` the per-dimension lower bounds (§4.2, Figure 14). Returns the
/// number of overlay cells written.
///
/// Shared by the in-memory engine and the disk-resident engine — the
/// overlay always lives in memory, so this half is byte-identical in
/// both deployments and must exist exactly once.
pub fn apply_overlay_update<T: GroupValue>(
    grid: &BoxGrid,
    overlay: &mut Overlay<T>,
    c: &[usize],
    delta: &T,
) -> u64 {
    let d = c.len();
    let b = grid.box_index_of(c);
    let grid_hi: Vec<usize> = grid.grid_shape().dims().iter().map(|&g| g - 1).collect();
    // lint:allow(L2): box indices are strictly below the grid dims
    let orthant = Region::new(&b, &grid_hi).expect("b within grid");

    let mut overlay_writes = 0u64;
    let mut alpha = vec![0usize; d];
    let mut lb = vec![0usize; d];
    ndcube::RegionIter::for_each_coords(&orthant, |bp| {
        if bp == b.as_slice() {
            return; // own box: overlay provably unchanged
        }
        for (ai, (&bi, &ki)) in alpha.iter_mut().zip(bp.iter().zip(grid.box_size())) {
            *ai = bi * ki;
        }
        let box_lin = overlay.box_linear(bp);
        if c.iter().zip(&alpha).all(|(&ci, &ai)| ci <= ai) {
            // Interior box: A[c] is part of the anchor's region sum.
            // (c = α' is impossible here: that would make bp the own box.)
            let idx = overlay.anchor_index(box_lin);
            overlay.get_mut(idx).add_assign(delta);
            overlay_writes += 1;
        } else {
            // Border box: same slab as c in every dim where α'_i < c_i.
            // Affected stored cells are those with offset e ≥ lb.
            for (l, (&ci, &ai)) in lb.iter_mut().zip(c.iter().zip(&alpha)) {
                *l = ci.saturating_sub(ai);
            }
            let extents = grid.extents_of(bp);
            for_each_stored_offset_geq(&extents, &lb, |e| {
                let idx = overlay
                    .cell_index(box_lin, e, &extents)
                    // lint:allow(L2): the offset enumeration visits exactly the stored slots
                    .expect("enumeration yields stored cells");
                overlay.get_mut(idx).add_assign(delta);
                overlay_writes += 1;
            });
        }
    });
    overlay_writes
}

/// Enumerates every *stored* offset `e` (at least one zero component) of a
/// box with the given extents satisfying `e ≥ lb` componentwise, visiting
/// each exactly once (canonical order: grouped by first zero dimension).
///
/// Cost is proportional to the number of offsets yielded, never to the
/// full box volume — this is what keeps border updates within the paper's
/// `d·(n/k)·k^(d−1)` bound.
pub fn for_each_stored_offset_geq(extents: &[usize], lb: &[usize], mut f: impl FnMut(&[usize])) {
    let d = extents.len();
    let mut e = vec![0usize; d];
    for z in 0..d {
        // Dimension z is the first zero component: requires lb[z] = 0.
        if lb[z] != 0 {
            continue;
        }
        // Ranges: dims before z must be ≥ 1 (z is the FIRST zero), dims
        // after z may be anything ≥ lb.
        let mut empty = false;
        for i in 0..d {
            let start = match i.cmp(&z) {
                std::cmp::Ordering::Less => lb[i].max(1),
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => lb[i],
            };
            if start >= extents[i] && i != z {
                empty = true;
                break;
            }
            e[i] = start;
        }
        if empty {
            continue;
        }
        e[z] = 0;
        // Odometer over the constrained ranges (dim z fixed at 0).
        'class: loop {
            f(&e);
            let mut dim = d;
            loop {
                if dim == 0 {
                    break 'class;
                }
                dim -= 1;
                if dim == z {
                    continue;
                }
                if e[dim] + 1 < extents[dim] {
                    e[dim] += 1;
                    // Reset later dims to their range starts.
                    for j in dim + 1..d {
                        if j == z {
                            continue;
                        }
                        e[j] = if j < z { lb[j].max(1) } else { lb[j] };
                    }
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndcube::Shape;
    use std::collections::HashSet;

    fn collect(extents: &[usize], lb: &[usize]) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for_each_stored_offset_geq(extents, lb, |e| out.push(e.to_vec()));
        out
    }

    /// Oracle: brute-force enumeration over the whole box.
    fn brute(extents: &[usize], lb: &[usize]) -> HashSet<Vec<usize>> {
        let shape = Shape::new(extents).unwrap();
        shape
            .full_region()
            .iter()
            .filter(|e| e.contains(&0) && e.iter().zip(lb).all(|(&x, &l)| x >= l))
            .collect()
    }

    #[test]
    fn enumeration_matches_brute_force_2d() {
        for ext in [[3usize, 3], [1, 4], [4, 1], [2, 5]] {
            for lb0 in 0..ext[0] {
                for lb1 in 0..ext[1] {
                    let lb = [lb0, lb1];
                    let got: HashSet<_> = collect(&ext, &lb).into_iter().collect();
                    let want = brute(&ext, &lb);
                    assert_eq!(got, want, "extents {ext:?} lb {lb:?}");
                }
            }
        }
    }

    #[test]
    fn enumeration_matches_brute_force_3d() {
        let ext = [3usize, 2, 3];
        for lb0 in 0..3 {
            for lb1 in 0..2 {
                for lb2 in 0..3 {
                    let lb = [lb0, lb1, lb2];
                    let got = collect(&ext, &lb);
                    let got_set: HashSet<_> = got.iter().cloned().collect();
                    assert_eq!(got.len(), got_set.len(), "duplicates for lb {lb:?}");
                    assert_eq!(got_set, brute(&ext, &lb), "lb {lb:?}");
                }
            }
        }
    }

    #[test]
    fn zero_lb_yields_all_stored_cells() {
        let ext = [3usize, 3];
        assert_eq!(collect(&ext, &[0, 0]).len(), BoxGrid::stored_cells(&ext));
    }

    #[test]
    fn unsatisfiable_lb_yields_nothing() {
        // Every dimension needs e ≥ 1, but stored cells need a zero.
        assert!(collect(&[3, 3], &[1, 1]).is_empty());
        assert!(collect(&[3, 3], &[2, 1]).is_empty());
    }
}
