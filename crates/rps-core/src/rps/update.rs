//! The RPS point-update algorithm (§4.2, Figures 14–15).
//!
//! An update to `A[c]` with box index `b = c ÷ k` touches:
//!
//! 1. **RP** — only cells of `c`'s own box with coordinates ≥ `c`
//!    (cascading stops at the box boundary): at most `(k−1)^d + …` ≈ `k^d`.
//! 2. **Overlay** — boxes in the "upper orthant" `b' ≥ b`:
//!    * *interior* boxes (`c ≤ α'`, the anchor region sum contains `A[c]`):
//!      anchor gets the delta; borders provably unchanged;
//!    * *border* boxes (same slab as `c` in ≥ 1 dimension, strictly later
//!      in ≥ 1): stored cells `p ≥ c` get the delta — these are the shaded
//!      "cross" regions of Figure 14;
//!    * the box containing `c` itself: overlay untouched (its anchor and
//!      borders describe regions outside the box, none containing `c`).
//!
//! The classification follows from the defining identities
//! `anchor(α) = P[α] − A[α]` and `border(p) = P[p] − RP[p] − anchor`:
//! differencing each with respect to `A[c]` gives
//! `Δborder(p) = Δ·([c≤p] − [α≤c≤p] − [c≤α ∧ c≠α])`, which collapses to
//! the three cases above. Every case is pinned against the paper's
//! Figure 15 numbers in the tests below and against brute-force rebuilds
//! in the property tests.
//!
//! The `_with` kernels take a [`KernelScratch`] and perform **zero heap
//! allocations**; the scratch-free functions are compatibility wrappers
//! that borrow the thread-local workspace. The orthant walk itself lives
//! in `overlay_update_walk`, parameterized by a dim-0 box-row range so the
//! parallel batch path (`rps::parallel`) can partition the same walk into
//! disjoint slabs.
//!
//! **Range updates** (`+δ` over every cell of a region `R = [lo, hi]`)
//! generalize the same classification by *counting* instead of testing:
//! with `N(y) = |R ∩ {q : q ≤ y}|` and `N_B(y) = |R ∩ B ∩ {q : q ≤ y}|`,
//! linearity of the defining identities gives, uniformly for every box,
//!
//! ```text
//! ΔRP[x]      = δ · N_B(x)
//! Δanchor(α)  = δ · (N(α) − [α ∈ R])
//! Δborder(p)  = δ · (N(p) − N_B(p) − (N(α) − [α ∈ R]))
//! ```
//!
//! which collapses to the point-update cases at `|R| = 1`. The affected
//! boxes are exactly the upper orthant of `lo`'s box (everything else has
//! all three counts zero), `lo`'s own box is overlay-untouched (any
//! `q ∈ R` with `q ≤ p ∈ B` satisfies `α ≤ lo ≤ q ≤ p ≤ hi(B)`, so
//! `N = N_B` there), and boxes wholly past `R` (`hi ≤ α` componentwise)
//! are anchor-only. `apply_range_update_with` walks RP box by box, turning
//! each innermost row into one ramp + one constant run, so the whole
//! update is `O(cells touched)` with lane-kernel inner loops instead of
//! `|R|` separate cascades.

use ndcube::{NdCube, Region};

use crate::rps::grid::BoxGrid;
use crate::rps::kernels;
use crate::rps::overlay::Overlay;
use crate::rps::scratch::{with_scratch, KernelScratch};
use crate::stats::StatsCell;
use crate::value::GroupValue;

/// Applies `delta` at `c`, mutating `rp` and `overlay`. Returns nothing;
/// cell-write counts are recorded on `stats`.
///
/// Compatibility wrapper over [`apply_update_with`] using the
/// thread-local scratch. `c` must already be validated against the cube
/// shape.
pub fn apply_update<T: GroupValue>(
    grid: &BoxGrid,
    overlay: &mut Overlay<T>,
    rp: &mut NdCube<T>,
    stats: &StatsCell,
    c: &[usize],
    delta: &T,
) {
    let writes = with_scratch(|s| apply_update_with(grid, overlay, rp, c, delta, &mut s.kernel));
    stats.writes(writes);
}

/// Applies `delta` at `c`, mutating `rp` and `overlay`, using caller
/// scratch — zero heap allocations. Returns the number of cells written
/// (RP + overlay), for the caller to record on its stats in one add.
///
/// `c` must already be validated against the cube shape.
pub fn apply_update_with<T: GroupValue>(
    grid: &BoxGrid,
    overlay: &mut Overlay<T>,
    rp: &mut NdCube<T>,
    c: &[usize],
    delta: &T,
    ks: &mut KernelScratch,
) -> u64 {
    ks.ensure(c.len());

    // --- 1. RP: cascade within the box, clipped to x ≥ c. ---
    // Run-structured: one lane-kernel call per contiguous innermost-axis
    // run instead of one closure call per cell.
    grid.box_hi_of_cell_into(c, &mut ks.hi);
    let mut writes = 0u64;
    let mut lane_runs = 0u64;
    {
        let (shape, data) = rp.parts_mut();
        shape.for_each_contiguous_run_in_bounds(c, &ks.hi, &mut ks.cur, |start, len| {
            kernels::add_delta_run(&mut data[start..start + len], delta);
            writes += u64::try_from(len).unwrap_or(u64::MAX);
            lane_runs += u64::from(kernels::is_lane_run(len));
        });
    }
    if lane_runs > 0 {
        // Coalesced: one relaxed add per update, not one per run.
        crate::obs::core().lane_runs.add(lane_runs);
    }

    // --- 2. Overlay: walk the upper orthant of boxes. ---
    writes + apply_overlay_update_with(grid, overlay, c, delta, ks)
}

/// Walks the RP cells a point update at `c` must touch — `c`'s own box,
/// clipped to coordinates ≥ `c` — invoking `f` with each cell's
/// coordinates. Zero allocations.
///
/// The coordinate-level twin of the cascade inside [`apply_update_with`],
/// for engines that resolve cells through an indirection (the
/// disk-resident engine routes each coordinate through its buffer pool).
pub fn for_each_rp_cascade_cell(
    grid: &BoxGrid,
    c: &[usize],
    ks: &mut KernelScratch,
    f: impl FnMut(&[usize]),
) {
    ks.ensure(c.len());
    grid.box_hi_of_cell_into(c, &mut ks.hi);
    ndcube::for_each_coords_in_bounds(c, &ks.hi, &mut ks.cur, f);
}

/// The overlay half of a point update: walks the upper orthant of boxes,
/// adding `delta` to interior anchors and to border cells with offsets
/// `≥` the per-dimension lower bounds (§4.2, Figure 14). Returns the
/// number of overlay cells written.
///
/// Compatibility wrapper over [`apply_overlay_update_with`] using the
/// thread-local scratch.
pub fn apply_overlay_update<T: GroupValue>(
    grid: &BoxGrid,
    overlay: &mut Overlay<T>,
    c: &[usize],
    delta: &T,
) -> u64 {
    with_scratch(|s| apply_overlay_update_with(grid, overlay, c, delta, &mut s.kernel))
}

/// The overlay half of a point update, using caller scratch — zero heap
/// allocations. Returns the number of overlay cells written.
///
/// Shared by the in-memory engine and the disk-resident engine — the
/// overlay always lives in memory, so this half is byte-identical in
/// both deployments and must exist exactly once.
pub fn apply_overlay_update_with<T: GroupValue>(
    grid: &BoxGrid,
    overlay: &mut Overlay<T>,
    c: &[usize],
    delta: &T,
    ks: &mut KernelScratch,
) -> u64 {
    let rows = grid.grid_shape().dim(0);
    let (box_offsets, cells) = overlay.parts_mut();
    overlay_update_walk(grid, box_offsets, cells, 0, 0, rows, c, delta, ks)
}

/// The upper-orthant overlay walk, restricted to boxes whose dim-0 index
/// lies in `row_lo .. row_hi` and writing through a cell slice that starts
/// at flat overlay index `base`.
///
/// With `base = 0` and the full row range this **is** the overlay update;
/// the parallel batch path hands each worker thread a disjoint
/// `(base, row range, cells slice)` triple so all threads can walk the
/// same update without write overlap. Returns cells written.
#[allow(clippy::too_many_arguments)]
pub(crate) fn overlay_update_walk<T: GroupValue>(
    grid: &BoxGrid,
    box_offsets: &[usize],
    cells: &mut [T],
    base: usize,
    row_lo: usize,
    row_hi: usize,
    c: &[usize],
    delta: &T,
    ks: &mut KernelScratch,
) -> u64 {
    debug_assert!(row_lo < row_hi && row_hi <= grid.grid_shape().dim(0));
    ks.ensure(c.len());
    let KernelScratch {
        b,
        alpha,
        lb,
        extents,
        lo,
        hi,
        cur,
        e,
        ..
    } = ks;
    grid.box_index_into(c, b);
    if b[0] >= row_hi {
        // Every box of this slab precedes c's box in dim 0: the upper
        // orthant misses the slab entirely.
        return 0;
    }
    // Walk bounds: the orthant `b' ≥ b`, with dim 0 clamped to the slab.
    lo.copy_from_slice(b);
    lo[0] = lo[0].max(row_lo);
    for (h, &g) in hi.iter_mut().zip(grid.grid_shape().dims()) {
        *h = g - 1;
    }
    hi[0] = row_hi - 1;

    let grid_shape = grid.grid_shape();
    let mut writes = 0u64;
    ndcube::for_each_coords_in_bounds(lo, hi, cur, |bp| {
        if bp == b.as_slice() {
            return; // own box: overlay provably unchanged
        }
        for (ai, (&bi, &ki)) in alpha.iter_mut().zip(bp.iter().zip(grid.box_size())) {
            *ai = bi * ki;
        }
        let cell_base = box_offsets[grid_shape.linear_unchecked(bp)] - base;
        if c.iter().zip(&*alpha).all(|(&ci, &ai)| ci <= ai) {
            // Interior box: A[c] is part of the anchor's region sum.
            // (c = α' is impossible here: that would make bp the own box.)
            cells[cell_base].add_assign(delta); // anchor is always slot 0
            writes += 1;
        } else {
            // Border box: same slab as c in every dim where α'_i < c_i.
            // Affected stored cells are those with offset e ≥ lb.
            for (l, (&ci, &ai)) in lb.iter_mut().zip(c.iter().zip(&*alpha)) {
                *l = ci.saturating_sub(ai);
            }
            grid.extents_into(bp, extents);
            for_each_stored_offset_geq_with(extents, lb, e, |eo| {
                let slot = BoxGrid::slot_of(eo, extents)
                    // lint:allow(L2): the offset enumeration visits exactly the stored slots
                    .expect("enumeration yields stored cells");
                cells[cell_base + slot].add_assign(delta);
                writes += 1;
            });
        }
    });
    writes
}

/// `N(y) = |R ∩ {q : q ≤ y}|` for `R = [lo, hi]`: the number of region
/// cells weakly preceding `y` componentwise. Separable, so it is a product
/// of per-dimension counts; any empty dimension zeroes the whole product.
// lint:allow(L4): per-dimension counts are ≤ the cube side and their
// product is ≤ the cube's cell count, which fits u64 on every target.
#[inline]
fn region_cells_leq(lo: &[usize], hi: &[usize], y: &[usize]) -> u64 {
    let mut n = 1u64;
    for ((&l, &h), &yi) in lo.iter().zip(hi).zip(y) {
        let top = yi.min(h);
        if top < l {
            return 0;
        }
        n *= (top - l + 1) as u64; // lint:allow(L4): extent ≤ n fits u64
    }
    n
}

/// [`region_cells_leq`] at `y = α + e`, without materializing `y` — the
/// border enumeration hands out in-box offsets, not absolute coordinates.
// lint:allow(L4): see region_cells_leq
#[inline]
fn region_cells_leq_off(lo: &[usize], hi: &[usize], alpha: &[usize], e: &[usize]) -> u64 {
    let mut n = 1u64;
    for i in 0..lo.len() {
        let top = (alpha[i] + e[i]).min(hi[i]);
        if top < lo[i] {
            return 0;
        }
        n *= (top - lo[i] + 1) as u64; // lint:allow(L4): extent ≤ n fits u64
    }
    n
}

/// `N_B(y) = |R ∩ B ∩ {q : q ≤ y}|` at `y = α + e`, for the box anchored
/// at `alpha`. `y` always lies inside `B`, so clamping the lower end to
/// the anchor is the only difference from [`region_cells_leq_off`].
// lint:allow(L4): see region_cells_leq
#[inline]
fn box_region_cells_leq_off(lo: &[usize], hi: &[usize], alpha: &[usize], e: &[usize]) -> u64 {
    let mut n = 1u64;
    for i in 0..lo.len() {
        let top = (alpha[i] + e[i]).min(hi[i]);
        let bot = lo[i].max(alpha[i]);
        if top < bot {
            return 0;
        }
        n *= (top - bot + 1) as u64; // lint:allow(L4): extent ≤ n fits u64
    }
    n
}

/// Applies a range update to `rp` and `overlay` using caller scratch —
/// zero heap allocations after the scratch buffers are sized. Returns the
/// number of cells written (RP + overlay).
///
/// The region must already be validated against the cube shape. The
/// result is bit-identical to a per-cell [`apply_update_with`] loop over
/// the region (pinned by the property tests below) at the cost of the
/// cells *touched*, not `|R|` separate cascades.
pub fn apply_range_update_with<T: GroupValue>(
    grid: &BoxGrid,
    overlay: &mut Overlay<T>,
    rp: &mut NdCube<T>,
    region: &Region,
    delta: &T,
    ks: &mut KernelScratch,
) -> u64 {
    ks.ensure(region.ndim());
    let mut writes = rp_range_cascade(grid, rp, region.lo(), region.hi(), delta, ks);
    let rows = grid.grid_shape().dim(0);
    let (box_offsets, cells) = overlay.parts_mut();
    writes += overlay_range_walk(
        grid,
        box_offsets,
        cells,
        0,
        0,
        rows,
        region.lo(),
        region.hi(),
        delta,
        ks,
    );
    writes
}

/// The RP half of a range update: every box intersecting `R` gets
/// `δ·N_B(x)` added to its cells `x ≥ max(α, lo)`, one box at a time via
/// [`rp_range_box`].
fn rp_range_cascade<T: GroupValue>(
    grid: &BoxGrid,
    rp: &mut NdCube<T>,
    lo: &[usize],
    hi: &[usize],
    delta: &T,
    ks: &mut KernelScratch,
) -> u64 {
    let d = lo.len();
    ks.ensure(d);
    let KernelScratch {
        b,
        offsets,
        alpha,
        lo: rlo,
        hi: box_hi,
        cur,
        e,
        ..
    } = ks;
    // Boxes intersecting R form the index rectangle [box(lo), box(hi)].
    grid.box_index_into(lo, b);
    grid.box_index_into(hi, offsets);
    let (_, data) = rp.parts_mut();
    cur.clear();
    cur.extend_from_slice(b);
    let mut writes = 0u64;
    'boxes: loop {
        writes += rp_range_box(grid, data, 0, cur, lo, hi, delta, alpha, rlo, box_hi, e);
        let mut dim = d;
        loop {
            if dim == 0 {
                break 'boxes;
            }
            dim -= 1;
            if cur[dim] < offsets[dim] {
                cur[dim] += 1;
                break;
            }
            cur[dim] = b[dim];
        }
    }
    writes
}

/// Adds `δ·N_B(x)` to the RP cells of one box `bp` intersecting
/// `R = [lo, hi]`, writing through a cell slice that starts at flat RP
/// index `base` (the versioned engine hands in one copy-on-write dim-0
/// slab at a time; `base = 0` with the full array is the in-memory path).
///
/// Per innermost row the count factorizes as `m · (x_last-dependent
/// term)`: a ramp of step `δ·m` up to `min(hi, box_hi)` in the last
/// dimension, then that ramp's final value as a constant over the rest of
/// the row — one [`kernels::add_ramp_run`] plus one
/// [`kernels::add_delta_run`] per row. Returns cells written.
#[allow(clippy::too_many_arguments)]
pub(crate) fn rp_range_box<T: GroupValue>(
    grid: &BoxGrid,
    data: &mut [T],
    base: usize,
    bp: &[usize],
    lo: &[usize],
    hi: &[usize],
    delta: &T,
    alpha: &mut [usize],
    rlo: &mut [usize],
    box_hi: &mut [usize],
    row: &mut Vec<usize>,
) -> u64 {
    let d = bp.len();
    let last = d - 1;
    grid.anchor_into(bp, alpha);
    let sizes = grid.box_size().iter().zip(grid.cube_shape().dims());
    for (o, ((&b, (&k, &n)), (&a, &l))) in box_hi
        .iter_mut()
        .zip(bp.iter().zip(sizes).zip(alpha.iter().zip(lo)))
    {
        *o = ((b + 1) * k).min(n) - 1;
        debug_assert!(*o >= a.max(l), "box must intersect the region");
    }
    for (r, (&a, &l)) in rlo.iter_mut().zip(alpha.iter().zip(lo)) {
        *r = a.max(l);
    }
    let strides = grid.cube_shape().strides();
    row.clear();
    row.extend_from_slice(&rlo[..last]);
    let mut row_base: usize = row.iter().zip(strides).map(|(&c, &s)| c * s).sum();
    let mut writes = 0u64;
    let mut lane_runs = 0u64;
    'rows: loop {
        // Prefactor: region cells preceding this row in the outer dims.
        // lint:allow(L4): per-dimension counts multiply to ≤ the cube's
        // cell count, which fits u64.
        let m = row
            .iter()
            .enumerate()
            .fold(1u64, |acc, (i, &c)| acc * (c.min(hi[i]) - rlo[i] + 1) as u64); // lint:allow(L4): counts fit u64
        let start = row_base + rlo[last] - base;
        let ramp_len = hi[last].min(box_hi[last]) - rlo[last] + 1;
        let total_len = box_hi[last] - rlo[last] + 1;
        let slice = &mut data[start..start + total_len];
        let step = delta.scale(m);
        let (ramp, rest) = slice.split_at_mut(ramp_len);
        let acc = kernels::add_ramp_run(ramp, &step);
        kernels::add_delta_run(rest, &acc);
        writes += u64::try_from(total_len).unwrap_or(u64::MAX);
        lane_runs += u64::from(kernels::is_lane_run(total_len));
        if last == 0 {
            break;
        }
        let mut dim = last;
        loop {
            if dim == 0 {
                break 'rows;
            }
            dim -= 1;
            if row[dim] < box_hi[dim] {
                row[dim] += 1;
                row_base += strides[dim];
                break;
            }
            row_base -= (row[dim] - rlo[dim]) * strides[dim];
            row[dim] = rlo[dim];
        }
    }
    if lane_runs > 0 {
        crate::obs::core().lane_runs.add(lane_runs);
    }
    writes
}

/// The overlay half of a range update, restricted to boxes whose dim-0
/// index lies in `row_lo .. row_hi` and writing through a cell slice that
/// starts at flat overlay index `base` — the same slab parameterization as
/// [`overlay_update_walk`], so the versioned engine can reuse it per
/// copy-on-write granule. Returns cells written.
///
/// Every box of the upper orthant of `lo`'s box gets the counting form of
/// the point-update classification (see the module docs): the anchor gets
/// `δ·(N(α) − [α∈R])`, border cells `p = α + e` get
/// `δ·(N(p) − N_B(p) − Δanchor-count)`. Boxes wholly past the region
/// (`hi ≤ α`) are anchor-only; `lo`'s own box is untouched.
#[allow(clippy::too_many_arguments)]
pub(crate) fn overlay_range_walk<T: GroupValue>(
    grid: &BoxGrid,
    box_offsets: &[usize],
    cells: &mut [T],
    base: usize,
    row_lo: usize,
    row_hi: usize,
    lo: &[usize],
    hi: &[usize],
    delta: &T,
    ks: &mut KernelScratch,
) -> u64 {
    debug_assert!(row_lo < row_hi && row_hi <= grid.grid_shape().dim(0));
    ks.ensure(lo.len());
    let KernelScratch {
        b,
        alpha,
        lb,
        extents,
        lo: wlo,
        hi: whi,
        cur,
        e,
        ..
    } = ks;
    grid.box_index_into(lo, b);
    if b[0] >= row_hi {
        return 0;
    }
    wlo.copy_from_slice(b);
    wlo[0] = wlo[0].max(row_lo);
    for (h, &g) in whi.iter_mut().zip(grid.grid_shape().dims()) {
        *h = g - 1;
    }
    whi[0] = row_hi - 1;

    let grid_shape = grid.grid_shape();
    let mut writes = 0u64;
    ndcube::for_each_coords_in_bounds(wlo, whi, cur, |bp| {
        if bp == b.as_slice() {
            return; // lo's own box: N = N_B there, overlay untouched
        }
        for (ai, (&bi, &ki)) in alpha.iter_mut().zip(bp.iter().zip(grid.box_size())) {
            *ai = bi * ki;
        }
        let cell_base = box_offsets[grid_shape.linear_unchecked(bp)] - base;
        let mut anchor_count = region_cells_leq(lo, hi, alpha);
        if alpha
            .iter()
            .zip(lo.iter().zip(hi))
            .all(|(&a, (&l, &h))| l <= a && a <= h)
        {
            // α ∈ R: P[α] and A[α] move together, so the anchor
            // (= P[α] − A[α]) excludes α itself.
            anchor_count -= 1;
        }
        if anchor_count > 0 {
            cells[cell_base].add_assign(&delta.scale(anchor_count)); // anchor is slot 0
            writes += 1;
        }
        if alpha.iter().zip(hi).all(|(&ai, &h)| ai >= h) {
            return; // R ≤ α componentwise: border counts cancel exactly
        }
        // Offsets below lo − α have all three counts zero; enumerate the
        // rest, with the uniform per-cell count.
        for (l, (&li, &ai)) in lb.iter_mut().zip(lo.iter().zip(&*alpha)) {
            *l = li.saturating_sub(ai);
        }
        grid.extents_into(bp, extents);
        for_each_stored_offset_geq_with(extents, lb, e, |eo| {
            if eo.iter().all(|&x| x == 0) {
                return; // the anchor (slot 0), handled above
            }
            let n_p = region_cells_leq_off(lo, hi, alpha, eo);
            let nb_p = box_region_cells_leq_off(lo, hi, alpha, eo);
            debug_assert!(n_p - nb_p >= anchor_count, "border count is non-negative");
            let count = n_p - nb_p - anchor_count;
            if count > 0 {
                let slot = BoxGrid::slot_of(eo, extents)
                    // lint:allow(L2): the offset enumeration visits exactly the stored slots
                    .expect("enumeration yields stored cells");
                cells[cell_base + slot].add_assign(&delta.scale(count));
                writes += 1;
            }
        });
    });
    writes
}

/// Enumerates every *stored* offset `e` (at least one zero component) of a
/// box with the given extents satisfying `e ≥ lb` componentwise, visiting
/// each exactly once (canonical order: grouped by first zero dimension).
///
/// Compatibility wrapper over [`for_each_stored_offset_geq_with`] using
/// the thread-local scratch.
pub fn for_each_stored_offset_geq(extents: &[usize], lb: &[usize], f: impl FnMut(&[usize])) {
    with_scratch(|s| for_each_stored_offset_geq_with(extents, lb, &mut s.kernel.e, f));
}

/// [`for_each_stored_offset_geq`] with a caller-provided cursor buffer —
/// zero allocations.
///
/// Cost is proportional to the number of offsets yielded, never to the
/// full box volume — this is what keeps border updates within the paper's
/// `d·(n/k)·k^(d−1)` bound.
pub fn for_each_stored_offset_geq_with(
    extents: &[usize],
    lb: &[usize],
    e: &mut Vec<usize>,
    mut f: impl FnMut(&[usize]),
) {
    let d = extents.len();
    e.clear();
    e.resize(d, 0);
    for z in 0..d {
        // Dimension z is the first zero component: requires lb[z] = 0.
        if lb[z] != 0 {
            continue;
        }
        // Ranges: dims before z must be ≥ 1 (z is the FIRST zero), dims
        // after z may be anything ≥ lb.
        let mut empty = false;
        for i in 0..d {
            let start = match i.cmp(&z) {
                std::cmp::Ordering::Less => lb[i].max(1),
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => lb[i],
            };
            if start >= extents[i] && i != z {
                empty = true;
                break;
            }
            e[i] = start;
        }
        if empty {
            continue;
        }
        e[z] = 0;
        // Odometer over the constrained ranges (dim z fixed at 0).
        'class: loop {
            f(e);
            let mut dim = d;
            loop {
                if dim == 0 {
                    break 'class;
                }
                dim -= 1;
                if dim == z {
                    continue;
                }
                if e[dim] + 1 < extents[dim] {
                    e[dim] += 1;
                    // Reset later dims to their range starts.
                    for j in dim + 1..d {
                        if j == z {
                            continue;
                        }
                        e[j] = if j < z { lb[j].max(1) } else { lb[j] };
                    }
                    break;
                }
            }
        }
    }
}

/// The original allocating update path, kept verbatim as the oracle the
/// scratch kernels are property-tested against.
#[cfg(test)]
pub(crate) mod oracle {
    use ndcube::{NdCube, Region};

    use super::{BoxGrid, GroupValue, Overlay};

    /// Pre-scratch `apply_update`: allocates per call, returns writes.
    pub fn apply_update<T: GroupValue>(
        grid: &BoxGrid,
        overlay: &mut Overlay<T>,
        rp: &mut NdCube<T>,
        c: &[usize],
        delta: &T,
    ) -> u64 {
        let b = grid.box_index_of(c);
        let box_region = grid.box_region(&b);
        let rp_region = Region::new(c, box_region.hi()).expect("c within its box");
        let shape = rp.shape().clone();
        let mut writes = 0u64;
        for lin in shape.linear_region_iter(&rp_region) {
            rp.get_linear_mut(lin).add_assign(delta);
            writes += 1;
        }
        writes + apply_overlay_update(grid, overlay, c, delta)
    }

    /// Per-cell range-update reference: one point update per region cell.
    /// The counting fast path must land bit-identical to this loop.
    pub fn apply_range_update<T: GroupValue>(
        grid: &BoxGrid,
        overlay: &mut Overlay<T>,
        rp: &mut NdCube<T>,
        region: &Region,
        delta: &T,
    ) -> u64 {
        let mut writes = 0u64;
        for c in region.iter() {
            writes += apply_update(grid, overlay, rp, &c, delta);
        }
        writes
    }

    /// Pre-scratch `apply_overlay_update`: Region-based orthant walk.
    pub fn apply_overlay_update<T: GroupValue>(
        grid: &BoxGrid,
        overlay: &mut Overlay<T>,
        c: &[usize],
        delta: &T,
    ) -> u64 {
        let d = c.len();
        let b = grid.box_index_of(c);
        let grid_hi: Vec<usize> = grid.grid_shape().dims().iter().map(|&g| g - 1).collect();
        let orthant = Region::new(&b, &grid_hi).expect("b within grid");

        let mut overlay_writes = 0u64;
        let mut alpha = vec![0usize; d];
        let mut lb = vec![0usize; d];
        ndcube::RegionIter::for_each_coords(&orthant, |bp| {
            if bp == b.as_slice() {
                return;
            }
            for (ai, (&bi, &ki)) in alpha.iter_mut().zip(bp.iter().zip(grid.box_size())) {
                *ai = bi * ki;
            }
            let box_lin = overlay.box_linear(bp);
            if c.iter().zip(&alpha).all(|(&ci, &ai)| ci <= ai) {
                let idx = overlay.anchor_index(box_lin);
                overlay.get_mut(idx).add_assign(delta);
                overlay_writes += 1;
            } else {
                for (l, (&ci, &ai)) in lb.iter_mut().zip(c.iter().zip(&alpha)) {
                    *l = ci.saturating_sub(ai);
                }
                let extents = grid.extents_of(bp);
                super::for_each_stored_offset_geq(&extents, &lb, |e| {
                    let idx = overlay
                        .cell_index(box_lin, e, &extents)
                        .expect("enumeration yields stored cells");
                    overlay.get_mut(idx).add_assign(delta);
                    overlay_writes += 1;
                });
            }
        });
        overlay_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndcube::Shape;
    use std::collections::HashSet;

    fn collect(extents: &[usize], lb: &[usize]) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for_each_stored_offset_geq(extents, lb, |e| out.push(e.to_vec()));
        out
    }

    /// Oracle: brute-force enumeration over the whole box.
    fn brute(extents: &[usize], lb: &[usize]) -> HashSet<Vec<usize>> {
        let shape = Shape::new(extents).unwrap();
        shape
            .full_region()
            .iter()
            .filter(|e| e.contains(&0) && e.iter().zip(lb).all(|(&x, &l)| x >= l))
            .collect()
    }

    #[test]
    fn enumeration_matches_brute_force_2d() {
        for ext in [[3usize, 3], [1, 4], [4, 1], [2, 5]] {
            for lb0 in 0..ext[0] {
                for lb1 in 0..ext[1] {
                    let lb = [lb0, lb1];
                    let got: HashSet<_> = collect(&ext, &lb).into_iter().collect();
                    let want = brute(&ext, &lb);
                    assert_eq!(got, want, "extents {ext:?} lb {lb:?}");
                }
            }
        }
    }

    #[test]
    fn enumeration_matches_brute_force_3d() {
        let ext = [3usize, 2, 3];
        for lb0 in 0..3 {
            for lb1 in 0..2 {
                for lb2 in 0..3 {
                    let lb = [lb0, lb1, lb2];
                    let got = collect(&ext, &lb);
                    let got_set: HashSet<_> = got.iter().cloned().collect();
                    assert_eq!(got.len(), got_set.len(), "duplicates for lb {lb:?}");
                    assert_eq!(got_set, brute(&ext, &lb), "lb {lb:?}");
                }
            }
        }
    }

    #[test]
    fn zero_lb_yields_all_stored_cells() {
        let ext = [3usize, 3];
        assert_eq!(collect(&ext, &[0, 0]).len(), BoxGrid::stored_cells(&ext));
    }

    #[test]
    fn unsatisfiable_lb_yields_nothing() {
        // Every dimension needs e ≥ 1, but stored cells need a zero.
        assert!(collect(&[3, 3], &[1, 1]).is_empty());
        assert!(collect(&[3, 3], &[2, 1]).is_empty());
    }

    #[test]
    fn with_variant_reuses_dirty_buffer() {
        let mut e = vec![9usize; 5];
        let mut n = 0usize;
        for_each_stored_offset_geq_with(&[3, 3], &[0, 0], &mut e, |_| n += 1);
        assert_eq!(n, BoxGrid::stored_cells(&[3, 3]));
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use crate::rps::scratch::Scratch;
    use ndcube::Shape;
    use proptest::prelude::*;

    /// Random geometry + one update point, for d ∈ 1..=4.
    fn update_case() -> impl Strategy<Value = (Vec<usize>, Vec<usize>, Vec<usize>, i64)> {
        (1usize..=4)
            .prop_flat_map(|d| {
                (
                    proptest::collection::vec(1usize..=6, d),
                    proptest::collection::vec(1usize..=4, d),
                )
            })
            .prop_flat_map(|(dims, ks)| {
                let coord: Vec<std::ops::Range<usize>> = dims.iter().map(|&n| 0..n).collect();
                (Just(dims), Just(ks), coord, -50i64..50)
            })
    }

    /// Random geometry + two region corners (sorted per dimension by the
    /// test), for d ∈ 1..=4.
    #[allow(clippy::type_complexity)]
    fn range_update_case(
    ) -> impl Strategy<Value = (Vec<usize>, Vec<usize>, Vec<usize>, Vec<usize>, i64)> {
        (1usize..=4)
            .prop_flat_map(|d| {
                (
                    proptest::collection::vec(1usize..=6, d),
                    proptest::collection::vec(1usize..=4, d),
                )
            })
            .prop_flat_map(|(dims, ks)| {
                let a: Vec<std::ops::Range<usize>> = dims.iter().map(|&n| 0..n).collect();
                let b = a.clone();
                (Just(dims), Just(ks), a, b, -50i64..50)
            })
    }

    proptest! {
        /// The scratch update kernel and the original allocating path
        /// produce identical overlay cells, RP arrays, and write counts.
        #[test]
        fn scratch_update_matches_oracle((dims, ks, c, delta) in update_case()) {
            let grid = BoxGrid::new(Shape::new(&dims).unwrap(), &ks).unwrap();
            let mut ov_new = Overlay::<i64>::zeros(grid.clone());
            let mut ov_old = ov_new.clone();
            let mut rp_new = NdCube::<i64>::zeros(&dims);
            let mut rp_old = rp_new.clone();

            let mut scratch = Scratch::new();
            let w_new =
                apply_update_with(&grid, &mut ov_new, &mut rp_new, &c, &delta, &mut scratch.kernel);
            let w_old = oracle::apply_update(&grid, &mut ov_old, &mut rp_old, &c, &delta);

            prop_assert_eq!(w_new, w_old);
            prop_assert_eq!(rp_new.as_slice(), rp_old.as_slice());
            let all: Vec<usize> = (0..ov_new.storage_cells()).collect();
            for i in all {
                prop_assert_eq!(ov_new.get(i), ov_old.get(i), "overlay cell {}", i);
            }
        }

        /// The counting range-update kernel lands bit-identical to a
        /// per-cell point-update loop over the same region — RP array and
        /// every overlay cell — across random geometry, including point,
        /// full-cube, and box-straddling regions.
        #[test]
        fn range_update_matches_per_cell_loop((dims, ks, a, b, delta) in range_update_case()) {
            let lo: Vec<usize> = a.iter().zip(&b).map(|(&x, &y)| x.min(y)).collect();
            let hi: Vec<usize> = a.iter().zip(&b).map(|(&x, &y)| x.max(y)).collect();
            let region = ndcube::Region::new(&lo, &hi).unwrap();
            let grid = BoxGrid::new(Shape::new(&dims).unwrap(), &ks).unwrap();
            let mut ov_fast = Overlay::<i64>::zeros(grid.clone());
            let mut ov_ref = ov_fast.clone();
            let mut rp_fast = NdCube::<i64>::zeros(&dims);
            let mut rp_ref = rp_fast.clone();

            let mut scratch = Scratch::new();
            apply_range_update_with(
                &grid, &mut ov_fast, &mut rp_fast, &region, &delta, &mut scratch.kernel,
            );
            oracle::apply_range_update(&grid, &mut ov_ref, &mut rp_ref, &region, &delta);

            prop_assert_eq!(rp_fast.as_slice(), rp_ref.as_slice());
            for i in 0..ov_fast.storage_cells() {
                prop_assert_eq!(ov_fast.get(i), ov_ref.get(i), "overlay cell {}", i);
            }
        }

        /// Scratch reuse across a sequence of updates does not leak state
        /// between calls (same result as fresh scratch every time).
        #[test]
        fn scratch_reuse_is_stateless((dims, ks, c, delta) in update_case()) {
            // Dirty the scratch with a *different* dimension count, then
            // run the real case through it.
            let grid = BoxGrid::new(Shape::new(&dims).unwrap(), &ks).unwrap();
            let mut ov_a = Overlay::<i64>::zeros(grid.clone());
            let mut ov_b = ov_a.clone();
            let mut rp_a = NdCube::<i64>::zeros(&dims);
            let mut rp_b = rp_a.clone();

            let mut dirty = Scratch::new();
            dirty.kernel.ensure(7);
            let w_a = apply_update_with(&grid, &mut ov_a, &mut rp_a, &c, &delta, &mut dirty.kernel);
            let mut fresh = Scratch::new();
            let w_b = apply_update_with(&grid, &mut ov_b, &mut rp_b, &c, &delta, &mut fresh.kernel);

            prop_assert_eq!(w_a, w_b);
            prop_assert_eq!(rp_a.as_slice(), rp_b.as_slice());
        }
    }
}
