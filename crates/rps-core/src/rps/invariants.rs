//! Structural integrity checking for the RPS engine.
//!
//! `check_invariants` re-derives every structure from the recovered cube
//! `A` and compares — an O(d·N) full audit used by the soak tests, after
//! snapshot restores, and whenever corruption is suspected. Each defining
//! identity of §3 is verified independently, so a failure report names
//! the structure *and* the first offending cell.

use crate::prefix::prefix_sums_in_place;
use crate::rps::build::relative_prefix_sums;
use crate::rps::grid::BoxGrid;
use crate::rps::RpsEngine;
use crate::value::GroupValue;

/// A structural inconsistency found by [`RpsEngine::check_invariants`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// An RP cell disagrees with the box-local prefix of the recovered A.
    RpCell {
        /// Cell coordinates.
        coords: Vec<usize>,
    },
    /// A box's anchor value disagrees with `P[α] − A[α]`.
    Anchor {
        /// Anchor coordinates.
        coords: Vec<usize>,
    },
    /// A border value disagrees with `P[p] − RP[p] − anchor`.
    Border {
        /// Border cell coordinates.
        coords: Vec<usize>,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::RpCell { coords } => write!(f, "RP{coords:?} inconsistent"),
            Violation::Anchor { coords } => write!(f, "anchor at {coords:?} inconsistent"),
            Violation::Border { coords } => write!(f, "border at {coords:?} inconsistent"),
        }
    }
}

impl<T: GroupValue> RpsEngine<T> {
    /// Audits every defining identity of the structure against the
    /// recovered cube. Returns all violations (empty = healthy).
    ///
    /// Cost: O(d·N) — a full rebuild's worth of work; intended for tests,
    /// post-restore checks and debugging, not per-operation use.
    pub fn check_invariants(&self) -> Vec<Violation> {
        let mut violations = Vec::new();
        let a = self.to_cube();
        let grid: &BoxGrid = self.grid();

        // RP must be the box-local prefix of A. (to_cube inverts RP, so
        // this mostly guards the inverse/forward pair against drift — and
        // catches NaN-style self-inconsistency for float cubes.)
        let expect_rp = relative_prefix_sums(&a, grid);
        let shape = a.shape().clone();
        let full = shape.full_region();
        shape.for_each_region_cell(&full, |coords, lin| {
            if self.rp_array().get_linear(lin) != expect_rp.get_linear(lin) {
                violations.push(Violation::RpCell {
                    coords: coords.to_vec(),
                });
            }
        });

        // Overlay anchors and borders from first principles.
        let mut p = a.clone();
        prefix_sums_in_place(&mut p);
        let boxes: Vec<Vec<usize>> = grid.grid_shape().full_region().iter().collect();
        for b in boxes {
            let box_lin = self.overlay().box_linear(&b);
            let anchor = grid.anchor_of(&b);
            let extents = grid.extents_of(&b);
            let a_lin = shape.linear_unchecked(&anchor);
            let anchor_expect = p.get_linear(a_lin).sub(a.get_linear(a_lin));
            let anchor_got = self.overlay().get(self.overlay().anchor_index(box_lin));
            if *anchor_got != anchor_expect {
                violations.push(Violation::Anchor {
                    coords: anchor.clone(),
                });
            }
            let stored = self.overlay().box_stored_count(box_lin);
            let mut cell = vec![0usize; shape.ndim()];
            for slot in 1..stored {
                let e = BoxGrid::offset_of_slot(slot, &extents);
                for (ci, (ai, ei)) in cell.iter_mut().zip(anchor.iter().zip(&e)) {
                    *ci = ai + ei;
                }
                let lin = shape.linear_unchecked(&cell);
                let expect = p
                    .get_linear(lin)
                    .sub(expect_rp.get_linear(lin))
                    .sub(&anchor_expect);
                let idx = self
                    .overlay()
                    .cell_index(box_lin, &e, &extents)
                    // lint:allow(L2): the offset enumeration visits exactly the stored slots
                    .expect("enumerated slots are stored");
                if *self.overlay().get(idx) != expect {
                    violations.push(Violation::Border {
                        coords: cell.clone(),
                    });
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RangeSumEngine;
    use crate::testdata::paper_array_a;

    #[test]
    fn fresh_engine_is_healthy() {
        let e = RpsEngine::from_cube_uniform(&paper_array_a(), 3).unwrap();
        assert!(e.check_invariants().is_empty());
    }

    #[test]
    fn healthy_after_updates_and_batches() {
        let mut e = RpsEngine::from_cube_uniform(&paper_array_a(), 3).unwrap();
        e.update(&[1, 1], 7).unwrap();
        e.update(&[8, 8], -3).unwrap();
        e.apply_batch(
            &(0..20)
                .map(|i| (vec![i % 9, (i * 4) % 9], 1i64))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(e.check_invariants().is_empty());
    }

    #[test]
    fn detects_corrupted_border() {
        let mut e = RpsEngine::from_cube_uniform(&paper_array_a(), 3).unwrap();
        // Vandalize a border value directly through the overlay.
        let b = e.grid().box_index_of(&[6, 4]);
        let box_lin = e.overlay().box_linear(&b);
        let extents = e.grid().extents_of(&b);
        let idx = e.overlay().cell_index(box_lin, &[0, 1], &extents).unwrap();
        *e.overlay_mut_for_tests().get_mut(idx) += 1;
        let violations = e.check_invariants();
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::Border { coords } if coords == &vec![6, 4])),
            "{violations:?}"
        );
    }

    #[test]
    fn detects_corrupted_anchor() {
        let mut e = RpsEngine::from_cube_uniform(&paper_array_a(), 3).unwrap();
        let b = e.grid().box_index_of(&[3, 3]);
        let box_lin = e.overlay().box_linear(&b);
        let idx = e.overlay().anchor_index(box_lin);
        *e.overlay_mut_for_tests().get_mut(idx) -= 5;
        let violations = e.check_invariants();
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::Anchor { coords } if coords == &vec![3, 3])),
            "{violations:?}"
        );
    }
}
