//! Fixed-width lane kernels for the contiguous innermost-axis runs.
//!
//! Row-major layout makes the last dimension the only contiguous one, so
//! every hot loop in the workspace — the RP update cascade, the build
//! sweeps, the overlay reconstruction — ultimately reduces to one of a
//! handful of operations over a contiguous run of cells. This module is
//! the single home for those operations, written so stable `rustc`
//! autovectorizes them: each kernel walks the run as `LANES`-wide chunks
//! via `chunks_exact` (a shape LLVM reliably turns into SIMD for the
//! primitive `GroupValue` instances) and finishes with a scalar remainder
//! tail. No nightly `std::simd`, no unsafe, no dependencies.
//!
//! The `_scalar` twins are the retained one-cell-at-a-time forms. They
//! are not dead code: the property tests pin the lane kernels bit-identical
//! to them (including non-multiple-of-`LANES` tails and runs shorter than
//! one lane), and `exp_parallel_query` benches both paths side by side so
//! BENCH_THROUGHPUT.json records what the widening buys.
//!
//! The scan kernels ([`prefix_scan_run`], [`inverse_prefix_scan_run`])
//! stay deliberately scalar: a prefix sum along the run *is* a loop-carried
//! dependence chain, so the win there is restructuring callers to call
//! them once per run instead of once per cell — the outer-axis sweeps in
//! `crate::prefix` widen across the run via [`add_rows`]/[`sub_rows`]
//! instead, with [`tile_width`]-sized column blocks so the row pair being
//! combined stays resident in L1.
//!
//! Everything here is allocation-free (enforced by `cargo xtask lint` L5)
//! and index-free (no `[i]` — iterator zips only), so the panic and
//! raw-indexing lints hold without any escape comments.

use crate::value::GroupValue;

/// Lane width of the chunked loops: 8 × `i64` is one 64-byte cache line
/// and two AVX2 / one AVX-512 vector; narrower types simply pack more
/// elements per vector at the same chunk width.
pub const LANES: usize = 8;

/// Per-tile L1 budget for the cache-blocked outer-axis sweeps: half of a
/// conservative 32 KiB L1d, because a sweep step touches two rows (the
/// accumulating row and its predecessor).
const L1_TILE_BYTES: usize = 16 * 1024;

/// Whether a run of `len` cells takes the lane path (at least one full
/// `LANES` chunk) — the predicate behind the `rps_lane_runs_total`
/// observability counter.
#[inline]
#[must_use]
pub fn is_lane_run(len: usize) -> bool {
    len >= LANES
}

/// Column-tile width for a cache-blocked sweep over rows of `stride`
/// cells: the widest `LANES`-multiple block such that two `T`-rows of
/// that width fit the L1 budget, clamped to the row itself.
#[inline]
#[must_use]
pub fn tile_width<T>(stride: usize) -> usize {
    let cell = std::mem::size_of::<T>().max(1);
    let budget = (L1_TILE_BYTES / (2 * cell)).max(LANES);
    let aligned = budget - budget % LANES;
    aligned.max(LANES).min(stride.max(1))
}

/// Adds `delta` to every cell of a contiguous run (the RP update
/// cascade's inner loop), `LANES` cells at a time plus a remainder tail.
#[inline]
pub fn add_delta_run<T: GroupValue>(run: &mut [T], delta: &T) {
    let mut chunks = run.chunks_exact_mut(LANES);
    for chunk in &mut chunks {
        for cell in chunk {
            cell.add_assign(delta);
        }
    }
    for cell in chunks.into_remainder() {
        cell.add_assign(delta);
    }
}

/// The retained scalar form of [`add_delta_run`] (oracle + baseline).
#[inline]
pub fn add_delta_run_scalar<T: GroupValue>(run: &mut [T], delta: &T) {
    for cell in run {
        cell.add_assign(delta);
    }
}

/// Elementwise `dst[i] ⊕= src[i]` over two equal-length rows — the inner
/// step of every outer-axis forward sweep, widened to `LANES` chunks.
#[inline]
pub fn add_rows<T: GroupValue>(dst: &mut [T], src: &[T]) {
    debug_assert_eq!(dst.len(), src.len());
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (dc, sc) in (&mut d).zip(&mut s) {
        for (x, y) in dc.iter_mut().zip(sc) {
            x.add_assign(y);
        }
    }
    for (x, y) in d.into_remainder().iter_mut().zip(s.remainder()) {
        x.add_assign(y);
    }
}

/// The retained scalar form of [`add_rows`] (oracle + baseline).
#[inline]
pub fn add_rows_scalar<T: GroupValue>(dst: &mut [T], src: &[T]) {
    debug_assert_eq!(dst.len(), src.len());
    for (x, y) in dst.iter_mut().zip(src) {
        x.add_assign(y);
    }
}

/// Elementwise `dst[i] ⊖= src[i]` — the backward-sweep twin of
/// [`add_rows`].
#[inline]
pub fn sub_rows<T: GroupValue>(dst: &mut [T], src: &[T]) {
    debug_assert_eq!(dst.len(), src.len());
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (dc, sc) in (&mut d).zip(&mut s) {
        for (x, y) in dc.iter_mut().zip(sc) {
            x.sub_assign(y);
        }
    }
    for (x, y) in d.into_remainder().iter_mut().zip(s.remainder()) {
        x.sub_assign(y);
    }
}

/// The retained scalar form of [`sub_rows`] (oracle + baseline).
#[inline]
pub fn sub_rows_scalar<T: GroupValue>(dst: &mut [T], src: &[T]) {
    debug_assert_eq!(dst.len(), src.len());
    for (x, y) in dst.iter_mut().zip(src) {
        x.sub_assign(y);
    }
}

/// Overlay border reconstruction over one run of stored cells:
/// `dst[i] = p[i] ⊖ rp[i] ⊖ anchor` (the §3.3 border identity), fused so
/// the three streams are read once each, `LANES` cells at a time.
#[inline]
pub fn border_from_p_run<T: GroupValue>(dst: &mut [T], p: &[T], rp: &[T], anchor: &T) {
    debug_assert_eq!(dst.len(), p.len());
    debug_assert_eq!(dst.len(), rp.len());
    let mut d = dst.chunks_exact_mut(LANES);
    let mut ps = p.chunks_exact(LANES);
    let mut rs = rp.chunks_exact(LANES);
    for ((dc, pc), rc) in (&mut d).zip(&mut ps).zip(&mut rs) {
        for ((x, pv), rv) in dc.iter_mut().zip(pc).zip(rc) {
            *x = pv.sub(rv).sub(anchor);
        }
    }
    let tail = d.into_remainder();
    for ((x, pv), rv) in tail.iter_mut().zip(ps.remainder()).zip(rs.remainder()) {
        *x = pv.sub(rv).sub(anchor);
    }
}

/// The retained scalar form of [`border_from_p_run`] (oracle + baseline).
#[inline]
pub fn border_from_p_run_scalar<T: GroupValue>(dst: &mut [T], p: &[T], rp: &[T], anchor: &T) {
    debug_assert_eq!(dst.len(), p.len());
    debug_assert_eq!(dst.len(), rp.len());
    for ((x, pv), rv) in dst.iter_mut().zip(p).zip(rp) {
        *x = pv.sub(rv).sub(anchor);
    }
}

/// Sum of a contiguous run, accumulated as `LANES` independent partial
/// sums folded at the end — the in-block partial-prefix read of the
/// blocked Fenwick engine (`crate::blocked_fenwick`). Reassociating the
/// adds is exact for the integer instances (wrapping addition is
/// commutative and associative mod 2^w), which is what the property test
/// pins against the scalar twin.
#[inline]
#[must_use]
pub fn sum_run<T: GroupValue>(run: &[T]) -> T {
    let mut accs: [T; LANES] = std::array::from_fn(|_| T::zero());
    let mut chunks = run.chunks_exact(LANES);
    for chunk in &mut chunks {
        for (a, v) in accs.iter_mut().zip(chunk) {
            a.add_assign(v);
        }
    }
    let mut acc = T::zero();
    for a in &accs {
        acc.add_assign(a);
    }
    for v in chunks.remainder() {
        acc.add_assign(v);
    }
    acc
}

/// The retained scalar form of [`sum_run`] (oracle + baseline).
#[inline]
#[must_use]
pub fn sum_run_scalar<T: GroupValue>(run: &[T]) -> T {
    let mut acc = T::zero();
    for v in run {
        acc.add_assign(v);
    }
    acc
}

/// Adds a running multiple of `step` to a contiguous run:
/// `run[i] ⊕= (i+1)·step` — the innermost-axis shape of a range update's
/// prefix-count ramp (each successive cell absorbs one more source cell
/// of the updated rectangle). Returns the final accumulated value
/// `len·step`, which callers reuse as the constant delta for the cells
/// past the rectangle's upper bound ([`add_delta_run`]).
///
/// Deliberately scalar, like the scan kernels: the running accumulator is
/// a loop-carried dependence chain.
#[inline]
pub fn add_ramp_run<T: GroupValue>(run: &mut [T], step: &T) -> T {
    let mut acc = T::zero();
    for cell in run {
        acc.add_assign(step);
        cell.add_assign(&acc);
    }
    acc
}

/// In-place running sum along one contiguous run, restarting at every
/// multiple of `k` (`k = usize::MAX` scans the whole run) — the
/// innermost-dimension (stride 1) sweep, where the loop-carried
/// dependence rules out lane widening.
#[inline]
pub fn prefix_scan_run<T: GroupValue>(run: &mut [T], k: usize) {
    if k == usize::MAX || k >= run.len() {
        scan_segment(run);
    } else {
        for seg in run.chunks_mut(k) {
            scan_segment(seg);
        }
    }
}

/// Inverse of [`prefix_scan_run`]: recovers the original values from
/// their (box-restarting) running sums.
#[inline]
pub fn inverse_prefix_scan_run<T: GroupValue>(run: &mut [T], k: usize) {
    if k == usize::MAX || k >= run.len() {
        unscan_segment(run);
    } else {
        for seg in run.chunks_mut(k) {
            unscan_segment(seg);
        }
    }
}

#[inline]
fn scan_segment<T: GroupValue>(seg: &mut [T]) {
    let mut it = seg.iter_mut();
    let Some(first) = it.next() else { return };
    let mut acc = first.clone();
    for cell in it {
        cell.add_assign(&acc);
        acc = cell.clone();
    }
}

#[inline]
fn unscan_segment<T: GroupValue>(seg: &mut [T]) {
    // Forward walk with a saved predecessor: new[i] = old[i] ⊖ old[i−1],
    // equivalent to the classical reverse-order in-place difference.
    let mut it = seg.iter_mut();
    let Some(first) = it.next() else { return };
    let mut prev = first.clone();
    for cell in it {
        let old = cell.clone();
        cell.sub_assign(&prev);
        prev = old;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_width_is_lane_aligned_and_clamped() {
        // i64: budget = 16384 / 16 = 1024 cells, already a LANES multiple.
        assert_eq!(tile_width::<i64>(4096), 1024);
        assert!(tile_width::<i64>(4096).is_multiple_of(LANES));
        // Clamped to the row when the row is narrow.
        assert_eq!(tile_width::<i64>(5), 5);
        assert_eq!(tile_width::<i64>(1), 1);
        // Never zero, even for degenerate strides.
        assert!(tile_width::<i64>(0) >= 1);
        // A 16-byte cell halves the tile relative to i64.
        assert_eq!(tile_width::<i128>(4096), 512);
    }

    #[test]
    fn lane_run_predicate() {
        assert!(!is_lane_run(0));
        assert!(!is_lane_run(LANES - 1));
        assert!(is_lane_run(LANES));
        assert!(is_lane_run(1000));
    }

    #[test]
    fn scan_and_inverse_round_trip() {
        for len in [0usize, 1, 2, 7, 8, 9, 30] {
            for k in [1usize, 2, 3, 7, usize::MAX] {
                let orig: Vec<i64> = (0..len).map(|i| (i * 13 % 7) as i64 - 3).collect();
                let mut x = orig.clone();
                prefix_scan_run(&mut x, k);
                inverse_prefix_scan_run(&mut x, k);
                assert_eq!(x, orig, "len {len} k {k}");
            }
        }
    }

    #[test]
    fn scan_restarts_at_box_multiples() {
        let mut x = vec![1i64; 10];
        prefix_scan_run(&mut x, 4);
        assert_eq!(x, vec![1, 2, 3, 4, 1, 2, 3, 4, 1, 2]);
    }

    #[test]
    fn ramp_adds_running_multiples_and_returns_total() {
        let mut x = vec![10i64; 5];
        let total = add_ramp_run(&mut x, &3);
        assert_eq!(x, vec![13, 16, 19, 22, 25]);
        assert_eq!(total, 15);
        let mut empty: Vec<i64> = Vec::new();
        assert_eq!(add_ramp_run(&mut empty, &3), 0);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    /// A run with a length that exercises the tail: shorter than a lane,
    /// exact multiples, and non-multiples.
    fn run() -> impl Strategy<Value = Vec<i64>> {
        proptest::collection::vec(-1000i64..1000, 0..=3 * LANES + 5)
    }

    proptest! {
        /// The lane kernels are bit-identical to the retained scalar
        /// kernels for every run length, including tails.
        #[test]
        fn add_delta_lane_matches_scalar(mut a in run(), delta in -100i64..100) {
            let mut b = a.clone();
            add_delta_run(&mut a, &delta);
            add_delta_run_scalar(&mut b, &delta);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn add_rows_lane_matches_scalar(mut a in run(), seed in -50i64..50) {
            let src: Vec<i64> = (0..a.len()).map(|i| seed + i as i64).collect();
            let mut b = a.clone();
            add_rows(&mut a, &src);
            add_rows_scalar(&mut b, &src);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn sub_rows_lane_matches_scalar(mut a in run(), seed in -50i64..50) {
            let src: Vec<i64> = (0..a.len()).map(|i| seed - i as i64).collect();
            let mut b = a.clone();
            sub_rows(&mut a, &src);
            sub_rows_scalar(&mut b, &src);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn border_lane_matches_scalar(p in run(), anchor in -100i64..100) {
            let rp: Vec<i64> = p.iter().map(|&v| v / 2 - 7).collect();
            let mut a = vec![0i64; p.len()];
            let mut b = vec![0i64; p.len()];
            border_from_p_run(&mut a, &p, &rp, &anchor);
            border_from_p_run_scalar(&mut b, &p, &rp, &anchor);
            prop_assert_eq!(a, b);
        }

        /// The folded lane sum is bit-identical to the scalar left fold
        /// for the integer instance, every run length.
        #[test]
        fn sum_run_lane_matches_scalar(a in run()) {
            prop_assert_eq!(sum_run(&a), sum_run_scalar(&a));
        }

        /// The scan restarts exactly at multiples of k (including k = 1,
        /// where every cell is its own box and the scan is the identity).
        #[test]
        fn scan_matches_naive(orig in run(), k in 1usize..=12) {
            let mut x = orig.clone();
            prefix_scan_run(&mut x, k);
            for (i, &got) in x.iter().enumerate() {
                let lo = (i / k) * k;
                let want: i64 = orig[lo..=i].iter().sum();
                prop_assert_eq!(got, want, "index {}", i);
            }
        }
    }
}
