//! Parallel structure construction and parallel batch updates.
//!
//! Building RP and P is O(d·N) of running-sum sweeps — embarrassing to
//! leave single-threaded for the cube sizes the paper targets. Both
//! sweeps decompose over contiguous row-major slabs of the first
//! dimension (`std::thread::scope`, no dependencies):
//!
//! * **RP** — slabs aligned to the dim-0 box side `k₀` are fully
//!   independent: the box-local sweep never crosses a `k₀` boundary, and
//!   sweeps along later dimensions stay inside a row anyway.
//! * **P** — dims ≥ 1 are independent per slab; dim 0 uses the classic
//!   two-phase scan: local prefix per slab, then each slab adds the
//!   accumulated last-row of every earlier slab.
//!
//! **Batch updates** decompose the same way, by dim-0 *box rows*: an
//! update's RP cascade stays inside its own box, and the overlay walk
//! visits boxes grouped contiguously by their dim-0 index (both the
//! offset table and the RP buffer are row-major). Each worker owns a
//! disjoint slab of box rows — a contiguous range of overlay cells plus
//! the matching range of RP rows — and replays *every* update of the
//! batch against its slab only. Writes never overlap, no locks are
//! needed, and each cell receives exactly the adds the serial loop would
//! have applied, in the same order: the result is bit-identical to
//! serial application.

use ndcube::{NdCube, NdError, Region};

use crate::corners::range_sum_from_prefix_with;
use crate::rps::grid::BoxGrid;
use crate::rps::kernels;
use crate::rps::scratch::{KernelScratch, Scratch};
use crate::rps::update::overlay_update_walk;
use crate::value::GroupValue;

/// Worker-thread count for [`crate::rps::RpsEngine::apply_batch`]:
/// available parallelism, capped — batch updates are memory-bound and
/// stop scaling well before large core counts.
pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(8)
}

/// Caps a requested shard count at the host's available parallelism.
///
/// Query shards are pure CPU with nothing to overlap, so spawning more
/// workers than cores only adds scheduling overhead — the cause of the
/// `query_many_parallel_t2` < `_t1` inversion BENCH_THROUGHPUT.json
/// recorded on a 1-CPU host before the clamp.
pub(crate) fn effective_threads(requested: usize) -> usize {
    requested
        .min(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
        .max(1)
}

/// Runs one dimension's (box-local or global) sweep over a contiguous
/// chunk of the row-major buffer. `global_offset` is the chunk's first
/// linear index in the full array; `k = usize::MAX` gives the global
/// (prefix-sum) sweep, otherwise accumulation stops at multiples of `k`.
///
/// The slab splits hand every chunk out row-aligned (and, for `stride ==
/// 1`, aligned to whole innermost runs or box boundaries), so the sweep
/// runs row-at-a-time through the lane kernels instead of dividing per
/// cell: scans ([`kernels::prefix_scan_run`]) along the innermost
/// dimension, elementwise row combines ([`kernels::add_rows`]) elsewhere.
fn sweep_chunk<T: GroupValue>(
    chunk: &mut [T],
    global_offset: usize,
    stride: usize,
    n: usize,
    k: usize,
) {
    if stride == 1 {
        // Innermost dimension. For d ≥ 2 the chunk is whole periods of
        // `n`, so every run starts at coordinate 0; the d = 1 slabs are
        // aligned to box boundaries, so restarting at *local* multiples
        // of `k` matches the global sweep there too.
        let run = n.min(chunk.len()).max(1);
        for r in chunk.chunks_mut(run) {
            kernels::prefix_scan_run(r, k);
        }
        return;
    }
    // Outer dimension: all `stride` cells of a row share one
    // `dim`-coordinate, so the divide runs once per row and the row pair
    // combines elementwise through the lane kernel.
    debug_assert!(global_offset.is_multiple_of(stride));
    debug_assert!(chunk.len().is_multiple_of(stride));
    let first = global_offset / stride;
    let rows = chunk.len() / stride;
    for r in 0..rows {
        let coord = (first + r) % n;
        let in_box = if k == usize::MAX {
            coord > 0
        } else {
            !coord.is_multiple_of(k)
        };
        if in_box {
            let row = r * stride;
            debug_assert!(row >= stride, "predecessor lies within the chunk");
            let (prev, cur) = chunk.split_at_mut(row);
            kernels::add_rows(&mut cur[..stride], &prev[row - stride..]);
        }
    }
}

/// Splits the buffer into per-thread slabs of whole dim-0 rows, each a
/// multiple of `align` rows (except possibly the last).
pub(crate) fn slab_sizes(rows: usize, row_len: usize, align: usize, threads: usize) -> Vec<usize> {
    let align = align.max(1);
    let target_rows = rows.div_ceil(threads).div_ceil(align) * align;
    let mut sizes = Vec::new();
    let mut left = rows;
    while left > 0 {
        let take = target_rows.min(left);
        sizes.push(take * row_len);
        left -= take;
    }
    sizes
}

/// Parallel box-local prefix sweep: identical output to
/// [`crate::rps::relative_prefix_sums`].
pub fn relative_prefix_sums_parallel<T: GroupValue + Send>(
    a: &NdCube<T>,
    grid: &BoxGrid,
    threads: usize,
) -> NdCube<T> {
    let threads = threads.max(1);
    let shape = a.shape().clone();
    if threads == 1 || shape.ndim() == 0 {
        return crate::rps::relative_prefix_sums(a, grid);
    }
    let mut rp = a.clone();
    let rows = shape.dim(0);
    let row_len = shape.strides()[0];
    let k0 = grid.box_size()[0];
    let sizes = slab_sizes(rows, row_len, k0, threads);

    for dim in 0..shape.ndim() {
        let stride = shape.strides()[dim];
        let n = shape.dim(dim);
        let k = grid.box_size()[dim];
        let data = rp.as_mut_slice();
        std::thread::scope(|scope| {
            let mut rest = data;
            let mut offset = 0usize;
            for &size in &sizes {
                let (chunk, tail) = rest.split_at_mut(size);
                rest = tail;
                let off = offset;
                scope.spawn(move || sweep_chunk(chunk, off, stride, n, k));
                offset += size;
            }
        });
    }
    rp
}

/// Parallel global prefix sums: identical output to
/// [`crate::prefix::prefix_sums_in_place`].
pub fn prefix_sums_parallel<T: GroupValue + Send + Sync>(a: &mut NdCube<T>, threads: usize) {
    let threads = threads.max(1);
    let shape = a.shape().clone();
    // The dim-0 two-phase scan does the dim-0 work twice (local prefix +
    // base add); below 3 threads that overhead cancels the parallelism.
    if threads <= 2 {
        crate::prefix::prefix_sums_in_place(a);
        return;
    }
    let rows = shape.dim(0);
    let row_len = shape.strides()[0];
    let sizes = slab_sizes(rows, row_len, 1, threads);

    // Dims ≥ 1: sweeps never cross a row, so slabs are independent.
    for dim in 1..shape.ndim() {
        let stride = shape.strides()[dim];
        let n = shape.dim(dim);
        let data = a.as_mut_slice();
        std::thread::scope(|scope| {
            let mut rest = data;
            let mut offset = 0usize;
            for &size in &sizes {
                let (chunk, tail) = rest.split_at_mut(size);
                rest = tail;
                let off = offset;
                scope.spawn(move || sweep_chunk(chunk, off, stride, n, usize::MAX));
                offset += size;
            }
        });
    }

    if shape.ndim() == 0 || rows == 1 {
        return;
    }

    // Dim 0, phase 1: local prefix within each slab (parallel).
    {
        let data = a.as_mut_slice();
        std::thread::scope(|scope| {
            let mut rest = data;
            for &size in &sizes {
                let (chunk, tail) = rest.split_at_mut(size);
                rest = tail;
                scope.spawn(move || {
                    // Local sweep: offset 0 makes the first row of the
                    // chunk the sweep's row 0.
                    sweep_chunk(chunk, 0, row_len, usize::MAX, usize::MAX);
                });
            }
        });
    }

    // Dim 0, phase 2: accumulate each slab's last row into a running
    // base and add it to every row of the following slab (parallel per
    // slab after the serial base accumulation).
    let mut bases: Vec<Vec<T>> = Vec::with_capacity(sizes.len());
    {
        let data = a.as_slice();
        let mut base = vec![T::zero(); row_len];
        let mut offset = 0usize;
        for &size in &sizes {
            bases.push(base.clone());
            let last_row = &data[offset + size - row_len..offset + size];
            for (b, v) in base.iter_mut().zip(last_row) {
                b.add_assign(v);
            }
            offset += size;
        }
    }
    {
        let data = a.as_mut_slice();
        std::thread::scope(|scope| {
            let mut rest = data;
            for (i, &size) in sizes.iter().enumerate() {
                let (chunk, tail) = rest.split_at_mut(size);
                rest = tail;
                let base = &bases[i];
                scope.spawn(move || {
                    if base.iter().all(T::is_zero) {
                        return; // first slab: nothing to add
                    }
                    for row in chunk.chunks_exact_mut(row_len) {
                        for (cell, b) in row.iter_mut().zip(base) {
                            cell.add_assign(b);
                        }
                    }
                });
            }
        });
    }
}

impl<T: GroupValue + Send + Sync> crate::rps::RpsEngine<T> {
    /// Builds the engine using `threads` worker threads for the P and RP
    /// sweeps (overlay derivation is serial; it is O(d·N/k), dwarfed by
    /// the sweeps).
    pub fn from_cube_parallel(a: &NdCube<T>, threads: usize) -> Self {
        let grid = BoxGrid::with_sqrt_boxes(a.shape().clone());
        let rp = relative_prefix_sums_parallel(a, &grid, threads);
        let mut p = a.clone();
        prefix_sums_parallel(&mut p, threads);
        let overlay = crate::rps::build::build_overlay_from_p(a, &p, &rp, grid.clone());
        Self::from_parts(grid, overlay, rp)
    }

    /// Applies a batch of point updates using up to `threads` worker
    /// threads, with the same adaptive incremental/rebuild decision as
    /// [`Self::apply_batch`]. Returns `true` when the rebuild path was
    /// taken.
    ///
    /// A sample of the batch is applied serially to *measure* the
    /// per-update write cost; if the projected incremental cost beats a
    /// rebuild, the remainder is partitioned across `threads` workers by
    /// dim-0 box-row slabs (see the module docs — the result is
    /// bit-identical to serial application). Otherwise the engine
    /// recovers `A`, folds the batch in, and rebuilds.
    pub fn apply_batch_parallel(
        &mut self,
        updates: &[(Vec<usize>, T)],
        threads: usize,
    ) -> Result<bool, ndcube::NdError> {
        use crate::engine::RangeSumEngine;
        use crate::rps::batch::est;

        const SAMPLE: usize = 32;
        // Validate everything up front: a batch is all-or-nothing.
        for (coords, _) in updates {
            self.shape().check(coords)?;
        }
        let m = crate::obs::engine(crate::obs::EngineKind::Rps);
        m.batches.inc();
        m.batch_updates
            .add(u64::try_from(updates.len()).unwrap_or(u64::MAX));
        let sample = updates.len().min(SAMPLE);
        let before = self.stats().cell_writes;
        let (sampled, rest) = updates.split_at(sample);
        for (coords, delta) in sampled {
            self.update(coords, delta.clone())?;
        }
        if rest.is_empty() {
            return Ok(false);
        }
        // lint:allow(L4): write counters stay far below 2^53; f64 rounding is harmless here
        let measured = (self.stats().cell_writes - before) as f64 / est(sample);
        if measured * est(rest.len()) <= self.rebuild_cost() {
            let rows = self.grid().grid_shape().dim(0);
            if threads > 1 && rows >= 2 && rest.len() >= 2 {
                self.apply_updates_parallel(rest, threads);
            } else {
                for (coords, delta) in rest {
                    self.update(coords, delta.clone())?;
                }
            }
            Ok(false)
        } else {
            let mut a = self.to_cube();
            for (coords, delta) in rest {
                let lin = a.shape().linear_unchecked(coords);
                a.get_linear_mut(lin).add_assign(delta);
            }
            self.rebuild_from(&a)?;
            Ok(true)
        }
    }

    /// Applies pre-validated updates by slab-partitioning the structures
    /// across scoped worker threads. Every worker replays the whole batch
    /// in order against its own disjoint slab, so the outcome matches the
    /// serial loop exactly (see the module docs for the argument).
    pub(crate) fn apply_updates_parallel(&mut self, updates: &[(Vec<usize>, T)], threads: usize) {
        let k0 = self.grid.box_size()[0];
        let rows = self.grid.grid_shape().dim(0);
        // Boxes per dim-0 box row: the tail dimensions of the grid shape.
        let row_boxes = self.grid.grid_shape().strides()[0];
        let row_counts = slab_sizes(rows, 1, 1, threads);

        let grid = &self.grid;
        let (box_offsets, mut ov_rest) = self.overlay.parts_mut();
        let (rp_shape, mut rp_rest) = self.rp.parts_mut();
        let stride0 = rp_shape.strides()[0];
        let n0 = rp_shape.dim(0);

        let mut total_writes = 0u64;
        let mut total_lane_runs = 0u64;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(row_counts.len());
            let mut r_lo = 0usize;
            let mut ov_base = 0usize;
            let mut rp_base = 0usize;
            for &nrows in &row_counts {
                let r_hi = r_lo + nrows;
                // Overlay cells of box rows r_lo..r_hi are contiguous.
                let ov_hi = box_offsets[r_hi * row_boxes];
                let (my_cells, ov_tail) = ov_rest.split_at_mut(ov_hi - ov_base);
                ov_rest = ov_tail;
                // RP rows of the same slab: cube rows r_lo·k₀ .. r_hi·k₀.
                let cube_row_hi = (r_hi * k0).min(n0);
                let rp_hi = cube_row_hi * stride0;
                let (my_rp, rp_tail) = rp_rest.split_at_mut(rp_hi - rp_base);
                rp_rest = rp_tail;
                let (my_ov_base, my_rp_base, my_r_lo) = (ov_base, rp_base, r_lo);
                let cube_row_lo = my_r_lo * k0;
                handles.push(scope.spawn(move || {
                    let mut ks = KernelScratch::new();
                    let mut writes = 0u64;
                    let mut lane_runs = 0u64;
                    for (c, delta) in updates {
                        if delta.is_zero() {
                            continue;
                        }
                        // RP cascade — confined to c's own box, which lies
                        // entirely inside one slab (slab bounds are box-row
                        // multiples). Run-structured through the lane
                        // kernel, like the serial cascade.
                        if c[0] >= cube_row_lo && c[0] < cube_row_hi {
                            ks.ensure(c.len());
                            grid.box_hi_of_cell_into(c, &mut ks.hi);
                            rp_shape.for_each_contiguous_run_in_bounds(
                                c,
                                &ks.hi,
                                &mut ks.cur,
                                |start, len| {
                                    let lo = start - my_rp_base;
                                    kernels::add_delta_run(&mut my_rp[lo..lo + len], delta);
                                    writes += u64::try_from(len).unwrap_or(u64::MAX);
                                    lane_runs += u64::from(kernels::is_lane_run(len));
                                },
                            );
                        }
                        // Overlay orthant walk, clipped to this slab's rows.
                        writes += overlay_update_walk(
                            grid,
                            box_offsets,
                            my_cells,
                            my_ov_base,
                            my_r_lo,
                            r_hi,
                            c,
                            delta,
                            &mut ks,
                        );
                    }
                    (writes, lane_runs)
                }));
                r_lo = r_hi;
                ov_base = ov_hi;
                rp_base = rp_hi;
            }
            for h in handles {
                // lint:allow(L2): a worker panic is already a bug; propagate it
                let (writes, lane_runs) = h.join().expect("batch update worker panicked");
                total_writes += writes;
                total_lane_runs += lane_runs;
            }
        });
        self.stats.writes(total_writes);
        // lint:allow(L4): batch lengths are far below 2^64
        self.stats.updates_n(updates.len() as u64);
        if total_lane_runs > 0 {
            // Worker-local counts merged on join: one relaxed add per
            // batch, none on the per-update hot path.
            crate::obs::core().lane_runs.add(total_lane_runs);
        }
    }

    /// Answers a batch of range queries by sharding it across up to
    /// `threads` scoped worker threads (the same `std::thread` idiom as
    /// `Self::apply_updates_parallel`).
    ///
    /// Each shard owns a disjoint slice of the output, its own
    /// [`Scratch`] (so the zero-allocation invariant holds per worker
    /// after the per-shard warm-up) and its own corner cache; workers
    /// share nothing mutable. Corner caching never changes a
    /// reconstructed value, so the results are **bit-identical** to
    /// [`crate::rps::RpsEngine::query_many`] and to one-at-a-time
    /// queries. Stats and observability counters accumulate
    /// shard-locally and merge on join, so relaxed-atomic contention
    /// never appears on the query hot path.
    ///
    /// `threads ≤ 1` and batches too small to amortize the fan-out fall
    /// back to the serial path (which also dedups corners across the
    /// whole batch rather than per shard). The requested thread count is
    /// first clamped to [`std::thread::available_parallelism`]
    /// (`effective_threads`), so oversubscribed shard spawns degrade to
    /// the serial path instead of regressing below it.
    pub fn query_many_parallel(
        &self,
        regions: &[Region],
        threads: usize,
    ) -> Result<Vec<T>, NdError> {
        use std::collections::HashMap;
        // Unit-test and loom builds skip the host clamp so the shard
        // path stays exercised on 1-CPU hosts.
        let threads = if cfg!(any(test, loom)) {
            threads.max(1)
        } else {
            effective_threads(threads)
        };
        if threads == 1 || regions.len() < 2 * threads {
            return self.query_many(regions);
        }
        for r in regions {
            self.rp_array().shape().check_region(r)?;
        }
        let d = self.rp_array().shape().ndim();
        // Worst case 2^d distinct corners per region (see query_many).
        let corners_per_region = 1usize
            .checked_shl(u32::try_from(d).unwrap_or(u32::MAX))
            .unwrap_or(usize::MAX);
        let shard_sizes = slab_sizes(regions.len(), 1, 1, threads);
        let shape = self.rp_array().shape();
        let mut out = vec![T::zero(); regions.len()];
        let mut total_reads = 0u64;
        let mut total_lookups = 0u64;
        let mut total_misses = 0u64;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(shard_sizes.len());
            let mut out_rest = out.as_mut_slice();
            let mut reg_rest = regions;
            for &size in &shard_sizes {
                let (my_out, out_tail) = out_rest.split_at_mut(size);
                out_rest = out_tail;
                let (my_regs, reg_tail) = reg_rest.split_at(size);
                reg_rest = reg_tail;
                handles.push(scope.spawn(move || {
                    let mut scratch = Scratch::new();
                    let (corner_buf, ks) = scratch.split();
                    let cap = my_regs.len().saturating_mul(corners_per_region);
                    // Linear-index keys, like the serial path: corners are
                    // always in-bounds, so the key is collision-free and
                    // allocation-free.
                    let mut cache: HashMap<usize, T> = HashMap::with_capacity(cap);
                    let mut reads = 0u64;
                    let mut lookups = 0u64;
                    for (slot, r) in my_out.iter_mut().zip(my_regs) {
                        *slot = range_sum_from_prefix_with(r, corner_buf, |corner| {
                            lookups += 1;
                            cache
                                .entry(shape.linear_unchecked(corner))
                                .or_insert_with(|| {
                                    let (v, rd) = self.prefix_kernel(corner, ks);
                                    reads += rd;
                                    v
                                })
                                .clone()
                        });
                    }
                    let misses = u64::try_from(cache.len()).unwrap_or(u64::MAX);
                    (reads, lookups, misses)
                }));
            }
            for h in handles {
                // lint:allow(L2): a worker panic is already a bug; propagate it
                let (reads, lookups, misses) = h.join().expect("parallel query worker panicked");
                total_reads += reads;
                total_lookups += lookups;
                total_misses += misses;
            }
        });
        // Shard-local counters merged on join: one relaxed add per
        // counter per batch.
        let n = u64::try_from(regions.len()).unwrap_or(u64::MAX);
        self.stats.reads(total_reads);
        self.stats.queries_n(n);
        let m = crate::obs::engine(crate::obs::EngineKind::Rps);
        m.queries.add(n);
        let core = crate::obs::core();
        core.query_many_corner_misses.add(total_misses);
        core.query_many_corner_hits
            .add(total_lookups.saturating_sub(total_misses));
        core.parallel_query_shards
            .add(u64::try_from(shard_sizes.len()).unwrap_or(u64::MAX));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RangeSumEngine;
    use crate::prefix::prefix_sums_in_place;
    use crate::rps::{relative_prefix_sums, RpsEngine};
    use crate::testdata::paper_array_a;
    use ndcube::Region;

    #[test]
    fn parallel_rp_matches_serial() {
        for dims in [vec![9usize, 9], vec![16, 8], vec![7, 5, 6], vec![33, 4]] {
            let a = NdCube::from_fn(&dims, |c| {
                c.iter()
                    .enumerate()
                    .map(|(i, &x)| (x + 1) * (i + 2))
                    .sum::<usize>() as i64
            })
            .unwrap();
            let grid = BoxGrid::with_sqrt_boxes(a.shape().clone());
            let serial = relative_prefix_sums(&a, &grid);
            for threads in [2, 3, 8] {
                let par = relative_prefix_sums_parallel(&a, &grid, threads);
                assert_eq!(par, serial, "dims {dims:?}, threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_prefix_matches_serial() {
        for dims in [
            vec![9usize, 9],
            vec![16, 8],
            vec![7, 5, 6],
            vec![2, 31],
            vec![64],
        ] {
            let a = NdCube::from_fn(&dims, |c| (c.iter().sum::<usize>() * 3 + 1) as i64).unwrap();
            let mut serial = a.clone();
            prefix_sums_in_place(&mut serial);
            for threads in [2, 4, 7] {
                let mut par = a.clone();
                prefix_sums_parallel(&mut par, threads);
                assert_eq!(par, serial, "dims {dims:?}, threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_engine_matches_serial_engine() {
        let a = paper_array_a();
        let serial = RpsEngine::from_cube(&a);
        let par = RpsEngine::from_cube_parallel(&a, 4);
        assert_eq!(par.rp_array(), serial.rp_array());
        for r in 0..9 {
            for c in 0..9 {
                assert_eq!(
                    par.prefix_sum(&[r, c]).unwrap(),
                    serial.prefix_sum(&[r, c]).unwrap(),
                    "P[{r},{c}]"
                );
            }
        }
    }

    #[test]
    fn parallel_engine_updates_and_queries() {
        let a = NdCube::from_fn(&[40, 40], |c| ((c[0] * 17 + c[1]) % 23) as i64).unwrap();
        let mut e = RpsEngine::from_cube_parallel(&a, 8);
        let naive = crate::naive::NaiveEngine::from_cube(a);
        let r = Region::new(&[3, 5], &[30, 38]).unwrap();
        assert_eq!(e.query(&r).unwrap(), naive.query(&r).unwrap());
        e.update(&[10, 10], 99).unwrap();
        assert_eq!(e.query(&r).unwrap(), naive.query(&r).unwrap() + 99);
    }

    #[test]
    fn parallel_batch_updates_match_naive() {
        // Geometry chosen so the measured crossover keeps the batch
        // incremental: 50 updates on a 64×64 cube (rebuild ≈ 16k writes)
        // leaves the post-sample remainder on the slab-parallel path.
        let a = NdCube::from_fn(&[64, 64], |c| ((c[0] * 13 + c[1] * 29) % 17) as i64).unwrap();
        let mut e = RpsEngine::from_cube_uniform(&a, 8).unwrap();
        let mut naive = crate::naive::NaiveEngine::from_cube(a);
        let batch: Vec<(Vec<usize>, i64)> = (0..50)
            .map(|i| (vec![(i * 11) % 64, (i * 23) % 64], (i % 9) as i64 - 4))
            .collect();
        for (c, d) in &batch {
            naive.update(c, *d).unwrap();
        }
        let rebuilt = e.apply_batch_parallel(&batch, 4).unwrap();
        assert!(!rebuilt, "this batch should stay incremental");
        for (lo, hi) in [([0, 0], [63, 63]), ([5, 9], [60, 44]), ([33, 33], [33, 33])] {
            let r = Region::new(&lo, &hi).unwrap();
            assert_eq!(e.query(&r).unwrap(), naive.query(&r).unwrap(), "{r:?}");
        }
    }

    #[test]
    fn parallel_batch_stats_match_serial() {
        let a = NdCube::from_fn(&[24, 24], |c| (c[0] + c[1]) as i64).unwrap();
        let batch: Vec<(Vec<usize>, i64)> = (0..40)
            .map(|i| (vec![(i * 7) % 24, (i * 3) % 24], 1i64))
            .collect();

        let mut serial = RpsEngine::from_cube_uniform(&a, 4).unwrap();
        for (c, d) in &batch {
            serial.update(c, *d).unwrap();
        }
        let mut par = RpsEngine::from_cube_uniform(&a, 4).unwrap();
        par.apply_updates_parallel(&batch, 4);
        // Same write totals, same op counts — the coalesced batch
        // accounting is indistinguishable from per-op accounting.
        assert_eq!(par.stats(), serial.stats());
        assert_eq!(par.rp_array(), serial.rp_array());
    }

    #[test]
    fn single_thread_falls_back() {
        let a = paper_array_a();
        let grid = BoxGrid::new(a.shape().clone(), &[3, 3]).unwrap();
        assert_eq!(
            relative_prefix_sums_parallel(&a, &grid, 1),
            relative_prefix_sums(&a, &grid)
        );
    }

    #[test]
    fn more_threads_than_rows() {
        let a = NdCube::from_fn(&[3, 50], |c| (c[0] + c[1]) as i64).unwrap();
        let grid = BoxGrid::with_sqrt_boxes(a.shape().clone());
        assert_eq!(
            relative_prefix_sums_parallel(&a, &grid, 16),
            relative_prefix_sums(&a, &grid)
        );
        let mut p = a.clone();
        prefix_sums_parallel(&mut p, 16);
        let mut s = a.clone();
        prefix_sums_in_place(&mut s);
        assert_eq!(p, s);
    }

    /// A dashboard-style mixed batch: rolling windows, group-bys, points.
    fn query_batch(n: usize) -> Vec<Region> {
        (0..n)
            .map(|i| match i % 3 {
                0 => Region::new(&[i % 30, i % 20], &[(i % 30) + 9, (i % 20) + 14]).unwrap(),
                1 => Region::new(&[0, i % 35], &[39, (i % 35) + 4]).unwrap(),
                _ => Region::point(&[i % 40, (i * 7) % 40]).unwrap(),
            })
            .collect()
    }

    #[test]
    fn query_many_parallel_matches_serial() {
        let a = NdCube::from_fn(&[40, 40], |c| ((c[0] * 17 + c[1] * 3) % 29) as i64).unwrap();
        let e = RpsEngine::from_cube_uniform(&a, 7).unwrap();
        let regions = query_batch(64);
        let serial = e.query_many(&regions).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let par = e.query_many_parallel(&regions, threads).unwrap();
            assert_eq!(par, serial, "threads {threads}");
        }
    }

    #[test]
    fn query_many_parallel_counts_queries_and_reads() {
        let a = NdCube::from_fn(&[40, 40], |c| (c[0] + c[1]) as i64).unwrap();
        let e = RpsEngine::from_cube_uniform(&a, 6).unwrap();
        let regions = query_batch(48);
        e.reset_stats();
        e.query_many_parallel(&regions, 4).unwrap();
        let s = e.stats();
        assert_eq!(s.queries, 48);
        // Reads are bounded by the uncached worst case 2^d·(d+2)·q.
        assert!(
            s.cell_reads > 0 && s.cell_reads <= 16 * 48,
            "{}",
            s.cell_reads
        );
    }

    #[test]
    fn query_many_parallel_small_batch_falls_back() {
        // Fewer regions than 2 × threads: the serial path answers, with
        // identical values.
        let a = NdCube::from_fn(&[20, 20], |c| (c[0] * c[1]) as i64).unwrap();
        let e = RpsEngine::from_cube_uniform(&a, 5).unwrap();
        let regions: Vec<Region> = (0..5)
            .map(|i| Region::new(&[i, 0], &[i + 3, 19]).unwrap())
            .collect();
        assert_eq!(
            e.query_many_parallel(&regions, 8).unwrap(),
            e.query_many(&regions).unwrap()
        );
    }

    #[test]
    fn effective_threads_clamps_to_host() {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert_eq!(effective_threads(0), 1);
        assert_eq!(effective_threads(1), 1);
        // Requests beyond the host cap come back as exactly the cap.
        assert_eq!(effective_threads(cores), cores);
        assert_eq!(effective_threads(cores + 7), cores);
        assert_eq!(effective_threads(usize::MAX), cores);
    }

    #[test]
    fn query_many_parallel_rejects_bad_region() {
        let e = RpsEngine::<i64>::zeros(&[10, 10]).unwrap();
        let mut regions = query_batch(20)
            .into_iter()
            .map(|_| Region::new(&[0, 0], &[5, 5]).unwrap())
            .collect::<Vec<_>>();
        regions.push(Region::new(&[0, 0], &[10, 10]).unwrap()); // out of bounds
        assert!(e.query_many_parallel(&regions, 4).is_err());
    }
}

/// Property tests for the slab decomposition itself — the invariants the
/// scoped-thread splitting in the sweeps above relies on. Exercised over
/// geometries chosen to hit the awkward cases: rows not divisible by
/// `k₀ × threads`, single-row slabs, and more threads than rows.
#[cfg(test)]
mod props {
    use super::*;
    use crate::prefix::prefix_sums_in_place;
    use crate::rps::relative_prefix_sums;
    use proptest::prelude::*;

    fn geometry() -> impl Strategy<Value = (usize, usize, usize, usize)> {
        // (rows, row_len, align, threads) — small enough to stay fast,
        // wide enough to cover ragged/degenerate splits.
        (1usize..=40, 1usize..=12, 1usize..=7, 1usize..=10)
    }

    proptest! {
        /// Slabs partition the buffer exactly: they are all nonempty,
        /// whole multiples of the row length, and sum to the total size.
        #[test]
        fn slabs_partition_the_buffer((rows, row_len, align, threads) in geometry()) {
            let sizes = slab_sizes(rows, row_len, align, threads);
            prop_assert!(sizes.iter().all(|&s| s > 0));
            prop_assert!(sizes.iter().all(|&s| s.is_multiple_of(row_len)));
            prop_assert_eq!(sizes.iter().sum::<usize>(), rows * row_len);
        }

        /// Every slab except possibly the last holds a multiple of
        /// `align` rows — the guarantee that keeps each RP slab's box
        /// sweeps from crossing a `k₀` boundary.
        #[test]
        fn slabs_are_aligned((rows, row_len, align, threads) in geometry()) {
            let sizes = slab_sizes(rows, row_len, align, threads);
            for &s in &sizes[..sizes.len() - 1] {
                prop_assert!((s / row_len).is_multiple_of(align));
            }
        }

        /// The split never produces more slabs than requested threads —
        /// each slab becomes one spawned worker.
        #[test]
        fn slab_count_bounded_by_threads((rows, row_len, align, threads) in geometry()) {
            let sizes = slab_sizes(rows, row_len, align, threads);
            prop_assert!(sizes.len() <= threads);
        }

        /// A whole-buffer `sweep_chunk` with `k = usize::MAX` along dim 0
        /// is exactly a running prefix along that dimension.
        #[test]
        fn sweep_chunk_is_prefix_along_dim0(
            rows in 1usize..=12,
            cols in 1usize..=8,
        ) {
            let a = NdCube::from_fn(&[rows, cols], |c| (c[0] * 31 + c[1] * 7 + 1) as i64).unwrap();
            let mut swept = a.clone().into_vec();
            sweep_chunk(&mut swept, 0, cols, rows, usize::MAX);
            for r in 0..rows {
                for c in 0..cols {
                    let expect: i64 = (0..=r).map(|i| a.get(&[i, c])).sum();
                    prop_assert_eq!(swept[r * cols + c], expect);
                }
            }
        }

        /// Box-bounded `sweep_chunk` restarts accumulation at every
        /// multiple of `k` instead of running to the edge.
        #[test]
        fn sweep_chunk_restarts_at_box_boundaries(
            rows in 1usize..=12,
            cols in 1usize..=8,
            k in 1usize..=5,
        ) {
            let a = NdCube::from_fn(&[rows, cols], |c| (c[0] * 13 + c[1] + 1) as i64).unwrap();
            let mut swept = a.clone().into_vec();
            sweep_chunk(&mut swept, 0, cols, rows, k);
            for r in 0..rows {
                let box_lo = (r / k) * k;
                for c in 0..cols {
                    let expect: i64 = (box_lo..=r).map(|i| a.get(&[i, c])).sum();
                    prop_assert_eq!(swept[r * cols + c], expect);
                }
            }
        }

        /// Slab-parallel batch updates are bit-identical to the serial
        /// update loop — structures AND stats — for every thread count,
        /// including threads > box rows and single-box-row grids.
        #[test]
        fn parallel_batch_matches_serial_updates(
            (dims, ks, batch) in (1usize..=3)
                .prop_flat_map(|d| {
                    (
                        proptest::collection::vec(1usize..=8, d),
                        proptest::collection::vec(1usize..=4, d),
                    )
                })
                .prop_flat_map(|(dims, ks)| {
                    let coord: Vec<std::ops::Range<usize>> =
                        dims.iter().map(|&n| 0..n).collect();
                    let upd = (coord, -50i64..50);
                    (
                        Just(dims),
                        Just(ks),
                        proptest::collection::vec(upd, 0..=12),
                    )
                }),
        ) {
            let a = NdCube::from_fn(&dims, |c| {
                c.iter().enumerate().map(|(i, &x)| (x + 2) * (i + 1)).sum::<usize>() as i64
            })
            .unwrap();
            let mut serial = crate::rps::RpsEngine::from_cube_with_box_size(&a, &ks).unwrap();
            for (c, d) in &batch {
                crate::engine::RangeSumEngine::update(&mut serial, c, *d).unwrap();
            }
            for threads in [1usize, 2, 4, 7] {
                let mut par = crate::rps::RpsEngine::from_cube_with_box_size(&a, &ks).unwrap();
                par.apply_updates_parallel(&batch, threads);
                prop_assert_eq!(par.rp_array(), serial.rp_array(), "rp, threads {}", threads);
                for i in 0..par.overlay.storage_cells() {
                    prop_assert_eq!(
                        par.overlay.get(i),
                        serial.overlay.get(i),
                        "overlay cell {}, threads {}", i, threads
                    );
                }
                prop_assert_eq!(
                    crate::engine::RangeSumEngine::stats(&par),
                    crate::engine::RangeSumEngine::stats(&serial),
                    "stats, threads {}", threads
                );
            }
        }

        /// End-to-end: the parallel RP and P builds agree with the serial
        /// sweeps on arbitrary small shapes and thread counts, including
        /// rows not divisible by `k₀ × threads` and threads > rows.
        #[test]
        fn parallel_sweeps_agree_with_serial(
            dims in (1usize..=3).prop_flat_map(|d| {
                proptest::collection::vec(1usize..=14, d..=d)
            }),
            threads in 1usize..=9,
        ) {
            let a = NdCube::from_fn(&dims, |c| {
                c.iter().enumerate().map(|(i, &x)| (x + 1) * (i + 3)).sum::<usize>() as i64
            })
            .unwrap();
            let grid = BoxGrid::with_sqrt_boxes(a.shape().clone());
            prop_assert_eq!(
                relative_prefix_sums_parallel(&a, &grid, threads),
                relative_prefix_sums(&a, &grid)
            );
            let mut par = a.clone();
            prefix_sums_parallel(&mut par, threads);
            let mut ser = a.clone();
            prefix_sums_in_place(&mut ser);
            prop_assert_eq!(par, ser);
        }
    }
}
