//! Parallel structure construction.
//!
//! Building RP and P is O(d·N) of running-sum sweeps — embarrassing to
//! leave single-threaded for the cube sizes the paper targets. Both
//! sweeps decompose over contiguous row-major slabs of the first
//! dimension (`std::thread::scope`, no dependencies):
//!
//! * **RP** — slabs aligned to the dim-0 box side `k₀` are fully
//!   independent: the box-local sweep never crosses a `k₀` boundary, and
//!   sweeps along later dimensions stay inside a row anyway.
//! * **P** — dims ≥ 1 are independent per slab; dim 0 uses the classic
//!   two-phase scan: local prefix per slab, then each slab adds the
//!   accumulated last-row of every earlier slab.

use ndcube::NdCube;

use crate::rps::grid::BoxGrid;
use crate::value::GroupValue;

/// Runs one dimension's (box-local or global) sweep over a contiguous
/// chunk of the row-major buffer. `global_offset` is the chunk's first
/// linear index in the full array; `k = usize::MAX` gives the global
/// (prefix-sum) sweep, otherwise accumulation stops at multiples of `k`.
fn sweep_chunk<T: GroupValue>(
    chunk: &mut [T],
    global_offset: usize,
    stride: usize,
    n: usize,
    k: usize,
) {
    for local in 0..chunk.len() {
        let coord = ((global_offset + local) / stride) % n;
        let in_box = if k == usize::MAX {
            coord > 0
        } else {
            !coord.is_multiple_of(k)
        };
        if in_box {
            debug_assert!(local >= stride, "predecessor lies within the chunk");
            let prev = chunk[local - stride].clone();
            chunk[local].add_assign(&prev);
        }
    }
}

/// Splits the buffer into per-thread slabs of whole dim-0 rows, each a
/// multiple of `align` rows (except possibly the last).
fn slab_sizes(rows: usize, row_len: usize, align: usize, threads: usize) -> Vec<usize> {
    let align = align.max(1);
    let target_rows = rows.div_ceil(threads).div_ceil(align) * align;
    let mut sizes = Vec::new();
    let mut left = rows;
    while left > 0 {
        let take = target_rows.min(left);
        sizes.push(take * row_len);
        left -= take;
    }
    sizes
}

/// Parallel box-local prefix sweep: identical output to
/// [`crate::rps::relative_prefix_sums`].
pub fn relative_prefix_sums_parallel<T: GroupValue + Send>(
    a: &NdCube<T>,
    grid: &BoxGrid,
    threads: usize,
) -> NdCube<T> {
    let threads = threads.max(1);
    let shape = a.shape().clone();
    if threads == 1 || shape.ndim() == 0 {
        return crate::rps::relative_prefix_sums(a, grid);
    }
    let mut rp = a.clone();
    let rows = shape.dim(0);
    let row_len = shape.strides()[0];
    let k0 = grid.box_size()[0];
    let sizes = slab_sizes(rows, row_len, k0, threads);

    for dim in 0..shape.ndim() {
        let stride = shape.strides()[dim];
        let n = shape.dim(dim);
        let k = grid.box_size()[dim];
        let data = rp.as_mut_slice();
        std::thread::scope(|scope| {
            let mut rest = data;
            let mut offset = 0usize;
            for &size in &sizes {
                let (chunk, tail) = rest.split_at_mut(size);
                rest = tail;
                let off = offset;
                scope.spawn(move || sweep_chunk(chunk, off, stride, n, k));
                offset += size;
            }
        });
    }
    rp
}

/// Parallel global prefix sums: identical output to
/// [`crate::prefix::prefix_sums_in_place`].
pub fn prefix_sums_parallel<T: GroupValue + Send + Sync>(a: &mut NdCube<T>, threads: usize) {
    let threads = threads.max(1);
    let shape = a.shape().clone();
    // The dim-0 two-phase scan does the dim-0 work twice (local prefix +
    // base add); below 3 threads that overhead cancels the parallelism.
    if threads <= 2 {
        crate::prefix::prefix_sums_in_place(a);
        return;
    }
    let rows = shape.dim(0);
    let row_len = shape.strides()[0];
    let sizes = slab_sizes(rows, row_len, 1, threads);

    // Dims ≥ 1: sweeps never cross a row, so slabs are independent.
    for dim in 1..shape.ndim() {
        let stride = shape.strides()[dim];
        let n = shape.dim(dim);
        let data = a.as_mut_slice();
        std::thread::scope(|scope| {
            let mut rest = data;
            let mut offset = 0usize;
            for &size in &sizes {
                let (chunk, tail) = rest.split_at_mut(size);
                rest = tail;
                let off = offset;
                scope.spawn(move || sweep_chunk(chunk, off, stride, n, usize::MAX));
                offset += size;
            }
        });
    }

    if shape.ndim() == 0 || rows == 1 {
        return;
    }

    // Dim 0, phase 1: local prefix within each slab (parallel).
    {
        let data = a.as_mut_slice();
        std::thread::scope(|scope| {
            let mut rest = data;
            for &size in &sizes {
                let (chunk, tail) = rest.split_at_mut(size);
                rest = tail;
                scope.spawn(move || {
                    // Local sweep: offset 0 makes the first row of the
                    // chunk the sweep's row 0.
                    sweep_chunk(chunk, 0, row_len, usize::MAX, usize::MAX);
                });
            }
        });
    }

    // Dim 0, phase 2: accumulate each slab's last row into a running
    // base and add it to every row of the following slab (parallel per
    // slab after the serial base accumulation).
    let mut bases: Vec<Vec<T>> = Vec::with_capacity(sizes.len());
    {
        let data = a.as_slice();
        let mut base = vec![T::zero(); row_len];
        let mut offset = 0usize;
        for &size in &sizes {
            bases.push(base.clone());
            let last_row = &data[offset + size - row_len..offset + size];
            for (b, v) in base.iter_mut().zip(last_row) {
                b.add_assign(v);
            }
            offset += size;
        }
    }
    {
        let data = a.as_mut_slice();
        std::thread::scope(|scope| {
            let mut rest = data;
            for (i, &size) in sizes.iter().enumerate() {
                let (chunk, tail) = rest.split_at_mut(size);
                rest = tail;
                let base = &bases[i];
                scope.spawn(move || {
                    if base.iter().all(T::is_zero) {
                        return; // first slab: nothing to add
                    }
                    for row in chunk.chunks_exact_mut(row_len) {
                        for (cell, b) in row.iter_mut().zip(base) {
                            cell.add_assign(b);
                        }
                    }
                });
            }
        });
    }
}

impl<T: GroupValue + Send + Sync> crate::rps::RpsEngine<T> {
    /// Builds the engine using `threads` worker threads for the P and RP
    /// sweeps (overlay derivation is serial; it is O(d·N/k), dwarfed by
    /// the sweeps).
    pub fn from_cube_parallel(a: &NdCube<T>, threads: usize) -> Self {
        let grid = BoxGrid::with_sqrt_boxes(a.shape().clone());
        let rp = relative_prefix_sums_parallel(a, &grid, threads);
        let mut p = a.clone();
        prefix_sums_parallel(&mut p, threads);
        let overlay = crate::rps::build::build_overlay_from_p(a, &p, &rp, grid.clone());
        Self::from_parts(grid, overlay, rp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RangeSumEngine;
    use crate::prefix::prefix_sums_in_place;
    use crate::rps::{relative_prefix_sums, RpsEngine};
    use crate::testdata::paper_array_a;
    use ndcube::Region;

    #[test]
    fn parallel_rp_matches_serial() {
        for dims in [vec![9usize, 9], vec![16, 8], vec![7, 5, 6], vec![33, 4]] {
            let a = NdCube::from_fn(&dims, |c| {
                c.iter()
                    .enumerate()
                    .map(|(i, &x)| (x + 1) * (i + 2))
                    .sum::<usize>() as i64
            })
            .unwrap();
            let grid = BoxGrid::with_sqrt_boxes(a.shape().clone());
            let serial = relative_prefix_sums(&a, &grid);
            for threads in [2, 3, 8] {
                let par = relative_prefix_sums_parallel(&a, &grid, threads);
                assert_eq!(par, serial, "dims {dims:?}, threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_prefix_matches_serial() {
        for dims in [
            vec![9usize, 9],
            vec![16, 8],
            vec![7, 5, 6],
            vec![2, 31],
            vec![64],
        ] {
            let a = NdCube::from_fn(&dims, |c| (c.iter().sum::<usize>() * 3 + 1) as i64).unwrap();
            let mut serial = a.clone();
            prefix_sums_in_place(&mut serial);
            for threads in [2, 4, 7] {
                let mut par = a.clone();
                prefix_sums_parallel(&mut par, threads);
                assert_eq!(par, serial, "dims {dims:?}, threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_engine_matches_serial_engine() {
        let a = paper_array_a();
        let serial = RpsEngine::from_cube(&a);
        let par = RpsEngine::from_cube_parallel(&a, 4);
        assert_eq!(par.rp_array(), serial.rp_array());
        for r in 0..9 {
            for c in 0..9 {
                assert_eq!(
                    par.prefix_sum(&[r, c]).unwrap(),
                    serial.prefix_sum(&[r, c]).unwrap(),
                    "P[{r},{c}]"
                );
            }
        }
    }

    #[test]
    fn parallel_engine_updates_and_queries() {
        let a = NdCube::from_fn(&[40, 40], |c| ((c[0] * 17 + c[1]) % 23) as i64).unwrap();
        let mut e = RpsEngine::from_cube_parallel(&a, 8);
        let naive = crate::naive::NaiveEngine::from_cube(a);
        let r = Region::new(&[3, 5], &[30, 38]).unwrap();
        assert_eq!(e.query(&r).unwrap(), naive.query(&r).unwrap());
        e.update(&[10, 10], 99).unwrap();
        assert_eq!(e.query(&r).unwrap(), naive.query(&r).unwrap() + 99);
    }

    #[test]
    fn single_thread_falls_back() {
        let a = paper_array_a();
        let grid = BoxGrid::new(a.shape().clone(), &[3, 3]).unwrap();
        assert_eq!(
            relative_prefix_sums_parallel(&a, &grid, 1),
            relative_prefix_sums(&a, &grid)
        );
    }

    #[test]
    fn more_threads_than_rows() {
        let a = NdCube::from_fn(&[3, 50], |c| (c[0] + c[1]) as i64).unwrap();
        let grid = BoxGrid::with_sqrt_boxes(a.shape().clone());
        assert_eq!(
            relative_prefix_sums_parallel(&a, &grid, 16),
            relative_prefix_sums(&a, &grid)
        );
        let mut p = a.clone();
        prefix_sums_parallel(&mut p, 16);
        let mut s = a.clone();
        prefix_sums_in_place(&mut s);
        assert_eq!(p, s);
    }
}

/// Property tests for the slab decomposition itself — the invariants the
/// scoped-thread splitting in the sweeps above relies on. Exercised over
/// geometries chosen to hit the awkward cases: rows not divisible by
/// `k₀ × threads`, single-row slabs, and more threads than rows.
#[cfg(test)]
mod props {
    use super::*;
    use crate::prefix::prefix_sums_in_place;
    use crate::rps::relative_prefix_sums;
    use proptest::prelude::*;

    fn geometry() -> impl Strategy<Value = (usize, usize, usize, usize)> {
        // (rows, row_len, align, threads) — small enough to stay fast,
        // wide enough to cover ragged/degenerate splits.
        (1usize..=40, 1usize..=12, 1usize..=7, 1usize..=10)
    }

    proptest! {
        /// Slabs partition the buffer exactly: they are all nonempty,
        /// whole multiples of the row length, and sum to the total size.
        #[test]
        fn slabs_partition_the_buffer((rows, row_len, align, threads) in geometry()) {
            let sizes = slab_sizes(rows, row_len, align, threads);
            prop_assert!(sizes.iter().all(|&s| s > 0));
            prop_assert!(sizes.iter().all(|&s| s.is_multiple_of(row_len)));
            prop_assert_eq!(sizes.iter().sum::<usize>(), rows * row_len);
        }

        /// Every slab except possibly the last holds a multiple of
        /// `align` rows — the guarantee that keeps each RP slab's box
        /// sweeps from crossing a `k₀` boundary.
        #[test]
        fn slabs_are_aligned((rows, row_len, align, threads) in geometry()) {
            let sizes = slab_sizes(rows, row_len, align, threads);
            for &s in &sizes[..sizes.len() - 1] {
                prop_assert!((s / row_len).is_multiple_of(align));
            }
        }

        /// The split never produces more slabs than requested threads —
        /// each slab becomes one spawned worker.
        #[test]
        fn slab_count_bounded_by_threads((rows, row_len, align, threads) in geometry()) {
            let sizes = slab_sizes(rows, row_len, align, threads);
            prop_assert!(sizes.len() <= threads);
        }

        /// A whole-buffer `sweep_chunk` with `k = usize::MAX` along dim 0
        /// is exactly a running prefix along that dimension.
        #[test]
        fn sweep_chunk_is_prefix_along_dim0(
            rows in 1usize..=12,
            cols in 1usize..=8,
        ) {
            let a = NdCube::from_fn(&[rows, cols], |c| (c[0] * 31 + c[1] * 7 + 1) as i64).unwrap();
            let mut swept = a.clone().into_vec();
            sweep_chunk(&mut swept, 0, cols, rows, usize::MAX);
            for r in 0..rows {
                for c in 0..cols {
                    let expect: i64 = (0..=r).map(|i| a.get(&[i, c])).sum();
                    prop_assert_eq!(swept[r * cols + c], expect);
                }
            }
        }

        /// Box-bounded `sweep_chunk` restarts accumulation at every
        /// multiple of `k` instead of running to the edge.
        #[test]
        fn sweep_chunk_restarts_at_box_boundaries(
            rows in 1usize..=12,
            cols in 1usize..=8,
            k in 1usize..=5,
        ) {
            let a = NdCube::from_fn(&[rows, cols], |c| (c[0] * 13 + c[1] + 1) as i64).unwrap();
            let mut swept = a.clone().into_vec();
            sweep_chunk(&mut swept, 0, cols, rows, k);
            for r in 0..rows {
                let box_lo = (r / k) * k;
                for c in 0..cols {
                    let expect: i64 = (box_lo..=r).map(|i| a.get(&[i, c])).sum();
                    prop_assert_eq!(swept[r * cols + c], expect);
                }
            }
        }

        /// End-to-end: the parallel RP and P builds agree with the serial
        /// sweeps on arbitrary small shapes and thread counts, including
        /// rows not divisible by `k₀ × threads` and threads > rows.
        #[test]
        fn parallel_sweeps_agree_with_serial(
            dims in (1usize..=3).prop_flat_map(|d| {
                proptest::collection::vec(1usize..=14, d..=d)
            }),
            threads in 1usize..=9,
        ) {
            let a = NdCube::from_fn(&dims, |c| {
                c.iter().enumerate().map(|(i, &x)| (x + 1) * (i + 3)).sum::<usize>() as i64
            })
            .unwrap();
            let grid = BoxGrid::with_sqrt_boxes(a.shape().clone());
            prop_assert_eq!(
                relative_prefix_sums_parallel(&a, &grid, threads),
                relative_prefix_sums(&a, &grid)
            );
            let mut par = a.clone();
            prefix_sums_parallel(&mut par, threads);
            let mut ser = a.clone();
            prefix_sums_in_place(&mut ser);
            prop_assert_eq!(par, ser);
        }
    }
}
