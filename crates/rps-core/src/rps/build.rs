//! Construction of the RP array and overlay from a data cube (§3.1–3.2).

use ndcube::NdCube;

use crate::prefix::prefix_sums_in_place;
use crate::rps::grid::BoxGrid;
use crate::rps::overlay::Overlay;
use crate::value::GroupValue;

/// Computes the relative-prefix array `RP` of `a`: per overlay box, the
/// prefix sums relative to the box's anchor (Figure 10).
///
/// O(d·N): one running-sum sweep per dimension that simply *stops
/// accumulating* at box boundaries.
pub fn relative_prefix_sums<T: GroupValue>(a: &NdCube<T>, grid: &BoxGrid) -> NdCube<T> {
    let mut rp = a.clone();
    let shape = a.shape().clone();
    for dim in 0..shape.ndim() {
        // A cell accumulates its predecessor along `dim` only when it is
        // not the first cell of its box in that dimension: regions of RP
        // are independent across boxes (§3.2).
        crate::prefix::sweep_dim_forward(
            rp.as_mut_slice(),
            shape.strides()[dim],
            shape.dim(dim),
            grid.box_size()[dim],
        );
    }
    rp
}

/// Inverts [`relative_prefix_sums`]: recovers the cube `A` from its RP
/// array — O(d·N). Reverse sweeps so each cell's predecessor is still in
/// summed state when subtracted.
pub fn inverse_relative_prefix_sums<T: GroupValue>(rp: &NdCube<T>, grid: &BoxGrid) -> NdCube<T> {
    let mut a = rp.clone();
    let shape = a.shape().clone();
    for dim in (0..shape.ndim()).rev() {
        crate::prefix::sweep_dim_backward(
            a.as_mut_slice(),
            shape.strides()[dim],
            shape.dim(dim),
            grid.box_size()[dim],
        );
    }
    a
}

/// Builds the overlay (anchors + borders) for `a`.
///
/// Uses the identities of §3.3 against a transient full prefix array `P`
/// (O(N) temporary, discarded after construction):
///
/// * anchor(α)  = `P[α] − A[α]`
/// * border(p)  = `P[p] − RP[p] − anchor`
pub fn build_overlay<T: GroupValue>(a: &NdCube<T>, rp: &NdCube<T>, grid: BoxGrid) -> Overlay<T> {
    let mut p = a.clone();
    prefix_sums_in_place(&mut p);
    build_overlay_from_p(a, &p, rp, grid)
}

/// [`build_overlay`] with a caller-supplied prefix array `P` (e.g. one
/// computed by the parallel sweeps).
pub fn build_overlay_from_p<T: GroupValue>(
    a: &NdCube<T>,
    p: &NdCube<T>,
    rp: &NdCube<T>,
    grid: BoxGrid,
) -> Overlay<T> {
    // Keep an owned grid handle so the box walk can read geometry while
    // the closure mutates overlay cells (no per-box Vec materialization).
    let walk_grid = grid.clone();
    let mut overlay = Overlay::zeros(grid);
    let grid_region = walk_grid.grid_shape().full_region();
    let shape = a.shape().clone();

    ndcube::RegionIter::for_each_coords(&grid_region, |b| {
        let box_lin = overlay.box_linear(b);
        let anchor = walk_grid.anchor_of(b);
        let extents = walk_grid.extents_of(b);
        let stored = overlay.box_stored_count(box_lin);

        let a_lin = shape.linear_unchecked(&anchor);
        let anchor_val = p.get_linear(a_lin).sub(a.get_linear(a_lin));
        *overlay.get_mut(overlay.anchor_index(box_lin)) = anchor_val.clone();

        let mut coords = vec![0usize; shape.ndim()];
        for slot in 1..stored {
            let e = BoxGrid::offset_of_slot(slot, &extents);
            for (ci, (ai, ei)) in coords.iter_mut().zip(anchor.iter().zip(&e)) {
                *ci = ai + ei;
            }
            let lin = shape.linear_unchecked(&coords);
            let border = p.get_linear(lin).sub(rp.get_linear(lin)).sub(&anchor_val);
            let idx = overlay
                .cell_index(box_lin, &e, &extents)
                // lint:allow(L2): the offset enumeration visits exactly the stored slots
                .expect("enumerated slots are stored");
            *overlay.get_mut(idx) = border;
        }
    });
    overlay
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::{paper_array_a, paper_array_rp, paper_overlay_cells, PAPER_BOX_SIZE};
    use ndcube::Shape;

    fn paper_grid() -> BoxGrid {
        BoxGrid::new(
            Shape::new(&[9, 9]).unwrap(),
            &[PAPER_BOX_SIZE, PAPER_BOX_SIZE],
        )
        .unwrap()
    }

    #[test]
    fn figure10_rp_array_reproduced() {
        let rp = relative_prefix_sums(&paper_array_a(), &paper_grid());
        assert_eq!(rp, paper_array_rp());
    }

    #[test]
    fn figure13_overlay_reproduced() {
        let a = paper_array_a();
        let grid = paper_grid();
        let rp = relative_prefix_sums(&a, &grid);
        let overlay = build_overlay(&a, &rp, grid);
        for (r, c, v) in paper_overlay_cells() {
            assert_eq!(
                overlay.value_at(&[r, c]),
                Some(&v),
                "overlay value at ({r},{c})"
            );
        }
    }

    #[test]
    fn section33_worked_anchor_and_borders() {
        // "anchor value in overlay cell O[3,3] … = 51−5 = 46.
        //  border [4,3] = 61−8−46 = 7;  [5,3] = 75−14−46 = 15;
        //  [3,4] = 67−8−46 = 13;        [3,5] = 86−13−46 = 27."
        let a = paper_array_a();
        let grid = paper_grid();
        let rp = relative_prefix_sums(&a, &grid);
        let overlay = build_overlay(&a, &rp, grid);
        assert_eq!(overlay.value_at(&[3, 3]), Some(&46));
        assert_eq!(overlay.value_at(&[4, 3]), Some(&7));
        assert_eq!(overlay.value_at(&[5, 3]), Some(&15));
        assert_eq!(overlay.value_at(&[3, 4]), Some(&13));
        assert_eq!(overlay.value_at(&[3, 5]), Some(&27));
    }

    #[test]
    fn rp_regions_are_independent() {
        // Changing A inside one box must leave other boxes' RP untouched.
        let mut a = paper_array_a();
        let grid = paper_grid();
        let rp1 = relative_prefix_sums(&a, &grid);
        a.set(&[4, 4], 100); // interior of box (1,1)
        let rp2 = relative_prefix_sums(&a, &grid);
        for r in 0..9 {
            for c in 0..9 {
                let same_box = (3..6).contains(&r) && (3..6).contains(&c);
                if !same_box {
                    assert_eq!(rp1.get(&[r, c]), rp2.get(&[r, c]), "RP[{r},{c}]");
                }
            }
        }
    }

    #[test]
    fn ragged_shape_builds() {
        let a = NdCube::from_fn(&[7, 5], |c| (c[0] * 5 + c[1]) as i64).unwrap();
        let grid = BoxGrid::new(a.shape().clone(), &[3, 2]).unwrap();
        let rp = relative_prefix_sums(&a, &grid);
        let overlay = build_overlay(&a, &rp, grid);
        // Anchor of the last box must equal P[anchor] − A[anchor].
        let anchor_val = overlay.value_at(&[6, 4]).copied().unwrap();
        let mut p = a.clone();
        crate::prefix::prefix_sums_in_place(&mut p);
        assert_eq!(anchor_val, p.get(&[6, 4]) - a.get(&[6, 4]));
    }
}
