//! Construction of the RP array and overlay from a data cube (§3.1–3.2).

use ndcube::NdCube;

use crate::prefix::prefix_sums_in_place;
use crate::rps::grid::BoxGrid;
use crate::rps::kernels;
use crate::rps::overlay::Overlay;
use crate::value::GroupValue;

/// Computes the relative-prefix array `RP` of `a`: per overlay box, the
/// prefix sums relative to the box's anchor (Figure 10).
///
/// O(d·N): one running-sum sweep per dimension that simply *stops
/// accumulating* at box boundaries.
pub fn relative_prefix_sums<T: GroupValue>(a: &NdCube<T>, grid: &BoxGrid) -> NdCube<T> {
    let mut rp = a.clone();
    let shape = a.shape().clone();
    for dim in 0..shape.ndim() {
        // A cell accumulates its predecessor along `dim` only when it is
        // not the first cell of its box in that dimension: regions of RP
        // are independent across boxes (§3.2).
        crate::prefix::sweep_dim_forward(
            rp.as_mut_slice(),
            shape.strides()[dim],
            shape.dim(dim),
            grid.box_size()[dim],
        );
    }
    rp
}

/// Inverts [`relative_prefix_sums`]: recovers the cube `A` from its RP
/// array — O(d·N). Reverse sweeps so each cell's predecessor is still in
/// summed state when subtracted.
pub fn inverse_relative_prefix_sums<T: GroupValue>(rp: &NdCube<T>, grid: &BoxGrid) -> NdCube<T> {
    let mut a = rp.clone();
    let shape = a.shape().clone();
    for dim in (0..shape.ndim()).rev() {
        crate::prefix::sweep_dim_backward(
            a.as_mut_slice(),
            shape.strides()[dim],
            shape.dim(dim),
            grid.box_size()[dim],
        );
    }
    a
}

/// Builds the overlay (anchors + borders) for `a`.
///
/// Uses the identities of §3.3 against a transient full prefix array `P`
/// (O(N) temporary, discarded after construction):
///
/// * anchor(α)  = `P[α] − A[α]`
/// * border(p)  = `P[p] − RP[p] − anchor`
pub fn build_overlay<T: GroupValue>(a: &NdCube<T>, rp: &NdCube<T>, grid: BoxGrid) -> Overlay<T> {
    let mut p = a.clone();
    prefix_sums_in_place(&mut p);
    build_overlay_from_p(a, &p, rp, grid)
}

/// [`build_overlay`] with a caller-supplied prefix array `P` (e.g. one
/// computed by the parallel sweeps).
///
/// Run-structured: stored slots are numbered in "first zero dimension"
/// groups, and within every group `z < d−1` the last dimension is the
/// fastest mixed-radix digit — so `extents[d−1]` consecutive slots map to
/// `extents[d−1]` consecutive cube cells, and the whole run is one call
/// of the fused lane kernel [`kernels::border_from_p_run`]
/// (`border = P − RP − anchor`, §3.3). Only the final group (`z = d−1`,
/// whose cells sit a full row apart in the cube) is handled cell-wise.
#[allow(clippy::too_many_lines)] // one arm per slot group; splitting obscures the odometer walk
pub fn build_overlay_from_p<T: GroupValue>(
    a: &NdCube<T>,
    p: &NdCube<T>,
    rp: &NdCube<T>,
    grid: BoxGrid,
) -> Overlay<T> {
    // Keep an owned grid handle so the box walk can read geometry while
    // the closure mutates overlay cells (no per-box Vec materialization).
    let walk_grid = grid.clone();
    let mut overlay = Overlay::zeros(grid);
    let grid_region = walk_grid.grid_shape().full_region();
    let shape = a.shape().clone();
    let d = shape.ndim();
    let p_data = p.as_slice();
    let rp_data = rp.as_slice();
    let a_data = a.as_slice();
    let grid_shape = walk_grid.grid_shape().clone();
    let (box_offsets, cells) = overlay.parts_mut();

    let mut e = vec![0usize; d];
    let mut coords = vec![0usize; d];
    let mut lane_runs = 0u64;
    ndcube::RegionIter::for_each_coords(&grid_region, |b| {
        let box_lin = grid_shape.linear_unchecked(b);
        let cell_base = box_offsets[box_lin];
        let anchor = walk_grid.anchor_of(b);
        let extents = walk_grid.extents_of(b);
        let t_last = extents[d - 1];

        let a_lin = shape.linear_unchecked(&anchor);
        let anchor_val = p_data[a_lin].sub(&a_data[a_lin]);

        for z in 0..d {
            if z + 1 < d {
                // Group z < d−1: runs of t_last slots along the last axis.
                // Outer digits walk dims i ∉ {z, d−1}, starting at 1 for
                // i < z (z is the FIRST zero) and 0 for i > z.
                let mut empty = false;
                for (i, ei) in e.iter_mut().enumerate() {
                    *ei = usize::from(i < z);
                    if i < z && extents[i] < 2 {
                        empty = true; // no offset ≥ 1 fits: group is empty
                    }
                }
                if empty {
                    continue;
                }
                'runs: loop {
                    let slot0 = BoxGrid::slot_of(&e, &extents)
                        // lint:allow(L2): e[z] = 0, so the offset is stored by construction
                        .expect("group enumeration yields stored slots");
                    #[cfg(debug_assertions)]
                    {
                        // The run-contiguity invariant this walk rests on.
                        e[d - 1] = t_last - 1;
                        debug_assert_eq!(BoxGrid::slot_of(&e, &extents), Some(slot0 + t_last - 1));
                        e[d - 1] = 0;
                    }
                    for (ci, (&ai, &ei)) in coords.iter_mut().zip(anchor.iter().zip(e.iter())) {
                        *ci = ai + ei;
                    }
                    let lin0 = shape.linear_unchecked(&coords);
                    let lo = cell_base + slot0;
                    kernels::border_from_p_run(
                        &mut cells[lo..lo + t_last],
                        &p_data[lin0..lin0 + t_last],
                        &rp_data[lin0..lin0 + t_last],
                        &anchor_val,
                    );
                    lane_runs += u64::from(kernels::is_lane_run(t_last));
                    // Advance the outer odometer (dims except z and d−1).
                    let mut dim = d - 1;
                    loop {
                        if dim == 0 {
                            break 'runs;
                        }
                        dim -= 1;
                        if dim == z {
                            continue;
                        }
                        if e[dim] + 1 < extents[dim] {
                            e[dim] += 1;
                            for (j, ej) in e.iter_mut().enumerate().take(d - 1).skip(dim + 1) {
                                if j != z {
                                    *ej = usize::from(j < z);
                                }
                            }
                            break;
                        }
                        e[dim] = usize::from(dim < z);
                    }
                }
            } else {
                // Group z = d−1: e_last = 0, every earlier offset ≥ 1 —
                // the cells sit a full cube row apart, handled cell-wise.
                // (At d = 1 this group is exactly the anchor, written
                // below.)
                let mut empty = d == 1;
                for (i, ei) in e.iter_mut().enumerate().take(d - 1) {
                    *ei = 1;
                    if extents[i] < 2 {
                        empty = true;
                    }
                }
                e[d - 1] = 0;
                if empty {
                    continue;
                }
                'cells: loop {
                    let slot = BoxGrid::slot_of(&e, &extents)
                        // lint:allow(L2): e[d−1] = 0, so the offset is stored by construction
                        .expect("group enumeration yields stored slots");
                    for (ci, (&ai, &ei)) in coords.iter_mut().zip(anchor.iter().zip(e.iter())) {
                        *ci = ai + ei;
                    }
                    let lin = shape.linear_unchecked(&coords);
                    cells[cell_base + slot] = p_data[lin].sub(&rp_data[lin]).sub(&anchor_val);
                    let mut dim = d - 1;
                    loop {
                        if dim == 0 {
                            break 'cells;
                        }
                        dim -= 1;
                        if e[dim] + 1 < extents[dim] {
                            e[dim] += 1;
                            for ej in e.iter_mut().take(d - 1).skip(dim + 1) {
                                *ej = 1;
                            }
                            break;
                        }
                        e[dim] = 1;
                    }
                }
            }
        }
        // The anchor (always slot 0) carries P[α] − A[α], not the border
        // identity the z = 0 run wrote there (which evaluates to 0 at α);
        // write it last so the run path needs no special case.
        cells[cell_base] = anchor_val;
    });
    if lane_runs > 0 {
        // Coalesced: one relaxed add per build, not one per run.
        crate::obs::core().lane_runs.add(lane_runs);
    }
    overlay
}

/// The original slot-by-slot overlay construction, kept verbatim as the
/// oracle the run-structured builder is property-tested against.
#[cfg(test)]
pub(crate) fn oracle_build_overlay_from_p<T: GroupValue>(
    a: &NdCube<T>,
    p: &NdCube<T>,
    rp: &NdCube<T>,
    grid: BoxGrid,
) -> Overlay<T> {
    let walk_grid = grid.clone();
    let mut overlay = Overlay::zeros(grid);
    let grid_region = walk_grid.grid_shape().full_region();
    let shape = a.shape().clone();

    ndcube::RegionIter::for_each_coords(&grid_region, |b| {
        let box_lin = overlay.box_linear(b);
        let anchor = walk_grid.anchor_of(b);
        let extents = walk_grid.extents_of(b);
        let stored = overlay.box_stored_count(box_lin);

        let a_lin = shape.linear_unchecked(&anchor);
        let anchor_val = p.get_linear(a_lin).sub(a.get_linear(a_lin));
        *overlay.get_mut(overlay.anchor_index(box_lin)) = anchor_val.clone();

        let mut coords = vec![0usize; shape.ndim()];
        for slot in 1..stored {
            let e = BoxGrid::offset_of_slot(slot, &extents);
            for (ci, (ai, ei)) in coords.iter_mut().zip(anchor.iter().zip(&e)) {
                *ci = ai + ei;
            }
            let lin = shape.linear_unchecked(&coords);
            let border = p.get_linear(lin).sub(rp.get_linear(lin)).sub(&anchor_val);
            let idx = overlay
                .cell_index(box_lin, &e, &extents)
                .expect("enumerated slots are stored");
            *overlay.get_mut(idx) = border;
        }
    });
    overlay
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata::{paper_array_a, paper_array_rp, paper_overlay_cells, PAPER_BOX_SIZE};
    use ndcube::Shape;

    fn paper_grid() -> BoxGrid {
        BoxGrid::new(
            Shape::new(&[9, 9]).unwrap(),
            &[PAPER_BOX_SIZE, PAPER_BOX_SIZE],
        )
        .unwrap()
    }

    #[test]
    fn figure10_rp_array_reproduced() {
        let rp = relative_prefix_sums(&paper_array_a(), &paper_grid());
        assert_eq!(rp, paper_array_rp());
    }

    #[test]
    fn figure13_overlay_reproduced() {
        let a = paper_array_a();
        let grid = paper_grid();
        let rp = relative_prefix_sums(&a, &grid);
        let overlay = build_overlay(&a, &rp, grid);
        for (r, c, v) in paper_overlay_cells() {
            assert_eq!(
                overlay.value_at(&[r, c]),
                Some(&v),
                "overlay value at ({r},{c})"
            );
        }
    }

    #[test]
    fn section33_worked_anchor_and_borders() {
        // "anchor value in overlay cell O[3,3] … = 51−5 = 46.
        //  border [4,3] = 61−8−46 = 7;  [5,3] = 75−14−46 = 15;
        //  [3,4] = 67−8−46 = 13;        [3,5] = 86−13−46 = 27."
        let a = paper_array_a();
        let grid = paper_grid();
        let rp = relative_prefix_sums(&a, &grid);
        let overlay = build_overlay(&a, &rp, grid);
        assert_eq!(overlay.value_at(&[3, 3]), Some(&46));
        assert_eq!(overlay.value_at(&[4, 3]), Some(&7));
        assert_eq!(overlay.value_at(&[5, 3]), Some(&15));
        assert_eq!(overlay.value_at(&[3, 4]), Some(&13));
        assert_eq!(overlay.value_at(&[3, 5]), Some(&27));
    }

    #[test]
    fn rp_regions_are_independent() {
        // Changing A inside one box must leave other boxes' RP untouched.
        let mut a = paper_array_a();
        let grid = paper_grid();
        let rp1 = relative_prefix_sums(&a, &grid);
        a.set(&[4, 4], 100); // interior of box (1,1)
        let rp2 = relative_prefix_sums(&a, &grid);
        for r in 0..9 {
            for c in 0..9 {
                let same_box = (3..6).contains(&r) && (3..6).contains(&c);
                if !same_box {
                    assert_eq!(rp1.get(&[r, c]), rp2.get(&[r, c]), "RP[{r},{c}]");
                }
            }
        }
    }

    #[test]
    fn ragged_shape_builds() {
        let a = NdCube::from_fn(&[7, 5], |c| (c[0] * 5 + c[1]) as i64).unwrap();
        let grid = BoxGrid::new(a.shape().clone(), &[3, 2]).unwrap();
        let rp = relative_prefix_sums(&a, &grid);
        let overlay = build_overlay(&a, &rp, grid);
        // Anchor of the last box must equal P[anchor] − A[anchor].
        let anchor_val = overlay.value_at(&[6, 4]).copied().unwrap();
        let mut p = a.clone();
        crate::prefix::prefix_sums_in_place(&mut p);
        assert_eq!(anchor_val, p.get(&[6, 4]) - a.get(&[6, 4]));
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use ndcube::Shape;
    use proptest::prelude::*;

    fn dims_and_ks() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
        (1usize..=4).prop_flat_map(|d| {
            (
                proptest::collection::vec(1usize..=6, d),
                proptest::collection::vec(1usize..=4, d),
            )
        })
    }

    proptest! {
        /// Satellite 2 oracle: the run-structured overlay builder is
        /// bit-identical to the retained slot-by-slot scalar builder for
        /// d in 1..=4, including k = 1 and tails where k does not divide n.
        #[test]
        fn run_structured_builder_matches_oracle(
            (dims, ks) in dims_and_ks(),
            seed in 0i64..1000,
        ) {
            let shape = Shape::new(&dims).unwrap();
            let a = NdCube::from_fn(&dims, |c| {
                let mut h = seed;
                for &x in c {
                    h = h.wrapping_mul(31).wrapping_add(x as i64 + 1);
                }
                h % 97
            })
            .unwrap();
            let ks: Vec<usize> = ks
                .iter()
                .zip(shape.dims())
                .map(|(&k, &n)| k.min(n))
                .collect();
            let grid = BoxGrid::new(shape, &ks).unwrap();
            let rp = relative_prefix_sums(&a, &grid);
            let mut p = a.clone();
            prefix_sums_in_place(&mut p);

            let fast = build_overlay_from_p(&a, &p, &rp, grid.clone());
            let oracle = oracle_build_overlay_from_p(&a, &p, &rp, grid);
            prop_assert_eq!(fast.storage_cells(), oracle.storage_cells());
            for idx in 0..fast.storage_cells() {
                prop_assert_eq!(fast.get(idx), oracle.get(idx), "storage slot {}", idx);
            }
        }
    }
}
