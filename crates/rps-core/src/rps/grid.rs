//! Overlay box geometry: how the cube is partitioned into boxes (§3.1) and
//! how a box's *stored* overlay cells (anchor + borders) are numbered.

use ndcube::{NdError, Region, Shape};

/// The partition of a cube into overlay boxes of side `k_i` per dimension.
///
/// Boxes are anchored at coordinates that are multiples of `k_i`; edge
/// boxes are clamped when `n_i` is not divisible by `k_i` (the paper
/// assumes divisibility "for convenience"; we support ragged edges and
/// property-test them).
///
/// ```
/// use rps_core::BoxGrid;
/// use ndcube::Shape;
///
/// let grid = BoxGrid::new(Shape::new(&[9, 9]).unwrap(), &[3, 3]).unwrap();
/// assert_eq!(grid.num_boxes(), 9);
/// assert_eq!(grid.box_index_of(&[7, 5]), vec![2, 1]);
/// assert_eq!(grid.anchor_of(&[2, 1]), vec![6, 3]);
/// assert_eq!(BoxGrid::stored_cells(&[3, 3]), 5); // anchor + 4 borders
/// ```
#[derive(Debug, Clone)]
pub struct BoxGrid {
    cube_shape: Shape,
    box_size: Vec<usize>,
    grid_shape: Shape,
    /// Per-dimension precomputed divider for `c / k_i` — box lookup is on
    /// the O(1) query path, and a multiply-shift beats a hardware divide.
    divs: Vec<BoxDiv>,
}

/// Precomputed strategy for dividing a cube coordinate by a box side `k`.
///
/// Uses the round-up ("Granlund–Montgomery") magic number `m = ⌊2⁶⁴/k⌋ + 1`:
/// `⌊c·m / 2⁶⁴⌋ = ⌊c/k⌋` exactly for every `c < 2³²` when `k ≤ 2³²` (and for
/// all `c` when `k` is a power of two, where `m` is exact). Dimensions
/// larger than 2³² cells fall back to hardware division; `k = 1` skips the
/// multiply entirely.
#[derive(Debug, Clone, Copy)]
enum BoxDiv {
    /// `k = 1`: the identity.
    One,
    /// Multiply-shift by the round-up magic number.
    Magic { m: u64 },
    /// Hardware division (dimension too large for the 2³² exactness bound).
    Hw { k: u64 },
}

impl BoxDiv {
    fn new(k: usize, n: usize) -> BoxDiv {
        if k == 1 {
            return BoxDiv::One;
        }
        // lint:allow(L4): usize → u64 is lossless on every supported target
        let (k64, n64) = (k as u64, n as u64);
        // Coordinates are < n, so n ≤ 2³² guarantees c < 2³² (the magic
        // number's exactness precondition; see the type-level docs).
        if u32::try_from(n64.saturating_sub(1)).is_ok() {
            BoxDiv::Magic {
                m: u64::MAX / k64 + 1,
            }
        } else {
            BoxDiv::Hw { k: k64 }
        }
    }

    /// Computes `c / k` for an in-bounds cube coordinate.
    #[inline]
    fn div(self, c: usize) -> usize {
        match self {
            BoxDiv::One => c,
            BoxDiv::Magic { m } => {
                // lint:allow(L4): usize → u128 widens losslessly; the shifted-down result is ⌊c/k⌋ ≤ c, which fits usize
                (((c as u128) * (m as u128)) >> 64) as usize
            }
            BoxDiv::Hw { k } => {
                // lint:allow(L4): usize → u64 lossless; quotient ≤ c fits usize
                ((c as u64) / k) as usize
            }
        }
    }
}

impl BoxGrid {
    /// Builds a grid over `cube_shape` with per-dimension box sides
    /// `box_size`. Every side must be ≥ 1; sides larger than the dimension
    /// are clamped to it (a single box spanning the dimension).
    pub fn new(cube_shape: Shape, box_size: &[usize]) -> Result<BoxGrid, NdError> {
        if box_size.len() != cube_shape.ndim() {
            return Err(NdError::DimMismatch {
                expected: cube_shape.ndim(),
                got: box_size.len(),
            });
        }
        if let Some(dim) = box_size.iter().position(|&k| k == 0) {
            return Err(NdError::ZeroDim { dim });
        }
        let clamped: Vec<usize> = box_size
            .iter()
            .zip(cube_shape.dims())
            .map(|(&k, &n)| k.min(n))
            .collect();
        let grid_dims: Vec<usize> = clamped
            .iter()
            .zip(cube_shape.dims())
            .map(|(&k, &n)| n.div_ceil(k))
            .collect();
        let grid_shape = Shape::new(&grid_dims)?;
        let divs: Vec<BoxDiv> = clamped
            .iter()
            .zip(cube_shape.dims())
            .map(|(&k, &n)| BoxDiv::new(k, n))
            .collect();
        Ok(BoxGrid {
            cube_shape,
            box_size: clamped,
            grid_shape,
            divs,
        })
    }

    /// Grid with the paper's recommended `k = ⌈√n⌉` per dimension (§4.3).
    pub fn with_sqrt_boxes(cube_shape: Shape) -> BoxGrid {
        let ks: Vec<usize> = cube_shape
            .dims()
            .iter()
            // lint:allow(L4): n < 2^53 is exact in f64; ⌈√n⌉ ≤ n maps back losslessly
            .map(|&n| (n as f64).sqrt().ceil().max(1.0) as usize)
            .collect();
        // lint:allow(L2): 1 ≤ ⌈√n⌉ ≤ n satisfies BoxGrid's box-size precondition
        BoxGrid::new(cube_shape, &ks).expect("sqrt box sizes are valid")
    }

    /// Shape of the underlying cube.
    pub fn cube_shape(&self) -> &Shape {
        &self.cube_shape
    }

    /// Per-dimension box side lengths (after clamping).
    pub fn box_size(&self) -> &[usize] {
        &self.box_size
    }

    /// Shape of the box grid: `⌈n_i / k_i⌉` boxes per dimension.
    pub fn grid_shape(&self) -> &Shape {
        &self.grid_shape
    }

    /// Total number of overlay boxes.
    pub fn num_boxes(&self) -> usize {
        self.grid_shape.len()
    }

    /// The box index (per dimension) covering a cube coordinate.
    pub fn box_index_of(&self, coords: &[usize]) -> Vec<usize> {
        coords
            .iter()
            .zip(&self.divs)
            .map(|(&c, div)| div.div(c))
            .collect()
    }

    /// [`Self::box_index_of`] into a caller-provided buffer — the hot-path
    /// form (no allocation, precomputed multiply-shift division).
    #[inline]
    pub fn box_index_into(&self, coords: &[usize], out: &mut [usize]) {
        debug_assert_eq!(coords.len(), out.len());
        for (o, (&c, div)) in out.iter_mut().zip(coords.iter().zip(&self.divs)) {
            *o = div.div(c);
        }
    }

    /// The anchor (first covered cell) of a box.
    pub fn anchor_of(&self, box_idx: &[usize]) -> Vec<usize> {
        box_idx
            .iter()
            .zip(&self.box_size)
            .map(|(&b, &k)| b * k)
            .collect()
    }

    /// [`Self::anchor_of`] into a caller-provided buffer (hot-path form).
    #[inline]
    pub fn anchor_into(&self, box_idx: &[usize], out: &mut [usize]) {
        debug_assert_eq!(box_idx.len(), out.len());
        for (o, (&b, &k)) in out.iter_mut().zip(box_idx.iter().zip(&self.box_size)) {
            *o = b * k;
        }
    }

    /// The extent of a box in each dimension (clamped at cube edges).
    pub fn extents_of(&self, box_idx: &[usize]) -> Vec<usize> {
        box_idx
            .iter()
            .zip(self.box_size.iter().zip(self.cube_shape.dims()))
            .map(|(&b, (&k, &n))| k.min(n - b * k))
            .collect()
    }

    /// [`Self::extents_of`] into a caller-provided buffer (hot-path form).
    #[inline]
    pub fn extents_into(&self, box_idx: &[usize], out: &mut [usize]) {
        debug_assert_eq!(box_idx.len(), out.len());
        let sizes = self.box_size.iter().zip(self.cube_shape.dims());
        for (o, (&b, (&k, &n))) in out.iter_mut().zip(box_idx.iter().zip(sizes)) {
            *o = k.min(n - b * k);
        }
    }

    /// Writes the inclusive upper corner (last covered cell) of the box
    /// containing `coords` — the upper bound of a point update's in-box
    /// cascade region — without materializing the box index.
    #[inline]
    pub fn box_hi_of_cell_into(&self, coords: &[usize], out: &mut [usize]) {
        debug_assert_eq!(coords.len(), out.len());
        let sizes = self.box_size.iter().zip(self.cube_shape.dims());
        for (o, ((&c, div), (&k, &n))) in
            out.iter_mut().zip(coords.iter().zip(&self.divs).zip(sizes))
        {
            *o = ((div.div(c) + 1) * k).min(n) - 1;
        }
    }

    /// The cube region covered by a box.
    pub fn box_region(&self, box_idx: &[usize]) -> Region {
        let lo = self.anchor_of(box_idx);
        let ext = self.extents_of(box_idx);
        let hi: Vec<usize> = lo.iter().zip(&ext).map(|(&a, &t)| a + t - 1).collect();
        // lint:allow(L2): extents are ≥ 1, so hi = lo + t − 1 ≥ lo
        Region::new(&lo, &hi).expect("box region is valid")
    }

    /// Number of *stored* overlay cells for a box of the given extents:
    /// `∏tᵢ − ∏(tᵢ−1)` — the cells with at least one zero offset
    /// (1 anchor + the border cells; paper: `k^d − (k−1)^d` for full boxes).
    pub fn stored_cells(extents: &[usize]) -> usize {
        let all: usize = extents.iter().product();
        let interior: usize = extents.iter().map(|&t| t - 1).product();
        all - interior
    }

    /// The slot (0-based, per box) of the stored overlay cell at in-box
    /// offset `e`, or `None` when `e` is an interior cell (not stored).
    ///
    /// Slot 0 is always the anchor (`e = 0`). The numbering is canonical
    /// "first zero dimension" order: cells are grouped by the first
    /// dimension `z` where `e_z = 0`; within a group, remaining offsets are
    /// mixed-radix digits (dims before `z` shifted down by one since they
    /// are ≥ 1 there).
    pub fn slot_of(e: &[usize], extents: &[usize]) -> Option<usize> {
        let z = e.iter().position(|&x| x == 0)?;
        let mut slot = 0usize;
        // Skip the groups of earlier zero-dimensions.
        for zz in 0..z {
            slot += Self::group_size(zz, extents);
        }
        // Mixed-radix rank within group z, dims in order, skipping z.
        let mut rank = 0usize;
        for (i, &ei) in e.iter().enumerate() {
            if i == z {
                continue;
            }
            let (digit, radix) = if i < z {
                (ei - 1, extents[i] - 1)
            } else {
                (ei, extents[i])
            };
            debug_assert!(digit < radix);
            rank = rank * radix + digit;
        }
        Some(slot + rank)
    }

    /// Size of the slot group whose first zero dimension is `z`.
    fn group_size(z: usize, extents: &[usize]) -> usize {
        let mut size = 1usize;
        for (i, &t) in extents.iter().enumerate() {
            if i == z {
                continue;
            }
            size *= if i < z { t - 1 } else { t };
        }
        size
    }

    /// Inverse of [`Self::slot_of`]: the in-box offset of a slot. Used by
    /// tests and by iteration over a box's stored cells.
    pub fn offset_of_slot(mut slot: usize, extents: &[usize]) -> Vec<usize> {
        let d = extents.len();
        let mut z = 0;
        while z < d {
            let g = Self::group_size(z, extents);
            if slot < g {
                break;
            }
            slot -= g;
            z += 1;
        }
        assert!(z < d, "slot out of range");
        // Decode the mixed-radix rank.
        // lint:allow(L5): test/figure helper, not on the query or update path
        let mut e = vec![0usize; d];
        for i in (0..d).rev() {
            if i == z {
                continue;
            }
            let radix = if i < z { extents[i] - 1 } else { extents[i] };
            let digit = slot % radix;
            slot /= radix;
            e[i] = if i < z { digit + 1 } else { digit };
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_9x9_k3() -> BoxGrid {
        BoxGrid::new(Shape::new(&[9, 9]).unwrap(), &[3, 3]).unwrap()
    }

    #[test]
    fn figure5_nine_boxes() {
        // "The total number of overlay boxes is (9/3)² = 9 … anchored at
        //  (0,0), (0,3), (0,6), (3,0), (3,3), (3,6), (6,0), (6,3), (6,6)."
        let g = grid_9x9_k3();
        assert_eq!(g.num_boxes(), 9);
        let anchors: Vec<Vec<usize>> = g
            .grid_shape()
            .full_region()
            .iter()
            .map(|b| g.anchor_of(&b))
            .collect();
        assert_eq!(
            anchors,
            vec![
                vec![0, 0],
                vec![0, 3],
                vec![0, 6],
                vec![3, 0],
                vec![3, 3],
                vec![3, 6],
                vec![6, 0],
                vec![6, 3],
                vec![6, 6],
            ]
        );
    }

    #[test]
    fn figure6_stored_cell_count() {
        // A 3×3 box stores k^d − (k−1)^d = 9 − 4 = 5 cells
        // (1 anchor V + borders X₁ X₂ Y₁ Y₂).
        assert_eq!(BoxGrid::stored_cells(&[3, 3]), 5);
        // §4.4: a 100×100 box needs 100² − 99² = 199 cells.
        assert_eq!(BoxGrid::stored_cells(&[100, 100]), 199);
    }

    #[test]
    fn box_lookup() {
        let g = grid_9x9_k3();
        assert_eq!(g.box_index_of(&[7, 5]), vec![2, 1]);
        assert_eq!(g.anchor_of(&[2, 1]), vec![6, 3]);
        assert_eq!(g.extents_of(&[2, 1]), vec![3, 3]);
        let r = g.box_region(&[2, 1]);
        assert_eq!(r.lo(), &[6, 3]);
        assert_eq!(r.hi(), &[8, 5]);
    }

    #[test]
    fn ragged_edges() {
        // 10×7 cube with 3×3 boxes: grid is 4×3; edge boxes clamp.
        let g = BoxGrid::new(Shape::new(&[10, 7]).unwrap(), &[3, 3]).unwrap();
        assert_eq!(g.grid_shape().dims(), &[4, 3]);
        assert_eq!(g.extents_of(&[3, 2]), vec![1, 1]);
        assert_eq!(g.extents_of(&[0, 2]), vec![3, 1]);
        assert_eq!(g.box_region(&[3, 2]).cell_count(), 1);
    }

    #[test]
    fn oversized_box_clamps_to_dimension() {
        let g = BoxGrid::new(Shape::new(&[4, 4]).unwrap(), &[10, 2]).unwrap();
        assert_eq!(g.box_size(), &[4, 2]);
        assert_eq!(g.num_boxes(), 2);
    }

    #[test]
    fn sqrt_boxes() {
        let g = BoxGrid::with_sqrt_boxes(Shape::new(&[100, 100]).unwrap());
        assert_eq!(g.box_size(), &[10, 10]);
        let g2 = BoxGrid::with_sqrt_boxes(Shape::new(&[10, 10]).unwrap());
        assert_eq!(g2.box_size(), &[4, 4]); // ⌈√10⌉
    }

    #[test]
    fn slot_round_trip_full_box() {
        let extents = [3usize, 3];
        let stored = BoxGrid::stored_cells(&extents);
        let mut seen = vec![false; stored];
        for e0 in 0..3 {
            for e1 in 0..3 {
                let e = [e0, e1];
                match BoxGrid::slot_of(&e, &extents) {
                    Some(slot) => {
                        assert!(e.contains(&0));
                        assert!(!seen[slot], "slot {slot} assigned twice");
                        seen[slot] = true;
                        assert_eq!(BoxGrid::offset_of_slot(slot, &extents), e.to_vec());
                    }
                    None => assert!(!e.contains(&0)),
                }
            }
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn slot_round_trip_3d_ragged() {
        let extents = [3usize, 2, 4];
        let stored = BoxGrid::stored_cells(&extents);
        assert_eq!(stored, 3 * 2 * 4 - 2 * 3);
        let mut seen = vec![false; stored];
        for e0 in 0..3 {
            for e1 in 0..2 {
                for e2 in 0..4 {
                    let e = [e0, e1, e2];
                    if let Some(slot) = BoxGrid::slot_of(&e, &extents) {
                        assert!(!seen[slot]);
                        seen[slot] = true;
                        assert_eq!(BoxGrid::offset_of_slot(slot, &extents), e.to_vec());
                    }
                }
            }
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn anchor_is_slot_zero() {
        for extents in [vec![3, 3], vec![1, 5], vec![2, 2, 2], vec![4]] {
            let zero = vec![0usize; extents.len()];
            assert_eq!(BoxGrid::slot_of(&zero, &extents), Some(0));
        }
    }

    #[test]
    fn unit_extent_stores_everything() {
        // When an extent is 1, every cell has a zero offset in that dim.
        let extents = [1usize, 4];
        assert_eq!(BoxGrid::stored_cells(&extents), 4);
        for e1 in 0..4 {
            assert!(BoxGrid::slot_of(&[0, e1], &extents).is_some());
        }
    }

    #[test]
    fn magic_division_is_exact() {
        // Exhaustive near box boundaries plus a spread of coordinates, for
        // small k, prime k, power-of-two k, and k near the 32-bit gate.
        for k in [
            1usize,
            2,
            3,
            5,
            7,
            8,
            11,
            16,
            100,
            101,
            1 << 16,
            (1 << 16) + 1,
        ] {
            let n = (1usize << 20).max(k);
            let div = BoxDiv::new(k, n);
            let probe = |c: usize| assert_eq!(div.div(c), c / k, "c={c} k={k}");
            for mult in 0..64usize {
                let base = mult * k;
                probe(base);
                probe(base + 1);
                if base > 0 {
                    probe(base - 1);
                }
            }
            let mut c = 1usize;
            while c < n {
                probe(c.min(n - 1));
                c = c.saturating_mul(3) + 1;
            }
            probe(n - 1);
        }
    }

    #[test]
    fn huge_dimension_falls_back_to_hardware_division() {
        // n > 2³² is outside the magic number's exactness bound; the
        // fallback must still divide correctly. (Constructing the grid is
        // fine: no allocation proportional to n happens here.)
        let n = 1usize << 40;
        let k = 12_345usize;
        let div = BoxDiv::new(k, n);
        assert!(matches!(div, BoxDiv::Hw { .. }));
        for c in [0usize, 1, k - 1, k, n / 2 + 17, n - 1] {
            assert_eq!(div.div(c), c / k);
        }
    }

    #[test]
    fn into_variants_match_allocating_forms() {
        let g = BoxGrid::new(Shape::new(&[10, 7, 9]).unwrap(), &[3, 3, 4]).unwrap();
        let mut buf = [0usize; 3];
        for c in &g.cube_shape().full_region() {
            g.box_index_into(&c, &mut buf);
            let b = g.box_index_of(&c);
            assert_eq!(buf.as_slice(), b.as_slice());
            g.anchor_into(&b, &mut buf);
            assert_eq!(buf.as_slice(), g.anchor_of(&b).as_slice());
            g.extents_into(&b, &mut buf);
            assert_eq!(buf.as_slice(), g.extents_of(&b).as_slice());
            g.box_hi_of_cell_into(&c, &mut buf);
            assert_eq!(buf.as_slice(), g.box_region(&b).hi());
        }
    }

    #[test]
    fn rejects_bad_config() {
        let s = Shape::new(&[4, 4]).unwrap();
        assert!(BoxGrid::new(s.clone(), &[2]).is_err());
        assert!(BoxGrid::new(s, &[2, 0]).is_err());
    }
}
