//! Property tests for workload generation: determinism, bounds, and
//! distribution sanity for arbitrary seeds and shapes.

use proptest::prelude::*;
use rps_workload::{CubeGen, MixedWorkload, Op, QueryGen, RegionSpec, UpdateGen, UpdateSpec, Zipf};

proptest! {
    #[test]
    fn update_spec_fraction_round_trips(frac in 0.000001f64..=1.0) {
        // Rust's shortest-round-trip float Display guarantees
        // parse(display(f)) == f bit-for-bit.
        let spec = UpdateSpec::Fraction(frac);
        let back: UpdateSpec = spec.to_string().parse().expect("display form parses");
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn range_updates_stay_in_bounds_for_any_spec(
        seed in any::<u64>(),
        dims in proptest::collection::vec(1usize..=12, 1..=3),
        frac in 0.01f64..=1.0,
        which in 0u8..4,
    ) {
        let spec = match which {
            0 => UpdateSpec::Point,
            1 => UpdateSpec::Fraction(frac),
            2 => UpdateSpec::FullRow,
            _ => UpdateSpec::Full,
        };
        let mut g = UpdateGen::uniform(&dims, seed, 10).with_region_spec(spec);
        for _ in 0..30 {
            let (r, d) = g.next_range_update();
            prop_assert_eq!(r.ndim(), dims.len());
            prop_assert!(r.hi().iter().zip(&dims).all(|(&h, &n)| h < n));
            prop_assert!((1..=10).contains(&d));
            match spec {
                UpdateSpec::Point => prop_assert_eq!(r.cell_count(), 1),
                UpdateSpec::Full => {
                    prop_assert_eq!(r.cell_count(), dims.iter().product::<usize>());
                }
                UpdateSpec::FullRow => {
                    prop_assert_eq!(r.extent(dims.len() - 1), dims[dims.len() - 1]);
                    for d in 0..dims.len() - 1 {
                        prop_assert_eq!(r.extent(d), 1);
                    }
                }
                UpdateSpec::Fraction(f) => {
                    for (d, &nd) in dims.iter().enumerate() {
                        let cap = ((nd as f64 * f).ceil() as usize).clamp(1, nd);
                        prop_assert!(r.extent(d) <= cap);
                    }
                }
            }
        }
    }

    #[test]
    fn cubes_deterministic_and_bounded(
        seed in any::<u64>(),
        dims in proptest::collection::vec(1usize..=8, 1..=3),
        lo in -20i64..0,
        span in 1i64..40,
    ) {
        let hi = lo + span;
        let a = CubeGen::new(seed).uniform(&dims, lo, hi).expect("valid dims");
        let b = CubeGen::new(seed).uniform(&dims, lo, hi).expect("valid dims");
        prop_assert_eq!(&a, &b);
        prop_assert!(a.as_slice().iter().all(|v| (lo..=hi).contains(v)));
    }

    #[test]
    fn update_streams_in_bounds(
        seed in any::<u64>(),
        dims in proptest::collection::vec(1usize..=10, 1..=3),
        theta in 0.0f64..2.0,
    ) {
        let mut uniform = UpdateGen::uniform(&dims, seed, 10);
        let mut skewed = UpdateGen::zipf(&dims, seed, theta, 10);
        for _ in 0..50 {
            let (c, d) = uniform.next_update();
            prop_assert!(c.iter().zip(&dims).all(|(&x, &n)| x < n));
            prop_assert!((1..=10).contains(&d));
            let (c, _) = skewed.next_update();
            prop_assert!(c.iter().zip(&dims).all(|(&x, &n)| x < n));
        }
    }

    #[test]
    fn query_regions_valid(
        seed in any::<u64>(),
        dims in proptest::collection::vec(1usize..=12, 1..=3),
        frac in 0.01f64..1.0,
    ) {
        let mut g = QueryGen::new(&dims, seed, RegionSpec::Fraction(frac));
        for _ in 0..50 {
            let r = g.next_region();
            prop_assert_eq!(r.ndim(), dims.len());
            prop_assert!(r.hi().iter().zip(&dims).all(|(&h, &n)| h < n));
            for (d, &nd) in dims.iter().enumerate() {
                let cap = ((nd as f64 * frac).ceil() as usize).clamp(1, nd);
                prop_assert!(r.extent(d) <= cap);
            }
        }
    }

    #[test]
    fn mixed_workload_deterministic(seed in any::<u64>(), ratio in 0.0f64..=1.0) {
        let mk = || {
            MixedWorkload::new(
                UpdateGen::uniform(&[6, 6], seed, 5),
                QueryGen::new(&[6, 6], seed ^ 1, RegionSpec::Fraction(0.5)),
                ratio,
                seed ^ 2,
            )
        };
        prop_assert_eq!(mk().take(40), mk().take(40));
    }

    #[test]
    fn zipf_pmf_valid(n in 1usize..200, theta in 0.0f64..3.0) {
        let z = Zipf::new(n, theta);
        let total: f64 = (0..n).map(|i| z.pmf(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        for i in 1..n {
            prop_assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-12);
        }
    }

    #[test]
    fn extreme_ratios_are_pure(seed in any::<u64>()) {
        let mk = |ratio: f64| {
            MixedWorkload::new(
                UpdateGen::uniform(&[4, 4], seed, 5),
                QueryGen::new(&[4, 4], seed, RegionSpec::Point),
                ratio,
                seed,
            )
            .take(30)
        };
        let all_queries = mk(1.0).iter().all(|o| matches!(o, Op::Query(_)));
        let all_updates = mk(0.0).iter().all(|o| matches!(o, Op::Update { .. }));
        prop_assert!(all_queries);
        prop_assert!(all_updates);
    }
}
