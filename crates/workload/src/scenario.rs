//! The paper's motivating OLAP scenario.
//!
//! §1: "consider a hypothetical database maintained by an insurance
//! company … a data cube with SALES as a measure attribute, and
//! CUSTOMER_AGE and DATE_OF_SALE as dimensions", queried like *find the
//! total sales for customers with an age from 37 to 52, over the past
//! three months* while "new information may arrive on a daily basis."

use ndcube::{NdCube, Region};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// A synthetic SALES × (CUSTOMER_AGE, DAY) workload.
///
/// Ages follow a rough bell over `0..ages` (most customers mid-range);
/// days are Zipf-skewed toward *recent* days (index `days−1` is "today"),
/// which is what makes near-current analysis demanding: the hottest cells
/// keep changing.
#[derive(Debug)]
pub struct SalesScenario {
    ages: usize,
    days: usize,
    rng: StdRng,
    recency: Zipf,
}

impl SalesScenario {
    /// A scenario over `ages × days` cells.
    pub fn new(ages: usize, days: usize, seed: u64) -> SalesScenario {
        assert!(ages >= 1, "scenario needs at least one age bucket");
        SalesScenario {
            ages,
            days,
            rng: StdRng::seed_from_u64(seed),
            recency: Zipf::new(days, 0.9),
        }
    }

    /// Cube dimensions `[ages, days]`.
    pub fn dims(&self) -> [usize; 2] {
        [self.ages, self.days]
    }

    /// Historical base cube: accumulated sales for every (age, day).
    pub fn base_cube(&mut self) -> NdCube<i64> {
        let ages = self.ages;
        NdCube::from_fn(&[self.ages, self.days], |c| {
            // Bell-ish age profile peaking mid-range.
            let age = c[0] as f64;
            let mid = ages as f64 / 2.0;
            let w = 1.0 - ((age - mid) / mid).powi(2).min(1.0);
            let base = (w * 40.0) as i64;
            base + self.rng.gen_range(0..20)
        })
        // lint:allow(L2): dims validated by the constructor (ages ≥ 1, days ≥ 1 via Zipf)
        .expect("valid dims")
    }

    /// The next arriving sale: `(age, day, amount)`, recency-skewed.
    pub fn next_sale(&mut self) -> ([usize; 2], i64) {
        let mid = self.ages as f64 / 2.0;
        // Sum of two uniforms ≈ triangular ≈ bell-ish age draw.
        let age = ((self.rng.gen::<f64>() + self.rng.gen::<f64>()) * mid) as usize;
        let age = age.min(self.ages - 1);
        // recency rank 0 = today = last day index.
        let rank = self.recency.sample(&mut self.rng);
        let day = self.days - 1 - rank;
        let amount = self.rng.gen_range(10..=500);
        ([age, day], amount)
    }

    /// A batch of arriving sales.
    pub fn sales_batch(&mut self, count: usize) -> Vec<([usize; 2], i64)> {
        (0..count).map(|_| self.next_sale()).collect()
    }

    /// The paper's example query: total sales for ages `lo_age..=hi_age`
    /// over the trailing `window_days` days.
    pub fn age_window_query(&self, lo_age: usize, hi_age: usize, window_days: usize) -> Region {
        let from_day = self.days.saturating_sub(window_days);
        // lint:allow(L2): documented precondition — lo_age ≤ hi_age < ages
        Region::new(&[lo_age, from_day], &[hi_age, self.days - 1]).expect("query within cube")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_cube_shape_and_determinism() {
        let a = SalesScenario::new(100, 365, 11).base_cube();
        let b = SalesScenario::new(100, 365, 11).base_cube();
        assert_eq!(a.shape().dims(), &[100, 365]);
        assert_eq!(a, b);
    }

    #[test]
    fn sales_in_bounds_and_recent_heavy() {
        let mut s = SalesScenario::new(100, 365, 5);
        let batch = s.sales_batch(3000);
        let mut recent = 0;
        for ([age, day], amount) in &batch {
            assert!(*age < 100 && *day < 365);
            assert!((10..=500).contains(amount));
            if *day >= 365 - 30 {
                recent += 1;
            }
        }
        // Zipf(0.9) recency: the last 30 of 365 days draw a large share.
        assert!(recent > 900, "recent sales: {recent}");
    }

    #[test]
    fn example_query_is_papers_shape() {
        let s = SalesScenario::new(100, 365, 1);
        let q = s.age_window_query(37, 52, 90); // "ages 37–52, past 3 months"
        assert_eq!(q.lo(), &[37, 275]);
        assert_eq!(q.hi(), &[52, 364]);
    }

    #[test]
    fn window_larger_than_history_clamps() {
        let s = SalesScenario::new(10, 20, 1);
        let q = s.age_window_query(0, 9, 100);
        assert_eq!(q.lo(), &[0, 0]);
    }

    #[test]
    fn age_distribution_is_mid_heavy() {
        let mut s = SalesScenario::new(100, 30, 9);
        let batch = s.sales_batch(5000);
        let mid = batch
            .iter()
            .filter(|([a, _], _)| (30..70).contains(a))
            .count();
        assert!(mid > 2500, "mid-age sales: {mid}");
    }
}
