//! A Zipf(θ) sampler over `0..n`, built from scratch (the `rand` crate in
//! this workspace's dependency budget has no Zipf distribution).
//!
//! OLAP update streams are famously skewed — most new facts land in a few
//! hot cells (recent dates, popular products). The benches use Zipf-skewed
//! coordinates to show the RPS update cost is insensitive to skew (its
//! worst case depends only on *where* in the box the update lands).

use rand::Rng;

/// Zipf-distributed ranks: `P(rank = i) ∝ 1 / (i+1)^θ` for `i ∈ 0..n`.
///
/// Sampling is O(log n) by binary search over the precomputed CDF;
/// construction is O(n).
///
/// ```
/// use rps_workload::Zipf;
/// use rand::{SeedableRng, rngs::StdRng};
/// let z = Zipf::new(100, 1.0);
/// let mut rng = StdRng::seed_from_u64(7);
/// let x = z.sample(&mut rng);
/// assert!(x < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf distribution over `0..n` with exponent `theta ≥ 0`
    /// (`theta = 0` is uniform; `theta = 1` is classic Zipf).
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n >= 1, "support must be non-empty");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "theta must be finite and ≥ 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the top end.
        // lint:allow(L2): the constructor asserts n ≥ 1, so cdf is non-empty
        *cdf.last_mut().expect("n >= 1") = 1.0;
        Zipf { cdf }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index with cdf ≥ u.
        match self
            .cdf
            // lint:allow(L2): cdf entries are finite sums of positive finite terms
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-12, "pmf({i}) = {}", z.pmf(i));
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        const N: usize = 20_000;
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut hits_top10 = 0;
        for _ in 0..N {
            if z.sample(&mut rng) < 10 {
                hits_top10 += 1;
            }
        }
        // Top 10 of 1000 ranks carry ~39% of the mass at θ = 1.
        let frac = hits_top10 as f64 / N as f64;
        assert!(frac > 0.30 && frac < 0.50, "frac = {frac}");
    }

    #[test]
    fn samples_in_range_and_deterministic() {
        let z = Zipf::new(7, 0.8);
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let x = z.sample(&mut a);
            assert!(x < 7);
            assert_eq!(x, z.sample(&mut b));
        }
    }

    #[test]
    fn monotone_pmf() {
        let z = Zipf::new(20, 1.5);
        for i in 1..20 {
            assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-12);
        }
    }
}
