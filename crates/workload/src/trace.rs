//! Operation traces: record a workload once, replay it anywhere.
//!
//! Benchmark comparability needs *identical* op sequences across engines,
//! machines and runs; a trace file pins the sequence down in a
//! line-oriented text format that diffs cleanly:
//!
//! ```text
//! RPSTRACE v1 dims=9x9
//! U 1,1 +5
//! Q 0,0:8,8
//! U 4,4 -2
//! ```

use std::io::{BufRead, BufReader, Read, Write};

use ndcube::Region;

use crate::stream::Op;

/// Errors from reading a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Underlying read failure (message form).
    Io(String),
    /// The header line is missing or malformed.
    BadHeader(String),
    /// A body line failed to parse.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "i/o error: {e}"),
            TraceError::BadHeader(h) => write!(f, "bad trace header `{h}`"),
            TraceError::BadLine { line, reason } => {
                write!(f, "trace line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

fn fmt_coords(c: &[usize]) -> String {
    c.iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_coords(s: &str, line: usize) -> Result<Vec<usize>, TraceError> {
    s.split(',')
        .map(|p| {
            p.trim().parse::<usize>().map_err(|e| TraceError::BadLine {
                line,
                reason: format!("bad coordinate `{p}`: {e}"),
            })
        })
        .collect()
}

/// Writes a trace: a header naming the cube dimensions, then one op per
/// line.
pub fn save_trace<W: Write>(dims: &[usize], ops: &[Op], mut w: W) -> std::io::Result<()> {
    let dims_str = dims
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("x");
    writeln!(w, "RPSTRACE v1 dims={dims_str}")?;
    for op in ops {
        match op {
            Op::Update { coords, delta } => {
                writeln!(w, "U {} {delta:+}", fmt_coords(coords))?;
            }
            Op::Query(region) => {
                writeln!(
                    w,
                    "Q {}:{}",
                    fmt_coords(region.lo()),
                    fmt_coords(region.hi())
                )?;
            }
        }
    }
    Ok(())
}

/// Reads a trace back: `(dims, ops)`.
pub fn load_trace<R: Read>(r: R) -> Result<(Vec<usize>, Vec<Op>), TraceError> {
    // Same guard as the snapshot loader: reject headers declaring absurd
    // cube sizes before any caller tries to allocate them.
    const MAX_TRACE_CELLS: u128 = 1 << 28;
    let mut lines = BufReader::new(r).lines();
    let header = lines
        .next()
        .ok_or_else(|| TraceError::BadHeader("<empty file>".into()))?
        .map_err(|e| TraceError::Io(e.to_string()))?;
    let dims_part = header
        .strip_prefix("RPSTRACE v1 dims=")
        .ok_or_else(|| TraceError::BadHeader(header.clone()))?;
    let dims: Vec<usize> = dims_part
        .split('x')
        .map(|p| {
            p.parse::<usize>()
                .map_err(|_| TraceError::BadHeader(header.clone()))
        })
        .collect::<Result<_, _>>()?;
    if dims.is_empty() || dims.contains(&0) {
        return Err(TraceError::BadHeader(header));
    }
    let cells = dims
        .iter()
        .fold(1u128, |acc, &d| acc.saturating_mul(d as u128));
    if cells > MAX_TRACE_CELLS {
        return Err(TraceError::BadHeader(format!(
            "{header} (declares {cells} cells, limit {MAX_TRACE_CELLS})"
        )));
    }

    let mut ops = Vec::new();
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let line = line.map_err(|e| TraceError::Io(e.to_string()))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (tag, rest) = line.split_once(' ').ok_or_else(|| TraceError::BadLine {
            line: line_no,
            reason: "missing operands".into(),
        })?;
        match tag {
            "U" => {
                let (coords_s, delta_s) =
                    rest.split_once(' ').ok_or_else(|| TraceError::BadLine {
                        line: line_no,
                        reason: "update needs `coords delta`".into(),
                    })?;
                let coords = parse_coords(coords_s, line_no)?;
                let delta = delta_s
                    .trim()
                    .parse::<i64>()
                    .map_err(|e| TraceError::BadLine {
                        line: line_no,
                        reason: format!("bad delta `{delta_s}`: {e}"),
                    })?;
                ops.push(Op::Update { coords, delta });
            }
            "Q" => {
                let (lo_s, hi_s) = rest.split_once(':').ok_or_else(|| TraceError::BadLine {
                    line: line_no,
                    reason: "query needs `lo:hi`".into(),
                })?;
                let lo = parse_coords(lo_s, line_no)?;
                let hi = parse_coords(hi_s, line_no)?;
                let region = Region::new(&lo, &hi).map_err(|e| TraceError::BadLine {
                    line: line_no,
                    reason: e.to_string(),
                })?;
                ops.push(Op::Query(region));
            }
            other => {
                return Err(TraceError::BadLine {
                    line: line_no,
                    reason: format!("unknown op tag `{other}`"),
                })
            }
        }
    }
    Ok((dims, ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MixedWorkload, QueryGen, RegionSpec, UpdateGen};

    #[test]
    fn round_trip() {
        let dims = [9usize, 9];
        let ops = MixedWorkload::new(
            UpdateGen::uniform(&dims, 1, 10),
            QueryGen::new(&dims, 2, RegionSpec::Fraction(0.5)),
            0.5,
            3,
        )
        .take(50);
        let mut buf = Vec::new();
        save_trace(&dims, &ops, &mut buf).unwrap();
        let (dims2, ops2) = load_trace(&buf[..]).unwrap();
        assert_eq!(dims2, dims.to_vec());
        assert_eq!(ops2, ops);
    }

    #[test]
    fn format_is_human_readable() {
        let ops = vec![
            Op::Update {
                coords: vec![1, 1],
                delta: 5,
            },
            Op::Query(Region::new(&[0, 0], &[8, 8]).unwrap()),
            Op::Update {
                coords: vec![4, 4],
                delta: -2,
            },
        ];
        let mut buf = Vec::new();
        save_trace(&[9, 9], &ops, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(
            text,
            "RPSTRACE v1 dims=9x9\nU 1,1 +5\nQ 0,0:8,8\nU 4,4 -2\n"
        );
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "RPSTRACE v1 dims=4x4\n# a comment\n\nU 0,0 +1\n";
        let (dims, ops) = load_trace(text.as_bytes()).unwrap();
        assert_eq!(dims, vec![4, 4]);
        assert_eq!(ops.len(), 1);
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(
            load_trace("".as_bytes()),
            Err(TraceError::BadHeader(_))
        ));
        assert!(matches!(
            load_trace("WRONG v1 dims=2x2\n".as_bytes()),
            Err(TraceError::BadHeader(_))
        ));
        let bad_line = "RPSTRACE v1 dims=4x4\nX 0,0\n";
        assert!(matches!(
            load_trace(bad_line.as_bytes()),
            Err(TraceError::BadLine { line: 2, .. })
        ));
        let bad_region = "RPSTRACE v1 dims=4x4\nQ 3,3:1,1\n";
        assert!(matches!(
            load_trace(bad_region.as_bytes()),
            Err(TraceError::BadLine { line: 2, .. })
        ));
    }

    #[test]
    fn negative_deltas_round_trip() {
        let ops = vec![Op::Update {
            coords: vec![2],
            delta: -1000,
        }];
        let mut buf = Vec::new();
        save_trace(&[5], &ops, &mut buf).unwrap();
        let (_, back) = load_trace(&buf[..]).unwrap();
        assert_eq!(back, ops);
    }
}
