//! Dimension schemas: mapping real attribute values to cube indices.
//!
//! The paper's model (§2) assumes each dimension's distinct values are
//! already dense integers `0..nᵢ`. Real functional attributes are ages,
//! dates, product names — this module supplies the mapping layer so the
//! examples and CLI can speak in attribute values ("ages 37–52", "region
//! = West") while the engines speak in indices.

use std::collections::HashMap;

use ndcube::{NdError, Region};

/// One functional attribute of the cube.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dimension {
    /// A dense integer attribute spanning `min ..= max` (e.g. AGE 0–99,
    /// or DAY as days-since-epoch for a fixed year).
    Numeric {
        /// Attribute name (e.g. `CUSTOMER_AGE`).
        name: String,
        /// Smallest attribute value (maps to index 0).
        min: i64,
        /// Largest attribute value (inclusive).
        max: i64,
    },
    /// An enumerated attribute with named members (e.g. REGION).
    Categorical {
        /// Attribute name.
        name: String,
        /// Member labels in index order.
        labels: Vec<String>,
    },
}

impl Dimension {
    /// A numeric dimension.
    pub fn numeric(name: &str, min: i64, max: i64) -> Dimension {
        assert!(min <= max, "numeric dimension needs min ≤ max");
        Dimension::Numeric {
            name: name.to_string(),
            min,
            max,
        }
    }

    /// A categorical dimension.
    pub fn categorical(name: &str, labels: &[&str]) -> Dimension {
        assert!(!labels.is_empty(), "categorical dimension needs members");
        Dimension::Categorical {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
        }
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        match self {
            Dimension::Numeric { name, .. } | Dimension::Categorical { name, .. } => name,
        }
    }

    /// Number of distinct values — the paper's `nᵢ`.
    pub fn size(&self) -> usize {
        match self {
            Dimension::Numeric { min, max, .. } => (max - min + 1) as usize,
            Dimension::Categorical { labels, .. } => labels.len(),
        }
    }
}

/// A coordinate along one dimension, in attribute terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Key<'a> {
    /// A numeric attribute value.
    Num(i64),
    /// A categorical label.
    Cat(&'a str),
}

/// A cube schema: an ordered list of dimensions plus value↔index mapping.
///
/// ```
/// use rps_workload::{CubeSchema, Dimension, Key};
///
/// let schema = CubeSchema::new(vec![
///     Dimension::numeric("AGE", 18, 99),
///     Dimension::categorical("REGION", &["East", "West"]),
/// ]);
/// assert_eq!(schema.dims(), vec![82, 2]);
/// let coords = schema.coords(&[Key::Num(37), Key::Cat("West")]).unwrap();
/// assert_eq!(coords, vec![19, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct CubeSchema {
    dimensions: Vec<Dimension>,
    /// Per categorical dimension: label → index.
    lookups: Vec<Option<HashMap<String, usize>>>,
}

impl CubeSchema {
    /// Builds a schema from dimensions.
    pub fn new(dimensions: Vec<Dimension>) -> CubeSchema {
        let lookups = dimensions
            .iter()
            .map(|d| match d {
                Dimension::Numeric { .. } => None,
                Dimension::Categorical { labels, .. } => Some(
                    labels
                        .iter()
                        .enumerate()
                        .map(|(i, l)| (l.clone(), i))
                        .collect(),
                ),
            })
            .collect();
        CubeSchema {
            dimensions,
            lookups,
        }
    }

    /// The dimensions, in order.
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dimensions
    }

    /// Cube shape: the `nᵢ` per dimension.
    pub fn dims(&self) -> Vec<usize> {
        self.dimensions.iter().map(Dimension::size).collect()
    }

    /// Index of the dimension with the given attribute name.
    pub fn dim_index(&self, name: &str) -> Option<usize> {
        self.dimensions.iter().position(|d| d.name() == name)
    }

    /// Maps one attribute value to its index along dimension `dim`.
    pub fn index_of(&self, dim: usize, key: &Key) -> Result<usize, NdError> {
        let out_of_bounds = |coord: usize| NdError::OutOfBounds {
            dim,
            coord,
            size: self.dimensions[dim].size(),
        };
        match (&self.dimensions[dim], key) {
            (Dimension::Numeric { min, max, .. }, Key::Num(v)) => {
                if v < min || v > max {
                    // Saturate the reported coordinate for the error.
                    Err(out_of_bounds(usize::MAX))
                } else {
                    Ok((v - min) as usize)
                }
            }
            (Dimension::Categorical { .. }, Key::Cat(label)) => self.lookups[dim]
                .as_ref()
                // lint:allow(L2): the constructor builds a lookup for every categorical dim
                .expect("categorical lookup exists")
                .get(*label)
                .copied()
                .ok_or_else(|| out_of_bounds(usize::MAX)),
            // Key kind mismatch: report as a dimension mismatch.
            _ => Err(NdError::DimMismatch {
                expected: dim,
                got: dim,
            }),
        }
    }

    /// Maps a full attribute-value coordinate to cube indices.
    pub fn coords(&self, keys: &[Key]) -> Result<Vec<usize>, NdError> {
        if keys.len() != self.dimensions.len() {
            return Err(NdError::DimMismatch {
                expected: self.dimensions.len(),
                got: keys.len(),
            });
        }
        keys.iter()
            .enumerate()
            .map(|(d, k)| self.index_of(d, k))
            .collect()
    }

    /// Builds a region from inclusive per-dimension attribute ranges.
    ///
    /// Categorical ranges select a contiguous run of members in label
    /// order (`("East", "South")` selects every region between those
    /// labels' indices).
    pub fn region(&self, lo: &[Key], hi: &[Key]) -> Result<Region, NdError> {
        let lo = self.coords(lo)?;
        let hi = self.coords(hi)?;
        Region::new(&lo, &hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales_schema() -> CubeSchema {
        CubeSchema::new(vec![
            Dimension::numeric("CUSTOMER_AGE", 18, 99),
            Dimension::numeric("DAY", 0, 364),
            Dimension::categorical("REGION", &["East", "North", "South", "West"]),
        ])
    }

    #[test]
    fn shape_from_schema() {
        let s = sales_schema();
        assert_eq!(s.dims(), vec![82, 365, 4]);
        assert_eq!(s.dim_index("DAY"), Some(1));
        assert_eq!(s.dim_index("NOPE"), None);
    }

    #[test]
    fn coords_round_trip() {
        let s = sales_schema();
        let c = s
            .coords(&[Key::Num(37), Key::Num(275), Key::Cat("South")])
            .unwrap();
        assert_eq!(c, vec![19, 275, 2]);
    }

    #[test]
    fn region_in_attribute_terms() {
        let s = sales_schema();
        // "ages 37–52, past 3 months, regions North..West"
        let r = s
            .region(
                &[Key::Num(37), Key::Num(275), Key::Cat("North")],
                &[Key::Num(52), Key::Num(364), Key::Cat("West")],
            )
            .unwrap();
        assert_eq!(r.lo(), &[19, 275, 1]);
        assert_eq!(r.hi(), &[34, 364, 3]);
    }

    #[test]
    fn rejects_out_of_domain() {
        let s = sales_schema();
        assert!(s.index_of(0, &Key::Num(17)).is_err()); // below min age
        assert!(s.index_of(0, &Key::Num(100)).is_err());
        assert!(s.index_of(2, &Key::Cat("Mars")).is_err());
        assert!(s.index_of(2, &Key::Num(1)).is_err()); // kind mismatch
        assert!(s.coords(&[Key::Num(20)]).is_err()); // arity
    }

    #[test]
    fn schema_drives_an_engine() {
        use rps_core::{RangeSumEngine, RpsEngine};
        let s = CubeSchema::new(vec![
            Dimension::numeric("AGE", 18, 27),
            Dimension::categorical("REGION", &["E", "W"]),
        ]);
        let mut engine = RpsEngine::<i64>::zeros(&s.dims()).unwrap();
        let c = s.coords(&[Key::Num(21), Key::Cat("W")]).unwrap();
        engine.update(&c, 500).unwrap();
        let r = s
            .region(
                &[Key::Num(18), Key::Cat("E")],
                &[Key::Num(27), Key::Cat("W")],
            )
            .unwrap();
        assert_eq!(engine.query(&r).unwrap(), 500);
    }
}
