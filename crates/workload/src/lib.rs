//! # rps-workload — deterministic workload generation
//!
//! Drives the benches, examples and integration tests of the RPS
//! reproduction: seeded random data cubes, skewed (Zipf) and uniform
//! update/query streams, and the paper's motivating OLAP scenario —
//! a SALES cube over CUSTOMER_AGE × DATE receiving daily updates while
//! analysts run range-sum queries ("total sales to customers aged 37–52
//! over the past three months").
//!
//! Everything is deterministic given a seed, so experiment tables are
//! reproducible run to run.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cubegen;
pub mod scenario;
pub mod schema;
pub mod stream;
pub mod trace;
pub mod zipf;

pub use cubegen::CubeGen;
pub use scenario::SalesScenario;
pub use schema::{CubeSchema, Dimension, Key};
pub use stream::{MixedWorkload, Op, QueryGen, RegionSpec, UpdateGen, UpdateSpec};
pub use trace::{load_trace, save_trace, TraceError};
pub use zipf::Zipf;
