//! Update and query streams: the operation mixes the benches replay
//! against every engine.

use ndcube::Region;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// One operation of a mixed workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Add `1` fact worth `delta` at the cell.
    Update {
        /// Target cell.
        coords: Vec<usize>,
        /// Measure delta.
        delta: i64,
    },
    /// Range-sum over the region.
    Query(Region),
}

/// Shape of generated query regions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RegionSpec {
    /// A single cell.
    Point,
    /// Hyper-rectangles whose extent per dimension is uniform in
    /// `1..=⌈fraction·nᵢ⌉`.
    Fraction(f64),
    /// The full cube.
    Full,
}

/// Shape of generated update rectangles — the update-rectangle size
/// knob for bulk (`range_update`) streams.
///
/// The text form round-trips through [`std::fmt::Display`] /
/// [`std::str::FromStr`]: `point`, `frac:0.25`, `full-row`, `full`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateSpec {
    /// A single cell (degenerate rectangle).
    Point,
    /// Hyper-rectangles whose extent per dimension is uniform in
    /// `1..=⌈fraction·nᵢ⌉`, like [`RegionSpec::Fraction`].
    Fraction(f64),
    /// Spans the entire innermost dimension; a single coordinate on
    /// every other axis ("update one whole row").
    FullRow,
    /// The full cube.
    Full,
}

impl std::fmt::Display for UpdateSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateSpec::Point => write!(f, "point"),
            UpdateSpec::Fraction(frac) => write!(f, "frac:{frac}"),
            UpdateSpec::FullRow => write!(f, "full-row"),
            UpdateSpec::Full => write!(f, "full"),
        }
    }
}

impl std::str::FromStr for UpdateSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<UpdateSpec, String> {
        match s.trim() {
            "point" => Ok(UpdateSpec::Point),
            "full-row" => Ok(UpdateSpec::FullRow),
            "full" => Ok(UpdateSpec::Full),
            other => {
                let frac = other
                    .strip_prefix("frac:")
                    .ok_or_else(|| format!("unknown update spec `{other}` (want point | frac:F | full-row | full)"))?;
                let f: f64 = frac
                    .parse()
                    .map_err(|e| format!("bad fraction `{frac}`: {e}"))?;
                if !(f > 0.0 && f <= 1.0) {
                    return Err(format!("fraction {f} outside (0, 1]"));
                }
                Ok(UpdateSpec::Fraction(f))
            }
        }
    }
}

/// Deterministic generator of point updates.
#[derive(Debug)]
pub struct UpdateGen {
    dims: Vec<usize>,
    rng: StdRng,
    /// Optional per-dimension Zipf skew (None = uniform coordinates).
    skew: Option<Vec<Zipf>>,
    max_delta: i64,
    /// Rectangle shape used by [`UpdateGen::next_range_update`].
    spec: UpdateSpec,
}

impl UpdateGen {
    /// Uniform-coordinate updates with deltas in `1..=max_delta`.
    pub fn uniform(dims: &[usize], seed: u64, max_delta: i64) -> UpdateGen {
        assert!(max_delta >= 1);
        assert!(!dims.is_empty() && !dims.contains(&0), "dims must be non-zero");
        UpdateGen {
            dims: dims.to_vec(),
            rng: StdRng::seed_from_u64(seed),
            skew: None,
            max_delta,
            spec: UpdateSpec::Point,
        }
    }

    /// Zipf(θ)-skewed coordinates per dimension — hot-cell update streams.
    pub fn zipf(dims: &[usize], seed: u64, theta: f64, max_delta: i64) -> UpdateGen {
        assert!(!dims.is_empty() && !dims.contains(&0), "dims must be non-zero");
        let skew = dims.iter().map(|&n| Zipf::new(n, theta)).collect();
        UpdateGen {
            dims: dims.to_vec(),
            rng: StdRng::seed_from_u64(seed),
            skew: Some(skew),
            max_delta,
            spec: UpdateSpec::Point,
        }
    }

    /// Sets the rectangle shape drawn by [`UpdateGen::next_range_update`].
    pub fn with_region_spec(mut self, spec: UpdateSpec) -> UpdateGen {
        self.spec = spec;
        self
    }

    fn draw_coords(&mut self) -> Vec<usize> {
        match &self.skew {
            None => self
                .dims
                .iter()
                .map(|&n| self.rng.gen_range(0..n))
                .collect(),
            Some(zipfs) => zipfs.iter().map(|z| z.sample(&mut self.rng)).collect(),
        }
    }

    /// Draws the next update.
    pub fn next_update(&mut self) -> (Vec<usize>, i64) {
        let coords = self.draw_coords();
        let delta = self.rng.gen_range(1..=self.max_delta);
        (coords, delta)
    }

    /// Draws the next bulk update: a rectangle shaped by the configured
    /// [`UpdateSpec`] plus the per-cell delta to add inside it.
    pub fn next_range_update(&mut self) -> (Region, i64) {
        let region = match self.spec {
            UpdateSpec::Point => {
                let c = self.draw_coords();
                // lint:allow(L2): each coordinate is drawn from 0..n of its own axis
                Region::point(&c).expect("point in bounds")
            }
            UpdateSpec::Full => {
                let hi: Vec<usize> = self.dims.iter().map(|&n| n - 1).collect();
                // lint:allow(L2): 0 ≤ n−1 because generator dims are validated non-zero
                Region::new(&vec![0; self.dims.len()], &hi).expect("full region")
            }
            UpdateSpec::FullRow => {
                let mut lo = self.draw_coords();
                let mut hi = lo.clone();
                let last = self.dims.len() - 1;
                lo[last] = 0;
                hi[last] = self.dims[last] - 1;
                // lint:allow(L2): per-axis coords drawn in bounds; last axis spans 0..n−1
                Region::new(&lo, &hi).expect("in bounds")
            }
            UpdateSpec::Fraction(f) => {
                let mut lo = Vec::with_capacity(self.dims.len());
                let mut hi = Vec::with_capacity(self.dims.len());
                for &n in &self.dims {
                    let max_extent = ((n as f64 * f).ceil() as usize).clamp(1, n);
                    let extent = self.rng.gen_range(1..=max_extent);
                    let start = self.rng.gen_range(0..=n - extent);
                    lo.push(start);
                    hi.push(start + extent - 1);
                }
                // lint:allow(L2): start + extent − 1 ≤ n − 1 by the ranges drawn above
                Region::new(&lo, &hi).expect("in bounds")
            }
        };
        let delta = self.rng.gen_range(1..=self.max_delta);
        (region, delta)
    }

    /// Materializes a batch of `count` updates.
    pub fn take(&mut self, count: usize) -> Vec<(Vec<usize>, i64)> {
        (0..count).map(|_| self.next_update()).collect()
    }
}

/// Deterministic generator of query regions.
#[derive(Debug)]
pub struct QueryGen {
    dims: Vec<usize>,
    rng: StdRng,
    spec: RegionSpec,
}

impl QueryGen {
    /// A query generator for the given cube dimensions.
    pub fn new(dims: &[usize], seed: u64, spec: RegionSpec) -> QueryGen {
        QueryGen {
            dims: dims.to_vec(),
            rng: StdRng::seed_from_u64(seed),
            spec,
        }
    }

    /// Draws the next query region.
    pub fn next_region(&mut self) -> Region {
        match self.spec {
            RegionSpec::Point => {
                let c: Vec<usize> = self
                    .dims
                    .iter()
                    .map(|&n| self.rng.gen_range(0..n))
                    .collect();
                // lint:allow(L2): each coordinate is drawn from 0..n of its own axis
                Region::point(&c).expect("point in bounds")
            }
            RegionSpec::Full => {
                let hi: Vec<usize> = self.dims.iter().map(|&n| n - 1).collect();
                // lint:allow(L2): 0 ≤ n−1 because generator dims are validated non-zero
                Region::new(&vec![0; self.dims.len()], &hi).expect("full region")
            }
            RegionSpec::Fraction(f) => {
                let mut lo = Vec::with_capacity(self.dims.len());
                let mut hi = Vec::with_capacity(self.dims.len());
                for &n in &self.dims {
                    let max_extent = ((n as f64 * f).ceil() as usize).clamp(1, n);
                    let extent = self.rng.gen_range(1..=max_extent);
                    let start = self.rng.gen_range(0..=n - extent);
                    lo.push(start);
                    hi.push(start + extent - 1);
                }
                // lint:allow(L2): start + extent − 1 ≤ n − 1 by the ranges drawn above
                Region::new(&lo, &hi).expect("in bounds")
            }
        }
    }

    /// Materializes a batch of `count` regions.
    pub fn take(&mut self, count: usize) -> Vec<Region> {
        (0..count).map(|_| self.next_region()).collect()
    }
}

/// Interleaved queries and updates with a fixed query ratio — the
/// "analysts keep querying while sales keep arriving" workload the paper
/// motivates.
#[derive(Debug)]
pub struct MixedWorkload {
    updates: UpdateGen,
    queries: QueryGen,
    query_ratio: f64,
    rng: StdRng,
}

impl MixedWorkload {
    /// A workload where each operation is a query with probability
    /// `query_ratio`, else an update.
    pub fn new(updates: UpdateGen, queries: QueryGen, query_ratio: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&query_ratio));
        MixedWorkload {
            updates,
            queries,
            query_ratio,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> Op {
        if self.rng.gen::<f64>() < self.query_ratio {
            Op::Query(self.queries.next_region())
        } else {
            let (coords, delta) = self.updates.next_update();
            Op::Update { coords, delta }
        }
    }

    /// Materializes a batch of `count` operations.
    pub fn take(&mut self, count: usize) -> Vec<Op> {
        (0..count).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_in_bounds_and_deterministic() {
        let mut a = UpdateGen::uniform(&[9, 9], 5, 10);
        let mut b = UpdateGen::uniform(&[9, 9], 5, 10);
        for _ in 0..50 {
            let (c, d) = a.next_update();
            assert_eq!((c.clone(), d), b.next_update());
            assert!(c.iter().all(|&x| x < 9));
            assert!((1..=10).contains(&d));
        }
    }

    #[test]
    fn zipf_updates_prefer_low_coords() {
        let mut g = UpdateGen::zipf(&[100, 100], 3, 1.2, 5);
        let batch = g.take(2000);
        let low = batch.iter().filter(|(c, _)| c[0] < 10).count();
        assert!(low > 500, "low-coordinate hits: {low}");
    }

    #[test]
    fn fraction_queries_bounded() {
        let mut g = QueryGen::new(&[20, 30], 7, RegionSpec::Fraction(0.25));
        for r in g.take(100) {
            assert!(r.extent(0) <= 5);
            assert!(r.extent(1) <= 8);
            assert!(r.hi()[0] < 20 && r.hi()[1] < 30);
        }
    }

    #[test]
    fn point_and_full_specs() {
        let mut p = QueryGen::new(&[4, 4], 1, RegionSpec::Point);
        assert_eq!(p.next_region().cell_count(), 1);
        let mut f = QueryGen::new(&[4, 4], 1, RegionSpec::Full);
        assert_eq!(f.next_region().cell_count(), 16);
    }

    #[test]
    fn mixed_ratio_roughly_respected() {
        let u = UpdateGen::uniform(&[8, 8], 1, 3);
        let q = QueryGen::new(&[8, 8], 2, RegionSpec::Fraction(0.5));
        let mut w = MixedWorkload::new(u, q, 0.7, 3);
        let ops = w.take(1000);
        let queries = ops.iter().filter(|o| matches!(o, Op::Query(_))).count();
        assert!((550..850).contains(&queries), "queries = {queries}");
    }

    #[test]
    fn update_spec_round_trips_through_text() {
        let specs = [
            UpdateSpec::Point,
            UpdateSpec::Fraction(0.25),
            UpdateSpec::Fraction(0.01),
            UpdateSpec::FullRow,
            UpdateSpec::Full,
        ];
        for spec in specs {
            let text = spec.to_string();
            let back: UpdateSpec = text.parse().unwrap();
            assert_eq!(back, spec, "`{text}` did not round-trip");
        }
        assert_eq!("point".parse::<UpdateSpec>().unwrap(), UpdateSpec::Point);
        assert_eq!(
            " frac:0.5 ".parse::<UpdateSpec>().unwrap(),
            UpdateSpec::Fraction(0.5)
        );
    }

    #[test]
    fn update_spec_rejects_malformed() {
        assert!("row".parse::<UpdateSpec>().is_err());
        assert!("frac:".parse::<UpdateSpec>().is_err());
        assert!("frac:0".parse::<UpdateSpec>().is_err());
        assert!("frac:1.5".parse::<UpdateSpec>().is_err());
        assert!("frac:-0.1".parse::<UpdateSpec>().is_err());
        assert!("frac:abc".parse::<UpdateSpec>().is_err());
        assert!("".parse::<UpdateSpec>().is_err());
    }

    #[test]
    fn range_updates_match_their_spec() {
        let dims = [20usize, 30];
        let mut point = UpdateGen::uniform(&dims, 1, 5).with_region_spec(UpdateSpec::Point);
        let (r, d) = point.next_range_update();
        assert_eq!(r.cell_count(), 1);
        assert!((1..=5).contains(&d));

        let mut full = UpdateGen::uniform(&dims, 1, 5).with_region_spec(UpdateSpec::Full);
        assert_eq!(full.next_range_update().0.cell_count(), 600);

        let mut row = UpdateGen::uniform(&dims, 1, 5).with_region_spec(UpdateSpec::FullRow);
        for _ in 0..20 {
            let (r, _) = row.next_range_update();
            assert_eq!(r.extent(0), 1);
            assert_eq!(r.extent(1), 30);
        }

        let mut frac =
            UpdateGen::uniform(&dims, 1, 5).with_region_spec(UpdateSpec::Fraction(0.25));
        for _ in 0..50 {
            let (r, _) = frac.next_range_update();
            assert!(r.extent(0) <= 5);
            assert!(r.extent(1) <= 8);
            assert!(r.hi()[0] < 20 && r.hi()[1] < 30);
        }
    }

    #[test]
    fn range_updates_are_deterministic() {
        let mk = || {
            UpdateGen::zipf(&[16, 16], 9, 1.1, 7).with_region_spec(UpdateSpec::Fraction(0.5))
        };
        let a: Vec<_> = {
            let mut g = mk();
            (0..32).map(|_| g.next_range_update()).collect()
        };
        let b: Vec<_> = {
            let mut g = mk();
            (0..32).map(|_| g.next_range_update()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_is_deterministic() {
        let mk = || {
            MixedWorkload::new(
                UpdateGen::uniform(&[8, 8], 1, 3),
                QueryGen::new(&[8, 8], 2, RegionSpec::Fraction(0.5)),
                0.5,
                3,
            )
        };
        assert_eq!(mk().take(64), mk().take(64));
    }
}
