//! Seeded data-cube generators.

use ndcube::{NdCube, NdError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Deterministic generator of synthetic data cubes.
///
/// Every method takes the dimensions and draws from a `StdRng` seeded at
/// construction, so a `(seed, dims, method)` triple always produces the
/// same cube.
///
/// ```
/// use rps_workload::CubeGen;
/// let a = CubeGen::new(7).uniform(&[4, 4], 0, 9);
/// let b = CubeGen::new(7).uniform(&[4, 4], 0, 9);
/// assert_eq!(a, b); // same seed, same cube
/// ```
#[derive(Debug)]
pub struct CubeGen {
    rng: StdRng,
}

impl CubeGen {
    /// A generator with a fixed seed.
    pub fn new(seed: u64) -> CubeGen {
        CubeGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Cube with every cell drawn uniformly from `lo..=hi`.
    ///
    /// Mirrors the paper's running example (Figure 1 uses small uniform
    /// values 1..9).
    pub fn uniform(&mut self, dims: &[usize], lo: i64, hi: i64) -> Result<NdCube<i64>, NdError> {
        assert!(lo <= hi);
        NdCube::from_fn(dims, |_| self.rng.gen_range(lo..=hi))
    }

    /// Sparse cube: each cell is nonzero with probability `density`, with
    /// nonzero values uniform in `1..=max`. OLAP cubes are typically very
    /// sparse.
    pub fn sparse(
        &mut self,
        dims: &[usize],
        density: f64,
        max: i64,
    ) -> Result<NdCube<i64>, NdError> {
        assert!((0.0..=1.0).contains(&density));
        assert!(max >= 1);
        NdCube::from_fn(dims, |_| {
            if self.rng.gen::<f64>() < density {
                self.rng.gen_range(1..=max)
            } else {
                0
            }
        })
    }

    /// Skewed cube: cell magnitudes follow Zipf ranks along the first
    /// dimension (hot rows), modelling e.g. recent dates dominating sales.
    pub fn zipf_rows(
        &mut self,
        dims: &[usize],
        theta: f64,
        scale: i64,
    ) -> Result<NdCube<i64>, NdError> {
        let z = Zipf::new(dims[0], theta);
        NdCube::from_fn(dims, |c| {
            let weight = z.pmf(c[0]) * dims[0] as f64;
            let base = (weight * scale as f64).round() as i64;
            base + self.rng.gen_range(0..=scale / 10 + 1)
        })
    }

    /// The raw RNG, for ad-hoc draws sharing the generator's seed stream.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = CubeGen::new(9).uniform(&[6, 6], 0, 100);
        let b = CubeGen::new(9).uniform(&[6, 6], 0, 100);
        let c = CubeGen::new(10).uniform(&[6, 6], 0, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_bounds() {
        let cube = CubeGen::new(1).uniform(&[10, 10], -5, 5).unwrap();
        assert!(cube.as_slice().iter().all(|&v| (-5..=5).contains(&v)));
    }

    #[test]
    fn sparse_density_approximate() {
        let cube = CubeGen::new(2).sparse(&[50, 50], 0.1, 9).unwrap();
        let nonzero = cube.as_slice().iter().filter(|&&v| v != 0).count();
        let frac = nonzero as f64 / 2500.0;
        assert!(frac > 0.05 && frac < 0.16, "frac = {frac}");
        assert!(cube.as_slice().iter().all(|&v| (0..=9).contains(&v)));
    }

    #[test]
    fn zipf_rows_front_loaded() {
        let cube = CubeGen::new(3).zipf_rows(&[20, 8], 1.2, 1000).unwrap();
        let row_sum = |r: usize| -> i64 { (0..8).map(|c| cube.get(&[r, c])).sum() };
        assert!(
            row_sum(0) > row_sum(19),
            "{} vs {}",
            row_sum(0),
            row_sum(19)
        );
    }

    #[test]
    fn three_dim_generation() {
        let cube = CubeGen::new(4).uniform(&[4, 5, 6], 1, 9).unwrap();
        assert_eq!(cube.len(), 120);
    }
}
