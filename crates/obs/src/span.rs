//! Span timers: scoped latency measurement that respects the global
//! timing gate.
//!
//! A [`Span`] is the only sanctioned way to read the clock from
//! hot-path code (repo lint L6 flags raw `std::time::Instant` use
//! there): when timing is disabled ([`crate::set_timing`]) entering and
//! dropping a span costs one relaxed `bool` load and nothing else — no
//! clock read, no histogram traffic, no trace event.

use std::time::Instant;

use crate::{timing_enabled, trace, Histogram};

/// Converts a [`std::time::Duration`] to whole nanoseconds, saturating
/// (a >584-year span is not a latency).
fn ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// A free-standing timer for code that wants the elapsed value itself
/// (e.g. to record into one of several histograms depending on the
/// outcome). Obeys the timing gate: when disabled, `elapsed_ns` is
/// `None` and nothing was measured.
#[derive(Debug)]
pub struct Stopwatch {
    start: Option<Instant>,
}

impl Stopwatch {
    /// Starts the watch (a no-op when timing is disabled).
    #[inline]
    #[must_use]
    pub fn start() -> Self {
        Stopwatch {
            start: timing_enabled().then(Instant::now),
        }
    }

    /// Nanoseconds since [`Stopwatch::start`], or `None` when timing was
    /// disabled at start time.
    #[inline]
    #[must_use]
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.start.map(|s| ns(s.elapsed()))
    }

    /// Records the elapsed time into `hist` (no-op when disabled).
    #[inline]
    pub fn record(self, hist: &Histogram) {
        if let Some(v) = self.elapsed_ns() {
            hist.record(v);
        }
    }
}

/// A scoped span: on drop, records elapsed nanoseconds into its
/// histogram and, if a trace ring is installed ([`trace::install`]),
/// appends a [`crate::TraceEvent`].
///
/// Span names are static, dot-separated `subsystem.operation` strings
/// (`rps.query`, `wal.fsync`, `pool.miss` — see
/// docs/OBSERVABILITY.md for the conventions) so tracing never
/// allocates or formats on the hot path.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    hist: &'static Histogram,
    start: Option<Instant>,
}

impl Span {
    /// Enters a span over `hist` (a no-op when timing is disabled).
    #[inline]
    #[must_use]
    pub fn enter(name: &'static str, hist: &'static Histogram) -> Self {
        Span {
            name,
            hist,
            start: timing_enabled().then(Instant::now),
        }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let dur_ns = ns(start.elapsed());
            self.hist.record(dur_ns);
            trace::push(self.name, start, dur_ns);
        }
    }
}
