//! Fixed-bucket log2 histograms for latency distributions.
//!
//! One atomic `fetch_add` into a power-of-two bucket plus a saturating
//! sum/count update per sample — wait-free apart from the (uncontended
//! in practice) saturating-sum CAS, and allocation-free always. Bucket
//! boundaries are compile-time fixed so a `Histogram` is
//! `const`-constructible and can live in a `static` next to the
//! counters it complements.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of *finite* buckets. Bucket `i` counts samples `v` with
/// `v <= 2^i` (and `v > 2^(i-1)` for `i >= 1`); everything above
/// `2^(BUCKETS-1)` lands in the overflow bucket. With nanosecond
/// samples the largest finite bound is 2³¹ ns ≈ 2.1 s — anything slower
/// than that is an outage, not a latency.
pub const BUCKETS: usize = 32;

/// Total storage slots: the finite buckets plus the overflow bucket.
pub const SLOTS: usize = BUCKETS + 1;

/// Bucket index for a sample: `0` for `v <= 1`, else `ceil(log2 v)`,
/// clamped into the overflow slot.
#[inline]
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        let idx = 64 - (v - 1).leading_zeros() as usize;
        idx.min(BUCKETS)
    }
}

/// Inclusive upper bound of finite bucket `i`, or `None` for the
/// overflow bucket (`le="+Inf"` in exposition).
#[must_use]
pub fn upper_bound(i: usize) -> Option<u64> {
    (i < BUCKETS).then(|| 1u64 << i)
}

/// A wait-free log2 latency histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; SLOTS],
    /// Saturating sum of all samples (so a pathological sample stream
    /// degrades the mean, never wraps it back towards zero).
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; SLOTS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one sample. Relaxed ordering throughout: cross-thread
    /// sums may transiently disagree with counts mid-update, which is
    /// fine for statistics and free for the hot path.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating add needs a CAS loop; contention is negligible for
        // per-metric statics and the loop body allocates nothing.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Saturating sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts, sum and count. Racy
    /// across cells (samples may land between loads) but each cell is
    /// exact; good enough for exposition.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; SLOTS];
        for (slot, out) in self.buckets.iter().zip(buckets.iter_mut()) {
            *out = slot.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum(),
            count: self.count(),
        }
    }

    /// Zeroes every cell (see [`crate::Counter::reset`]).
    pub fn reset(&self) {
        for slot in &self.buckets {
            slot.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) sample counts; index [`BUCKETS`] is
    /// the overflow bucket.
    pub buckets: [u64; SLOTS],
    /// Saturating sum of samples.
    pub sum: u64,
    /// Total samples.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Smallest finite bucket bound `b` such that at least
    /// `q` (in `0..=1000`, permille) of samples are `<= b`; `None` when
    /// the quantile falls in the overflow bucket or the histogram is
    /// empty. Coarse by construction (power-of-two resolution).
    #[must_use]
    pub fn quantile_bound(&self, q_permille: u64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (self.count.saturating_mul(q_permille)).div_ceil(1000);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return upper_bound(i);
            }
        }
        None
    }
}
