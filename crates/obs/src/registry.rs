//! Static metric registration and Prometheus-style text exposition.
//!
//! Metrics are `&'static` atomics (see [`crate::Counter`],
//! [`crate::Histogram`]); the registry holds only *metadata* plus a
//! reference, so the hot path never touches it — registration happens
//! once per process (each subsystem guards its own `OnceLock`), and
//! exposition walks the entries under a mutex that no fast path ever
//! takes.

use std::sync::{Mutex, OnceLock};

use crate::histogram::{upper_bound, HistogramSnapshot, BUCKETS};
use crate::{Counter, Gauge, Histogram};

/// What a registered metric is, for `# TYPE` lines and pretty-printing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonic event count.
    Counter,
    /// Last-value-wins measurement.
    Gauge,
    /// Log2 latency distribution.
    Histogram,
}

impl Kind {
    /// The Prometheus `# TYPE` keyword.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// Metric metadata: everything docs/OBSERVABILITY.md catalogs.
#[derive(Debug, Clone, Copy)]
pub struct Desc {
    /// Exposition name, e.g. `rps_engine_queries_total`.
    pub name: &'static str,
    /// One-line human description (the `# HELP` text).
    pub help: &'static str,
    /// Unit of the value or samples: `ops`, `ns`, `pages`, …
    pub unit: &'static str,
    /// Which subsystem emits it: `rps-core`, `storage`, `cli`, …
    pub subsystem: &'static str,
    /// Fixed label pairs, e.g. `&[("engine", "rps")]`. Metrics sharing a
    /// name with different labels are one logical family.
    pub labels: &'static [(&'static str, &'static str)],
    /// Metric kind.
    pub kind: Kind,
}

enum Handle {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// A point-in-time value of one registered metric.
///
/// Sized by its histogram variant (a full bucket array); samples are
/// exposition-path only, so compactness is irrelevant.
#[derive(Debug, Clone, Copy)]
#[allow(clippy::large_enum_variant)]
pub enum Value {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// One registered metric plus its current value.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// The metric's metadata.
    pub desc: Desc,
    /// Its value at snapshot time.
    pub value: Value,
}

struct Entry {
    desc: Desc,
    handle: Handle,
}

/// The metric registry: registration order is exposition order.
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.entries.lock().map_or(0, |e| e.len());
        write!(f, "Registry({n} metrics)")
    }
}

/// The process-global registry every subsystem registers into.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

impl Registry {
    /// An empty registry (the global one is usually what you want; a
    /// private registry is useful in tests).
    #[must_use]
    pub fn new() -> Self {
        Registry {
            entries: Mutex::new(Vec::new()),
        }
    }

    fn push(&self, desc: Desc, handle: Handle) {
        let Ok(mut entries) = self.entries.lock() else {
            return; // a poisoned registry only degrades exposition
        };
        // Idempotent: re-registering the same (name, labels) pair keeps
        // the first registration, so subsystem init guards stay simple.
        if entries
            .iter()
            .any(|e| e.desc.name == desc.name && e.desc.labels == desc.labels)
        {
            return;
        }
        entries.push(Entry { desc, handle });
    }

    /// Registers a counter.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        unit: &'static str,
        subsystem: &'static str,
        labels: &'static [(&'static str, &'static str)],
        metric: &'static Counter,
    ) {
        self.push(
            Desc {
                name,
                help,
                unit,
                subsystem,
                labels,
                kind: Kind::Counter,
            },
            Handle::Counter(metric),
        );
    }

    /// Registers a gauge.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        unit: &'static str,
        subsystem: &'static str,
        labels: &'static [(&'static str, &'static str)],
        metric: &'static Gauge,
    ) {
        self.push(
            Desc {
                name,
                help,
                unit,
                subsystem,
                labels,
                kind: Kind::Gauge,
            },
            Handle::Gauge(metric),
        );
    }

    /// Registers a histogram.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        unit: &'static str,
        subsystem: &'static str,
        labels: &'static [(&'static str, &'static str)],
        metric: &'static Histogram,
    ) {
        self.push(
            Desc {
                name,
                help,
                unit,
                subsystem,
                labels,
                kind: Kind::Histogram,
            },
            Handle::Histogram(metric),
        );
    }

    /// Distinct metric names in registration order (label variants of a
    /// family collapse to one name) — what docs/OBSERVABILITY.md's
    /// catalog is diffed against.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        let Ok(entries) = self.entries.lock() else {
            return Vec::new();
        };
        let mut names: Vec<&'static str> = Vec::with_capacity(entries.len());
        for e in entries.iter() {
            if !names.contains(&e.desc.name) {
                names.push(e.desc.name);
            }
        }
        names
    }

    /// Point-in-time values of every registered metric.
    #[must_use]
    pub fn samples(&self) -> Vec<Sample> {
        let Ok(entries) = self.entries.lock() else {
            return Vec::new();
        };
        entries
            .iter()
            .map(|e| Sample {
                desc: e.desc,
                value: match e.handle {
                    Handle::Counter(c) => Value::Counter(c.get()),
                    Handle::Gauge(g) => Value::Gauge(g.get()),
                    Handle::Histogram(h) => Value::Histogram(h.snapshot()),
                },
            })
            .collect()
    }

    /// Resets every registered metric to zero (measurement windows in
    /// tests and the CLI; a scrape endpoint would never call this).
    pub fn reset(&self) {
        let Ok(entries) = self.entries.lock() else {
            return;
        };
        for e in entries.iter() {
            match e.handle {
                Handle::Counter(c) => c.reset(),
                Handle::Gauge(g) => g.reset(),
                Handle::Histogram(h) => h.reset(),
            }
        }
    }

    /// Renders the whole registry in Prometheus text exposition format.
    ///
    /// `# HELP` / `# TYPE` are emitted once per metric family (first
    /// registration wins); histograms emit cumulative `_bucket` lines up
    /// to the highest occupied finite bucket, then `le="+Inf"`, `_sum`
    /// and `_count`.
    #[must_use]
    pub fn render(&self) -> String {
        let samples = self.samples();
        let mut out = String::new();
        let mut seen: Vec<&'static str> = Vec::new();
        for s in &samples {
            if !seen.contains(&s.desc.name) {
                seen.push(s.desc.name);
                out.push_str("# HELP ");
                out.push_str(s.desc.name);
                out.push(' ');
                out.push_str(s.desc.help);
                if !s.desc.unit.is_empty() {
                    out.push_str(" (");
                    out.push_str(s.desc.unit);
                    out.push(')');
                }
                out.push('\n');
                out.push_str("# TYPE ");
                out.push_str(s.desc.name);
                out.push(' ');
                out.push_str(s.desc.kind.as_str());
                out.push('\n');
            }
            render_sample(&mut out, s);
        }
        out
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// `{k1="v1",k2="v2"}`, with `extra` (used for `le`) appended last;
/// empty string when there are no labels at all.
fn label_block(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut s = String::from("{");
    let mut first = true;
    for (k, v) in labels.iter().copied().chain(extra) {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(k);
        s.push_str("=\"");
        s.push_str(v);
        s.push('"');
    }
    s.push('}');
    s
}

fn render_sample(out: &mut String, s: &Sample) {
    use std::fmt::Write as _;
    let name = s.desc.name;
    let labels = s.desc.labels;
    match s.value {
        Value::Counter(v) | Value::Gauge(v) => {
            let _ = writeln!(out, "{name}{} {v}", label_block(labels, None));
        }
        Value::Histogram(snap) => {
            let last = snap
                .buckets
                .iter()
                .take(BUCKETS)
                .rposition(|&c| c > 0)
                .unwrap_or(0);
            let mut cum = 0u64;
            let mut bound = String::new();
            for (i, &c) in snap.buckets.iter().take(last + 1).enumerate() {
                cum += c;
                bound.clear();
                let _ = write!(bound, "{}", upper_bound(i).unwrap_or(u64::MAX));
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cum}",
                    label_block(labels, Some(("le", &bound)))
                );
            }
            let _ = writeln!(
                out,
                "{name}_bucket{} {}",
                label_block(labels, Some(("le", "+Inf"))),
                snap.count
            );
            let _ = writeln!(out, "{name}_sum{} {}", label_block(labels, None), snap.sum);
            let _ = writeln!(
                out,
                "{name}_count{} {}",
                label_block(labels, None),
                snap.count
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static C: Counter = Counter::new();
    static G: Gauge = Gauge::new();
    static H: Histogram = Histogram::new();

    #[test]
    fn render_covers_all_kinds() {
        let reg = Registry::new();
        reg.counter("t_ops_total", "Ops", "ops", "test", &[], &C);
        reg.gauge("t_depth", "Depth", "items", "test", &[], &G);
        reg.histogram("t_ns", "Latency", "ns", "test", &[], &H);
        C.add(3);
        G.set(7);
        H.record(5);
        let text = reg.render();
        assert!(text.contains("# TYPE t_ops_total counter"));
        assert!(text.contains("t_ops_total 3"));
        assert!(text.contains("t_depth 7"));
        assert!(text.contains("t_ns_bucket{le=\"8\"} 1"));
        assert!(text.contains("t_ns_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("t_ns_sum 5"));
        assert!(text.contains("t_ns_count 1"));
        assert_eq!(reg.names(), vec!["t_ops_total", "t_depth", "t_ns"]);
    }

    #[test]
    fn duplicate_registration_is_idempotent() {
        static D: Counter = Counter::new();
        let reg = Registry::new();
        reg.counter("dup_total", "A", "ops", "test", &[], &D);
        reg.counter("dup_total", "B", "ops", "test", &[], &D);
        assert_eq!(reg.samples().len(), 1);
    }

    #[test]
    fn label_variants_share_help_and_type() {
        static A: Counter = Counter::new();
        static B: Counter = Counter::new();
        let reg = Registry::new();
        reg.counter("fam_total", "Family", "ops", "t", &[("engine", "rps")], &A);
        reg.counter("fam_total", "Family", "ops", "t", &[("engine", "disk")], &B);
        A.add(1);
        B.add(2);
        let text = reg.render();
        assert_eq!(text.matches("# TYPE fam_total counter").count(), 1);
        assert!(text.contains("fam_total{engine=\"rps\"} 1"));
        assert!(text.contains("fam_total{engine=\"disk\"} 2"));
    }
}
