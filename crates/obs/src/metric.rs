//! Counters and gauges: relaxed-ordering `AtomicU64` cells.
//!
//! Same idiom as `rps-core`'s `StatsCell`: monotonic event counts where
//! each observation is one `fetch_add(_, Relaxed)` — no fences, no
//! locks, no allocation. Relaxed ordering is sufficient because these
//! are statistics, not synchronization: readers only need each cell to
//! be internally consistent, never cross-cell ordering.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// `const`-constructible so it can live in a `static` and be registered
/// once with the [`crate::Registry`]; the hot path then touches the
/// atomic directly and never sees the registry.
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` events in one atomic op — callers that already batch
    /// (e.g. a parallel update sweep) coalesce to a single add.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero. Exposition normally never resets (Prometheus
    /// counters are cumulative); tests and the CLI `stats` command use
    /// this to scope a measurement window.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A last-value-wins instantaneous measurement (pool occupancy, ring
/// depth). Stored as `u64`; signed gauges are out of scope here.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds to the current value.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts from the current value (saturating at zero would need a
    /// CAS; callers keep their own invariant that the gauge never goes
    /// negative, matching how pool pin counts behave).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (see [`Counter::reset`]).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
    }
}
