//! Optional ring-buffer trace sink for span events.
//!
//! Off by default: until [`install`] is called, a finished span pays
//! one `OnceLock` load to discover there is no sink. Installing
//! preallocates a fixed-capacity ring of [`TraceEvent`]s; pushes then
//! overwrite the oldest event, so steady-state tracing is
//! allocation-free and bounded regardless of traffic.

use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One finished span: static name, start offset from the sink's epoch,
/// duration. Fixed-size so the ring never allocates per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The span's static name (`wal.fsync`, `rps.query`, …).
    pub name: &'static str,
    /// Nanoseconds between the sink's installation and the span's start.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

struct Ring {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Next overwrite position once the ring is full.
    next: usize,
    /// Events discarded because the ring was full.
    dropped: u64,
}

struct Sink {
    ring: Mutex<Ring>,
    epoch: Instant,
}

static SINK: OnceLock<Sink> = OnceLock::new();

/// Installs the global trace ring with room for `capacity` events.
/// Returns `false` if a sink was already installed (the first one
/// wins; capacity cannot be changed afterwards).
pub fn install(capacity: usize) -> bool {
    let cap = capacity.max(1);
    SINK.set(Sink {
        ring: Mutex::new(Ring {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            dropped: 0,
        }),
        epoch: Instant::now(),
    })
    .is_ok()
}

/// Whether a trace ring is installed.
#[must_use]
pub fn installed() -> bool {
    SINK.get().is_some()
}

/// Appends a finished span to the ring, if one is installed. Within the
/// preallocated capacity; never allocates.
pub(crate) fn push(name: &'static str, start: Instant, dur_ns: u64) {
    let Some(sink) = SINK.get() else { return };
    let start_ns =
        u64::try_from(start.saturating_duration_since(sink.epoch).as_nanos()).unwrap_or(u64::MAX);
    let ev = TraceEvent {
        name,
        start_ns,
        dur_ns,
    };
    let Ok(mut ring) = sink.ring.lock() else {
        return;
    };
    if ring.buf.len() < ring.cap {
        ring.buf.push(ev);
    } else {
        let at = ring.next;
        ring.buf[at] = ev;
        ring.next = (at + 1) % ring.cap;
        ring.dropped += 1;
    }
}

/// Drains the ring: returns the retained events in chronological order
/// and the count of older events the ring overwrote, then resets it.
/// Returns `(empty, 0)` when no sink is installed.
#[must_use]
pub fn drain() -> (Vec<TraceEvent>, u64) {
    let Some(sink) = SINK.get() else {
        return (Vec::new(), 0);
    };
    let Ok(mut ring) = sink.ring.lock() else {
        return (Vec::new(), 0);
    };
    let mut out = Vec::with_capacity(ring.buf.len());
    out.extend_from_slice(&ring.buf[ring.next..]);
    out.extend_from_slice(&ring.buf[..ring.next]);
    let dropped = ring.dropped;
    ring.buf.clear();
    ring.next = 0;
    ring.dropped = 0;
    (out, dropped)
}
