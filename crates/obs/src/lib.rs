//! Zero-overhead observability for the RPS workspace.
//!
//! The paper this repo reproduces sells a *measurable* trade-off —
//! O(1)-read queries against O(n^{d/2}) updates — and this crate is how
//! a running engine proves it live instead of only in offline benches:
//!
//! * [`Counter`] / [`Gauge`] — relaxed-ordering `AtomicU64` cells, one
//!   `fetch_add` per event on the hot path, nothing else;
//! * [`Histogram`] — fixed-bucket log2 latency histograms
//!   ([`histogram::BUCKETS`] buckets plus an overflow bucket), wait-free
//!   recording, saturating sums;
//! * [`Registry`] — static registration of `&'static` metrics with
//!   name/help/unit/label metadata and Prometheus-style text
//!   [`Registry::render`];
//! * [`Span`] — lightweight span timers that record elapsed nanoseconds
//!   into a histogram on drop, with an optional fixed-capacity
//!   ring-buffer trace sink ([`trace`]);
//! * a global [`set_timing`] switch: counters are always on (one relaxed
//!   atomic add, unmeasurable next to a cache miss), while clock reads
//!   for latency histograms/spans are gated behind a single relaxed
//!   `bool` load so the *default* hot-path cost is counters only.
//!
//! # Design constraints
//!
//! * **Dependency-free.** This crate sits below `rps-core` and
//!   `rps-storage` in the dependency graph; it must not drag anything
//!   into the kernels.
//! * **Allocation-free on the hot path.** Recording a counter, gauge,
//!   histogram sample, span, or trace event performs zero heap
//!   allocations (the trace ring is preallocated at install time).
//!   Verified by `crates/bench/tests/zero_alloc.rs` under the counting
//!   allocator, and priced by the `exp_obs_overhead` bench
//!   (`BENCH_OBS.json`).
//! * **`Instant` lives here and only here.** The repo lint `L6`
//!   (`cargo xtask lint`) forbids direct `std::time::Instant` use in
//!   hot-path modules; timers must go through [`Span`] /
//!   [`Stopwatch`] so the timing gate stays honest.
//!
//! # Quick start
//!
//! ```
//! use rps_obs::{self as obs, Counter, Histogram, registry};
//!
//! static QUERIES: Counter = Counter::new();
//! static QUERY_NS: Histogram = Histogram::new();
//!
//! // Register once (idempotence is the caller's job; a OnceLock works).
//! registry().counter("demo_queries_total", "Queries served", "ops", "demo", &[], &QUERIES);
//! registry().histogram("demo_query_ns", "Query latency", "ns", "demo", &[], &QUERY_NS);
//!
//! // Hot path: one relaxed add; the span is a no-op until timing is on.
//! QUERIES.inc();
//! obs::set_timing(true);
//! {
//!     let _span = obs::Span::enter("demo.query", &QUERY_NS);
//! } // drop records elapsed ns
//!
//! assert_eq!(QUERIES.get(), 1);
//! assert_eq!(QUERY_NS.count(), 1);
//! let text = registry().render();
//! assert!(text.contains("demo_queries_total 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod metric;
pub mod registry;
pub mod span;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot};
pub use metric::{Counter, Gauge};
pub use registry::{registry, Desc, Kind, Registry, Sample, Value};
pub use span::{Span, Stopwatch};
pub use trace::TraceEvent;

use std::sync::atomic::{AtomicBool, Ordering};

/// Global switch for clock reads (span timers, stopwatches).
///
/// Counters and gauges are always live; only *timing* — the two
/// `Instant::now()` calls a span costs — is gated, because on a
/// ~300 ns query those clock reads are the one part of instrumentation
/// that is not free. Off by default.
static TIMING: AtomicBool = AtomicBool::new(false);

/// Enables or disables latency timing globally (relaxed store).
///
/// Counters keep counting either way; histograms simply stop receiving
/// samples while timing is off.
pub fn set_timing(on: bool) {
    TIMING.store(on, Ordering::Relaxed);
}

/// Whether latency timing is currently enabled (relaxed load — this is
/// the only cost a disabled span pays).
#[inline]
pub fn timing_enabled() -> bool {
    TIMING.load(Ordering::Relaxed)
}
