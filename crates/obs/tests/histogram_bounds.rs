//! Histogram bucket-boundary behavior: exact power-of-two edges, the
//! overflow bucket, and u64 saturation of the running sum.

use rps_obs::histogram::{bucket_index, upper_bound, BUCKETS, SLOTS};
use rps_obs::Histogram;

#[test]
fn bucket_index_at_every_power_of_two_edge() {
    // Bucket 0 holds 0 and 1; bucket i (i >= 1) holds (2^(i-1), 2^i].
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 0);
    for i in 1..BUCKETS {
        let bound = 1u64 << i;
        assert_eq!(bucket_index(bound), i, "2^{i} itself is inclusive");
        // 2^i − 1 stays in bucket i for i >= 2 (still above 2^(i-1));
        // the one exception is i = 1, where 2^1 − 1 = 1 is in bucket 0.
        let below = if i == 1 { 0 } else { i };
        assert_eq!(bucket_index(bound - 1), below, "just below the bound");
        assert_eq!(bucket_index(bound + 1), i + 1, "just above spills over");
    }
    // Edge spot checks, written out so a bucketing regression reads off
    // the diff directly.
    assert_eq!(bucket_index(2), 1);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 2);
    assert_eq!(bucket_index(5), 3);
    assert_eq!(bucket_index(1024), 10);
    assert_eq!(bucket_index(1025), 11);
}

#[test]
fn values_beyond_the_last_finite_bound_land_in_overflow() {
    let top = 1u64 << (BUCKETS - 1); // largest finite bound
    assert_eq!(bucket_index(top), BUCKETS - 1);
    assert_eq!(bucket_index(top + 1), BUCKETS, "first overflow value");
    assert_eq!(bucket_index(u64::MAX), BUCKETS);
    assert_eq!(upper_bound(BUCKETS), None, "overflow bucket is +Inf");
    assert_eq!(upper_bound(BUCKETS - 1), Some(top));

    let h = Histogram::new();
    h.record(top);
    h.record(top + 1);
    h.record(u64::MAX);
    let snap = h.snapshot();
    assert_eq!(snap.buckets[BUCKETS - 1], 1);
    assert_eq!(snap.buckets[BUCKETS], 2, "overflow bucket counts both");
    assert_eq!(snap.count, 3);
    assert_eq!(snap.buckets.len(), SLOTS);
}

#[test]
fn sum_saturates_instead_of_wrapping() {
    let h = Histogram::new();
    h.record(u64::MAX);
    assert_eq!(h.sum(), u64::MAX);
    // A second enormous sample must pin the sum at MAX, not wrap it back
    // toward zero (which would corrupt every derived mean).
    h.record(u64::MAX);
    assert_eq!(h.sum(), u64::MAX);
    assert_eq!(h.count(), 2);
    h.record(7);
    assert_eq!(h.sum(), u64::MAX, "still pinned once saturated");
    assert_eq!(h.snapshot().mean(), u64::MAX / 3);
}

#[test]
fn snapshot_mean_and_quantiles() {
    let h = Histogram::new();
    for v in [1u64, 2, 3, 4, 100] {
        h.record(v);
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, 5);
    assert_eq!(snap.sum, 110);
    assert_eq!(snap.mean(), 22);
    // The median (3rd of 5 samples) falls in the bucket bounded by 4;
    // p99 in the one holding 100 (le=128). Coarse (log2) by design.
    assert_eq!(snap.quantile_bound(500), Some(4));
    assert_eq!(snap.quantile_bound(990), Some(128));
    assert_eq!(Histogram::new().snapshot().quantile_bound(500), None);
}

#[test]
fn reset_zeroes_everything() {
    let h = Histogram::new();
    h.record(5);
    h.record(u64::MAX);
    h.reset();
    let snap = h.snapshot();
    assert_eq!(snap.count, 0);
    assert_eq!(snap.sum, 0);
    assert!(snap.buckets.iter().all(|&c| c == 0));
}
