//! Span timing gate + trace ring behavior.
//!
//! One test function on purpose: the timing gate and the trace sink are
//! process-global, so the scenario runs as a single deterministic
//! sequence instead of racing parallel `#[test]`s over shared state.

use rps_obs::{set_timing, timing_enabled, trace, Histogram, Span, Stopwatch};

static H: Histogram = Histogram::new();

#[test]
fn spans_respect_gate_and_feed_the_ring() {
    // Timing off (the default): spans and stopwatches are inert.
    assert!(!timing_enabled());
    {
        let _s = Span::enter("test.off", &H);
    }
    let sw = Stopwatch::start();
    assert_eq!(sw.elapsed_ns(), None);
    sw.record(&H);
    assert_eq!(H.count(), 0, "disabled timing must record nothing");

    // No sink installed: timed spans record latency but trace nothing.
    set_timing(true);
    {
        let _s = Span::enter("test.unsinked", &H);
    }
    assert_eq!(H.count(), 1);
    let (events, dropped) = trace::drain();
    assert!(events.is_empty() && dropped == 0);

    // Install a 4-slot ring, run 6 spans: the ring retains the newest 4
    // in chronological order and reports 2 overwritten.
    assert!(trace::install(4));
    assert!(!trace::install(8), "second install must not win");
    assert!(trace::installed());
    for _ in 0..6 {
        let _s = Span::enter("test.traced", &H);
    }
    let (events, dropped) = trace::drain();
    assert_eq!(events.len(), 4, "ring capacity bounds retention");
    assert_eq!(dropped, 2);
    assert!(events.iter().all(|e| e.name == "test.traced"));
    assert!(events.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));

    // Drain resets; a stopwatch with timing on measures something real.
    let (empty, d) = trace::drain();
    assert!(empty.is_empty() && d == 0, "drain resets the ring");
    let sw = Stopwatch::start();
    std::hint::black_box(0u64);
    let ns = sw.elapsed_ns().expect("timing is on");
    sw.record(&H);
    assert!(H.count() >= 8, "stopwatch recorded");
    let _ = ns;
    set_timing(false);
}
