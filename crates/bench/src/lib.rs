//! # rps-bench — the experiment harness
//!
//! Report binaries (`src/bin/exp_*`) regenerate every figure and table of
//! the paper in cell-count/storage terms; Criterion benches (`benches/`)
//! add wall-clock numbers. See `EXPERIMENTS.md` at the workspace root for
//! the experiment-by-experiment index and paper-vs-measured record.
//!
//! Run everything:
//!
//! ```text
//! cargo run --release -p rps-bench --bin exp_update_example
//! cargo run --release -p rps-bench --bin exp_box_size_sweep
//! cargo run --release -p rps-bench --bin exp_complexity_product
//! cargo run --release -p rps-bench --bin exp_fig16_storage
//! cargo run --release -p rps-bench --bin exp_disk_io
//! cargo bench -p rps-bench
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod alloc_counter;
pub mod throughput;

use ndcube::Region;
use rps_core::RangeSumEngine;
use rps_workload::Op;

/// Replays a pre-generated op batch on an engine, returning a checksum of
/// query answers (so benches can't be optimized away and engines can be
/// cross-checked).
pub fn replay(engine: &mut dyn RangeSumEngine<i64>, ops: &[Op]) -> i64 {
    let mut checksum = 0i64;
    for op in ops {
        match op {
            Op::Query(r) => checksum = checksum.wrapping_add(engine.query(r).unwrap()),
            Op::Update { coords, delta } => engine.update(coords, *delta).unwrap(),
        }
    }
    checksum
}

/// The worst-typical update position for cost measurements: just past the
/// first anchor in every dimension (the paper's Figure 15 position is the
/// d = 2, n = 9 instance of this).
pub fn worst_update_position(d: usize) -> Vec<usize> {
    vec![1; d]
}

/// The cube-wide query region for an engine.
pub fn full_region(engine: &dyn RangeSumEngine<i64>) -> Region {
    engine.shape().full_region()
}
