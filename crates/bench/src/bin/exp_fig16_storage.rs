//! E10 — Figure 16: "Comparison of overlay and RP storage requirements as
//! d and k are varied."
//!
//! Prints the figure's data series — overlay storage as a percentage of
//! the covered RP region, `(k^d − (k−1)^d)/k^d · 100` — for d = 2..5 over
//! a sweep of k, and cross-checks the analytic numbers against the
//! *actually allocated* overlay of a live engine.

use ndcube::NdCube;
use rps_analysis::{overlay_fraction, overlay_storage_cells, Table};
use rps_core::RpsEngine;

fn main() {
    println!("=== E10 / Figure 16: overlay storage as % of covered RP region ===\n");

    let ds = [2u32, 3, 4, 5];
    let ks = [2u64, 3, 4, 5, 8, 10, 16, 20, 32, 50, 64, 100];

    let mut table = Table::new(&["k", "d=2 %", "d=3 %", "d=4 %", "d=5 %"]);
    for &k in &ks {
        let mut row = vec![k.to_string()];
        for &d in &ds {
            row.push(format!("{:.2}", overlay_fraction(k, d) * 100.0));
        }
        table.row(&row);
    }
    print!("{}", table.render());

    println!("\npaper's worked §4.4 example: a 100×100 box stores");
    println!(
        "  {} cells vs 10,000 covered RP cells = {:.2}% (paper: 199 cells, <2%)",
        overlay_storage_cells(100, 2),
        overlay_fraction(100, 2) * 100.0
    );
    assert_eq!(overlay_storage_cells(100, 2), 199);

    println!("\n=== cross-check: live engines allocate exactly the analytic amount ===\n");
    let mut check = Table::new(&["cube", "k", "analytic overlay", "allocated overlay"]);
    for (n, d, k) in [
        (64usize, 2u32, 8usize),
        (100, 2, 10),
        (27, 3, 3),
        (16, 4, 4),
    ] {
        let dims = vec![n; d as usize];
        let cube = NdCube::from_fn(&dims, |c| c[0] as i64).unwrap();
        let engine = RpsEngine::from_cube_uniform(&cube, k).unwrap();
        let boxes = (n / k).pow(d) as u64;
        let analytic = boxes * overlay_storage_cells(k as u64, d);
        let allocated = engine.overlay().storage_cells() as u64;
        assert_eq!(analytic, allocated, "n={n} d={d} k={k}");
        check.row(&[
            format!("{n}^{d}"),
            k.to_string(),
            analytic.to_string(),
            allocated.to_string(),
        ]);
    }
    print!("{}", check.render());
    println!("\nthe allocated overlay matches (k^d − (k−1)^d) per box exactly ✓");
    println!("shape of Figure 16 reproduced: % falls as k grows, rises with d.");

    // §4.4's deployment argument in absolute terms: for warehouse-scale
    // cubes, does the overlay fit in (1999 or modern) RAM while RP
    // stays on disk? 8-byte cells.
    println!("\n=== §4.4: absolute overlay RAM for warehouse-scale cubes ===\n");
    let mut ram = Table::new(&["cube", "k=√n", "RP on disk", "overlay in RAM"]);
    let human = |bytes: f64| -> String {
        if bytes >= 1e9 {
            format!("{:.1} GiB", bytes / (1u64 << 30) as f64)
        } else if bytes >= 1e6 {
            format!("{:.1} MiB", bytes / (1u64 << 20) as f64)
        } else {
            format!("{:.1} KiB", bytes / 1024.0)
        }
    };
    for (n, d) in [(10_000u64, 2u32), (100_000, 2), (1_000, 3), (10_000, 3)] {
        let k = (n as f64).sqrt().round() as u64;
        let boxes = (n as f64 / k as f64).powi(d as i32);
        let overlay_cells = boxes * overlay_storage_cells(k, d) as f64;
        let rp_cells = (n as f64).powi(d as i32);
        ram.row(&[
            format!("{n}^{d}"),
            k.to_string(),
            human(rp_cells * 8.0),
            human(overlay_cells * 8.0),
        ]);
    }
    print!("{}", ram.render());
    println!(
        "\ne.g. a 10,000² daily-sales cube: 745 MiB of RP on disk but only a\n\
         few MiB of overlay — comfortably resident even in 1999 (§4.4:\n\
         'it may be feasible to keep all of the overlay boxes in main\n\
         memory, while RP resides on disk')."
    );
}
