//! Mixed read/write throughput: the versioned-snapshot engine's
//! lock-free read path (`rps_core::VersionedEngine`) against the
//! `RwLock`-based `SharedEngine`, measured as aggregate reader
//! throughput while a writer publishes point updates paced at 0%, 1%
//! and 10% of reader ops. Emitted as the `exp_mixed_readwrite` section
//! of `BENCH_THROUGHPUT.json` (see `rps_bench::throughput`).
//!
//! ```text
//! cargo run --release -p rps-bench --bin exp_mixed_readwrite            # full
//! cargo run --release -p rps-bench --bin exp_mixed_readwrite -- --smoke # CI
//! ```
//!
//! Pacing: readers bump a shared op counter after every batch; the
//! writer applies updates only while `updates < reader_ops × rate /
//! 100`, so the write load tracks the measured read load instead of
//! free-running. After every run the engine is flushed and its total is
//! checked against the initial cube total plus the updates applied
//! (all deltas are +1) — a throughput number for wrong answers would be
//! worse than none.
//!
//! `allocs_per_op` is reported for the single-threaded serial baseline
//! row only; the multi-threaded rows report 0 (the counting allocator
//! is per-thread and the readers run on worker threads).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use ndcube::{NdCube, Region};
use rps_bench::alloc_counter::CountingAllocator;
use rps_bench::throughput::{measure_batch, section_json, write_section, Measurement, Scenario};
use rps_core::{RangeSumEngine, RpsEngine, SharedEngine, VersionedEngine};
use rps_workload::{CubeGen, QueryGen, RegionSpec};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Writer update rates, in percent of reader ops.
const RATES: &[u64] = &[0, 1, 10];

struct Config {
    dims: Vec<usize>,
    batch_len: usize,
    batches_per_reader: usize,
    readers: usize,
}

/// A deterministic stream of in-bounds update coordinates.
fn update_coords(dims: &[usize], i: u64) -> Vec<usize> {
    dims.iter()
        .enumerate()
        .map(|(d, &n)| {
            let mixed = i
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(d as u64 * 0x85EB_CA6B);
            (mixed % n as u64) as usize
        })
        .collect()
}

/// One paced run: `spawn_readers` drives the engine-specific read loop,
/// `apply_update` the engine-specific write. Returns (reader
/// measurement, updates applied, elapsed reader ns).
fn run_paced(
    cfg: &Config,
    rate: u64,
    read_batch: impl Fn(usize, &[Region]) + Sync,
    apply_update: impl Fn(&[usize]),
) -> (Measurement, u64) {
    let reader_ops = AtomicU64::new(0);
    let mut updates_applied = 0u64;
    let total_ops = cfg.readers * cfg.batches_per_reader * cfg.batch_len;

    let start = Instant::now();
    std::thread::scope(|scope| {
        for r in 0..cfg.readers {
            let reader_ops = &reader_ops;
            let read_batch = &read_batch;
            let regions: Vec<Region> =
                QueryGen::new(&cfg.dims, 11 + r as u64, RegionSpec::Fraction(0.5))
                    .take(cfg.batch_len);
            scope.spawn(move || {
                for _ in 0..cfg.batches_per_reader {
                    read_batch(r, &regions);
                    reader_ops.fetch_add(regions.len() as u64, Ordering::Relaxed);
                }
            });
        }
        // The writer is paced on this thread: apply updates while below
        // target, yield while ahead. Once the readers finish, the
        // target freezes at `total_ops × rate / 100` and the writer
        // catches up to it before exiting, so every run applies a
        // deterministic update count even if the reader threads
        // outpaced this one (e.g. on a single-CPU host).
        loop {
            let ops = reader_ops.load(Ordering::Relaxed).min(total_ops as u64);
            let target = ops * rate / 100;
            if updates_applied < target {
                apply_update(&update_coords(&cfg.dims, updates_applied));
                updates_applied += 1;
            } else if ops >= total_ops as u64 {
                break;
            } else {
                std::thread::yield_now();
            }
        }
    });
    let elapsed = start.elapsed();

    (
        Measurement {
            ops: total_ops,
            ns_per_op: elapsed.as_nanos() as f64 / total_ops as f64,
            allocs_per_op: 0.0,
        },
        updates_applied,
    )
}

fn run_scenario(name: &str, cfg: &Config) -> Scenario {
    let mut gen = CubeGen::new(0xC0FFEE);
    let cube: NdCube<i64> = gen.uniform(&cfg.dims, 0, 100).expect("valid dims");
    let initial_total: i64 = {
        let e = RpsEngine::from_cube(&cube);
        e.query(&e.shape().full_region()).expect("in bounds")
    };

    let mut results = Vec::new();
    let mut result_names = Vec::new();

    // Serial baseline on this thread — this is the row the zero-alloc
    // contract is asserted against (S1: query_many ≈ 0 allocs/op after
    // warm-up).
    let engine = RpsEngine::from_cube(&cube);
    let regions: Vec<Region> =
        QueryGen::new(&cfg.dims, 7, RegionSpec::Fraction(0.5)).take(cfg.batch_len);
    let _warm = engine.query_many(&regions).expect("in bounds");
    let (m, _) = measure_batch(cfg.batches_per_reader.max(2), cfg.batch_len, || {
        let out = engine.query_many(&regions).expect("in bounds");
        out.last().copied().unwrap_or(0)
    });
    results.push(m);
    result_names.push("query_many_serial_baseline".to_string());

    for &rate in RATES {
        // Versioned engine: readers pin a snapshot per batch, the
        // writer publishes a version per update (threshold 1).
        let v = VersionedEngine::new(RpsEngine::from_cube(&cube));
        let (m, updates) = run_paced(
            cfg,
            rate,
            |_, regions| {
                let snap = v.snapshot();
                let out = snap.query_many(regions).expect("in bounds");
                assert!(out.len() == regions.len());
            },
            |c| v.update(c, 1).expect("in bounds"),
        );
        v.flush();
        assert_eq!(
            v.total(),
            initial_total + i64::try_from(updates).expect("fits"),
            "versioned total diverged after paced run"
        );
        results.push(m);
        result_names.push(format!("versioned_readers_w{rate}"));
        results.push(Measurement {
            ops: usize::try_from(updates).expect("fits"),
            ns_per_op: 0.0,
            allocs_per_op: 0.0,
        });
        result_names.push(format!("versioned_updates_w{rate}"));

        // RwLock baseline: readers serialize against the writer.
        let shared = SharedEngine::new(RpsEngine::from_cube(&cube));
        let (m, updates) = run_paced(
            cfg,
            rate,
            |_, regions| {
                let out = shared.query_many_parallel(regions, 1).expect("in bounds");
                assert!(out.len() == regions.len());
            },
            |c| shared.update(c, 1).expect("in bounds"),
        );
        assert_eq!(
            shared.total(),
            initial_total + i64::try_from(updates).expect("fits"),
            "shared total diverged after paced run"
        );
        results.push(m);
        result_names.push(format!("shared_readers_w{rate}"));
        results.push(Measurement {
            ops: usize::try_from(updates).expect("fits"),
            ns_per_op: 0.0,
            allocs_per_op: 0.0,
        });
        result_names.push(format!("shared_updates_w{rate}"));
    }

    let box_size = RpsEngine::from_cube(&cube).grid().box_size().to_vec();
    Scenario {
        name: name.to_string(),
        dims: cfg.dims.clone(),
        box_size,
        results,
        result_names,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("{}/../../BENCH_THROUGHPUT.json", env!("CARGO_MANIFEST_DIR")));

    let scenarios = if smoke {
        vec![run_scenario(
            "d2_n64",
            &Config {
                dims: vec![64, 64],
                batch_len: 64,
                batches_per_reader: 4,
                readers: 2,
            },
        )]
    } else {
        vec![
            run_scenario(
                "d2_n256",
                &Config {
                    dims: vec![256, 256],
                    batch_len: 1024,
                    batches_per_reader: 16,
                    readers: 4,
                },
            ),
            run_scenario(
                "d3_n32",
                &Config {
                    dims: vec![32, 32, 32],
                    batch_len: 1024,
                    batches_per_reader: 16,
                    readers: 4,
                },
            ),
        ]
    };

    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let section = section_json(if smoke { "smoke" } else { "full" }, host_cpus, &scenarios);

    println!("=== mixed read/write throughput ({host_cpus} host cpus) ===\n");
    for s in &scenarios {
        println!("scenario {} dims {:?} k {:?}", s.name, s.dims, s.box_size);
        for (m, n) in s.results.iter().zip(&s.result_names) {
            if n.contains("updates") {
                println!("  {n:<28} {:>10} updates applied", m.ops);
            } else {
                println!(
                    "  {n:<28} {:>10.1} ns/op  {:>12.0} ops/s  ({:.4} allocs/op)",
                    m.ns_per_op,
                    1e9 / m.ns_per_op.max(1e-9),
                    m.allocs_per_op
                );
            }
        }
    }

    write_section(&out_path, "exp_mixed_readwrite", &section);
    println!("\nwrote {out_path} (section exp_mixed_readwrite)");
}
