//! Query-batch throughput baseline: the sharded parallel front-end
//! (`query_many_parallel`) against serial `query_many`, plus the
//! lane-width kernels against their retained scalar twins, emitted as
//! the `exp_parallel_query` section of `BENCH_THROUGHPUT.json` (shared
//! with `exp_mixed_readwrite`; see `rps_bench::throughput`).
//!
//! ```text
//! cargo run --release -p rps-bench --bin exp_parallel_query            # full
//! cargo run --release -p rps-bench --bin exp_parallel_query -- --smoke # CI
//! cargo run --release -p rps-bench --bin exp_parallel_query -- --out p.json
//! ```
//!
//! Every parallel batch is checked bit-identical to the serial answers
//! before its timing is recorded — a baseline measuring a wrong answer
//! would be worse than no baseline.
//!
//! The speedup of `query_many_parallel_tN` over `query_many_serial` is
//! hardware-dependent: it tracks available cores (`std::thread`, no work
//! stealing). The committed baseline records the host's core count in
//! the `host_cpus` field; on a single-core container the parallel rows
//! measure pure sharding overhead (~1×), not fan-out gains.

use ndcube::Region;
use rps_bench::alloc_counter::CountingAllocator;
use rps_bench::throughput::{measure_batch, section_json, write_section, Scenario};
use rps_core::rps::kernels;
use rps_core::RpsEngine;
use rps_workload::{CubeGen, QueryGen, RegionSpec};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn run_scenario(
    name: &str,
    dims: &[usize],
    batch_len: usize,
    rounds: usize,
    thread_counts: &[usize],
) -> Scenario {
    let mut gen = CubeGen::new(0xC0FFEE);
    let cube = gen.uniform(dims, 0, 100).expect("valid dims");
    let engine = RpsEngine::from_cube(&cube);
    let regions: Vec<Region> = QueryGen::new(dims, 7, RegionSpec::Fraction(0.5)).take(batch_len);

    // Warm-up faults in scratch buffers and pins the serial answers the
    // parallel rows are checked against.
    let expected = engine.query_many(&regions).expect("in bounds");

    let mut results = Vec::new();
    let mut result_names = Vec::new();

    let (m, sink) = measure_batch(rounds, batch_len, || {
        let out = engine.query_many(&regions).expect("in bounds");
        out.last().copied().unwrap_or(0)
    });
    assert!(sink != i64::MIN, "checksum sentinel");
    results.push(m);
    result_names.push("query_many_serial".to_string());

    for &threads in thread_counts {
        let out = engine
            .query_many_parallel(&regions, threads)
            .expect("in bounds");
        assert_eq!(out, expected, "parallel answers must be bit-identical");
        let (m, sink) = measure_batch(rounds, batch_len, || {
            let out = engine
                .query_many_parallel(&regions, threads)
                .expect("in bounds");
            out.last().copied().unwrap_or(0)
        });
        assert!(sink != i64::MIN, "checksum sentinel");
        results.push(m);
        result_names.push(format!("query_many_parallel_t{threads}"));
    }

    // Lane kernels vs their retained scalar twins over one RP-stride-wide
    // row: the innermost loop every sweep/update/build decomposes into.
    let row_len = dims[dims.len() - 1].max(kernels::LANES);
    let kernel_rounds = (rounds * batch_len).max(1);
    let mut lane_buf = vec![1i64; row_len];
    let src: Vec<i64> = (0..row_len as i64).collect();
    let (m, _) = measure_batch(kernel_rounds, 1, || {
        kernels::add_rows(&mut lane_buf, &src);
        lane_buf[0]
    });
    results.push(m);
    result_names.push("lane_add_rows".to_string());
    let mut scalar_buf = vec![1i64; row_len];
    let (m, _) = measure_batch(kernel_rounds, 1, || {
        kernels::add_rows_scalar(&mut scalar_buf, &src);
        scalar_buf[0]
    });
    results.push(m);
    result_names.push("scalar_add_rows".to_string());

    let (m, _) = measure_batch(kernel_rounds, 1, || {
        kernels::add_delta_run(&mut lane_buf, &3);
        lane_buf[0]
    });
    results.push(m);
    result_names.push("lane_add_delta".to_string());
    let (m, _) = measure_batch(kernel_rounds, 1, || {
        kernels::add_delta_run_scalar(&mut scalar_buf, &3);
        scalar_buf[0]
    });
    results.push(m);
    result_names.push("scalar_add_delta".to_string());
    assert_eq!(lane_buf, scalar_buf, "lane kernels must match scalar twins");

    Scenario {
        name: name.to_string(),
        dims: dims.to_vec(),
        box_size: engine.grid().box_size().to_vec(),
        results,
        result_names,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("{}/../../BENCH_THROUGHPUT.json", env!("CARGO_MANIFEST_DIR")));

    let threads: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let scenarios = if smoke {
        vec![
            run_scenario("d2_n64", &[64, 64], 256, 4, threads),
            run_scenario("d3_n16", &[16, 16, 16], 256, 4, threads),
        ]
    } else {
        vec![
            run_scenario("d2_n512", &[512, 512], 4096, 8, threads),
            run_scenario("d2_n1024", &[1024, 1024], 4096, 8, threads),
            run_scenario("d3_n64", &[64, 64, 64], 4096, 8, threads),
        ]
    };

    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let section = section_json(if smoke { "smoke" } else { "full" }, host_cpus, &scenarios);

    println!("=== query-batch throughput baseline ({host_cpus} host cpus) ===\n");
    for s in &scenarios {
        println!("scenario {} dims {:?} k {:?}", s.name, s.dims, s.box_size);
        let serial_ns = s.results.first().map_or(0.0, |m| m.ns_per_op);
        for (m, n) in s.results.iter().zip(&s.result_names) {
            let speedup = serial_ns / m.ns_per_op.max(1e-9);
            if n.starts_with("query_many_parallel") {
                println!(
                    "  {n:<24} {:>10.1} ns/op  {:>12.0} ops/s  ({speedup:.2}x vs serial)",
                    m.ns_per_op,
                    1e9 / m.ns_per_op.max(1e-9)
                );
            } else {
                println!(
                    "  {n:<24} {:>10.1} ns/op  {:>12.0} ops/s",
                    m.ns_per_op,
                    1e9 / m.ns_per_op.max(1e-9)
                );
            }
        }
    }

    write_section(&out_path, "exp_parallel_query", &section);
    println!("\nwrote {out_path} (section exp_parallel_query)");
}
