//! E11 — §4.4 "Practical Considerations": RP on disk, overlay in RAM.
//!
//! Measures block I/O per operation for the configuration the paper
//! recommends (overlay box sized so its RP region fills a whole number of
//! pages, box-aligned layout) against the flat row-major layout, across
//! box sizes. The paper's prediction: with box alignment, "both queries
//! and updates will then require only a constant number of disk reads or
//! writes."

use ndcube::NdCube;
use rps_analysis::Table;
use rps_core::BoxGrid;
use rps_core::RangeSumEngine;
use rps_storage::{DeviceConfig, DiskRpsEngine, IoStats, LatencyModel};
use rps_workload::{QueryGen, RegionSpec, UpdateGen};

const OPS: usize = 400;

fn run(
    cube: &NdCube<i64>,
    k: usize,
    cells_per_page: usize,
    box_aligned: bool,
    pool_frames: usize,
) -> (f64, f64, f64, usize, IoStats) {
    let grid = BoxGrid::new(cube.shape().clone(), &vec![k; cube.ndim()]).unwrap();
    let mut engine = DiskRpsEngine::from_cube_with_grid(
        cube,
        grid,
        DeviceConfig { cells_per_page },
        pool_frames,
        box_aligned,
    )
    .expect("build disk engine");
    let dims: Vec<usize> = cube.shape().dims().to_vec();

    let mut qg = QueryGen::new(&dims, 11, RegionSpec::Fraction(0.4));
    engine.reset_io_stats();
    for r in qg.take(OPS) {
        engine.query(&r).unwrap();
    }
    let q_reads = engine.io_stats().page_reads as f64 / OPS as f64;

    let mut ug = UpdateGen::uniform(&dims, 13, 50);
    engine.reset_io_stats();
    for (c, delta) in ug.take(OPS) {
        engine.update(&c, delta).unwrap();
    }
    engine.flush().expect("flush");
    let io = engine.io_stats();
    (
        q_reads,
        io.page_reads as f64 / OPS as f64,
        io.page_writes as f64 / OPS as f64,
        engine.overlay_cells(),
        io,
    )
}

fn main() {
    const N: usize = 256;
    let cube = NdCube::from_fn(&[N, N], |c| ((c[0] * 31 + c[1]) % 13) as i64).unwrap();
    let cells_per_page = 256; // "disk page" of 256 cells (2 KiB of i64)
    let pool_frames = 32;

    println!(
        "=== E11 / §4.4: page I/O per op, {N}×{N} cube, page = {cells_per_page} cells, \
         pool = {pool_frames} frames, {OPS} ops each ===\n"
    );

    let hdd = LatencyModel::hdd_1999();
    let nvme = LatencyModel::nvme();
    let mut table = Table::new(&[
        "k",
        "layout",
        "q reads/op",
        "u reads/op",
        "u writes/op",
        "update ms/op (HDD'99)",
        "µs/op (NVMe)",
        "overlay cells (RAM)",
    ]);
    for &k in &[8usize, 16, 32] {
        for &aligned in &[true, false] {
            let (q, ur, uw, overlay, io) = run(&cube, k, cells_per_page, aligned, pool_frames);
            table.row(&[
                k.to_string(),
                if aligned { "box-aligned" } else { "row-major" }.to_string(),
                format!("{q:.2}"),
                format!("{ur:.2}"),
                format!("{uw:.2}"),
                format!("{:.1}", hdd.per_op(&io, OPS as u64).as_secs_f64() * 1e3),
                format!("{:.0}", nvme.per_op(&io, OPS as u64).as_secs_f64() * 1e6),
                overlay.to_string(),
            ]);
        }
    }
    print!("{}", table.render());

    // The paper's headline §4.4 claim, as a hard check at the page-sized
    // box (k = 16 ⇒ box region = 256 cells = exactly one page).
    let (_q, ur, uw, _, _) = run(&cube, 16, cells_per_page, true, pool_frames);
    assert!(
        ur <= 1.05,
        "box-aligned update reads/op should be ≤ ~1, got {ur}"
    );
    assert!(
        uw <= 1.05,
        "box-aligned update writes/op should be ≤ ~1, got {uw}"
    );
    let (_q2, ur2, _uw2, _, _) = run(&cube, 16, cells_per_page, false, pool_frames);
    assert!(
        ur2 > 2.0 * ur,
        "row-major should cost several× more update reads"
    );

    println!(
        "\n§4.4 confirmed: sizing the box so its RP region fits exactly one page\n\
         gives ~1 page read + ~1 page write per update; the row-major layout\n\
         spreads the same cascade across ~k pages. Query I/O is ≤ 2^d pages\n\
         either way (one RP cell per corner)."
    );
}
