//! Extension experiment — update-cost sensitivity to skew.
//!
//! OLAP update streams are heavily skewed (recent dates, hot products).
//! Both cascading methods cost more for updates near the origin, so
//! origin-heavy Zipf streams push each toward its worst case — but the
//! worst cases differ by the paper's headline gap: RPS degradation is
//! capped by the §4.3 bound `(k−1)² + 2(n/k)k + (n/k−1)²` (≈ 2.4× its
//! uniform mean here), while the prefix-sum method's cap is the whole
//! cube, n² — so the RPS advantage *widens* under realistic skew.

use ndcube::NdCube;
use rps_analysis::Table;
use rps_core::{PrefixSumEngine, RangeSumEngine, RpsEngine};
use rps_workload::UpdateGen;

const OPS: usize = 2_000;

fn mean_update_writes<E: RangeSumEngine<i64>>(engine: &mut E, mut gen: UpdateGen) -> f64 {
    engine.reset_stats();
    for (c, delta) in gen.take(OPS) {
        engine.update(&c, delta).unwrap();
    }
    engine.stats().writes_per_update().unwrap()
}

fn main() {
    const N: usize = 256;
    let dims = [N, N];
    let cube = NdCube::from_fn(&[N, N], |c| ((c[0] + c[1]) % 9) as i64).unwrap();

    println!("=== skew sensitivity: mean cells written per update, {N}×{N}, {OPS} updates ===\n");
    let mut table = Table::new(&["stream", "prefix-sum", "rps (k=16)", "ps/rps"]);
    let mut rps_means = Vec::new();
    for (label, theta) in [
        ("uniform", None),
        ("zipf θ=0.5", Some(0.5)),
        ("zipf θ=1.0", Some(1.0)),
        ("zipf θ=1.5", Some(1.5)),
    ] {
        let gen = |seed: u64| match theta {
            None => UpdateGen::uniform(&dims, seed, 50),
            Some(t) => UpdateGen::zipf(&dims, seed, t, 50),
        };
        let mut ps = PrefixSumEngine::from_cube(&cube);
        let mut rps = RpsEngine::from_cube_uniform(&cube, 16).unwrap();
        let ps_mean = mean_update_writes(&mut ps, gen(7));
        let rps_mean = mean_update_writes(&mut rps, gen(7));
        rps_means.push(rps_mean);
        table.row(&[
            label.to_string(),
            format!("{ps_mean:.0}"),
            format!("{rps_mean:.1}"),
            format!("{:.0}×", ps_mean / rps_mean),
        ]);
    }
    print!("{}", table.render());

    // Every RPS mean, however skewed, stays under the §4.3 worst-case
    // formula; the prefix-sum means head toward n².
    let formula = rps_analysis::cost_model::rps_update_cost(N as f64, 2, 16.0);
    for m in &rps_means {
        assert!(
            *m <= formula,
            "rps mean {m} exceeded worst-case formula {formula}"
        );
    }
    let spread = rps_means.iter().copied().fold(f64::MIN, f64::max)
        / rps_means.iter().copied().fold(f64::MAX, f64::min);
    println!(
        "\nunder origin-heavy skew both methods drift toward their worst case,\n\
         but RPS is capped by the §4.3 bound ({formula:.0} cells here; observed\n\
         ≤ {:.0}, a {spread:.1}× spread) while prefix-sum keeps climbing toward\n\
         n² = {} — the paper's advantage widens exactly when data is hot.",
        rps_means.iter().copied().fold(f64::MIN, f64::max),
        N * N
    );
}
