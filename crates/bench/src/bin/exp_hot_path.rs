//! Hot-path latency + allocation baseline: ns/query, ns/update,
//! allocs/op for the in-memory RPS engine, emitted as `BENCH_HOTPATH.json`
//! so every future PR has a measured trajectory to compare against.
//!
//! The paper argues in cells touched; Pibiri & Venturini (PAPERS.md) show
//! the *constant factors* — cache behaviour and allocator traffic — decide
//! which prefix-sum structure wins in practice. This experiment pins both:
//! wall-clock per op and heap allocations per op (via
//! [`rps_bench::alloc_counter`]), for steady-state point queries, range
//! queries and point updates, plus the parallel batch-update path.
//!
//! ```text
//! cargo run --release -p rps-bench --bin exp_hot_path            # full
//! cargo run --release -p rps-bench --bin exp_hot_path -- --smoke # CI
//! cargo run --release -p rps-bench --bin exp_hot_path -- --out p.json
//! ```
//!
//! `--smoke` shrinks shapes and op counts to run in seconds; CI uses it
//! to keep the emitter from rotting. The committed baseline at the repo
//! root is refreshed with the full configuration (see
//! `docs/PERFORMANCE.md` for how to read and refresh it).

use std::time::Instant;

use ndcube::{NdCube, Region};
use rps_bench::alloc_counter::{thread_allocs, CountingAllocator};
use rps_core::{BlockedFenwickEngine, FenwickEngine, RangeSumEngine, RpsEngine};
use rps_workload::{CubeGen, QueryGen, RegionSpec, UpdateGen, UpdateSpec};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// One measured loop: ns/op and allocs/op over `ops` operations.
struct Measurement {
    ops: usize,
    ns_per_op: f64,
    allocs_per_op: f64,
}

impl Measurement {
    fn json(&self, name: &str) -> String {
        format!(
            "{{\"name\":\"{name}\",\"ops\":{},\"ns_per_op\":{:.1},\"allocs_per_op\":{:.4}}}",
            self.ops, self.ns_per_op, self.allocs_per_op
        )
    }
}

fn measure(ops: usize, mut body: impl FnMut()) -> Measurement {
    let alloc_before = thread_allocs();
    let start = Instant::now();
    for _ in 0..ops {
        body();
    }
    let elapsed = start.elapsed();
    let allocs = thread_allocs() - alloc_before;
    Measurement {
        ops,
        ns_per_op: elapsed.as_nanos() as f64 / ops as f64,
        allocs_per_op: allocs as f64 / ops as f64,
    }
}

struct Scenario {
    name: String,
    dims: Vec<usize>,
    box_size: Vec<usize>,
    results: Vec<Measurement>,
    result_names: Vec<String>,
}

impl Scenario {
    fn json(&self) -> String {
        let dims: Vec<String> = self.dims.iter().map(ToString::to_string).collect();
        let ks: Vec<String> = self.box_size.iter().map(ToString::to_string).collect();
        let measurements: Vec<String> = self
            .results
            .iter()
            .zip(&self.result_names)
            .map(|(m, n)| m.json(n))
            .collect();
        format!(
            "    {{\"scenario\":\"{}\",\"dims\":[{}],\"box_size\":[{}],\"measurements\":[\n      {}\n    ]}}",
            self.name,
            dims.join(","),
            ks.join(","),
            measurements.join(",\n      ")
        )
    }
}

fn run_scenario(name: &str, dims: &[usize], query_ops: usize, update_ops: usize) -> Scenario {
    let mut gen = CubeGen::new(0xC0FFEE);
    let cube = gen.uniform(dims, 0, 100).expect("valid dims");
    let mut engine = RpsEngine::from_cube(&cube);

    let regions: Vec<Region> = QueryGen::new(dims, 7, RegionSpec::Fraction(0.5)).take(query_ops);
    let points: Vec<Region> = QueryGen::new(dims, 11, RegionSpec::Point).take(query_ops);
    let updates: Vec<(Vec<usize>, i64)> = UpdateGen::uniform(dims, 13, 50).take(update_ops);

    // Warm up: fault in every lazily-grown buffer (thread-local scratch,
    // cache lines) so the measured loops see steady state.
    let mut sink = 0i64;
    for r in regions.iter().take(64.min(query_ops)) {
        sink = sink.wrapping_add(engine.query(r).expect("in bounds"));
    }
    for (c, d) in updates.iter().take(64.min(update_ops)) {
        engine.update(c, *d).expect("in bounds");
    }

    let mut results = Vec::new();
    let mut result_names = Vec::new();

    let mut qi = regions.iter().cycle();
    results.push(measure(query_ops, || {
        let r = qi.next().expect("cycle never ends");
        sink = sink.wrapping_add(engine.query(r).expect("in bounds"));
    }));
    result_names.push("range_query".to_string());

    let mut pi = points.iter().cycle();
    results.push(measure(query_ops, || {
        let r = pi.next().expect("cycle never ends");
        sink = sink.wrapping_add(engine.query(r).expect("in bounds"));
    }));
    result_names.push("point_query".to_string());

    let mut ui = updates.iter().cycle();
    results.push(measure(update_ops, || {
        let (c, d) = ui.next().expect("cycle never ends");
        engine.update(c, *d).expect("in bounds");
    }));
    result_names.push("update".to_string());

    // Batch path: the adaptive incremental/rebuild decision plus (once
    // the parallel orthant walk lands) slab-parallel overlay writes.
    for &threads in &[1usize, 4] {
        let batch: Vec<(Vec<usize>, i64)> =
            UpdateGen::uniform(dims, 17 + threads as u64, 50).take(update_ops.max(1));
        let start = Instant::now();
        let alloc_before = thread_allocs();
        engine
            .apply_batch_parallel(&batch, threads)
            .expect("in bounds");
        let elapsed = start.elapsed();
        results.push(Measurement {
            ops: batch.len(),
            ns_per_op: elapsed.as_nanos() as f64 / batch.len() as f64,
            allocs_per_op: (thread_allocs() - alloc_before) as f64 / batch.len() as f64,
        });
        result_names.push(format!("batch_update_t{threads}"));
    }

    // Keep the checksum alive so the optimizer cannot delete the loops.
    assert!(sink != i64::MIN, "checksum sentinel");

    Scenario {
        name: name.to_string(),
        dims: dims.to_vec(),
        box_size: engine.grid().box_size().to_vec(),
        results,
        result_names,
    }
}

/// One engine's fast-path vs per-cell-default timing for a rectangle
/// shape: the speedup column is the tentpole number this experiment
/// exists to track.
struct RangeEngineResult {
    engine: &'static str,
    fast: Measurement,
    per_cell: Measurement,
}

impl RangeEngineResult {
    fn speedup(&self) -> f64 {
        self.per_cell.ns_per_op / self.fast.ns_per_op
    }

    fn json(&self) -> String {
        format!(
            "{{\"engine\":\"{}\",\"fast_ns_per_op\":{:.1},\"fast_allocs_per_op\":{:.4},\"per_cell_ns_per_op\":{:.1},\"speedup\":{:.2}}}",
            self.engine,
            self.fast.ns_per_op,
            self.fast.allocs_per_op,
            self.per_cell.ns_per_op,
            self.speedup()
        )
    }
}

struct RangeShapeResult {
    shape: &'static str,
    cells_per_op: f64,
    engines: Vec<RangeEngineResult>,
}

impl RangeShapeResult {
    fn json(&self) -> String {
        let engines: Vec<String> = self.engines.iter().map(RangeEngineResult::json).collect();
        format!(
            "      {{\"shape\":\"{}\",\"cells_per_op\":{:.1},\"engines\":[\n        {}\n      ]}}",
            self.shape,
            self.cells_per_op,
            engines.join(",\n        ")
        )
    }
}

struct RangeScenario {
    name: String,
    dims: Vec<usize>,
    shapes: Vec<RangeShapeResult>,
}

impl RangeScenario {
    fn json(&self) -> String {
        let dims: Vec<String> = self.dims.iter().map(ToString::to_string).collect();
        let shapes: Vec<String> = self.shapes.iter().map(RangeShapeResult::json).collect();
        format!(
            "    {{\"scenario\":\"{}\",\"dims\":[{}],\"shapes\":[\n{}\n    ]}}",
            self.name,
            dims.join(","),
            shapes.join(",\n")
        )
    }
}

/// Times one engine over the pre-drawn rectangles twice: once through its
/// `range_update` fast path, once through the trait's per-cell default
/// (an explicit `update` loop — identical work to the default impl).
fn measure_range_engine<E: RangeSumEngine<i64>>(
    engine_name: &'static str,
    mut engine: E,
    rects: &[(Region, i64)],
    fast_ops: usize,
    per_cell_ops: usize,
) -> RangeEngineResult {
    // Warm up both paths so lazily-grown scratch is faulted in.
    for (r, d) in rects.iter().take(4) {
        engine.range_update(r, *d).expect("in bounds");
        for c in r.iter().take(64) {
            engine.update(&c, *d).expect("in bounds");
        }
    }

    let mut it = rects.iter().cycle();
    let fast = measure(fast_ops, || {
        let (r, d) = it.next().expect("cycle never ends");
        engine.range_update(r, *d).expect("in bounds");
    });

    let mut it = rects.iter().cycle();
    let per_cell = measure(per_cell_ops, || {
        let (r, d) = it.next().expect("cycle never ends");
        for c in r.iter() {
            engine.update(&c, *d).expect("in bounds");
        }
    });

    RangeEngineResult {
        engine: engine_name,
        fast,
        per_cell,
    }
}

/// The update-rectangle-size axis: point / small / large / full_row
/// rectangles, each shape timed through every bulk-update fast path and
/// through the per-cell default it replaces.
fn run_range_scenario(name: &str, dims: &[usize], ops: usize, smoke: bool) -> RangeScenario {
    let mut gen = CubeGen::new(0xBA5EBA11);
    let cube: NdCube<i64> = gen.uniform(dims, 0, 100).expect("valid dims");

    let shapes = [
        ("point", UpdateSpec::Point),
        ("small", UpdateSpec::Fraction(0.05)),
        ("large", UpdateSpec::Fraction(0.5)),
        ("full_row", UpdateSpec::FullRow),
    ];
    // The per-cell loop costs cells × point-update; cap how many raw
    // cells it replays so large rectangles keep the run under seconds.
    let cell_budget: f64 = if smoke { 50_000.0 } else { 500_000.0 };

    let mut out = Vec::new();
    for (label, spec) in shapes {
        let rects: Vec<(Region, i64)> = {
            let mut g = UpdateGen::uniform(dims, 23, 50).with_region_spec(spec);
            (0..ops.max(1)).map(|_| g.next_range_update()).collect()
        };
        let cells_per_op =
            rects.iter().map(|(r, _)| r.cell_count() as f64).sum::<f64>() / rects.len() as f64;
        let per_cell_ops = ((cell_budget / cells_per_op) as usize).clamp(4, ops.max(4));

        let engines = vec![
            measure_range_engine(
                "rps",
                RpsEngine::from_cube(&cube),
                &rects,
                ops,
                per_cell_ops,
            ),
            measure_range_engine(
                "fenwick",
                FenwickEngine::from_cube(&cube),
                &rects,
                ops,
                per_cell_ops,
            ),
            measure_range_engine(
                "blocked_fenwick",
                BlockedFenwickEngine::from_cube(&cube),
                &rects,
                ops,
                per_cell_ops,
            ),
        ];
        out.push(RangeShapeResult {
            shape: label,
            cells_per_op,
            engines,
        });
    }

    RangeScenario {
        name: name.to_string(),
        dims: dims.to_vec(),
        shapes: out,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("{}/../../BENCH_HOTPATH.json", env!("CARGO_MANIFEST_DIR")));

    let (q_ops, u_ops) = if smoke {
        (2_000, 1_000)
    } else {
        (50_000, 20_000)
    };
    let scenarios = if smoke {
        vec![
            run_scenario("d2_n64", &[64, 64], q_ops, u_ops),
            run_scenario("d3_n16", &[16, 16, 16], q_ops, u_ops),
        ]
    } else {
        vec![
            run_scenario("d2_n512", &[512, 512], q_ops, u_ops),
            run_scenario("d2_n1024", &[1024, 1024], q_ops, u_ops),
            run_scenario("d3_n64", &[64, 64, 64], q_ops, u_ops),
        ]
    };

    let range_ops = if smoke { 64 } else { 512 };
    let range_scenarios = if smoke {
        vec![run_range_scenario("d2_n64", &[64, 64], range_ops, smoke)]
    } else {
        vec![
            run_range_scenario("d2_n512", &[512, 512], range_ops, smoke),
            run_range_scenario("d3_n64", &[64, 64, 64], range_ops, smoke),
        ]
    };

    let body: Vec<String> = scenarios.iter().map(Scenario::json).collect();
    let range_body: Vec<String> = range_scenarios.iter().map(RangeScenario::json).collect();
    let json = format!(
        "{{\n  \"bench\": \"exp_hot_path\",\n  \"mode\": \"{}\",\n  \"scenarios\": [\n{}\n  ],\n  \"range_update\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        body.join(",\n"),
        range_body.join(",\n")
    );

    println!("=== hot-path latency & allocation baseline ===\n");
    for s in &scenarios {
        println!("scenario {} dims {:?} k {:?}", s.name, s.dims, s.box_size);
        for (m, n) in s.results.iter().zip(&s.result_names) {
            println!(
                "  {n:<16} {:>10.1} ns/op  {:>8.4} allocs/op  ({} ops)",
                m.ns_per_op, m.allocs_per_op, m.ops
            );
        }
    }

    println!("\n=== range_update: fast path vs per-cell default ===\n");
    for s in &range_scenarios {
        println!("scenario {} dims {:?}", s.name, s.dims);
        for shape in &s.shapes {
            println!("  shape {:<9} (~{:.0} cells/op)", shape.shape, shape.cells_per_op);
            for e in &shape.engines {
                println!(
                    "    {:<16} fast {:>12.1} ns/op   per-cell {:>14.1} ns/op   speedup {:>8.2}x",
                    e.engine, e.fast.ns_per_op, e.per_cell.ns_per_op, e.speedup()
                );
            }
        }
    }

    std::fs::write(&out_path, &json).expect("write BENCH_HOTPATH.json");
    println!("\nwrote {out_path}");
}
