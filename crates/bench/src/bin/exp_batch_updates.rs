//! Ablation — batch-refresh strategies (DESIGN.md: batch threshold).
//!
//! The paper motivates RPS with daily/weekly warehouse refreshes, i.e.
//! *batched* updates. This experiment measures three strategies for a
//! batch of m updates on an n×n cube:
//!
//! 1. **incremental** — m × the §4.3 per-update algorithm;
//! 2. **rebuild** — recover A (inverse RP sweep), apply the batch,
//!    rebuild RP + overlay in O(d·N);
//! 3. **buffered** — absorb into a sparse delta buffer (O(1)/update),
//!    paying O(buffer) extra reads per query until merged.
//!
//! and shows the crossover `apply_batch` exploits, plus the query-time
//! price the buffered strategy pays.

use ndcube::{NdCube, Region};
use rps_analysis::Table;
use rps_core::{BufferedEngine, RangeSumEngine, RpsEngine};
use rps_workload::{CubeGen, QueryGen, RegionSpec, UpdateGen};

fn main() {
    const N: usize = 256;
    let dims = [N, N];
    let cube: NdCube<i64> = CubeGen::new(4).uniform(&dims, 0, 9).expect("valid dims");
    let k = 16; // √n

    println!("=== batch refresh strategies, {N}×{N} cube, k = {k} ===\n");
    let mut table = Table::new(&[
        "batch m",
        "incremental writes",
        "rebuild writes",
        "apply_batch chose",
        "buffered writes",
    ]);

    // Rebuild cost in cell writes ≈ recovering A + RP sweep + overlay:
    // measured by instrumenting a forced rebuild below.
    for &m in &[1usize, 10, 100, 1_000, 10_000, 65_536] {
        let batch = UpdateGen::uniform(&dims, 5, 20).take(m);

        // Incremental.
        let mut inc = RpsEngine::from_cube_uniform(&cube, k).unwrap();
        inc.reset_stats();
        for (c, d) in &batch {
            inc.update(c, *d).unwrap();
        }
        let inc_writes = inc.stats().cell_writes;

        // Rebuild: A recovery + batch application + full reconstruction.
        // Count as cells touched: N (inverse sweep reads/writes) ≈ d·N
        // writes for RP + overlay build + m cell bumps.
        let rebuild_writes = (2 * 2 * N * N + m) as u64; // 2 sweeps × d dims, conservative

        // What does apply_batch pick?
        let mut auto = RpsEngine::from_cube_uniform(&cube, k).unwrap();
        let rebuilt = auto.apply_batch(&batch).unwrap();

        // Buffered.
        let mut buf = BufferedEngine::new(
            RpsEngine::from_cube_uniform(&cube, k).unwrap(),
            usize::MAX >> 1, // never auto-merge; measure pure buffering
        );
        buf.reset_stats();
        for (c, d) in &batch {
            buf.update(c, *d).unwrap();
        }
        let buf_writes = buf.stats().cell_writes;

        // All strategies must agree.
        let probe = Region::new(&[3, 3], &[200, 250]).unwrap();
        assert_eq!(inc.query(&probe).unwrap(), auto.query(&probe).unwrap());
        assert_eq!(inc.query(&probe).unwrap(), buf.query(&probe).unwrap());

        table.row(&[
            m.to_string(),
            inc_writes.to_string(),
            rebuild_writes.to_string(),
            if rebuilt { "rebuild" } else { "incremental" }.to_string(),
            buf_writes.to_string(),
        ]);
    }
    print!("{}", table.render());

    println!("\n=== the buffered strategy's query-time price ===\n");
    let mut qtable = Table::new(&[
        "buffered cells",
        "reads/query (rps)",
        "reads/query (buffered)",
    ]);
    for &pending in &[0usize, 100, 1_000, 10_000] {
        let plain = RpsEngine::from_cube_uniform(&cube, k).unwrap();
        let mut buf = BufferedEngine::new(
            RpsEngine::from_cube_uniform(&cube, k).unwrap(),
            usize::MAX >> 1,
        );
        for (c, d) in UpdateGen::uniform(&dims, 6, 20).take(pending) {
            buf.update(&c, d).unwrap();
        }
        let mut qg = QueryGen::new(&dims, 8, RegionSpec::Fraction(0.5));
        plain.reset_stats();
        buf.reset_stats();
        for r in qg.take(200) {
            plain.query(&r).unwrap();
            buf.query(&r).unwrap();
        }
        qtable.row(&[
            buf.pending().to_string(),
            format!("{:.1}", plain.stats().reads_per_query().unwrap()),
            format!("{:.1}", buf.stats().reads_per_query().unwrap()),
        ]);
    }
    print!("{}", qtable.render());
    println!(
        "\nconclusion: incremental wins for small batches, rebuild for\n\
         cube-sized ones (apply_batch's threshold follows the cost model);\n\
         buffering makes updates O(1) but queries pay O(pending) — fine\n\
         between merges, unacceptable unmerged."
    );
}
