//! Extension experiment — corner sharing across query batches.
//!
//! Dashboard workloads issue families of related queries (rolling
//! windows, group-bys, cross-tabs) whose 2^d corner sets overlap.
//! `RpsEngine::query_many` caches reconstructed prefix sums across a
//! batch; this experiment measures the cell-read savings on three
//! realistic batch shapes.
//!
//! `--out FILE` additionally writes the rows as JSON (BENCH_*-style
//! schema) so trajectory tooling can diff the savings across PRs.

use ndcube::{NdCube, Region};
use rps_analysis::Table;
use rps_core::{RangeSumEngine, RpsEngine};

fn measure(engine: &RpsEngine<i64>, regions: &[Region]) -> (u64, u64, f64) {
    engine.reset_stats();
    let batch = engine.query_many(regions).unwrap();
    let batched = engine.stats().cell_reads;
    engine.reset_stats();
    let individual_answers: Vec<i64> = regions.iter().map(|r| engine.query(r).unwrap()).collect();
    let individual = engine.stats().cell_reads;
    assert_eq!(
        batch, individual_answers,
        "batched answers must be identical"
    );
    (batched, individual, individual as f64 / batched as f64)
}

fn main() {
    const N: usize = 365;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut json_rows: Vec<String> = Vec::new();
    let cube = NdCube::from_fn(&[100, N], |c| ((c[0] * 13 + c[1] * 7) % 50) as i64).unwrap();
    let engine = RpsEngine::from_cube(&cube);

    println!("=== query_many: shared-corner savings (100×{N} sales cube) ===\n");
    let mut table = Table::new(&[
        "batch",
        "queries",
        "reads batched",
        "reads individual",
        "saving",
    ]);

    // 1. Rolling 30-day windows across the year (classic report).
    let rolling: Vec<Region> = (0..N - 30)
        .map(|s| Region::new(&[20, s], &[60, s + 29]).unwrap())
        .collect();
    let (b, i, f) = measure(&engine, &rolling);
    json_rows.push(format!(
        "{{\"name\":\"rolling_30_day\",\"queries\":{},\"reads_batched\":{b},\"reads_individual\":{i},\"saving\":{f:.4}}}",
        rolling.len()
    ));
    table.row(&[
        "rolling 30-day".into(),
        rolling.len().to_string(),
        b.to_string(),
        i.to_string(),
        format!("{f:.2}×"),
    ]);

    // 2. Monthly group-by (12 adjacent buckets share internal corners).
    let monthly: Vec<Region> = (0..12)
        .map(|m| Region::new(&[0, m * 30], &[99, (m * 30 + 29).min(N - 1)]).unwrap())
        .collect();
    let (b, i, f) = measure(&engine, &monthly);
    json_rows.push(format!(
        "{{\"name\":\"monthly_group_by\",\"queries\":{},\"reads_batched\":{b},\"reads_individual\":{i},\"saving\":{f:.4}}}",
        monthly.len()
    ));
    table.row(&[
        "monthly group-by".into(),
        monthly.len().to_string(),
        b.to_string(),
        i.to_string(),
        format!("{f:.2}×"),
    ]);

    // 3. Age-band cross-tab: 10 age bands × 4 quarters.
    let mut crosstab = Vec::new();
    for band in 0..10 {
        for q in 0..4 {
            crosstab.push(
                Region::new(
                    &[band * 10, q * 91],
                    &[band * 10 + 9, (q * 91 + 90).min(N - 1)],
                )
                .unwrap(),
            );
        }
    }
    let (b, i, f) = measure(&engine, &crosstab);
    json_rows.push(format!(
        "{{\"name\":\"crosstab_10x4\",\"queries\":{},\"reads_batched\":{b},\"reads_individual\":{i},\"saving\":{f:.4}}}",
        crosstab.len()
    ));
    table.row(&[
        "10×4 cross-tab".into(),
        crosstab.len().to_string(),
        b.to_string(),
        i.to_string(),
        format!("{f:.2}×"),
    ]);

    if let Some(path) = out_path {
        let json = format!(
            "{{\n  \"bench\": \"exp_query_many\",\n  \"rows\": [\n    {}\n  ]\n}}\n",
            json_rows.join(",\n    ")
        );
        std::fs::write(&path, json).expect("write --out file");
        println!("wrote {path}\n");
    }
    print!("{}", table.render());
    println!(
        "\nbatched answers are asserted identical to per-query answers; the\n\
         saving comes purely from reusing reconstructed prefix sums at\n\
         shared corners (adjacent windows/buckets share half their corners)."
    );
}
