//! E3 + E7 — the paper's update examples (Figures 4 and 15).
//!
//! Reproduces, in exact cell counts, §4.2's comparison: "the total update
//! cost for the overlay algorithm is sixteen cells (twelve overlay cells
//! and four cells in RP), compared to sixty four cells in the prefix sum
//! method."
//!
//! Then generalizes the same measurement across update positions to show
//! the whole cost distribution, not just the worked example.

use rps_analysis::Table;
use rps_core::testdata::{paper_array_a, PAPER_BOX_SIZE};
use rps_core::{NaiveEngine, PrefixSumEngine, RangeSumEngine, RpsEngine};

fn main() {
    let a = paper_array_a();

    println!("=== E7: the paper's worked update (A[1,1] += 1 on the 9×9 cube) ===\n");
    let mut table = Table::new(&["method", "cells written", "paper says"]);

    let mut naive = NaiveEngine::from_cube(a.clone());
    naive.update(&[1, 1], 1).unwrap();
    table.row(&[
        "naive".into(),
        naive.stats().cell_writes.to_string(),
        "1".into(),
    ]);

    let mut ps = PrefixSumEngine::from_cube(&a);
    ps.update(&[1, 1], 1).unwrap();
    table.row(&[
        "prefix-sum".into(),
        ps.stats().cell_writes.to_string(),
        "64".into(),
    ]);

    let mut rps = RpsEngine::from_cube_uniform(&a, PAPER_BOX_SIZE).unwrap();
    rps.update(&[1, 1], 1).unwrap();
    table.row(&[
        "relative-prefix-sum".into(),
        rps.stats().cell_writes.to_string(),
        "16 (12 overlay + 4 RP)".into(),
    ]);
    print!("{}", table.render());

    assert_eq!(naive.stats().cell_writes, 1);
    assert_eq!(ps.stats().cell_writes, 64);
    assert_eq!(rps.stats().cell_writes, 16);

    println!("\n=== E3/E7 generalized: update cost by position (9×9, k=3) ===\n");
    let mut pos_table = Table::new(&["position", "prefix-sum writes", "rps writes", "ratio"]);
    for pos in [[0usize, 0], [1, 1], [4, 4], [8, 8], [0, 8], [3, 3]] {
        let mut ps = PrefixSumEngine::from_cube(&a);
        ps.update(&pos, 1).unwrap();
        let mut rps = RpsEngine::from_cube_uniform(&a, PAPER_BOX_SIZE).unwrap();
        rps.update(&pos, 1).unwrap();
        let psw = ps.stats().cell_writes;
        let rpsw = rps.stats().cell_writes;
        pos_table.row(&[
            format!("A[{},{}]", pos[0], pos[1]),
            psw.to_string(),
            rpsw.to_string(),
            format!("{:.1}×", psw as f64 / rpsw as f64),
        ]);
    }
    print!("{}", pos_table.render());

    println!("\n=== same comparison at realistic scale (1024×1024, k=32) ===\n");
    let n = 1024usize;
    let big = ndcube::NdCube::from_fn(&[n, n], |c| ((c[0] + c[1]) % 10) as i64).unwrap();
    let mut scale_table = Table::new(&["position", "prefix-sum writes", "rps writes", "ratio"]);
    for pos in [[1usize, 1], [n / 2, n / 2], [n - 1, n - 1]] {
        let mut ps = PrefixSumEngine::from_cube(&big);
        ps.update(&pos, 1).unwrap();
        let mut rps = RpsEngine::from_cube_uniform(&big, 32).unwrap();
        rps.update(&pos, 1).unwrap();
        let psw = ps.stats().cell_writes;
        let rpsw = rps.stats().cell_writes;
        scale_table.row(&[
            format!("A[{},{}]", pos[0], pos[1]),
            psw.to_string(),
            rpsw.to_string(),
            format!("{:.0}×", psw as f64 / rpsw as f64),
        ]);
    }
    print!("{}", scale_table.render());
    println!("\nshape check: RPS worst-case update is Θ(n) at d=2 (k=√n), prefix-sum Θ(n²).");
}
