//! Extension experiment — parallel structure construction.
//!
//! Building P and RP is O(d·N) of sweeps; `rps-core` parallelizes both
//! over dim-0 slabs (box-aligned for RP, two-phase scan for P). This
//! experiment measures wall-clock build time vs thread count and checks
//! the parallel build produces a bit-identical engine.

use std::time::Instant;

use ndcube::NdCube;
use rps_analysis::Table;
use rps_core::RpsEngine;
use rps_workload::CubeGen;

fn main() {
    const N: usize = 2048;
    let cube: NdCube<i64> = CubeGen::new(12)
        .uniform(&[N, N], 0, 99)
        .expect("valid dims");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!(
        "=== parallel build: {N}×{N} cube ({} cells), {cores} hardware thread(s) ===\n",
        N * N
    );

    // Reference serial build (and correctness baseline).
    let t0 = Instant::now();
    let serial = RpsEngine::from_cube(&cube);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut table = Table::new(&["threads", "build ms", "speedup"]);
    table.row(&[
        "1 (serial)".into(),
        format!("{serial_ms:.1}"),
        "1.0×".into(),
    ]);

    for threads in [2usize, 4, 8] {
        let t0 = Instant::now();
        let parallel = RpsEngine::from_cube_parallel(&cube, threads);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            parallel.rp_array(),
            serial.rp_array(),
            "parallel RP diverged at {threads} threads"
        );
        // Spot-check overlay equality through prefix sums.
        for x in [[0usize, 0usize], [N / 2, N / 3], [N - 1, N - 1], [17, 1999]] {
            assert_eq!(
                parallel.prefix_sum(&x).unwrap(),
                serial.prefix_sum(&x).unwrap(),
                "prefix {x:?}"
            );
        }
        table.row(&[
            threads.to_string(),
            format!("{ms:.1}"),
            format!("{:.1}×", serial_ms / ms),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nparallel builds are bit-identical to serial (asserted above); the\n\
         achievable speedup is bounded by hardware threads ({cores} here),\n\
         memory bandwidth (the sweeps are one add per cell), and the serial\n\
         overlay-derivation tail — expect ≈1× on a single-core machine."
    );
}
