//! E8 — §4.3 "Choosing the Overlay Box Size".
//!
//! Sweeps the box side k for fixed n and d, measuring the worst-case
//! update cost (cells written) and comparing it with the paper's formula
//! `(k−1)^d + d·(n/k)·k^{d−1} + (n/k−1)^d`. Verifies the measured minimum
//! falls at k ≈ √n, the paper's headline tuning result.

use ndcube::NdCube;
use rps_analysis::{cost_model, Table};
use rps_core::{RangeSumEngine, RpsEngine};

/// Worst measured update cost over a set of adversarial positions.
fn worst_update_cost(cube: &NdCube<i64>, k: usize) -> u64 {
    let d = cube.ndim();
    let n = cube.shape().dim(0);
    let mut worst = 0u64;
    // Position just past an anchor maximizes every term; probe a few.
    let candidates: Vec<Vec<usize>> = vec![vec![1; d], vec![(k + 1).min(n - 1); d], vec![0; d], {
        let mut v = vec![1; d];
        v[0] = 0;
        v
    }];
    for pos in candidates {
        let mut e = RpsEngine::from_cube_uniform(cube, k).unwrap();
        e.reset_stats();
        e.update(&pos, 1).unwrap();
        worst = worst.max(e.stats().cell_writes);
    }
    worst
}

fn sweep(n: usize, d: u32) {
    println!("=== E8: box-size sweep, n = {n}, d = {d} ===\n");
    let dims = vec![n; d as usize];
    let cube = NdCube::from_fn(&dims, |c| (c.iter().sum::<usize>() % 10) as i64).unwrap();

    let mut table = Table::new(&[
        "k",
        "measured worst update",
        "formula",
        "storage overhead %",
    ]);
    let ks: Vec<usize> = {
        let mut v = vec![];
        let mut k = 2;
        while k <= n {
            if n.is_multiple_of(k) {
                v.push(k);
            }
            k += 1;
        }
        v
    };
    let mut best = (0usize, u64::MAX);
    for &k in &ks {
        let measured = worst_update_cost(&cube, k);
        let formula = cost_model::rps_update_cost(n as f64, d, k as f64);
        let overhead = 100.0 * rps_analysis::overlay_fraction(k as u64, d);
        if measured < best.1 {
            best = (k, measured);
        }
        table.row(&[
            k.to_string(),
            measured.to_string(),
            format!("{formula:.0}"),
            format!("{overhead:.1}"),
        ]);
    }
    print!("{}", table.render());

    let sqrt_n = (n as f64).sqrt();
    println!(
        "\nmeasured minimum at k = {} (paper predicts k = √n = {:.1}); \
         formula argmin over all k: {}\n",
        best.0,
        sqrt_n,
        cost_model::argmin_update_cost(n, d)
    );
    assert!(
        (best.0 as f64) >= sqrt_n / 2.0 && (best.0 as f64) <= sqrt_n * 2.0,
        "measured optimum should bracket √n"
    );
}

fn main() {
    sweep(64, 2);
    sweep(256, 2);
    sweep(1024, 2);
    sweep(64, 3);
    println!("conclusion: measured worst-case update cost is U-shaped in k with");
    println!("its minimum at k ≈ √n, matching §4.3's derivation.");
}
