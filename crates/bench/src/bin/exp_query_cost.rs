//! E2/§4.1 — the constant-time query claim, measured.
//!
//! For each method, average cells read per range query across n (must be
//! flat for the O(1) methods) and across d (must grow like the method's
//! per-query constant: 2^d for prefix sum, ≤ 2^d·(d+2) at d ≤ 2 and
//! ≤ 4^d at d ≥ 3 for RPS — see DESIGN.md on the d ≥ 3 reconstruction).

use ndcube::NdCube;
use rps_analysis::Table;
use rps_core::{FenwickEngine, NaiveEngine, PrefixSumEngine, RangeSumEngine, RpsEngine};
use rps_workload::{QueryGen, RegionSpec};

fn mean_reads(engine: &dyn RangeSumEngine<i64>, dims: &[usize], queries: usize) -> f64 {
    let mut qg = QueryGen::new(dims, 7, RegionSpec::Fraction(0.5));
    engine.reset_stats();
    for r in qg.take(queries) {
        engine.query(&r).unwrap();
    }
    engine.stats().reads_per_query().unwrap()
}

fn main() {
    const QUERIES: usize = 500;

    println!("=== E2/§4.1: mean cells read per query vs n (d = 2) ===\n");
    let mut table = Table::new(&["n", "naive", "prefix-sum", "rps", "fenwick"]);
    let mut rps_by_n = Vec::new();
    for &n in &[32usize, 64, 128, 256, 512] {
        let cube = NdCube::from_fn(&[n, n], |c| ((c[0] + 3 * c[1]) % 7) as i64).unwrap();
        let naive = NaiveEngine::from_cube(cube.clone());
        let ps = PrefixSumEngine::from_cube(&cube);
        let rps = RpsEngine::from_cube(&cube);
        let fw = FenwickEngine::from_cube(&cube);
        let dims = [n, n];
        let r_rps = mean_reads(&rps, &dims, QUERIES);
        rps_by_n.push(r_rps);
        table.row(&[
            n.to_string(),
            format!("{:.0}", mean_reads(&naive, &dims, QUERIES)),
            format!("{:.2}", mean_reads(&ps, &dims, QUERIES)),
            format!("{r_rps:.2}"),
            format!("{:.2}", mean_reads(&fw, &dims, QUERIES)),
        ]);
    }
    print!("{}", table.render());

    // O(1) check: RPS mean reads stay under the 2^d·(d+2) = 16 ceiling
    // at every n, converging toward it from below (small cubes hit the
    // 3-read anchor-plane shortcut more often).
    assert!(
        rps_by_n.iter().all(|&r| r <= 16.0),
        "RPS reads/query exceeded the d=2 ceiling: {rps_by_n:?}"
    );
    let last_step = rps_by_n[rps_by_n.len() - 1] - rps_by_n[rps_by_n.len() - 2];
    assert!(
        last_step < 0.5,
        "RPS reads/query still growing: {rps_by_n:?}"
    );
    println!(
        "\nRPS reads/query bounded by 2^d·(d+2) = 16 at every n (converging\n\
         from below as anchor-plane shortcut hits thin out) — O(1) ✓"
    );

    println!("\n=== query cost vs dimensionality (fixed N ≈ 4096 cells) ===\n");
    let mut dtab = Table::new(&["d", "shape", "prefix-sum reads", "rps reads", "rps bound"]);
    for &(d, n) in &[(1usize, 4096usize), (2, 64), (3, 16), (4, 8)] {
        let dims = vec![n; d];
        let cube = NdCube::from_fn(&dims, |c| (c.iter().sum::<usize>() % 5) as i64).unwrap();
        let ps = PrefixSumEngine::from_cube(&cube);
        let rps = RpsEngine::from_cube(&cube);
        let bound = if d <= 2 {
            (1u64 << d) * (d as u64 + 2)
        } else {
            1u64 << (2 * d)
        };
        let rps_reads = mean_reads(&rps, &dims, QUERIES);
        assert!(
            rps_reads <= bound as f64,
            "d={d}: rps {rps_reads} > bound {bound}"
        );
        dtab.row(&[
            d.to_string(),
            format!("{n}^{d}"),
            format!("{:.2}", mean_reads(&ps, &dims, QUERIES)),
            format!("{rps_reads:.2}"),
            bound.to_string(),
        ]);
    }
    print!("{}", dtab.render());
    println!(
        "\nper-query cost depends only on d, never on n; the paper's d+2\n\
         per-corner figure is exact at d ≤ 2, and the d ≥ 3 reconstruction\n\
         stays within its 2^d-per-corner bound (see DESIGN.md)."
    );
}
