//! Extension experiment — the curse of dimensionality (§1).
//!
//! "As the number of dimensions in a data cube grows, the size of the
//! data cube grows exponentially. Update costs on the order of the size
//! of the data cube may not be practical…" This experiment holds the
//! total cell count roughly fixed (~4^6) while varying d, and measures
//! worst-case query reads, update writes, and the query·update product
//! per method — showing RPS's O(n^{d/2}) advantage survives across
//! dimensionalities, not just at the d = 2 the worked examples use.

use ndcube::{NdCube, Region};
use rps_analysis::{loglog_slope, Table};
use rps_core::{FenwickEngine, NaiveEngine, PrefixSumEngine, RangeSumEngine, RpsEngine};

fn main() {
    // Two regimes: fixed total size N ≈ 4096 (so higher d means tiny n),
    // plus realistic larger-n points at d = 3 and d = 4.
    let configs = [
        (1usize, 4096usize),
        (2, 64),
        (3, 16),
        (4, 8),
        (6, 4),
        (3, 64),
        (4, 24),
    ];

    println!("=== dimensionality sweep (k = ⌈√n⌉ per dimension) ===\n");
    let mut table = Table::new(&[
        "d",
        "n",
        "method",
        "query reads",
        "update writes",
        "q·u product",
    ]);

    for &(d, n) in &configs {
        let dims = vec![n; d];
        let cube = NdCube::from_fn(&dims, |c| {
            (c.iter()
                .enumerate()
                .map(|(i, &x)| x * (i + 1))
                .sum::<usize>()
                % 10) as i64
        })
        .unwrap();

        let mut engines: Vec<Box<dyn RangeSumEngine<i64>>> = vec![
            Box::new(NaiveEngine::from_cube(cube.clone())),
            Box::new(PrefixSumEngine::from_cube(&cube)),
            Box::new(RpsEngine::from_cube(&cube)),
            Box::new(FenwickEngine::from_cube(&cube)),
        ];

        // Worst-case-ish region: nearly the whole cube, unaligned.
        let lo = vec![1usize; d];
        let hi: Vec<usize> = dims.iter().map(|&x| x - 2).collect();
        let region = Region::new(&lo, &hi).unwrap();
        let update_pos = vec![1usize; d];

        let mut products = Vec::new();
        for e in &mut engines {
            e.reset_stats();
            e.query(&region).unwrap();
            let q = e.stats().cell_reads;
            e.reset_stats();
            e.update(&update_pos, 1).unwrap();
            let u = e.stats().cell_writes.max(1);
            products.push((e.name(), q * u));
            table.row(&[
                d.to_string(),
                n.to_string(),
                e.name().to_string(),
                q.to_string(),
                u.to_string(),
                (q * u).to_string(),
            ]);
        }
        // At d = 2 the asymptotic win shows whenever n is non-trivial.
        if d == 2 && n >= 64 {
            let get = |name: &str| {
                products
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|&(_, p)| p)
                    .unwrap()
            };
            let rps = get("relative-prefix-sum");
            assert!(rps < get("naive"), "d={d} n={n}: rps {rps} vs naive");
            assert!(
                rps < get("prefix-sum"),
                "d={d} n={n}: rps {rps} vs prefix-sum"
            );
        }
    }
    print!("{}", table.render());

    // The d ≥ 3 finding: with the paper-faithful stored values, the
    // worst-case update scales as n^{d−1}, not the n^{d/2} the paper's
    // §4.3 formula (derived from the d = 2 picture) suggests — mixed
    // border boxes (later in ≥2 dims, same slab in ≥1) dominate and are
    // absent from the formula. Measure the exponent directly.
    println!("\n=== measured RPS update exponent at d = 3 (k = ⌈√n⌉) ===\n");
    let mut pts = Vec::new();
    let mut slope_table = Table::new(&["n", "worst-case update writes"]);
    for n in [32usize, 64, 128] {
        let k = (n as f64).sqrt().ceil() as usize;
        let cube = NdCube::from_fn(&[n, n, n], |_| 1i64).unwrap();
        let mut e = RpsEngine::from_cube_uniform(&cube, k).unwrap();
        e.reset_stats();
        e.update(&[1, 1, 1], 1).unwrap();
        let w = e.stats().cell_writes;
        slope_table.row(&[n.to_string(), w.to_string()]);
        pts.push((n as f64, w as f64));
    }
    print!("{}", slope_table.render());
    let slope = loglog_slope(&pts);
    println!("\nfitted exponent: {slope:.2} (≈ d − 1 = 2, not d/2 = 1.5)");
    assert!(slope > 1.6, "update slope {slope} unexpectedly small");
    assert!(slope < 2.5, "update slope {slope} unexpectedly large");

    println!(
        "\nfindings: (1) at d = 2 — the paper's demonstrated case — every\n\
         claim reproduces exactly; (2) at d ≥ 3, with the paper's own value\n\
         definitions, the worst-case update is Θ(n^(d−1)): better than the\n\
         baselines' Θ(n^d) product but short of the O(n^{{d/2}}) headline,\n\
         whose derivation counts only the 2-D-style border 'arms'; and (3)\n\
         at fixed total size, the 4^d query constant also erodes the gap\n\
         for tiny per-dimension sizes. See DESIGN.md / docs/ALGORITHMS.md."
    );
}
