//! Prices the observability layer: ns/op and allocs/op for the
//! instrumented in-memory hot paths, in both timing modes, against the
//! committed `BENCH_HOTPATH.json` baseline.
//!
//! The `crates/obs` contract is "counters always on, clocks gated":
//! every query/update unconditionally bumps relaxed atomics, while the
//! two `Instant::now()` calls a latency span costs are behind the
//! global [`rps_obs::set_timing`] switch (off by default). This
//! experiment measures both sides of that switch —
//!
//! * `timing_off` — the default production mode; the acceptance bar is
//!   0 allocs/op and wall-clock within a few percent of the
//!   pre-instrumentation baseline recorded in `BENCH_HOTPATH.json`;
//! * `timing_on` — full latency histograms plus an installed trace
//!   ring, i.e. the most expensive configuration the layer supports.
//!
//! ```text
//! cargo run --release -p rps-bench --bin exp_obs_overhead            # full
//! cargo run --release -p rps-bench --bin exp_obs_overhead -- --smoke # CI
//! cargo run --release -p rps-bench --bin exp_obs_overhead -- --out p.json
//! ```
//!
//! Results land in `BENCH_OBS.json` at the repo root; each `timing_off`
//! measurement carries the matching baseline ns/op and the delta in
//! percent so the overhead claim is auditable from the committed file
//! alone (see docs/OBSERVABILITY.md and docs/PERFORMANCE.md).

use std::time::Instant;

use ndcube::Region;
use rps_bench::alloc_counter::{thread_allocs, CountingAllocator};
use rps_core::{RangeSumEngine, RpsEngine};
use rps_workload::{CubeGen, QueryGen, RegionSpec, UpdateGen};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// One measured loop, plus the committed baseline when one exists for
/// this (scenario, measurement) pair.
struct Measurement {
    name: &'static str,
    ops: usize,
    ns_per_op: f64,
    allocs_per_op: f64,
    baseline_ns_per_op: Option<f64>,
}

impl Measurement {
    fn delta_pct(&self) -> Option<f64> {
        self.baseline_ns_per_op
            .filter(|b| *b > 0.0)
            .map(|b| 100.0 * (self.ns_per_op - b) / b)
    }

    fn json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "{{\"name\":\"{}\",\"ops\":{},\"ns_per_op\":{:.1},\"allocs_per_op\":{:.4}",
            self.name, self.ops, self.ns_per_op, self.allocs_per_op
        );
        if let (Some(b), Some(d)) = (self.baseline_ns_per_op, self.delta_pct()) {
            let _ = write!(s, ",\"baseline_ns_per_op\":{b:.1},\"delta_pct\":{d:.1}");
        }
        s.push('}');
        s
    }
}

/// Timed passes per measurement; `ns_per_op` is the minimum over the
/// passes. The minimum is the standard noise-robust latency estimator
/// for a deterministic loop: interference (scheduler, other tenants)
/// only ever adds time, so the smallest pass is the closest view of the
/// code's real cost. Allocations are summed across all passes — the
/// zero-allocs claim must hold for every one of them.
const PASSES: usize = 5;

fn measure(
    name: &'static str,
    ops: usize,
    baseline: Option<f64>,
    mut body: impl FnMut(),
) -> Measurement {
    let alloc_before = thread_allocs();
    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let start = Instant::now();
        for _ in 0..ops {
            body();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / ops as f64);
    }
    let allocs = thread_allocs() - alloc_before;
    Measurement {
        name,
        ops: ops * PASSES,
        ns_per_op: best,
        allocs_per_op: allocs as f64 / (ops * PASSES) as f64,
        baseline_ns_per_op: baseline,
    }
}

/// Pulls `ns_per_op` for one (scenario, measurement) out of the
/// committed `BENCH_HOTPATH.json` without a JSON parser: the file is
/// emitted by `exp_hot_path` with a fixed field order.
fn baseline_ns(text: &str, scenario: &str, name: &str) -> Option<f64> {
    let s_idx = text.find(&format!("\"scenario\":\"{scenario}\""))?;
    let block = &text[s_idx..];
    let block = &block[..block.find("]}").unwrap_or(block.len())];
    let m_idx = block.find(&format!("\"name\":\"{name}\""))?;
    let tail = &block[m_idx..];
    let v_idx = tail.find("\"ns_per_op\":")? + "\"ns_per_op\":".len();
    let digits: String = tail[v_idx..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    digits.parse().ok()
}

struct ModeRun {
    mode: &'static str,
    results: Vec<Measurement>,
}

struct Scenario {
    name: String,
    dims: Vec<usize>,
    box_size: Vec<usize>,
    modes: Vec<ModeRun>,
}

impl Scenario {
    fn json(&self) -> String {
        let dims: Vec<String> = self.dims.iter().map(ToString::to_string).collect();
        let ks: Vec<String> = self.box_size.iter().map(ToString::to_string).collect();
        let modes: Vec<String> = self
            .modes
            .iter()
            .map(|m| {
                let ms: Vec<String> = m.results.iter().map(Measurement::json).collect();
                format!(
                    "      {{\"mode\":\"{}\",\"measurements\":[\n        {}\n      ]}}",
                    m.mode,
                    ms.join(",\n        ")
                )
            })
            .collect();
        format!(
            "    {{\"scenario\":\"{}\",\"dims\":[{}],\"box_size\":[{}],\"modes\":[\n{}\n    ]}}",
            self.name,
            dims.join(","),
            ks.join(","),
            modes.join(",\n")
        )
    }
}

fn run_mode(
    mode: &'static str,
    engine: &mut RpsEngine<i64>,
    scenario: &str,
    baseline: &str,
    query_ops: usize,
    update_ops: usize,
) -> ModeRun {
    let dims = engine.shape().dims().to_vec();
    let regions: Vec<Region> = QueryGen::new(&dims, 7, RegionSpec::Fraction(0.5)).take(query_ops);
    let points: Vec<Region> = QueryGen::new(&dims, 11, RegionSpec::Point).take(query_ops);
    let updates: Vec<(Vec<usize>, i64)> = UpdateGen::uniform(&dims, 13, 50).take(update_ops);

    // Warm up: thread-local scratch, metric registration, cache lines.
    let mut sink = 0i64;
    for r in regions.iter().take(64.min(query_ops)) {
        sink = sink.wrapping_add(engine.query(r).expect("in bounds"));
    }
    for (c, d) in updates.iter().take(64.min(update_ops)) {
        engine.update(c, *d).expect("in bounds");
    }

    let mut results = Vec::new();
    let mut qi = regions.iter().cycle();
    results.push(measure(
        "range_query",
        query_ops,
        baseline_ns(baseline, scenario, "range_query"),
        || {
            let r = qi.next().expect("cycle never ends");
            sink = sink.wrapping_add(engine.query(r).expect("in bounds"));
        },
    ));
    let mut pi = points.iter().cycle();
    results.push(measure(
        "point_query",
        query_ops,
        baseline_ns(baseline, scenario, "point_query"),
        || {
            let r = pi.next().expect("cycle never ends");
            sink = sink.wrapping_add(engine.query(r).expect("in bounds"));
        },
    ));
    let mut ui = updates.iter().cycle();
    results.push(measure(
        "update",
        update_ops,
        baseline_ns(baseline, scenario, "update"),
        || {
            let (c, d) = ui.next().expect("cycle never ends");
            engine.update(c, *d).expect("in bounds");
        },
    ));

    // The sharded parallel front-end, measured per query. Worker-side
    // scratch lives on the worker threads (invisible to this thread's
    // counter by design); what this pins is the *calling thread's*
    // per-batch bookkeeping, which must amortize to ~0 allocs per query.
    let batch: Vec<Region> = QueryGen::new(&dims, 19, RegionSpec::Fraction(0.5)).take(1024);
    let rounds = (query_ops / batch.len()).max(1);
    let m = measure("parallel_query_t4", rounds, None, || {
        let out = engine.query_many_parallel(&batch, 4).expect("in bounds");
        sink = sink.wrapping_add(out.last().copied().unwrap_or(0));
    });
    let per_query = Measurement {
        name: m.name,
        ops: m.ops * batch.len(),
        ns_per_op: m.ns_per_op / batch.len() as f64,
        allocs_per_op: m.allocs_per_op / batch.len() as f64,
        baseline_ns_per_op: None,
    };
    if mode == "timing_off" {
        assert!(
            per_query.allocs_per_op < 0.05,
            "timing-off parallel queries must stay ~0 allocs/op on the \
             calling thread, measured {:.4}",
            per_query.allocs_per_op
        );
    }
    results.push(per_query);

    assert!(sink != i64::MIN, "checksum sentinel");
    ModeRun { mode, results }
}

fn run_scenario(
    name: &str,
    dims: &[usize],
    baseline: &str,
    query_ops: usize,
    update_ops: usize,
) -> Scenario {
    let cube = CubeGen::new(0xC0FFEE)
        .uniform(dims, 0, 100)
        .expect("valid dims");
    let mut engine = RpsEngine::from_cube(&cube);

    // Default mode first; then the expensive configuration (timing on
    // plus an installed trace ring — install is first-wins and global,
    // so it must come after every timing_off measurement).
    rps_obs::set_timing(false);
    let off = run_mode(
        "timing_off",
        &mut engine,
        name,
        baseline,
        query_ops,
        update_ops,
    );
    rps_obs::set_timing(true);
    rps_obs::trace::install(4096);
    let on = run_mode(
        "timing_on",
        &mut engine,
        name,
        baseline,
        query_ops,
        update_ops,
    );
    rps_obs::set_timing(false);

    Scenario {
        name: name.to_string(),
        dims: dims.to_vec(),
        box_size: engine.grid().box_size().to_vec(),
        modes: vec![off, on],
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("{}/../../BENCH_OBS.json", env!("CARGO_MANIFEST_DIR")));
    let baseline_path = format!("{}/../../BENCH_HOTPATH.json", env!("CARGO_MANIFEST_DIR"));
    let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_default();

    let (q_ops, u_ops) = if smoke {
        (2_000, 1_000)
    } else {
        (50_000, 20_000)
    };
    let scenarios = if smoke {
        vec![run_scenario("d2_n64", &[64, 64], &baseline, q_ops, u_ops)]
    } else {
        vec![
            run_scenario("d2_n512", &[512, 512], &baseline, q_ops, u_ops),
            run_scenario("d3_n64", &[64, 64, 64], &baseline, q_ops, u_ops),
        ]
    };

    let body: Vec<String> = scenarios.iter().map(Scenario::json).collect();
    let json = format!(
        "{{\n  \"bench\": \"exp_obs_overhead\",\n  \"mode\": \"{}\",\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        body.join(",\n")
    );

    println!("=== observability overhead (vs BENCH_HOTPATH.json baseline) ===\n");
    for s in &scenarios {
        println!("scenario {} dims {:?} k {:?}", s.name, s.dims, s.box_size);
        for mode in &s.modes {
            println!("  [{}]", mode.mode);
            for m in &mode.results {
                let delta = m
                    .delta_pct()
                    .map_or_else(|| "   (no baseline)".to_string(), |d| format!("{d:+8.1}%"));
                println!(
                    "    {:<14} {:>10.1} ns/op  {:>8.4} allocs/op  {delta}",
                    m.name, m.ns_per_op, m.allocs_per_op
                );
            }
        }
    }

    std::fs::write(&out_path, &json).expect("write BENCH_OBS.json");
    println!("\nwrote {out_path}");
}
