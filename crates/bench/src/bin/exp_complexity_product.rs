//! E9 — the §4.3/§5 complexity table, measured.
//!
//! For each method, measures worst-case query reads and update writes
//! across a sweep of n, fits the log–log scaling exponent, and prints the
//! query·update product — the paper's overall figure of merit:
//!
//! | method | query | update | product |
//! |--------|-------|--------|---------|
//! | naive | O(n^d) | O(1) | O(n^d) |
//! | prefix sum | O(1) | O(n^d) | O(n^d) |
//! | **RPS** | O(1) | O(n^{d/2}) | **O(n^{d/2})** |

use ndcube::{NdCube, Region};
use rps_analysis::{loglog_slope, Table};
use rps_core::{FenwickEngine, NaiveEngine, PrefixSumEngine, RangeSumEngine, RpsEngine};

/// (n, measured) series for queries and updates of one method.
type Series = (&'static str, Vec<(f64, f64)>, Vec<(f64, f64)>);

struct Measured {
    query_reads: u64,
    update_writes: u64,
}

fn measure(engine: &mut dyn RangeSumEngine<i64>, n: usize) -> Measured {
    // Worst-case-style query: a large range not aligned to anything.
    let r = Region::new(&[1, 1], &[n - 2, n - 2]).unwrap();
    engine.reset_stats();
    engine.query(&r).unwrap();
    let query_reads = engine.stats().cell_reads;

    // Worst-case-style update: just past the origin.
    engine.reset_stats();
    engine.update(&[1, 1], 1).unwrap();
    let update_writes = engine.stats().cell_writes;
    Measured {
        query_reads,
        update_writes,
    }
}

fn main() {
    let ns = [64usize, 128, 256, 512, 1024];
    let mut series: Vec<Series> = vec![
        ("naive", vec![], vec![]),
        ("prefix-sum", vec![], vec![]),
        ("relative-prefix-sum", vec![], vec![]),
        ("fenwick", vec![], vec![]),
    ];

    println!("=== E9: measured worst-case costs (d = 2, k = √n for RPS) ===\n");
    let mut table = Table::new(&["n", "method", "query reads", "update writes", "q·u product"]);

    for &n in &ns {
        let cube = NdCube::from_fn(&[n, n], |c| ((c[0] ^ c[1]) % 7) as i64).unwrap();
        let k = (n as f64).sqrt() as usize;
        let mut engines: Vec<Box<dyn RangeSumEngine<i64>>> = vec![
            Box::new(NaiveEngine::from_cube(cube.clone())),
            Box::new(PrefixSumEngine::from_cube(&cube)),
            Box::new(RpsEngine::from_cube_uniform(&cube, k).unwrap()),
            Box::new(FenwickEngine::from_cube(&cube)),
        ];
        for (engine, (name, qs, us)) in engines.iter_mut().zip(series.iter_mut()) {
            let m = measure(engine.as_mut(), n);
            qs.push((n as f64, m.query_reads.max(1) as f64));
            us.push((n as f64, m.update_writes.max(1) as f64));
            table.row(&[
                n.to_string(),
                name.to_string(),
                m.query_reads.to_string(),
                m.update_writes.to_string(),
                (m.query_reads * m.update_writes).to_string(),
            ]);
        }
    }
    print!("{}", table.render());

    println!("\n=== fitted log–log scaling exponents (d = 2) ===\n");
    let mut fit_table = Table::new(&[
        "method",
        "query exponent",
        "update exponent",
        "paper (query, update)",
    ]);
    let expected = [
        ("naive", "n^2, 1"),
        ("prefix-sum", "1, n^2"),
        ("relative-prefix-sum", "1, n^1 = n^{d/2}"),
        ("fenwick", "log^2 n, log^2 n"),
    ];
    for ((name, qs, us), (_, paper)) in series.iter().zip(expected.iter()) {
        fit_table.row(&[
            name.to_string(),
            format!("{:.2}", loglog_slope(qs)),
            format!("{:.2}", loglog_slope(us)),
            paper.to_string(),
        ]);
    }
    print!("{}", fit_table.render());

    // Hard checks on the headline claims.
    let slope = |idx: usize, which: usize| {
        let s = &series[idx];
        loglog_slope(if which == 0 { &s.1 } else { &s.2 })
    };
    assert!(slope(0, 0) > 1.8, "naive query must scale ~n^2");
    assert!(slope(1, 0).abs() < 0.2, "prefix-sum query must be O(1)");
    assert!(slope(1, 1) > 1.8, "prefix-sum update must scale ~n^2");
    assert!(slope(2, 0).abs() < 0.2, "RPS query must be O(1)");
    assert!(
        (slope(2, 1) - 1.0).abs() < 0.3,
        "RPS update must scale ~n^{{d/2}} = n (got {})",
        slope(2, 1)
    );
    println!("\nall fitted exponents match the paper's complexity table ✓");
}
