//! Serve-path throughput: loopback clients driving a real `rps-serve`
//! TCP server (RPSWIRE1 frames, worker thread pool, per-tenant
//! `VersionedEngine` reads), emitted as the `exp_serve_throughput`
//! section of `BENCH_THROUGHPUT.json` (see `rps_bench::throughput`).
//!
//! ```text
//! cargo run --release -p rps-bench --bin exp_serve_throughput            # full
//! cargo run --release -p rps-bench --bin exp_serve_throughput -- --smoke # CI
//! cargo run --release -p rps-bench --bin exp_serve_throughput -- --out s.json
//! ```
//!
//! Each client thread owns one tenant and keeps a dense local mirror of
//! its cube; before any timing, a correctness pass asserts every wire
//! answer bit-identical to the mirror (a serial oracle). The timed pass
//! then measures end-to-end request latency: framing + CRC + TCP
//! round-trip + routing + engine, amortized per request.
//!
//! Numbers are loopback-host-bound: on a single-CPU container the
//! client threads, worker pool, and acceptor share one core, so the
//! `t2`/`t4`/`t8` rows measure contention, not scaling. The committed
//! baseline records `host_cpus` for exactly this reason
//! (docs/PERFORMANCE.md §9).

use std::net::SocketAddr;

use rps_bench::alloc_counter::CountingAllocator;
use rps_bench::throughput::{measure_batch, section_json, write_section, Scenario};
use rps_serve::{Client, Server, ServerConfig};
use rps_storage::SimRng;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const DIMS: [usize; 2] = [64, 64];

/// Dense serial oracle for one tenant.
struct Mirror {
    cells: Vec<i64>,
}

impl Mirror {
    fn new() -> Mirror {
        Mirror {
            cells: vec![0; DIMS[0] * DIMS[1]],
        }
    }

    fn update(&mut self, c: &[usize], delta: i64) {
        self.cells[c[0] * DIMS[1] + c[1]] += delta;
    }

    fn sum(&self, lo: &[usize], hi: &[usize]) -> i64 {
        let mut s = 0;
        for x in lo[0]..=hi[0] {
            for y in lo[1]..=hi[1] {
                s += self.cells[x * DIMS[1] + y];
            }
        }
        s
    }
}

/// One client thread's request mix: 1 update per 3 queries, seeded.
/// With `check`, every answer is asserted against the mirror.
fn drive(addr: SocketAddr, tenant: &str, seed: u64, ops: usize, check: bool) -> i64 {
    let mut client = Client::connect(addr).expect("loopback connect");
    let mut rng = SimRng::new(seed);
    let mut mirror = if check { Some(Mirror::new()) } else { None };
    let mut sink = 0i64;
    for _ in 0..ops {
        if rng.next_u64().is_multiple_of(4) {
            let c = vec![
                (rng.next_u64() as usize) % DIMS[0],
                (rng.next_u64() as usize) % DIMS[1],
            ];
            let delta = (rng.next_u64() % 21) as i64 - 10;
            client.update(tenant, &c, delta).expect("update");
            if let Some(m) = mirror.as_mut() {
                m.update(&c, delta);
            }
        } else {
            let mut lo = Vec::with_capacity(2);
            let mut hi = Vec::with_capacity(2);
            for &d in &DIMS {
                let a = (rng.next_u64() as usize) % d;
                let b = (rng.next_u64() as usize) % d;
                lo.push(a.min(b));
                hi.push(a.max(b));
            }
            let sum = client.query(tenant, &lo, &hi).expect("query");
            if let Some(m) = mirror.as_ref() {
                assert_eq!(
                    sum,
                    m.sum(&lo, &hi),
                    "wire answer diverged from serial oracle"
                );
            }
            sink = sink.wrapping_add(sum);
        }
    }
    sink
}

/// Fans `threads` clients (one tenant each) out over the server.
fn fan_out(addr: SocketAddr, threads: usize, ops_per_thread: usize, check: bool) -> i64 {
    let handles: Vec<_> = (0..threads)
        .map(|i| {
            let tenant = format!("bench{i}");
            std::thread::spawn(move || {
                drive(addr, &tenant, 0xBE9C + i as u64, ops_per_thread, check)
            })
        })
        .collect();
    let mut sink = 0i64;
    for h in handles {
        sink = sink.wrapping_add(h.join().expect("client thread"));
    }
    sink
}

fn run_scenario(name: &str, thread_counts: &[usize], ops_per_thread: usize) -> Scenario {
    let max_threads = thread_counts.iter().copied().max().unwrap_or(1);
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: max_threads,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    for i in 0..max_threads {
        server
            .create_tenant(&format!("bench{i}"), &DIMS)
            .expect("tenant");
    }
    let handle = server.shutdown_handle();
    let running = std::thread::spawn(move || server.run());

    // Correctness pass: every thread's wire answers must match its
    // serial oracle before anything is timed.
    fan_out(addr, max_threads, ops_per_thread.min(300), true);

    let mut results = Vec::new();
    let mut result_names = Vec::new();
    for &threads in thread_counts {
        let total_ops = threads * ops_per_thread;
        let (m, _sink) = measure_batch(1, total_ops, || {
            fan_out(addr, threads, ops_per_thread, false)
        });
        results.push(m);
        result_names.push(format!("mixed_t{threads}"));
    }

    handle.shutdown();
    let report = running
        .join()
        .expect("server thread")
        .expect("graceful drain");
    assert_eq!(
        report.workers_joined, max_threads,
        "a worker panicked during the bench"
    );

    Scenario {
        name: name.to_string(),
        dims: DIMS.to_vec(),
        box_size: Vec::new(),
        results,
        result_names,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("{}/../../BENCH_THROUGHPUT.json", env!("CARGO_MANIFEST_DIR")));

    let threads: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let ops_per_thread = if smoke { 200 } else { 2000 };
    let scenarios = vec![run_scenario("loopback_mixed_1u3q", threads, ops_per_thread)];

    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let section = section_json(if smoke { "smoke" } else { "full" }, host_cpus, &scenarios);

    println!("=== serve-path throughput, loopback clients ({host_cpus} host cpus) ===\n");
    for s in &scenarios {
        println!(
            "scenario {} dims {:?} (1 update : 3 queries)",
            s.name, s.dims
        );
        for (m, n) in s.results.iter().zip(&s.result_names) {
            println!(
                "  {n:<12} {:>10.1} ns/req  {:>10.0} req/s",
                m.ns_per_op,
                1e9 / m.ns_per_op.max(1e-9)
            );
        }
    }

    write_section(&out_path, "exp_serve_throughput", &section);
    println!("\nwrote {out_path} (section exp_serve_throughput)");
}
