//! A counting global allocator for allocation-accounting benches/tests.
//!
//! The hot-path performance work (see `docs/PERFORMANCE.md`) promises
//! **zero steady-state heap allocations** for `RpsEngine::query` and
//! `::update`. That promise is only worth something if it is *measured*,
//! so `exp_hot_path` and the `zero_alloc` test install [`CountingAllocator`]
//! as the global allocator and read back per-thread counters around the
//! measured loops.
//!
//! Counters are **thread-local** so a measurement is immune to allocator
//! traffic from concurrently running test threads or background workers.
//! The cells are const-initialized and `u64` (no destructor), so counting
//! stays safe even during thread teardown.
//!
//! Usage, in a bin or test target:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: rps_bench::alloc_counter::CountingAllocator =
//!     rps_bench::alloc_counter::CountingAllocator;
//!
//! let before = rps_bench::alloc_counter::thread_allocs();
//! // ... measured section ...
//! let allocs = rps_bench::alloc_counter::thread_allocs() - before;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOC_CALLS: Cell<u64> = const { Cell::new(0) };
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Delegates every request to [`System`] while counting allocation calls
/// and bytes on thread-local counters.
///
/// `dealloc` is deliberately not counted: the interesting number for the
/// hot-path contract is how often the path *acquires* memory.
pub struct CountingAllocator;

/// Allocation calls (alloc / `alloc_zeroed` / realloc) made by the
/// current thread since it started.
pub fn thread_allocs() -> u64 {
    ALLOC_CALLS.with(Cell::get)
}

/// Bytes requested by the current thread's allocation calls.
pub fn thread_alloc_bytes() -> u64 {
    ALLOC_BYTES.with(Cell::get)
}

fn record(size: usize) {
    ALLOC_CALLS.with(|c| c.set(c.get() + 1));
    ALLOC_BYTES.with(|c| c.set(c.get().saturating_add(size as u64)));
}

// The single audited `unsafe` in the workspace: `GlobalAlloc` is an
// unsafe trait by definition. Every method delegates 1:1 to `System`
// with the same arguments; the only addition is counter bookkeeping on
// plain `Cell<u64>` thread-locals, which cannot violate the allocator
// contract.
#[allow(unsafe_code)]
mod imp {
    use super::{record, CountingAllocator, GlobalAlloc, Layout, System};

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            record(new_size);
            System.realloc(ptr, layout, new_size)
        }
    }
}

#[cfg(test)]
mod tests {
    // Counter behaviour is exercised end-to-end by `tests/zero_alloc.rs`
    // and `bin/exp_hot_path.rs`, which actually install the allocator;
    // a unit test here could not (the global allocator is per-binary).
    use super::*;

    #[test]
    fn counters_start_readable() {
        // Without installation the counters simply stay frozen; reading
        // them must still work from any thread.
        let a = thread_allocs();
        let b = thread_alloc_bytes();
        assert!(a <= thread_allocs());
        assert!(b <= thread_alloc_bytes());
    }
}
