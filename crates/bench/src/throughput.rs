//! Shared plumbing for the throughput report binaries
//! (`exp_parallel_query`, `exp_mixed_readwrite`).
//!
//! Both binaries write into the one committed `BENCH_THROUGHPUT.json`,
//! so the file is structured as a map of per-binary sections:
//!
//! ```json
//! { "benches": {
//!     "exp_mixed_readwrite": { "mode": "full", ... },
//!     "exp_parallel_query":  { "mode": "full", ... } } }
//! ```
//!
//! [`splice_section`] replaces (or inserts) exactly one named section,
//! preserving every other byte-for-byte, with a small string-aware
//! brace matcher — no JSON dependency, per the workspace's offline
//! policy. Files in the pre-section legacy layout (a bare
//! `{"bench": ...}` object) are treated as absent and rebuilt.

use std::time::Instant;

use crate::alloc_counter::thread_allocs;

/// One measured loop: ns/op and allocs/op over `ops` operations.
pub struct Measurement {
    /// Operations timed.
    pub ops: usize,
    /// Mean wall-clock nanoseconds per operation.
    pub ns_per_op: f64,
    /// Mean heap allocations per operation (this thread only).
    pub allocs_per_op: f64,
}

impl Measurement {
    /// The measurement as one JSON object row.
    pub fn json(&self, name: &str) -> String {
        format!(
            "{{\"name\":\"{name}\",\"ops\":{},\"ns_per_op\":{:.1},\"allocs_per_op\":{:.4},\"ops_per_sec\":{:.0}}}",
            self.ops,
            self.ns_per_op,
            self.allocs_per_op,
            1e9 / self.ns_per_op.max(1e-9)
        )
    }
}

/// One scenario (shape + box size) with its named measurements.
pub struct Scenario {
    /// Scenario label, e.g. `d2_n512`.
    pub name: String,
    /// Cube dimensions.
    pub dims: Vec<usize>,
    /// Box size the engine chose/was given.
    pub box_size: Vec<usize>,
    /// Measurements, parallel to `result_names`.
    pub results: Vec<Measurement>,
    /// Row name per measurement.
    pub result_names: Vec<String>,
}

impl Scenario {
    /// The scenario as a JSON object (indented for the committed file).
    pub fn json(&self) -> String {
        let dims: Vec<String> = self.dims.iter().map(ToString::to_string).collect();
        let ks: Vec<String> = self.box_size.iter().map(ToString::to_string).collect();
        let measurements: Vec<String> = self
            .results
            .iter()
            .zip(&self.result_names)
            .map(|(m, n)| m.json(n))
            .collect();
        format!(
            "      {{\"scenario\":\"{}\",\"dims\":[{}],\"box_size\":[{}],\"measurements\":[\n        {}\n      ]}}",
            self.name,
            dims.join(","),
            ks.join(","),
            measurements.join(",\n        ")
        )
    }
}

/// Assembles one binary's section body from its mode and scenarios.
pub fn section_json(mode: &str, host_cpus: usize, scenarios: &[Scenario]) -> String {
    let body: Vec<String> = scenarios.iter().map(Scenario::json).collect();
    format!(
        "{{\n      \"mode\": \"{mode}\",\n      \"host_cpus\": {host_cpus},\n      \"scenarios\": [\n{}\n      ]\n    }}",
        body.join(",\n")
    )
}

/// Times `rounds` repetitions of a whole-batch call, reporting per-op
/// cost over `rounds * batch_len` operations (the batch is the op unit
/// the front-ends amortize over).
pub fn measure_batch(
    rounds: usize,
    batch_len: usize,
    mut body: impl FnMut() -> i64,
) -> (Measurement, i64) {
    let mut sink = 0i64;
    let alloc_before = thread_allocs();
    let start = Instant::now();
    for _ in 0..rounds {
        sink = sink.wrapping_add(body());
    }
    let elapsed = start.elapsed();
    let allocs = thread_allocs() - alloc_before;
    let ops = rounds * batch_len;
    (
        Measurement {
            ops,
            ns_per_op: elapsed.as_nanos() as f64 / ops as f64,
            allocs_per_op: allocs as f64 / ops as f64,
        },
        sink,
    )
}

/// Splices `section` in as `benches.<name>` of `existing`, preserving
/// every other section verbatim. `existing = None` (or a file not in
/// the `{"benches": ...}` layout) starts a fresh document. Sections are
/// emitted sorted by name so regeneration order doesn't churn the file.
pub fn splice_section(existing: Option<&str>, name: &str, section: &str) -> String {
    let mut sections: Vec<(String, String)> = existing
        .and_then(extract_sections)
        .unwrap_or_default()
        .into_iter()
        .filter(|(n, _)| n != name)
        .collect();
    sections.push((name.to_string(), section.trim().to_string()));
    sections.sort_by(|a, b| a.0.cmp(&b.0));
    let body: Vec<String> = sections
        .iter()
        .map(|(n, s)| format!("    \"{n}\": {s}"))
        .collect();
    format!("{{\n  \"benches\": {{\n{}\n  }}\n}}\n", body.join(",\n"))
}

/// Reads, splices and rewrites the throughput file at `path`.
pub fn write_section(path: &str, name: &str, section: &str) {
    let existing = std::fs::read_to_string(path).ok();
    let json = splice_section(existing.as_deref(), name, section);
    std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
}

/// Pulls the `(name, body)` pairs out of a `{"benches": {...}}`
/// document, or `None` when the layout doesn't match.
fn extract_sections(doc: &str) -> Option<Vec<(String, String)>> {
    let key = doc.find("\"benches\"")?;
    let open = doc[key..].find('{')? + key;
    let inner_end = matching_brace(doc, open)?;
    let inner = &doc[open + 1..inner_end];

    let mut out = Vec::new();
    let mut rest = inner;
    while let Some(q0) = rest.find('"') {
        let q1 = q0 + 1 + rest[q0 + 1..].find('"')?;
        let name = rest[q0 + 1..q1].to_string();
        let after = &rest[q1 + 1..];
        let colon = after.find(':')?;
        let body_rel = after[colon..].find('{')? + colon;
        let body_abs_start = q1 + 1 + body_rel;
        let body_end = matching_brace(rest, body_abs_start)?;
        out.push((name, rest[body_abs_start..=body_end].to_string()));
        rest = &rest[body_end + 1..];
    }
    Some(out)
}

/// Index of the `}` matching the `{` at `open`, skipping string
/// literals (with escapes).
fn matching_brace(s: &str, open: usize) -> Option<usize> {
    debug_assert_eq!(s.as_bytes().get(open), Some(&b'{'));
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, b) in s.bytes().enumerate().skip(open) {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splice_into_empty_creates_the_layout() {
        let doc = splice_section(None, "exp_parallel_query", r#"{"mode": "full"}"#);
        assert!(doc.contains("\"benches\""));
        assert!(doc.contains("\"exp_parallel_query\": {\"mode\": \"full\"}"));
    }

    #[test]
    fn splice_preserves_other_sections() {
        let doc = splice_section(None, "exp_parallel_query", r#"{"mode": "full", "n": 1}"#);
        let doc = splice_section(Some(&doc), "exp_mixed_readwrite", r#"{"mode": "smoke"}"#);
        // Both present, sorted, original untouched.
        assert!(doc.contains("\"exp_parallel_query\": {\"mode\": \"full\", \"n\": 1}"));
        assert!(doc.contains("\"exp_mixed_readwrite\": {\"mode\": \"smoke\"}"));
        assert!(doc.find("exp_mixed_readwrite").unwrap() < doc.find("exp_parallel_query").unwrap());
    }

    #[test]
    fn splice_replaces_a_section_in_place() {
        let doc = splice_section(None, "a", r#"{"v": 1}"#);
        let doc = splice_section(Some(&doc), "b", r#"{"v": 2}"#);
        let doc = splice_section(Some(&doc), "a", r#"{"v": 3}"#);
        assert!(doc.contains("\"a\": {\"v\": 3}"));
        assert!(doc.contains("\"b\": {\"v\": 2}"));
        assert!(!doc.contains("\"v\": 1"));
    }

    #[test]
    fn legacy_layout_is_rebuilt() {
        let legacy = r#"{"bench": "exp_parallel_query", "scenarios": []}"#;
        let doc = splice_section(Some(legacy), "exp_parallel_query", r#"{"mode": "full"}"#);
        assert!(doc.contains("\"benches\""));
        assert!(!doc.contains("\"scenarios\": []"));
    }

    #[test]
    fn brace_matching_skips_braces_inside_strings() {
        let doc = splice_section(None, "a", r#"{"note": "has } and { inside", "v": 1}"#);
        let doc = splice_section(Some(&doc), "b", r#"{"v": 2}"#);
        assert!(doc.contains("has } and { inside"));
        assert!(doc.contains("\"b\": {\"v\": 2}"));
    }

    #[test]
    fn nested_objects_survive_round_trips() {
        let section = r#"{"scenarios": [{"m": [{"name": "x", "ops": 3}]}]}"#;
        let doc = splice_section(None, "deep", section);
        let doc = splice_section(Some(&doc), "other", r#"{"v": 1}"#);
        assert!(doc.contains(section));
    }
}
