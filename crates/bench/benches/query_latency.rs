//! E12 (wall-clock) — range-query latency per method as n grows.
//!
//! The paper's claims are in cells touched; these benches confirm the
//! same shape holds in nanoseconds on real hardware: naive grows ~n²,
//! the O(1) methods stay flat, Fenwick grows polylogarithmically.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ndcube::Region;
use rps_core::{FenwickEngine, NaiveEngine, PrefixSumEngine, RangeSumEngine, RpsEngine};
use rps_workload::{CubeGen, QueryGen, RegionSpec};
use std::hint::black_box;

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_latency");
    group.sample_size(30);

    for &n in &[64usize, 256, 1024] {
        let dims = [n, n];
        let cube = CubeGen::new(7).uniform(&dims, 0, 9).expect("valid dims");
        let regions: Vec<Region> = QueryGen::new(&dims, 3, RegionSpec::Fraction(0.5)).take(64);

        let naive = NaiveEngine::from_cube(cube.clone());
        let ps = PrefixSumEngine::from_cube(&cube);
        let rps = RpsEngine::from_cube(&cube);
        let fw = FenwickEngine::from_cube(&cube);

        // Naive only at the smaller sizes (it is the O(n^d) baseline).
        if n <= 256 {
            group.bench_with_input(BenchmarkId::new("naive", n), &regions, |b, rs| {
                b.iter(|| {
                    let mut acc = 0i64;
                    for r in rs {
                        acc = acc.wrapping_add(naive.query(black_box(r)).unwrap());
                    }
                    acc
                });
            });
        }
        group.bench_with_input(BenchmarkId::new("prefix-sum", n), &regions, |b, rs| {
            b.iter(|| {
                let mut acc = 0i64;
                for r in rs {
                    acc = acc.wrapping_add(ps.query(black_box(r)).unwrap());
                }
                acc
            });
        });
        group.bench_with_input(BenchmarkId::new("rps", n), &regions, |b, rs| {
            b.iter(|| {
                let mut acc = 0i64;
                for r in rs {
                    acc = acc.wrapping_add(rps.query(black_box(r)).unwrap());
                }
                acc
            });
        });
        group.bench_with_input(BenchmarkId::new("fenwick", n), &regions, |b, rs| {
            b.iter(|| {
                let mut acc = 0i64;
                for r in rs {
                    acc = acc.wrapping_add(fw.query(black_box(r)).unwrap());
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_query_dimensionality(c: &mut Criterion) {
    // O(1) query claim across d: the per-query cost depends on d (2^d
    // corners) but not on n.
    let mut group = c.benchmark_group("rps_query_by_dimension");
    group.sample_size(30);
    for &(d, n, k) in &[
        (1usize, 4096usize, 64usize),
        (2, 64, 8),
        (3, 16, 4),
        (4, 8, 3),
    ] {
        let dims = vec![n; d];
        let cube = CubeGen::new(11).uniform(&dims, 0, 9).expect("valid dims");
        let rps = RpsEngine::from_cube_uniform(&cube, k).unwrap();
        let lo = vec![1usize; d];
        let hi = vec![n - 2; d];
        let r = Region::new(&lo, &hi).unwrap();
        group.bench_function(BenchmarkId::new("d", d), |b| {
            b.iter(|| rps.query(black_box(&r)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queries, bench_query_dimensionality);
criterion_main!(benches);
