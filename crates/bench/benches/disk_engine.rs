//! E11 (wall-clock) — the disk-resident engine through the buffer pool:
//! query/update latency by layout and pool pressure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ndcube::NdCube;
use rps_core::{BoxGrid, RangeSumEngine};
use rps_storage::{DeviceConfig, DiskRpsEngine};
use rps_workload::{CubeGen, QueryGen, RegionSpec, UpdateGen};
use std::hint::black_box;

const N: usize = 256;
const K: usize = 16;

fn engine(cube: &NdCube<i64>, box_aligned: bool, frames: usize) -> DiskRpsEngine<i64> {
    let grid = BoxGrid::new(cube.shape().clone(), &[K, K]).unwrap();
    DiskRpsEngine::from_cube_with_grid(
        cube,
        grid,
        DeviceConfig {
            cells_per_page: K * K,
        },
        frames,
        box_aligned,
    )
    .expect("build disk engine")
}

fn bench_disk_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("disk_query");
    group.sample_size(20);
    let cube = CubeGen::new(31).uniform(&[N, N], 0, 9).expect("valid dims");
    let regions = QueryGen::new(&[N, N], 5, RegionSpec::Fraction(0.4)).take(32);

    for &(label, frames) in &[("warm_pool", 256usize), ("cold_pool", 4)] {
        for &aligned in &[true, false] {
            let e = engine(&cube, aligned, frames);
            let name = format!(
                "{label}/{}",
                if aligned { "box-aligned" } else { "row-major" }
            );
            group.bench_with_input(BenchmarkId::new(name, N), &regions, |b, rs| {
                b.iter(|| {
                    let mut acc = 0i64;
                    for r in rs {
                        acc = acc.wrapping_add(e.query(black_box(r)).unwrap());
                    }
                    acc
                });
            });
        }
    }
    group.finish();
}

fn bench_disk_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("disk_update");
    group.sample_size(20);
    let cube = CubeGen::new(32).uniform(&[N, N], 0, 9).expect("valid dims");
    let batch = UpdateGen::uniform(&[N, N], 6, 20).take(32);

    for &aligned in &[true, false] {
        let name = if aligned { "box-aligned" } else { "row-major" };
        group.bench_with_input(BenchmarkId::new(name, N), &batch, |b, ops| {
            let mut e = engine(&cube, aligned, 16);
            b.iter(|| {
                for (coords, delta) in ops {
                    e.update(black_box(coords), *delta).unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_disk_queries, bench_disk_updates);
criterion_main!(benches);
