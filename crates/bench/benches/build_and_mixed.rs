//! E12 (wall-clock) — structure construction cost and end-to-end mixed
//! workload throughput (the "analysts query while sales arrive" scenario).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rps_bench::replay;
use rps_core::{FenwickEngine, NaiveEngine, PrefixSumEngine, RpsEngine};
use rps_workload::{CubeGen, MixedWorkload, QueryGen, RegionSpec, UpdateGen};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    for &n in &[256usize, 1024] {
        let cube = CubeGen::new(3).uniform(&[n, n], 0, 9).expect("valid dims");
        group.bench_with_input(BenchmarkId::new("prefix-sum", n), &cube, |b, a| {
            b.iter(|| PrefixSumEngine::from_cube(black_box(a)));
        });
        group.bench_with_input(BenchmarkId::new("rps", n), &cube, |b, a| {
            b.iter(|| RpsEngine::from_cube(black_box(a)));
        });
        group.bench_with_input(BenchmarkId::new("rps-parallel-4", n), &cube, |b, a| {
            b.iter(|| RpsEngine::from_cube_parallel(black_box(a), 4));
        });
        group.bench_with_input(BenchmarkId::new("fenwick", n), &cube, |b, a| {
            b.iter(|| FenwickEngine::from_cube(black_box(a)));
        });
    }
    group.finish();
}

fn bench_mixed(c: &mut Criterion) {
    const OPS: usize = 512;
    let mut group = c.benchmark_group("mixed_workload");
    group.sample_size(10);
    let n = 256usize;
    let dims = [n, n];
    let cube = CubeGen::new(21).uniform(&dims, 0, 9).expect("valid dims");

    for &query_ratio in &[0.1f64, 0.5, 0.9] {
        let ops = MixedWorkload::new(
            UpdateGen::uniform(&dims, 1, 50),
            QueryGen::new(&dims, 2, RegionSpec::Fraction(0.5)),
            query_ratio,
            3,
        )
        .take(OPS);
        group.throughput(Throughput::Elements(OPS as u64));
        let label = format!("q{:.0}%", query_ratio * 100.0);

        group.bench_with_input(BenchmarkId::new("naive", &label), &ops, |b, ops| {
            b.iter(|| {
                let mut e = NaiveEngine::from_cube(cube.clone());
                replay(&mut e, black_box(ops))
            });
        });
        group.bench_with_input(BenchmarkId::new("prefix-sum", &label), &ops, |b, ops| {
            b.iter(|| {
                let mut e = PrefixSumEngine::from_cube(&cube);
                replay(&mut e, black_box(ops))
            });
        });
        group.bench_with_input(BenchmarkId::new("rps", &label), &ops, |b, ops| {
            b.iter(|| {
                let mut e = RpsEngine::from_cube(&cube);
                replay(&mut e, black_box(ops))
            });
        });
        group.bench_with_input(BenchmarkId::new("fenwick", &label), &ops, |b, ops| {
            b.iter(|| {
                let mut e = FenwickEngine::from_cube(&cube);
                replay(&mut e, black_box(ops))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_mixed);
criterion_main!(benches);
