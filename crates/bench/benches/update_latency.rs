//! E12 (wall-clock) — point-update latency per method as n grows.
//!
//! The paper's headline: RPS updates are O(n^{d/2}) against the
//! prefix-sum method's O(n^d). In nanoseconds that means prefix-sum
//! update time explodes quadratically with n (d = 2) while RPS grows
//! only linearly and Fenwick stays polylogarithmic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rps_core::{FenwickEngine, NaiveEngine, PrefixSumEngine, RangeSumEngine, RpsEngine};
use rps_workload::{CubeGen, UpdateGen};
use std::hint::black_box;

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_latency");
    group.sample_size(20);

    for &n in &[64usize, 256, 1024] {
        let dims = [n, n];
        let cube = CubeGen::new(5).uniform(&dims, 0, 9).expect("valid dims");
        let batch = UpdateGen::uniform(&dims, 9, 50).take(32);

        group.bench_with_input(BenchmarkId::new("naive", n), &batch, |b, ops| {
            let mut e = NaiveEngine::from_cube(cube.clone());
            b.iter(|| {
                for (coords, delta) in ops {
                    e.update(black_box(coords), *delta).unwrap();
                }
            });
        });
        // Prefix-sum updates at n = 1024 rewrite ~10^6 cells each; keep
        // the baseline honest but bounded.
        if n <= 256 {
            group.bench_with_input(BenchmarkId::new("prefix-sum", n), &batch, |b, ops| {
                let mut e = PrefixSumEngine::from_cube(&cube);
                b.iter(|| {
                    for (coords, delta) in ops {
                        e.update(black_box(coords), *delta).unwrap();
                    }
                });
            });
        }
        group.bench_with_input(BenchmarkId::new("rps", n), &batch, |b, ops| {
            let mut e = RpsEngine::from_cube(&cube);
            b.iter(|| {
                for (coords, delta) in ops {
                    e.update(black_box(coords), *delta).unwrap();
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("fenwick", n), &batch, |b, ops| {
            let mut e = FenwickEngine::from_cube(&cube);
            b.iter(|| {
                for (coords, delta) in ops {
                    e.update(black_box(coords), *delta).unwrap();
                }
            });
        });
    }
    group.finish();
}

fn bench_box_size_effect(c: &mut Criterion) {
    // §4.3 in wall-clock form: update latency is U-shaped in k.
    let mut group = c.benchmark_group("rps_update_by_box_size");
    group.sample_size(20);
    let n = 256usize;
    let cube = CubeGen::new(13).uniform(&[n, n], 0, 9).expect("valid dims");
    let batch = UpdateGen::uniform(&[n, n], 17, 50).take(32);
    for &k in &[4usize, 8, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::new("k", k), &batch, |b, ops| {
            let mut e = RpsEngine::from_cube_uniform(&cube, k).unwrap();
            b.iter(|| {
                for (coords, delta) in ops {
                    e.update(black_box(coords), *delta).unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates, bench_box_size_effect);
criterion_main!(benches);
