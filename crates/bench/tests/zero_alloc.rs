//! The allocation contract, enforced: steady-state `RpsEngine::query`,
//! `::prefix_sum` and `::update` perform **zero** heap allocations.
//!
//! This is the measured form of the promise `docs/PERFORMANCE.md` makes
//! and the L5 lint guards statically: after one warm-up pass (which is
//! allowed to size the thread-local `Scratch` and the engine-owned
//! `KernelScratch` for the cube's dimensionality), the hot paths must run
//! entirely out of reused buffers. The test installs the counting global
//! allocator from [`rps_bench::alloc_counter`] and asserts the per-thread
//! allocation counter does not move across thousands of operations.
//!
//! The counter is thread-local, so the assertions are immune to allocator
//! traffic from other test threads — but to keep the warm/measure pairing
//! on one thread, each scenario runs start-to-finish in a single `#[test]`.

use ndcube::Region;
use rps_bench::alloc_counter::{thread_allocs, CountingAllocator};
use rps_core::{RangeSumEngine, RpsEngine};
use rps_workload::{CubeGen, QueryGen, RegionSpec, UpdateGen};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Warm-up ops: enough to fault in every lazily-grown buffer.
const WARM: usize = 16;
/// Measured ops: enough that even a single allocation per op would be
/// unmissable, small enough to stay instant in debug builds.
const OPS: usize = 2_000;

fn engine_for(dims: &[usize]) -> RpsEngine<i64> {
    let cube = CubeGen::new(0xA110C).uniform(dims, -50, 50).expect("dims");
    RpsEngine::from_cube(&cube)
}

/// Runs the warm/measure protocol for one cube shape and returns the
/// allocation counts observed across the measured query and update loops.
fn measure(dims: &[usize]) -> (u64, u64) {
    let mut engine = engine_for(dims);
    let regions: Vec<Region> = QueryGen::new(dims, 7, RegionSpec::Fraction(0.5)).take(OPS);
    let points: Vec<Region> = QueryGen::new(dims, 11, RegionSpec::Point).take(OPS);
    let updates: Vec<(Vec<usize>, i64)> = UpdateGen::uniform(dims, 13, 50).take(OPS);

    // Warm-up: first query sizes the thread-local scratch, first update
    // sizes the engine-owned kernel scratch.
    let mut sink = 0i64;
    for r in regions.iter().chain(points.iter()).take(WARM) {
        sink = sink.wrapping_add(engine.query(r).expect("in bounds"));
    }
    for (c, d) in updates.iter().take(WARM) {
        engine.update(c, *d).expect("in bounds");
        sink = sink.wrapping_add(engine.prefix_sum(c).expect("in bounds"));
    }

    let before = thread_allocs();
    for r in regions.iter().chain(points.iter()) {
        sink = sink.wrapping_add(engine.query(r).expect("in bounds"));
    }
    for (c, _) in &updates {
        sink = sink.wrapping_add(engine.prefix_sum(c).expect("in bounds"));
    }
    let query_allocs = thread_allocs() - before;

    let before = thread_allocs();
    for (c, d) in &updates {
        engine.update(c, *d).expect("in bounds");
    }
    let update_allocs = thread_allocs() - before;

    // Keep the checksum alive so the loops cannot be optimized away.
    assert!(sink != i64::MIN, "checksum sentinel");
    (query_allocs, update_allocs)
}

#[test]
fn steady_state_query_and_update_do_not_allocate_d2() {
    let (q, u) = measure(&[48, 48]);
    assert_eq!(q, 0, "d=2 queries allocated {q} times in {OPS} ops");
    assert_eq!(u, 0, "d=2 updates allocated {u} times in {OPS} ops");
}

#[test]
fn steady_state_query_and_update_do_not_allocate_d3() {
    let (q, u) = measure(&[16, 16, 16]);
    assert_eq!(q, 0, "d=3 queries allocated {q} times in {OPS} ops");
    assert_eq!(u, 0, "d=3 updates allocated {u} times in {OPS} ops");
}

/// The observability layer must not break the contract even in its most
/// expensive configuration: latency timing enabled (every query/update
/// span reads the clock and records into a histogram) and the global
/// trace ring installed (every finished span is pushed into the
/// preallocated ring). Metric registration itself allocates, but only
/// once — the warm-up pass inside `measure` absorbs it.
#[test]
fn instrumented_paths_stay_alloc_free_with_timing_and_tracing() {
    rps_obs::set_timing(true);
    rps_obs::trace::install(1024);
    let (q, u) = measure(&[32, 32]);
    assert_eq!(
        q, 0,
        "instrumented queries allocated {q} times in {OPS} ops"
    );
    assert_eq!(
        u, 0,
        "instrumented updates allocated {u} times in {OPS} ops"
    );
    assert!(rps_obs::trace::installed());
    // The spans above must actually have been recorded, or this test
    // proves nothing about the instrumented path. Updates run last, so
    // after thousands of ops the ring (capacity 1024, overwrite-oldest)
    // holds the trailing rps.update spans.
    let (events, _overwritten) = rps_obs::trace::drain();
    assert!(
        events.iter().any(|e| e.name == "rps.update"),
        "expected rps.update spans in the trace ring"
    );
}

/// The lane-width kernels ride the same contract: on a cube whose
/// innermost axis is wide (runs ≫ `LANES`, so the chunked lane path —
/// not the remainder tail — does the work), steady-state updates and
/// queries through an explicit wide-box grid must not allocate. This is
/// the instrumented runtime check backing the L5 lint's static coverage
/// of `rps/kernels.rs`.
#[test]
fn instrumented_lane_kernels_stay_alloc_free() {
    let cube = CubeGen::new(0xA110C)
        .uniform(&[8, 512], -50, 50)
        .expect("dims");
    // k = 64 along the innermost axis: every RP cascade and sweep run is
    // 64 contiguous cells — 8 full lanes per run.
    let mut engine = RpsEngine::from_cube_uniform(&cube, 64).expect("grid");
    assert!(
        engine.grid().box_size()[1] >= 8 * rps_core::rps::kernels::LANES,
        "box must span many lanes for this test to exercise the lane path"
    );
    let dims = [8usize, 512];
    let regions: Vec<Region> = QueryGen::new(&dims, 7, RegionSpec::Fraction(0.5)).take(OPS);
    let updates: Vec<(Vec<usize>, i64)> = UpdateGen::uniform(&dims, 13, 50).take(OPS);

    let mut sink = 0i64;
    for r in regions.iter().take(WARM) {
        sink = sink.wrapping_add(engine.query(r).expect("in bounds"));
    }
    for (c, d) in updates.iter().take(WARM) {
        engine.update(c, *d).expect("in bounds");
    }

    let before = thread_allocs();
    for (c, d) in &updates {
        engine.update(c, *d).expect("in bounds");
    }
    let update_allocs = thread_allocs() - before;
    let before = thread_allocs();
    for r in &regions {
        sink = sink.wrapping_add(engine.query(r).expect("in bounds"));
    }
    let query_allocs = thread_allocs() - before;

    assert!(sink != i64::MIN, "checksum sentinel");
    assert_eq!(
        update_allocs, 0,
        "lane-kernel updates allocated {update_allocs} times in {OPS} ops"
    );
    assert_eq!(
        query_allocs, 0,
        "lane-kernel queries allocated {query_allocs} times in {OPS} ops"
    );
}

/// The batched front-ends ride the contract too (S1): `query_many`'s
/// corner cache is keyed by linear cell index (`usize`), not by cloned
/// coordinate vectors, so a batch performs only a small per-batch
/// constant of allocations (the output `Vec` plus the pre-sized cache
/// table) regardless of batch length — ≈0 allocs/op amortized. The
/// versioned engine's snapshot `query_many` shares the same kernel and
/// the same bound.
#[test]
fn query_many_batches_stay_near_zero_alloc() {
    const BATCH: usize = 512;
    const ROUNDS: u64 = 8;
    // Worst-case per batch: output Vec + cache table + a possible grow.
    const PER_BATCH_BUDGET: u64 = 4;

    let dims = [48usize, 48];
    let engine = engine_for(&dims);
    let versioned = rps_core::VersionedEngine::new(engine_for(&dims));
    let regions: Vec<Region> = QueryGen::new(&dims, 7, RegionSpec::Fraction(0.5)).take(BATCH);

    // Warm-up sizes the thread-local scratch.
    let expected = engine.query_many(&regions).expect("in bounds");

    let before = thread_allocs();
    let mut sink = 0i64;
    for _ in 0..ROUNDS {
        let out = engine.query_many(&regions).expect("in bounds");
        sink = sink.wrapping_add(out.last().copied().unwrap_or(0));
    }
    let serial_allocs = thread_allocs() - before;

    let snap = versioned.snapshot();
    let warm = snap.query_many(&regions).expect("in bounds");
    assert_eq!(warm, expected, "snapshot must answer identically");
    let before = thread_allocs();
    for _ in 0..ROUNDS {
        let out = snap.query_many(&regions).expect("in bounds");
        sink = sink.wrapping_add(out.last().copied().unwrap_or(0));
    }
    let snapshot_allocs = thread_allocs() - before;

    assert!(sink != i64::MIN, "checksum sentinel");
    assert!(
        serial_allocs <= ROUNDS * PER_BATCH_BUDGET,
        "serial query_many allocated {serial_allocs} times across {ROUNDS} \
         batches of {BATCH} ops (budget {PER_BATCH_BUDGET}/batch)"
    );
    assert!(
        snapshot_allocs <= ROUNDS * PER_BATCH_BUDGET,
        "snapshot query_many allocated {snapshot_allocs} times across {ROUNDS} \
         batches of {BATCH} ops (budget {PER_BATCH_BUDGET}/batch)"
    );
}

/// Dimensionality changes re-size the shared thread-local scratch; after
/// one warm-up on the new shape the counter must freeze again. This pins
/// the `ensure(d)` grow-only design: switching between engines of
/// different rank on one thread stays allocation-free once the scratch
/// has seen the largest rank.
#[test]
fn scratch_survives_rank_switching() {
    let (q3, u3) = measure(&[8, 8, 8]);
    assert_eq!(q3, 0, "d=3 warm queries allocated");
    assert_eq!(u3, 0, "d=3 warm updates allocated");
    // Dropping back to d=2 on the same thread: scratch is already large
    // enough, so even the "warm-up" is allocation-free — but re-measure
    // through the same protocol to keep the assertion about steady state.
    let (q2, u2) = measure(&[32, 32]);
    assert_eq!(q2, 0, "d=2 after d=3 queries allocated");
    assert_eq!(u2, 0, "d=2 after d=3 updates allocated");
}
