use crate::{Region, Shape};

/// Row-major "odometer" iterator over the coordinate vectors of a [`Region`].
///
/// Yields an owned `Vec<usize>` per cell for ergonomic use in tests and
/// cold paths; the allocation-free alternatives are
/// [`RegionIter::for_each_coords`] and [`LinearRegionIter`].
pub struct RegionIter<'a> {
    region: &'a Region,
    current: Vec<usize>,
    done: bool,
}

impl<'a> RegionIter<'a> {
    pub(crate) fn new(region: &'a Region) -> Self {
        RegionIter {
            region,
            current: region.lo().to_vec(),
            done: false,
        }
    }

    /// Calls `f` with each coordinate vector in row-major order, reusing a
    /// single buffer (one allocation per call, none per cell).
    pub fn for_each_coords(region: &Region, f: impl FnMut(&[usize])) {
        let mut cur = Vec::new();
        Self::for_each_coords_with(region, &mut cur, f);
    }

    /// [`Self::for_each_coords`] with a caller-provided odometer buffer —
    /// zero allocations, for hot paths that walk many regions with one
    /// reused buffer. The buffer is cleared and refilled; any previous
    /// contents and capacity beyond `region.ndim()` are reused.
    pub fn for_each_coords_with(region: &Region, cur: &mut Vec<usize>, f: impl FnMut(&[usize])) {
        for_each_coords_in_bounds(region.lo(), region.hi(), cur, f);
    }
}

/// The odometer walk underlying [`RegionIter::for_each_coords_with`],
/// taking raw `lo`/`hi` slices so callers holding bounds in scratch
/// buffers need not materialize a [`Region`] (whose constructor
/// allocates). Bounds are inclusive; `lo[i] ≤ hi[i]` must hold for every
/// dimension (debug-asserted, like the `Region` invariant it mirrors).
pub fn for_each_coords_in_bounds(
    lo: &[usize],
    hi: &[usize],
    cur: &mut Vec<usize>,
    mut f: impl FnMut(&[usize]),
) {
    let d = lo.len();
    debug_assert_eq!(d, hi.len());
    debug_assert!(lo.iter().zip(hi).all(|(l, h)| l <= h));
    cur.clear();
    cur.extend_from_slice(lo);
    loop {
        f(cur);
        // Odometer increment: bump the last dimension, carrying left.
        let mut dim = d;
        loop {
            if dim == 0 {
                return;
            }
            dim -= 1;
            if cur[dim] < hi[dim] {
                cur[dim] += 1;
                for (later, &l) in cur.iter_mut().zip(lo.iter()).skip(dim + 1) {
                    *later = l;
                }
                break;
            }
        }
    }
}

impl Iterator for RegionIter<'_> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let out = self.current.clone();
        // Odometer increment.
        let d = self.region.ndim();
        let mut dim = d;
        loop {
            if dim == 0 {
                self.done = true;
                break;
            }
            dim -= 1;
            if self.current[dim] < self.region.hi()[dim] {
                self.current[dim] += 1;
                for later in dim + 1..d {
                    self.current[later] = self.region.lo()[later];
                }
                break;
            }
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            (0, Some(0))
        } else {
            // Remaining count is cheap to bound but fiddly to compute
            // exactly mid-iteration; the total is a correct upper bound.
            (0, Some(self.region.cell_count()))
        }
    }
}

/// Iterates the **linear offsets** of every cell of a region inside a shape,
/// in row-major order.
///
/// This is the hot-path iterator used by the engines: it never allocates
/// per cell and advances with a single add in the common case (stepping
/// along the last dimension).
pub struct LinearRegionIter<'a> {
    shape: &'a Shape,
    region: &'a Region,
    coords: Vec<usize>,
    linear: usize,
    remaining: usize,
}

impl<'a> LinearRegionIter<'a> {
    pub(crate) fn new(shape: &'a Shape, region: &'a Region) -> Self {
        debug_assert!(shape.check_region(region).is_ok());
        let coords = region.lo().to_vec();
        let linear = shape.linear_unchecked(&coords);
        LinearRegionIter {
            shape,
            region,
            coords,
            linear,
            remaining: region.cell_count(),
        }
    }
}

impl Iterator for LinearRegionIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let out = self.linear;
        // Advance the odometer and the running linear offset together.
        let d = self.coords.len();
        let last = d - 1;
        if self.coords[last] < self.region.hi()[last] {
            // Fast path: step within the innermost dimension.
            self.coords[last] += 1;
            self.linear += self.shape.strides()[last];
        } else {
            let mut dim = last;
            loop {
                // Rewind this dimension to its region start.
                let span = self.coords[dim] - self.region.lo()[dim];
                self.linear -= span * self.shape.strides()[dim];
                self.coords[dim] = self.region.lo()[dim];
                if dim == 0 {
                    break; // fully exhausted; remaining already hit 0
                }
                dim -= 1;
                if self.coords[dim] < self.region.hi()[dim] {
                    self.coords[dim] += 1;
                    self.linear += self.shape.strides()[dim];
                    break;
                }
            }
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for LinearRegionIter<'_> {}

/// Iterates the maximal contiguous runs of a region inside a shape: one
/// `(start, len)` pair per outer coordinate, where `start` is the linear
/// offset of the run's first cell and `len` its innermost-axis extent.
///
/// Row-major layout makes the last dimension the only contiguous one, so
/// each run covers `hi[last] − lo[last] + 1` cells. This is the iterator
/// form of [`Shape::for_each_contiguous_run_in_bounds`], for callers that
/// want run-structured access (slice-at-a-time kernels) with iterator
/// ergonomics; the callback form is the zero-alloc hot-path variant.
pub struct ContiguousRuns<'a> {
    shape: &'a Shape,
    region: &'a Region,
    coords: Vec<usize>,
    start: usize,
    run_len: usize,
    remaining: usize,
}

impl<'a> ContiguousRuns<'a> {
    pub(crate) fn new(shape: &'a Shape, region: &'a Region) -> Self {
        debug_assert!(shape.check_region(region).is_ok());
        let coords = region.lo().to_vec();
        let start = shape.linear_unchecked(&coords);
        let last = shape.ndim() - 1;
        let run_len = region.hi()[last] - region.lo()[last] + 1;
        ContiguousRuns {
            shape,
            region,
            coords,
            start,
            run_len,
            remaining: region.cell_count() / run_len,
        }
    }
}

impl Iterator for ContiguousRuns<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let out = (self.start, self.run_len);
        // Advance the outer odometer (the innermost coordinate stays at
        // the run start); d == 1 has a single run, then exhausts.
        let d = self.coords.len();
        let mut dim = d - 1;
        while dim > 0 {
            dim -= 1;
            if self.coords[dim] < self.region.hi()[dim] {
                self.coords[dim] += 1;
                self.start += self.shape.strides()[dim];
                break;
            }
            let span = self.coords[dim] - self.region.lo()[dim];
            self.start -= span * self.shape.strides()[dim];
            self.coords[dim] = self.region.lo()[dim];
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for ContiguousRuns<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Region;

    #[test]
    fn region_iter_counts() {
        let r = Region::new(&[0, 0, 0], &[1, 2, 3]).unwrap();
        assert_eq!(r.iter().count(), 24);
    }

    #[test]
    fn region_iter_order_matches_linear() {
        let shape = Shape::new(&[4, 5]).unwrap();
        let r = Region::new(&[1, 2], &[3, 4]).unwrap();
        let via_coords: Vec<usize> = r.iter().map(|c| shape.linear(&c).unwrap()).collect();
        let via_linear: Vec<usize> = shape.linear_region_iter(&r).collect();
        assert_eq!(via_coords, via_linear);
    }

    #[test]
    fn linear_iter_full_shape() {
        let shape = Shape::new(&[3, 3, 3]).unwrap();
        let r = shape.full_region();
        let got: Vec<usize> = shape.linear_region_iter(&r).collect();
        let want: Vec<usize> = (0..27).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn linear_iter_singleton() {
        let shape = Shape::new(&[5, 5]).unwrap();
        let r = Region::point(&[2, 3]).unwrap();
        let got: Vec<usize> = shape.linear_region_iter(&r).collect();
        assert_eq!(got, vec![13]);
    }

    #[test]
    fn linear_iter_exact_size() {
        let shape = Shape::new(&[6, 7]).unwrap();
        let r = Region::new(&[2, 1], &[4, 5]).unwrap();
        let it = shape.linear_region_iter(&r);
        assert_eq!(it.len(), 15);
        assert_eq!(it.count(), 15);
    }

    #[test]
    fn for_each_coords_matches_iter() {
        let r = Region::new(&[1, 0, 2], &[2, 1, 3]).unwrap();
        let mut collected = Vec::new();
        RegionIter::for_each_coords(&r, |c| collected.push(c.to_vec()));
        let expected: Vec<Vec<usize>> = r.iter().collect();
        assert_eq!(collected, expected);
    }

    #[test]
    fn for_each_coords_with_reuses_buffer() {
        let r = Region::new(&[1, 0, 2], &[2, 1, 3]).unwrap();
        // Pre-dirty the buffer: the walk must clear and refill it.
        let mut buf = vec![99usize; 7];
        let mut collected = Vec::new();
        RegionIter::for_each_coords_with(&r, &mut buf, |c| collected.push(c.to_vec()));
        let expected: Vec<Vec<usize>> = r.iter().collect();
        assert_eq!(collected, expected);

        // Second walk over a different region with the same buffer.
        let r2 = Region::new(&[0, 0], &[2, 2]).unwrap();
        collected.clear();
        RegionIter::for_each_coords_with(&r2, &mut buf, |c| collected.push(c.to_vec()));
        let expected2: Vec<Vec<usize>> = r2.iter().collect();
        assert_eq!(collected, expected2);
    }

    #[test]
    fn bounds_walk_matches_region_walk() {
        let r = Region::new(&[2, 1], &[4, 3]).unwrap();
        let mut buf = Vec::new();
        let mut via_bounds = Vec::new();
        for_each_coords_in_bounds(&[2, 1], &[4, 3], &mut buf, |c| via_bounds.push(c.to_vec()));
        let via_region: Vec<Vec<usize>> = r.iter().collect();
        assert_eq!(via_bounds, via_region);
    }

    #[test]
    fn bounds_walk_singleton() {
        let mut buf = Vec::new();
        let mut seen = Vec::new();
        for_each_coords_in_bounds(&[3, 3], &[3, 3], &mut buf, |c| seen.push(c.to_vec()));
        assert_eq!(seen, vec![vec![3, 3]]);
    }

    #[test]
    fn three_dim_region_in_larger_shape() {
        let shape = Shape::new(&[4, 4, 4]).unwrap();
        let r = Region::new(&[1, 1, 1], &[2, 3, 2]).unwrap();
        let got: Vec<usize> = shape.linear_region_iter(&r).collect();
        let want: Vec<usize> = r.iter().map(|c| shape.linear(&c).unwrap()).collect();
        assert_eq!(got, want);
        assert_eq!(got.len(), 2 * 3 * 2);
    }
}
