//! Borrowed sub-cube views, dimension slicing and axis reductions.

use crate::{NdCube, NdError, Region, RegionIter};

/// A read-only view of a region within a cube: coordinates are relative
/// to the region's lower corner.
#[derive(Debug, Clone, Copy)]
pub struct CubeView<'a, T> {
    cube: &'a NdCube<T>,
    region: &'a Region,
}

impl<T: Clone> CubeView<'_, T> {
    /// The viewed region (in the parent cube's coordinates).
    pub fn region(&self) -> &Region {
        self.region
    }

    /// Extent per dimension.
    pub fn dims(&self) -> Vec<usize> {
        (0..self.region.ndim())
            .map(|d| self.region.extent(d))
            .collect()
    }

    /// Reads a cell by view-relative coordinates.
    pub fn get(&self, rel: &[usize]) -> T {
        assert_eq!(rel.len(), self.region.ndim(), "dimension mismatch");
        let abs: Vec<usize> = rel
            .iter()
            .zip(self.region.lo())
            .map(|(&r, &l)| l + r)
            .collect();
        assert!(
            self.region.contains(&abs),
            "view coordinates {rel:?} out of bounds"
        );
        self.cube.get(&abs)
    }

    /// Copies the view into an owned cube.
    pub fn to_cube(&self) -> NdCube<T> {
        let data = self
            .cube
            .shape()
            .linear_region_iter(self.region)
            .map(|lin| self.cube.get_linear(lin).clone())
            .collect();
        // lint:allow(L2): the iterator yields exactly dims().product() cells
        NdCube::from_vec(&self.dims(), data).expect("view dims match cell count")
    }
}

impl<T: Clone> NdCube<T> {
    /// A read-only view of `region` (which must lie inside the cube).
    pub fn view<'a>(&'a self, region: &'a Region) -> Result<CubeView<'a, T>, NdError> {
        self.shape().check_region(region)?;
        Ok(CubeView { cube: self, region })
    }

    /// The (d−1)-dimensional slice at `index` along `dim`. For 1-d cubes
    /// the result is a single-cell 1-d cube.
    pub fn slice(&self, dim: usize, index: usize) -> Result<NdCube<T>, NdError> {
        let shape = self.shape();
        if dim >= shape.ndim() {
            return Err(NdError::DimMismatch {
                expected: shape.ndim(),
                got: dim,
            });
        }
        if index >= shape.dim(dim) {
            return Err(NdError::OutOfBounds {
                dim,
                coord: index,
                size: shape.dim(dim),
            });
        }
        let lo: Vec<usize> = (0..shape.ndim())
            .map(|i| if i == dim { index } else { 0 })
            .collect();
        let hi: Vec<usize> = shape
            .dims()
            .iter()
            .enumerate()
            .map(|(i, &n)| if i == dim { index } else { n - 1 })
            .collect();
        // lint:allow(L2): lo ≤ hi per the index bound checked above
        let region = Region::new(&lo, &hi).expect("slice region valid");
        let data: Vec<T> = shape
            .linear_region_iter(&region)
            .map(|lin| self.get_linear(lin).clone())
            .collect();
        let out_dims: Vec<usize> = if shape.ndim() == 1 {
            vec![1]
        } else {
            shape
                .dims()
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != dim)
                .map(|(_, &n)| n)
                .collect()
        };
        NdCube::from_vec(&out_dims, data)
    }

    /// Reduces along `dim` with `combine` (e.g. `|acc, v| *acc += v` for
    /// sums), producing a cube with that dimension removed (for 1-d
    /// input, a single-cell cube). The accumulator starts from the slice
    /// at index 0.
    pub fn reduce_along(
        &self,
        dim: usize,
        mut combine: impl FnMut(&mut T, &T),
    ) -> Result<NdCube<T>, NdError> {
        let mut acc = self.slice(dim, 0)?;
        for i in 1..self.shape().dim(dim) {
            let layer = self.slice(dim, i)?;
            for (a, v) in acc.as_mut_slice().iter_mut().zip(layer.as_slice()) {
                combine(a, v);
            }
        }
        Ok(acc)
    }
}

/// Iterates the coordinates of a view (view-relative).
impl<T: Clone> CubeView<'_, T> {
    /// Calls `f` with each (relative coordinates, value) pair in
    /// row-major order.
    pub fn for_each(&self, mut f: impl FnMut(&[usize], T)) {
        let dims = self.dims();
        let zero = vec![0usize; dims.len()];
        let hi: Vec<usize> = dims.iter().map(|&n| n - 1).collect();
        // lint:allow(L2): 0 ≤ n−1 for every view dimension (regions are non-empty)
        let rel_region = Region::new(&zero, &hi).expect("view region valid");
        RegionIter::for_each_coords(&rel_region, |rel| {
            f(rel, self.get(rel));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube() -> NdCube<i64> {
        NdCube::from_fn(&[4, 5], |c| (c[0] * 10 + c[1]) as i64).unwrap()
    }

    #[test]
    fn view_reads_relative() {
        let c = cube();
        let r = Region::new(&[1, 2], &[3, 4]).unwrap();
        let v = c.view(&r).unwrap();
        assert_eq!(v.dims(), vec![3, 3]);
        assert_eq!(v.get(&[0, 0]), 12);
        assert_eq!(v.get(&[2, 2]), 34);
    }

    #[test]
    fn view_to_cube() {
        let c = cube();
        let r = Region::new(&[0, 3], &[1, 4]).unwrap();
        let sub = c.view(&r).unwrap().to_cube();
        assert_eq!(sub.shape().dims(), &[2, 2]);
        assert_eq!(sub.as_slice(), &[3, 4, 13, 14]);
    }

    #[test]
    fn view_for_each_row_major() {
        let c = cube();
        let r = Region::new(&[2, 1], &[3, 2]).unwrap();
        let mut seen = Vec::new();
        c.view(&r)
            .unwrap()
            .for_each(|rel, v| seen.push((rel.to_vec(), v)));
        assert_eq!(
            seen,
            vec![
                (vec![0, 0], 21),
                (vec![0, 1], 22),
                (vec![1, 0], 31),
                (vec![1, 1], 32)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view_checks_bounds() {
        let c = cube();
        let r = Region::new(&[1, 1], &[2, 2]).unwrap();
        let v = c.view(&r).unwrap();
        v.get(&[2, 0]);
    }

    #[test]
    fn slice_drops_dimension() {
        let c = cube();
        let row2 = c.slice(0, 2).unwrap();
        assert_eq!(row2.shape().dims(), &[5]);
        assert_eq!(row2.as_slice(), &[20, 21, 22, 23, 24]);
        let col3 = c.slice(1, 3).unwrap();
        assert_eq!(col3.shape().dims(), &[4]);
        assert_eq!(col3.as_slice(), &[3, 13, 23, 33]);
    }

    #[test]
    fn slice_3d() {
        let c = NdCube::from_fn(&[2, 3, 4], |x| (x[0] * 100 + x[1] * 10 + x[2]) as i64).unwrap();
        let mid = c.slice(1, 1).unwrap();
        assert_eq!(mid.shape().dims(), &[2, 4]);
        assert_eq!(mid.get(&[1, 3]), 113);
    }

    #[test]
    fn slice_1d_gives_single_cell() {
        let c = NdCube::from_vec(&[4], vec![5i64, 6, 7, 8]).unwrap();
        let s = c.slice(0, 2).unwrap();
        assert_eq!(s.shape().dims(), &[1]);
        assert_eq!(s.as_slice(), &[7]);
    }

    #[test]
    fn slice_rejects_bad_args() {
        let c = cube();
        assert!(c.slice(2, 0).is_err());
        assert!(c.slice(0, 4).is_err());
    }

    #[test]
    fn reduce_along_sums() {
        let c = cube();
        let row_sums = c.reduce_along(1, |acc, v| *acc += v).unwrap();
        assert_eq!(row_sums.shape().dims(), &[4]);
        assert_eq!(row_sums.as_slice(), &[10, 60, 110, 160]);
        let col_sums = c.reduce_along(0, |acc, v| *acc += v).unwrap();
        assert_eq!(col_sums.as_slice(), &[60, 64, 68, 72, 76]);
    }

    #[test]
    fn reduce_along_max() {
        let c = NdCube::from_vec(&[2, 3], vec![3i64, 9, 1, 7, 2, 8]).unwrap();
        let col_max = c.reduce_along(0, |acc, v| *acc = (*acc).max(*v)).unwrap();
        assert_eq!(col_max.as_slice(), &[7, 9, 8]);
    }
}
