use crate::{NdError, RegionIter};

/// An inclusive d-dimensional hyper-rectangle `lo ..= hi`.
///
/// Matches the paper's range notation `Sum(A[l₁,…,l_d] : A[h₁,…,h_d])`:
/// both corners are part of the region. A region always contains at least
/// one cell.
///
/// ```
/// use ndcube::Region;
/// let r = Region::new(&[1, 2], &[3, 2]).unwrap();
/// assert_eq!(r.cell_count(), 3);
/// assert!(r.contains(&[2, 2]));
/// assert!(!r.contains(&[2, 3]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Region {
    lo: Vec<usize>,
    hi: Vec<usize>,
}

impl Region {
    /// Builds a region from inclusive corners; fails if the corners have
    /// mismatched dimensionality or are inverted in any dimension.
    pub fn new(lo: &[usize], hi: &[usize]) -> Result<Region, NdError> {
        if lo.len() != hi.len() {
            return Err(NdError::DimMismatch {
                expected: lo.len(),
                got: hi.len(),
            });
        }
        if lo.is_empty() {
            return Err(NdError::EmptyShape);
        }
        for (dim, (&l, &h)) in lo.iter().zip(hi).enumerate() {
            if l > h {
                return Err(NdError::InvertedRegion { dim, lo: l, hi: h });
            }
        }
        Ok(Region {
            lo: lo.to_vec(),
            hi: hi.to_vec(),
        })
    }

    /// The single-cell region containing exactly `coords`.
    pub fn point(coords: &[usize]) -> Result<Region, NdError> {
        Region::new(coords, coords)
    }

    /// The prefix region `[0,…,0] ..= hi`, the shape of every region sum
    /// used by the prefix-sum decomposition (Figure 3 of the paper).
    pub fn prefix(hi: &[usize]) -> Result<Region, NdError> {
        Region::new(&vec![0; hi.len()], hi)
    }

    /// Inclusive lower corner.
    #[inline]
    pub fn lo(&self) -> &[usize] {
        &self.lo
    }

    /// Inclusive upper corner.
    #[inline]
    pub fn hi(&self) -> &[usize] {
        &self.hi
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.lo.len()
    }

    /// Extent along one dimension (inclusive, so at least 1). Panics if
    /// `dim ≥ ndim()`, like slice indexing.
    #[inline]
    pub fn extent(&self, dim: usize) -> usize {
        // lint:allow(L1): documented slice-like panic on a bad dim; lo ≤ hi per constructor
        self.hi[dim] - self.lo[dim] + 1
    }

    /// Number of cells in the region (product of extents). Saturates on
    /// overflow, which only matters for absurd synthetic shapes.
    pub fn cell_count(&self) -> usize {
        (0..self.ndim()).fold(1usize, |acc, d| acc.saturating_mul(self.extent(d)))
    }

    /// Whether `coords` lies inside the region.
    pub fn contains(&self, coords: &[usize]) -> bool {
        coords.len() == self.ndim()
            && coords
                .iter()
                .zip(self.lo.iter().zip(&self.hi))
                .all(|(&c, (&l, &h))| l <= c && c <= h)
    }

    /// The intersection with another region, or `None` when disjoint.
    pub fn intersect(&self, other: &Region) -> Option<Region> {
        if self.ndim() != other.ndim() {
            return None;
        }
        let lo: Vec<usize> = self
            .lo
            .iter()
            .zip(&other.lo)
            .map(|(&a, &b)| a.max(b))
            .collect();
        let hi: Vec<usize> = self
            .hi
            .iter()
            .zip(&other.hi)
            .map(|(&a, &b)| a.min(b))
            .collect();
        if lo.iter().zip(&hi).any(|(&l, &h)| l > h) {
            None
        } else {
            Some(Region { lo, hi })
        }
    }

    /// Whether this region fully contains another.
    pub fn contains_region(&self, other: &Region) -> bool {
        self.ndim() == other.ndim() && self.contains(other.lo()) && self.contains(other.hi())
    }

    /// Iterates every coordinate vector in the region in row-major order.
    ///
    /// Allocates one `Vec` per yielded cell; hot paths should prefer
    /// [`crate::Shape::linear_region_iter`] or
    /// [`RegionIter::for_each_coords`].
    pub fn iter(&self) -> RegionIter<'_> {
        RegionIter::new(self)
    }
}

impl<'a> IntoIterator for &'a Region {
    type Item = Vec<usize>;
    type IntoIter = RegionIter<'a>;

    fn into_iter(self) -> RegionIter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let r = Region::new(&[0, 1], &[2, 4]).unwrap();
        assert_eq!(r.ndim(), 2);
        assert_eq!(r.extent(0), 3);
        assert_eq!(r.extent(1), 4);
        assert_eq!(r.cell_count(), 12);
    }

    #[test]
    fn rejects_inverted() {
        assert_eq!(
            Region::new(&[2, 0], &[1, 5]),
            Err(NdError::InvertedRegion {
                dim: 0,
                lo: 2,
                hi: 1
            })
        );
    }

    #[test]
    fn rejects_mismatch_and_empty() {
        assert!(Region::new(&[1], &[1, 2]).is_err());
        assert!(Region::new(&[], &[]).is_err());
    }

    #[test]
    fn point_region() {
        let p = Region::point(&[3, 4, 5]).unwrap();
        assert_eq!(p.cell_count(), 1);
        assert!(p.contains(&[3, 4, 5]));
        assert!(!p.contains(&[3, 4, 6]));
    }

    #[test]
    fn prefix_region() {
        let p = Region::prefix(&[2, 3]).unwrap();
        assert_eq!(p.lo(), &[0, 0]);
        assert_eq!(p.cell_count(), 12);
    }

    #[test]
    fn intersection() {
        let a = Region::new(&[0, 0], &[4, 4]).unwrap();
        let b = Region::new(&[3, 2], &[8, 3]).unwrap();
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.lo(), &[3, 2]);
        assert_eq!(i.hi(), &[4, 3]);

        let c = Region::new(&[6, 0], &[7, 4]).unwrap();
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn containment() {
        let outer = Region::new(&[0, 0], &[9, 9]).unwrap();
        let inner = Region::new(&[2, 3], &[4, 4]).unwrap();
        assert!(outer.contains_region(&inner));
        assert!(!inner.contains_region(&outer));
    }

    #[test]
    fn iter_row_major() {
        let r = Region::new(&[1, 1], &[2, 2]).unwrap();
        let cells: Vec<Vec<usize>> = r.iter().collect();
        assert_eq!(cells, vec![vec![1, 1], vec![1, 2], vec![2, 1], vec![2, 2]]);
    }
}
