use std::fmt;

/// Errors produced by shape and region construction / validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NdError {
    /// A shape was constructed with zero dimensions.
    EmptyShape,
    /// A dimension had size zero.
    ZeroDim {
        /// Index of the offending dimension.
        dim: usize,
    },
    /// The total number of cells overflowed `usize`.
    SizeOverflow,
    /// A coordinate vector had the wrong number of dimensions.
    DimMismatch {
        /// Dimensions expected by the shape.
        expected: usize,
        /// Dimensions actually supplied.
        got: usize,
    },
    /// A coordinate was out of bounds for its dimension.
    OutOfBounds {
        /// Offending dimension.
        dim: usize,
        /// Supplied coordinate.
        coord: usize,
        /// Size of that dimension.
        size: usize,
    },
    /// Two whole shapes were expected to match and did not.
    ShapeMismatch {
        /// Dimensions expected.
        expected: Vec<usize>,
        /// Dimensions actually supplied.
        got: Vec<usize>,
    },
    /// A region lower bound exceeded its upper bound.
    InvertedRegion {
        /// Offending dimension.
        dim: usize,
        /// Lower bound supplied.
        lo: usize,
        /// Upper bound supplied.
        hi: usize,
    },
    /// A storage backend beneath the engine failed (I/O error, detected
    /// corruption, …). Geometry crates never produce this; it exists so
    /// disk-backed `RangeSumEngine` implementations can surface backend
    /// failures through the shared trait instead of panicking.
    Backend {
        /// Human-readable description of the backend failure.
        detail: String,
    },
}

impl fmt::Display for NdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NdError::EmptyShape => write!(f, "shape must have at least one dimension"),
            NdError::ZeroDim { dim } => write!(f, "dimension {dim} has size zero"),
            NdError::SizeOverflow => write!(f, "total cell count overflows usize"),
            NdError::DimMismatch { expected, got } => {
                write!(f, "expected {expected} coordinates, got {got}")
            }
            NdError::OutOfBounds { dim, coord, size } => {
                write!(
                    f,
                    "coordinate {coord} out of bounds for dimension {dim} (size {size})"
                )
            }
            NdError::ShapeMismatch { expected, got } => {
                write!(f, "expected shape {expected:?}, got {got:?}")
            }
            NdError::InvertedRegion { dim, lo, hi } => {
                write!(
                    f,
                    "region lower bound {lo} exceeds upper bound {hi} in dimension {dim}"
                )
            }
            NdError::Backend { detail } => write!(f, "storage backend failure: {detail}"),
        }
    }
}

impl std::error::Error for NdError {}
