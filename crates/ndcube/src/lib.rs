//! # ndcube — dense d-dimensional array substrate
//!
//! This crate provides the array machinery that the OLAP data-cube methods
//! in this workspace (`rps-core`, `rps-storage`) are built on: a dense,
//! row-major, d-dimensional array [`NdCube`], the index arithmetic behind it
//! ([`Shape`]), inclusive hyper-rectangles ([`Region`]) and efficient
//! iteration over them ([`RegionIter`], [`Shape::linear_region_iter`]).
//!
//! The paper this workspace reproduces (Geffner et al., *Relative Prefix
//! Sums*, ICDE 1999) models a data cube as a d-dimensional array `A` of size
//! `n_1 × n_2 × … × n_d`; arrays `P` (prefix sums) and `RP` (relative prefix
//! sums) share that layout. Everything here is deliberately dependency-free.
//!
//! ## Conventions
//!
//! * Row-major ("C") layout: the **last** dimension varies fastest.
//! * Coordinates are `&[usize]`, one entry per dimension, zero-based.
//! * Regions are **inclusive** on both ends, matching the paper's
//!   `Sum(A[l..]:A[..h])` notation.
//!
//! ## Example
//!
//! ```
//! use ndcube::{NdCube, Region};
//!
//! let mut a = NdCube::<i64>::zeros(&[3, 4]);
//! a.set(&[1, 2], 7);
//! a.set(&[2, 3], 5);
//! let r = Region::new(&[1, 1], &[2, 3]).unwrap();
//! let total: i64 = r.iter().map(|c| a.get(&c)).sum();
//! assert_eq!(total, 12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cube;
mod error;
mod iter;
mod region;
mod shape;
mod view;

pub use cube::NdCube;
pub use error::NdError;
pub use iter::{for_each_coords_in_bounds, ContiguousRuns, LinearRegionIter, RegionIter};
pub use region::Region;
pub use shape::Shape;
pub use view::CubeView;

/// Maximum number of dimensions supported by the iterators' inline paths.
///
/// Nothing hard-fails above this; it is the documented practical limit the
/// workspace is tested to (the paper's data cubes are OLAP cubes with a
/// handful of dimensions).
pub const MAX_TESTED_DIMS: usize = 8;
