use crate::{LinearRegionIter, NdError, Region};

/// The extent of a d-dimensional array plus its row-major stride table.
///
/// `Shape` is the single source of truth for coordinate ↔ linear-offset
/// arithmetic in this workspace. The last dimension varies fastest.
///
/// ```
/// use ndcube::Shape;
/// let s = Shape::new(&[9, 9]).unwrap();
/// assert_eq!(s.len(), 81);
/// assert_eq!(s.linear(&[7, 5]).unwrap(), 7 * 9 + 5);
/// assert_eq!(s.coords_of(68), vec![7, 5]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shape {
    dims: Vec<usize>,
    strides: Vec<usize>,
    len: usize,
}

impl Shape {
    /// Builds a shape from per-dimension sizes.
    ///
    /// Fails on an empty dimension list, a zero-sized dimension, or a total
    /// cell count that overflows `usize`.
    pub fn new(dims: &[usize]) -> Result<Shape, NdError> {
        if dims.is_empty() {
            return Err(NdError::EmptyShape);
        }
        let mut len: usize = 1;
        for (dim, &sz) in dims.iter().enumerate() {
            if sz == 0 {
                return Err(NdError::ZeroDim { dim });
            }
            len = len.checked_mul(sz).ok_or(NdError::SizeOverflow)?;
        }
        let mut strides = vec![1usize; dims.len()];
        for i in (0..dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * dims[i + 1];
        }
        Ok(Shape {
            dims: dims.to_vec(),
            strides,
            len,
        })
    }

    /// Builds the hypercube shape `[n; d]` used throughout the paper's
    /// cost model (every dimension has the same size `n`).
    pub fn hypercube(n: usize, d: usize) -> Result<Shape, NdError> {
        Shape::new(&vec![n; d])
    }

    /// Number of dimensions `d`.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Per-dimension sizes.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Size of one dimension.
    #[inline]
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Row-major strides (elements, not bytes).
    #[inline]
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the shape holds no cells. Unreachable for constructed
    /// shapes (zero dims are rejected) but required by convention.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Validates a coordinate vector against this shape.
    pub fn check(&self, coords: &[usize]) -> Result<(), NdError> {
        if coords.len() != self.dims.len() {
            return Err(NdError::DimMismatch {
                expected: self.dims.len(),
                got: coords.len(),
            });
        }
        for (dim, (&c, &sz)) in coords.iter().zip(&self.dims).enumerate() {
            if c >= sz {
                return Err(NdError::OutOfBounds {
                    dim,
                    coord: c,
                    size: sz,
                });
            }
        }
        Ok(())
    }

    /// Checked coordinate → linear offset.
    pub fn linear(&self, coords: &[usize]) -> Result<usize, NdError> {
        self.check(coords)?;
        Ok(self.linear_unchecked(coords))
    }

    /// Coordinate → linear offset without bounds checks (still safe; an
    /// out-of-range coordinate simply yields a wrong/out-of-range offset).
    ///
    /// Hot path for the engines: callers guarantee validity.
    #[inline]
    pub fn linear_unchecked(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.dims.len());
        coords.iter().zip(&self.strides).map(|(&c, &s)| c * s).sum()
    }

    /// Linear offset → coordinate vector.
    pub fn coords_of(&self, mut linear: usize) -> Vec<usize> {
        debug_assert!(linear < self.len);
        let mut out = vec![0usize; self.dims.len()];
        for (i, &s) in self.strides.iter().enumerate() {
            out[i] = linear / s;
            linear %= s;
        }
        out
    }

    /// The region spanning the entire shape: `[0,0,…] ..= [n₁−1, …]`.
    pub fn full_region(&self) -> Region {
        let lo = vec![0usize; self.ndim()];
        let hi: Vec<usize> = self.dims.iter().map(|&n| n - 1).collect();
        // lint:allow(L2): shapes reject zero-sized dims, so 0 ≤ n−1 always holds
        Region::new(&lo, &hi).expect("full region of a valid shape is valid")
    }

    /// Validates that a region fits inside this shape.
    pub fn check_region(&self, region: &Region) -> Result<(), NdError> {
        self.check(region.hi())?;
        // lo ≤ hi is guaranteed by Region's constructor, so lo is in bounds
        // whenever hi is, but the dimension count still needs checking when
        // ndim differs (covered by the check above).
        Ok(())
    }

    /// Iterates the linear offsets of every cell in `region`, in row-major
    /// order, without allocating per cell.
    pub fn linear_region_iter<'a>(&'a self, region: &'a Region) -> LinearRegionIter<'a> {
        LinearRegionIter::new(self, region)
    }

    /// Calls `f` with the linear offset of every cell in `lo ..= hi`
    /// (inclusive bounds, row-major order), advancing incrementally — one
    /// add per step in the common case — and reusing the caller's
    /// coordinate buffer: zero allocations.
    ///
    /// The bounds-slice form of [`Self::linear_region_iter`], for hot
    /// paths whose bounds live in scratch buffers rather than a
    /// [`Region`]. Bounds must be in range (debug-asserted).
    pub fn for_each_linear_in_bounds(
        &self,
        lo: &[usize],
        hi: &[usize],
        cur: &mut Vec<usize>,
        mut f: impl FnMut(usize),
    ) {
        let d = self.ndim();
        debug_assert_eq!(lo.len(), d);
        debug_assert_eq!(hi.len(), d);
        debug_assert!(lo.iter().zip(hi).all(|(l, h)| l <= h));
        debug_assert!(self.check(hi).is_ok());
        cur.clear();
        cur.extend_from_slice(lo);
        let mut linear = self.linear_unchecked(cur);
        let last = d - 1;
        loop {
            f(linear);
            if cur[last] < hi[last] {
                // Fast path: step within the innermost dimension.
                cur[last] += 1;
                linear += self.strides[last];
                continue;
            }
            // Carry: rewind exhausted dimensions, bump the next one out.
            let mut dim = last;
            loop {
                let span = cur[dim] - lo[dim];
                linear -= span * self.strides[dim];
                cur[dim] = lo[dim];
                if dim == 0 {
                    return;
                }
                dim -= 1;
                if cur[dim] < hi[dim] {
                    cur[dim] += 1;
                    linear += self.strides[dim];
                    break;
                }
            }
        }
    }

    /// Calls `f` with `(start, len)` for every maximal contiguous run of
    /// cells in `lo ..= hi`: the innermost-axis span at each outer
    /// coordinate. Row-major layout makes the last dimension the only
    /// contiguous one, so a run is `hi[last] − lo[last] + 1` cells long and
    /// starts at the linear offset of `(…outer…, lo[last])`.
    ///
    /// This is the walk the lane kernels in `rps-core` consume: one
    /// callback per run lets them process the run as a slice (chunked,
    /// autovectorizable) instead of paying the odometer per cell as
    /// [`Self::for_each_linear_in_bounds`] does. Reuses the caller's
    /// coordinate buffer: zero allocations. Bounds must be in range
    /// (debug-asserted).
    pub fn for_each_contiguous_run_in_bounds(
        &self,
        lo: &[usize],
        hi: &[usize],
        cur: &mut Vec<usize>,
        mut f: impl FnMut(usize, usize),
    ) {
        let d = self.ndim();
        debug_assert_eq!(lo.len(), d);
        debug_assert_eq!(hi.len(), d);
        debug_assert!(lo.iter().zip(hi).all(|(l, h)| l <= h));
        debug_assert!(self.check(hi).is_ok());
        cur.clear();
        cur.extend_from_slice(lo);
        let mut start = self.linear_unchecked(cur);
        let run_len = hi[d - 1] - lo[d - 1] + 1;
        loop {
            f(start, run_len);
            if d == 1 {
                return;
            }
            // Odometer over the outer dimensions only; the innermost
            // coordinate stays pinned at lo[last] (the run start).
            let mut dim = d - 1;
            loop {
                if dim == 0 {
                    return;
                }
                dim -= 1;
                if cur[dim] < hi[dim] {
                    cur[dim] += 1;
                    start += self.strides[dim];
                    break;
                }
                let span = cur[dim] - lo[dim];
                start -= span * self.strides[dim];
                cur[dim] = lo[dim];
            }
        }
    }

    /// Iterator form of [`Self::for_each_contiguous_run_in_bounds`] over a
    /// [`Region`]: yields `(start, len)` for each maximal contiguous
    /// (innermost-axis) run, in row-major order of the outer coordinates.
    pub fn contiguous_runs<'a>(&'a self, region: &'a Region) -> crate::ContiguousRuns<'a> {
        crate::ContiguousRuns::new(self, region)
    }

    /// Calls `f` with each (coordinates, linear offset) pair of `region`
    /// in row-major order, reusing one coordinate buffer — the pairing
    /// every cube-walking loop needs, so call sites don't hand-roll the
    /// odometer carry logic.
    pub fn for_each_region_cell(&self, region: &Region, mut f: impl FnMut(&[usize], usize)) {
        debug_assert!(self.check_region(region).is_ok());
        let mut coords = region.lo().to_vec();
        let mut linear = self.linear_unchecked(&coords);
        let d = self.ndim();
        loop {
            f(&coords, linear);
            // Odometer advance, keeping the linear offset in lock-step.
            let mut dim = d;
            loop {
                if dim == 0 {
                    return;
                }
                dim -= 1;
                if coords[dim] < region.hi()[dim] {
                    coords[dim] += 1;
                    linear += self.strides()[dim];
                    break;
                }
                // Rewind this dimension to the region's start.
                let span = coords[dim] - region.lo()[dim];
                linear -= span * self.strides()[dim];
                coords[dim] = region.lo()[dim];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]).unwrap();
        assert_eq!(s.strides(), &[12, 4, 1]);
        assert_eq!(s.len(), 24);
        assert_eq!(s.ndim(), 3);
    }

    #[test]
    fn linear_round_trip() {
        let s = Shape::new(&[3, 5, 7]).unwrap();
        for lin in 0..s.len() {
            let c = s.coords_of(lin);
            assert_eq!(s.linear(&c).unwrap(), lin);
        }
    }

    #[test]
    fn one_dimensional() {
        let s = Shape::new(&[10]).unwrap();
        assert_eq!(s.linear(&[3]).unwrap(), 3);
        assert_eq!(s.coords_of(9), vec![9]);
    }

    #[test]
    fn hypercube_shape() {
        let s = Shape::hypercube(4, 3).unwrap();
        assert_eq!(s.dims(), &[4, 4, 4]);
        assert_eq!(s.len(), 64);
    }

    #[test]
    fn rejects_empty_and_zero() {
        assert_eq!(Shape::new(&[]), Err(NdError::EmptyShape));
        assert_eq!(Shape::new(&[3, 0]), Err(NdError::ZeroDim { dim: 1 }));
    }

    #[test]
    fn rejects_overflow() {
        assert_eq!(Shape::new(&[usize::MAX, 2]), Err(NdError::SizeOverflow));
    }

    #[test]
    fn check_reports_errors() {
        let s = Shape::new(&[3, 3]).unwrap();
        assert_eq!(
            s.check(&[1]),
            Err(NdError::DimMismatch {
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            s.check(&[1, 3]),
            Err(NdError::OutOfBounds {
                dim: 1,
                coord: 3,
                size: 3
            })
        );
        assert!(s.check(&[2, 2]).is_ok());
    }

    #[test]
    fn for_each_region_cell_matches_iterators() {
        let s = Shape::new(&[3, 4, 2]).unwrap();
        let r = Region::new(&[1, 0, 1], &[2, 3, 1]).unwrap();
        let mut pairs = Vec::new();
        s.for_each_region_cell(&r, |c, lin| pairs.push((c.to_vec(), lin)));
        let coords: Vec<Vec<usize>> = r.iter().collect();
        let linears: Vec<usize> = s.linear_region_iter(&r).collect();
        assert_eq!(pairs.len(), coords.len());
        for ((pc, plin), (c, lin)) in pairs.iter().zip(coords.iter().zip(&linears)) {
            assert_eq!(pc, c);
            assert_eq!(plin, lin);
        }
    }

    #[test]
    fn for_each_linear_in_bounds_matches_iterator() {
        let s = Shape::new(&[3, 4, 2]).unwrap();
        let r = Region::new(&[1, 0, 1], &[2, 3, 1]).unwrap();
        let mut buf = vec![7usize; 9]; // pre-dirtied: must be cleared
        let mut got = Vec::new();
        s.for_each_linear_in_bounds(r.lo(), r.hi(), &mut buf, |lin| got.push(lin));
        let want: Vec<usize> = s.linear_region_iter(&r).collect();
        assert_eq!(got, want);

        // One-dimensional and singleton walks.
        let s1 = Shape::new(&[10]).unwrap();
        got.clear();
        s1.for_each_linear_in_bounds(&[4], &[8], &mut buf, |lin| got.push(lin));
        assert_eq!(got, vec![4, 5, 6, 7, 8]);
        got.clear();
        s1.for_each_linear_in_bounds(&[9], &[9], &mut buf, |lin| got.push(lin));
        assert_eq!(got, vec![9]);
    }

    #[test]
    fn contiguous_runs_cover_the_region_in_order() {
        let s = Shape::new(&[3, 4, 5]).unwrap();
        let r = Region::new(&[1, 0, 2], &[2, 3, 4]).unwrap();
        let mut buf = vec![9usize; 5]; // pre-dirtied: must be cleared
        let mut via_runs = Vec::new();
        s.for_each_contiguous_run_in_bounds(r.lo(), r.hi(), &mut buf, |start, len| {
            via_runs.extend(start..start + len);
        });
        let want: Vec<usize> = s.linear_region_iter(&r).collect();
        assert_eq!(via_runs, want);

        // Iterator form agrees with the callback form.
        let via_iter: Vec<usize> = s
            .contiguous_runs(&r)
            .flat_map(|(start, len)| start..start + len)
            .collect();
        assert_eq!(via_iter, want);
        assert_eq!(s.contiguous_runs(&r).len(), 2 * 4);
    }

    #[test]
    fn contiguous_runs_one_dim_is_a_single_run() {
        let s = Shape::new(&[10]).unwrap();
        let r = Region::new(&[3], &[7]).unwrap();
        let mut buf = Vec::new();
        let mut runs = Vec::new();
        s.for_each_contiguous_run_in_bounds(r.lo(), r.hi(), &mut buf, |start, len| {
            runs.push((start, len));
        });
        assert_eq!(runs, vec![(3, 5)]);
        assert_eq!(s.contiguous_runs(&r).collect::<Vec<_>>(), vec![(3, 5)]);
    }

    #[test]
    fn contiguous_runs_singleton_and_unit_rows() {
        // Unit innermost extent: every run has length 1 (worst case, the
        // walk degrades to the per-cell odometer).
        let s = Shape::new(&[4, 4]).unwrap();
        let r = Region::new(&[1, 2], &[3, 2]).unwrap();
        let mut buf = Vec::new();
        let mut runs = Vec::new();
        s.for_each_contiguous_run_in_bounds(r.lo(), r.hi(), &mut buf, |start, len| {
            runs.push((start, len));
        });
        assert_eq!(runs, vec![(6, 1), (10, 1), (14, 1)]);
    }

    #[test]
    fn full_region_spans_shape() {
        let s = Shape::new(&[2, 4]).unwrap();
        let r = s.full_region();
        assert_eq!(r.lo(), &[0, 0]);
        assert_eq!(r.hi(), &[1, 3]);
        assert_eq!(r.cell_count(), 8);
    }
}
