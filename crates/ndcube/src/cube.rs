use std::fmt;

use crate::{NdError, Region, Shape};

/// A dense, row-major, d-dimensional array.
///
/// This is the representation of the paper's arrays `A`, `P` and `RP`.
/// Values only need `Clone`; arithmetic is layered on top by `rps-core`'s
/// value algebra, keeping this substrate agnostic.
///
/// ```
/// use ndcube::NdCube;
/// let a = NdCube::from_fn(&[2, 3], |c| (c[0] * 10 + c[1]) as i64).unwrap();
/// assert_eq!(a.get(&[1, 2]), 12);
/// assert_eq!(a.as_slice(), &[0, 1, 2, 10, 11, 12]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NdCube<T> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: Clone> NdCube<T> {
    /// Builds a cube with every cell set to `fill`.
    pub fn filled(dims: &[usize], fill: T) -> Result<NdCube<T>, NdError> {
        let shape = Shape::new(dims)?;
        let data = vec![fill; shape.len()];
        Ok(NdCube { shape, data })
    }

    /// Builds a cube by evaluating `f` at every coordinate, row-major.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(&[usize]) -> T) -> Result<NdCube<T>, NdError> {
        let shape = Shape::new(dims)?;
        let mut data = Vec::with_capacity(shape.len());
        crate::RegionIter::for_each_coords(&shape.full_region(), |c| data.push(f(c)));
        Ok(NdCube { shape, data })
    }

    /// Wraps an existing row-major buffer. Fails when the buffer length does
    /// not match the shape.
    pub fn from_vec(dims: &[usize], data: Vec<T>) -> Result<NdCube<T>, NdError> {
        let shape = Shape::new(dims)?;
        if data.len() != shape.len() {
            return Err(NdError::DimMismatch {
                expected: shape.len(),
                got: data.len(),
            });
        }
        Ok(NdCube { shape, data })
    }

    /// Reads a cell (checked; panics on bad coordinates, like slice
    /// indexing).
    #[inline]
    pub fn get(&self, coords: &[usize]) -> T {
        // lint:allow(L2): documented slice-like panic contract; try_get is the fallible twin
        self.data[self.shape.linear(coords).expect("coordinates in bounds")].clone()
    }

    /// Fallible cell read.
    pub fn try_get(&self, coords: &[usize]) -> Result<T, NdError> {
        Ok(self.data[self.shape.linear(coords)?].clone())
    }

    /// Writes a cell (checked; panics on bad coordinates).
    #[inline]
    pub fn set(&mut self, coords: &[usize], value: T) {
        // lint:allow(L2): documented slice-like panic contract; try_set is the fallible twin
        let lin = self.shape.linear(coords).expect("coordinates in bounds");
        self.data[lin] = value;
    }

    /// Fallible cell write.
    pub fn try_set(&mut self, coords: &[usize], value: T) -> Result<(), NdError> {
        let lin = self.shape.linear(coords)?;
        self.data[lin] = value;
        Ok(())
    }

    /// Returns a cube of the same shape with `f` applied cell-wise.
    pub fn map<U: Clone>(&self, f: impl FnMut(&T) -> U) -> NdCube<U> {
        NdCube {
            shape: self.shape.clone(),
            data: self.data.iter().map(f).collect(),
        }
    }
}

impl<T> NdCube<T> {
    /// The cube's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.ndim()
    }

    /// Total cell count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false for constructed cubes; by convention.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads a cell by raw linear offset (hot path; offset must be valid).
    #[inline]
    pub fn get_linear(&self, linear: usize) -> &T {
        &self.data[linear]
    }

    /// Mutable access by raw linear offset.
    #[inline]
    pub fn get_linear_mut(&mut self, linear: usize) -> &mut T {
        &mut self.data[linear]
    }

    /// The backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable backing buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Shape and mutable buffer together — for callers that must compute
    /// offsets from the strides while mutating cells (a plain
    /// `as_mut_slice` borrow would lock out `shape()`).
    #[inline]
    pub fn parts_mut(&mut self) -> (&Shape, &mut [T]) {
        (&self.shape, &mut self.data)
    }

    /// Consumes the cube, returning its buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

impl<T: Clone + Default> NdCube<T> {
    /// A cube of `T::default()` values (e.g. zeros for numeric `T`).
    pub fn zeros(dims: &[usize]) -> NdCube<T> {
        // lint:allow(L2): mirrors `vec![0; n]` semantics — panics only on invalid dims
        NdCube::filled(dims, T::default()).expect("valid dims")
    }
}

/// Pretty-prints 2-dimensional cubes as the row/column tables used in the
/// paper's figures. Higher-dimensional cubes print shape + flat data.
impl<T: fmt::Display> fmt::Display for NdCube<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ndim() == 2 {
            let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
            // Column widths for alignment.
            let mut width = 1;
            for v in &self.data {
                width = width.max(v.to_string().len());
            }
            for r in 0..rows {
                for c in 0..cols {
                    if c > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{:>width$}", self.data[r * cols + c], width = width)?;
                }
                writeln!(f)?;
            }
            Ok(())
        } else {
            writeln!(f, "NdCube{:?} ({} cells)", self.shape.dims(), self.len())
        }
    }
}

impl<T: Clone> NdCube<T> {
    /// Clones the cells of `region` into a row-major `Vec`.
    pub fn region_to_vec(&self, region: &Region) -> Result<Vec<T>, NdError> {
        self.shape.check_region(region)?;
        Ok(self
            .shape
            .linear_region_iter(region)
            .map(|lin| self.data[lin].clone())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_get_set() {
        let mut c = NdCube::filled(&[3, 3], 0i64).unwrap();
        c.set(&[2, 1], 42);
        assert_eq!(c.get(&[2, 1]), 42);
        assert_eq!(c.get(&[0, 0]), 0);
    }

    #[test]
    fn from_fn_row_major() {
        let c = NdCube::from_fn(&[2, 2], |xy| (xy[0], xy[1])).unwrap();
        assert_eq!(c.as_slice(), &[(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(NdCube::from_vec(&[2, 2], vec![1, 2, 3]).is_err());
        let c = NdCube::from_vec(&[2, 2], vec![1, 2, 3, 4]).unwrap();
        assert_eq!(c.get(&[1, 0]), 3);
    }

    #[test]
    fn try_accessors_report_errors() {
        let mut c = NdCube::<i32>::zeros(&[2, 2]);
        assert!(c.try_get(&[2, 0]).is_err());
        assert!(c.try_set(&[0, 5], 1).is_err());
        assert!(c.try_set(&[1, 1], 9).is_ok());
        assert_eq!(c.try_get(&[1, 1]).unwrap(), 9);
    }

    #[test]
    fn map_preserves_shape() {
        let c = NdCube::from_fn(&[2, 3], |xy| xy[0] + xy[1]).unwrap();
        let doubled = c.map(|v| v * 2);
        assert_eq!(doubled.shape().dims(), &[2, 3]);
        assert_eq!(doubled.get(&[1, 2]), 6);
    }

    #[test]
    fn region_to_vec_extracts_block() {
        let c = NdCube::from_fn(&[3, 3], |xy| (xy[0] * 3 + xy[1]) as i64).unwrap();
        let r = Region::new(&[1, 1], &[2, 2]).unwrap();
        assert_eq!(c.region_to_vec(&r).unwrap(), vec![4, 5, 7, 8]);
    }

    #[test]
    fn display_2d_is_table() {
        let c = NdCube::from_vec(&[2, 2], vec![1, 22, 3, 4]).unwrap();
        let s = format!("{c}");
        assert_eq!(s, " 1 22\n 3  4\n");
    }

    #[test]
    fn three_d_cube() {
        let c = NdCube::from_fn(&[2, 2, 2], |xyz| xyz[0] * 4 + xyz[1] * 2 + xyz[2]).unwrap();
        assert_eq!(c.get(&[1, 1, 1]), 7);
        assert_eq!(c.len(), 8);
    }
}
