//! Property tests for the array substrate: index arithmetic and the two
//! region iterators must agree with each other and with a naive model on
//! arbitrary shapes and regions.

use ndcube::{NdCube, Region, RegionIter, Shape};
use proptest::prelude::*;

fn shape_and_region() -> impl Strategy<Value = (Vec<usize>, Vec<usize>, Vec<usize>)> {
    (1usize..=4)
        .prop_flat_map(|d| proptest::collection::vec(1usize..=6, d..=d))
        .prop_flat_map(|dims| {
            let lo = dims.iter().map(|&n| 0..n).collect::<Vec<_>>();
            let hi = dims.iter().map(|&n| 0..n).collect::<Vec<_>>();
            (Just(dims), lo, hi)
        })
        .prop_map(|(dims, a, b)| {
            let lo: Vec<usize> = a.iter().zip(&b).map(|(&x, &y)| x.min(y)).collect();
            let hi: Vec<usize> = a.iter().zip(&b).map(|(&x, &y)| x.max(y)).collect();
            (dims, lo, hi)
        })
}

proptest! {
    #[test]
    fn linear_round_trips((dims, lo, _hi) in shape_and_region()) {
        let shape = Shape::new(&dims).unwrap();
        let lin = shape.linear(&lo).unwrap();
        prop_assert_eq!(shape.coords_of(lin), lo);
    }

    #[test]
    fn region_iterators_agree((dims, lo, hi) in shape_and_region()) {
        let shape = Shape::new(&dims).unwrap();
        let region = Region::new(&lo, &hi).unwrap();
        let via_coords: Vec<usize> = region
            .iter()
            .map(|c| shape.linear(&c).unwrap())
            .collect();
        let via_linear: Vec<usize> = shape.linear_region_iter(&region).collect();
        prop_assert_eq!(&via_coords, &via_linear);
        prop_assert_eq!(via_linear.len(), region.cell_count());

        let mut via_for_each = Vec::new();
        RegionIter::for_each_coords(&region, |c| {
            via_for_each.push(shape.linear(c).unwrap());
        });
        prop_assert_eq!(via_coords, via_for_each);
    }

    #[test]
    fn iteration_is_strictly_increasing((dims, lo, hi) in shape_and_region()) {
        // Row-major order over a box region ⇒ strictly increasing linear
        // offsets.
        let shape = Shape::new(&dims).unwrap();
        let region = Region::new(&lo, &hi).unwrap();
        let offs: Vec<usize> = shape.linear_region_iter(&region).collect();
        prop_assert!(offs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn contains_matches_iteration((dims, lo, hi) in shape_and_region()) {
        let shape = Shape::new(&dims).unwrap();
        let region = Region::new(&lo, &hi).unwrap();
        let members: std::collections::HashSet<Vec<usize>> = region.iter().collect();
        for cell in &shape.full_region() {
            prop_assert_eq!(region.contains(&cell), members.contains(&cell));
        }
    }

    #[test]
    fn intersection_is_conjunction(
        (dims, lo, hi) in shape_and_region(),
        flips in proptest::collection::vec(0usize..6, 8),
    ) {
        // Derive a second region in the SAME shape by perturbing the
        // first with the extra entropy.
        let lo2: Vec<usize> = lo
            .iter()
            .zip(&dims)
            .enumerate()
            .map(|(i, (&l, &n))| (l + flips[i % 8]) % n)
            .collect();
        let hi2: Vec<usize> = hi
            .iter()
            .zip(&lo2)
            .zip(&dims)
            .enumerate()
            .map(|(i, ((&h, &l2), &n))| ((h + flips[(i + 3) % 8]) % n).max(l2))
            .collect();
        let a = Region::new(&lo, &hi).unwrap();
        let b = Region::new(&lo2, &hi2).unwrap();
        let inter = a.intersect(&b);
        let shape = Shape::new(&dims).unwrap();
        for cell in &shape.full_region() {
            let in_both = a.contains(&cell) && b.contains(&cell);
            let in_inter = inter.as_ref().is_some_and(|i| i.contains(&cell));
            prop_assert_eq!(in_both, in_inter, "cell {:?}", cell);
        }
    }

    #[test]
    fn from_fn_get_consistency((dims, lo, _hi) in shape_and_region()) {
        let cube = NdCube::from_fn(&dims, |c| {
            c.iter().enumerate().map(|(i, &x)| x * (i + 1) * 100).sum::<usize>()
        })
        .unwrap();
        let expect: usize =
            lo.iter().enumerate().map(|(i, &x)| x * (i + 1) * 100).sum();
        prop_assert_eq!(cube.get(&lo), expect);
    }

    #[test]
    fn region_to_vec_matches_gets((dims, lo, hi) in shape_and_region()) {
        let cube = NdCube::from_fn(&dims, |c| c.iter().sum::<usize>() as i64).unwrap();
        let region = Region::new(&lo, &hi).unwrap();
        let vec = cube.region_to_vec(&region).unwrap();
        let direct: Vec<i64> = region.iter().map(|c| cube.get(&c)).collect();
        prop_assert_eq!(vec, direct);
    }
}
