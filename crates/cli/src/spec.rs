//! Schema specification strings for `rps-cube ingest`.
//!
//! Grammar, one entry per dimension, comma-separated:
//!
//! ```text
//! NAME:num:MIN:MAX          numeric attribute spanning MIN..=MAX
//! NAME:cat:L1|L2|L3         categorical attribute with members in order
//! ```
//!
//! Example: `AGE:num:18:99,REGION:cat:East|North|South|West`

use rps_workload::{CubeSchema, Dimension};

/// Spec parse errors, with enough context to fix the string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad schema spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// Parses a schema spec string into a [`CubeSchema`].
pub fn parse_schema_spec(spec: &str) -> Result<CubeSchema, SpecError> {
    let mut dims = Vec::new();
    for (i, entry) in spec.split(',').enumerate() {
        let entry = entry.trim();
        if entry.is_empty() {
            return Err(SpecError(format!("empty entry at position {i}")));
        }
        let parts: Vec<&str> = entry.split(':').collect();
        match parts.as_slice() {
            [name, "num", min, max] => {
                let min: i64 = min
                    .parse()
                    .map_err(|e| SpecError(format!("{name}: bad min `{min}`: {e}")))?;
                let max: i64 = max
                    .parse()
                    .map_err(|e| SpecError(format!("{name}: bad max `{max}`: {e}")))?;
                if min > max {
                    return Err(SpecError(format!("{name}: min {min} > max {max}")));
                }
                dims.push(Dimension::numeric(name, min, max));
            }
            [name, "cat", members] => {
                let labels: Vec<&str> = members.split('|').filter(|l| !l.is_empty()).collect();
                if labels.is_empty() {
                    return Err(SpecError(format!("{name}: no members listed")));
                }
                dims.push(Dimension::categorical(name, &labels));
            }
            _ => {
                return Err(SpecError(format!(
                    "`{entry}` (expected NAME:num:MIN:MAX or NAME:cat:A|B|C)"
                )))
            }
        }
    }
    if dims.is_empty() {
        return Err(SpecError("no dimensions".into()));
    }
    Ok(CubeSchema::new(dims))
}

/// Parses a where clause like `AGE=37..52,REGION=East..West` against a
/// schema into an inclusive region. Attributes omitted from the clause
/// span their full domain; `ATTR=value` selects a single coordinate.
pub fn parse_where(
    schema: &rps_workload::CubeSchema,
    clause: &str,
) -> Result<ndcube::Region, SpecError> {
    use rps_workload::{Dimension, Key};
    let dims = schema.dims();
    let mut lo: Vec<usize> = vec![0; dims.len()];
    let mut hi: Vec<usize> = dims.iter().map(|&n| n - 1).collect();

    for part in clause.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (name, range) = part
            .split_once('=')
            .ok_or_else(|| SpecError(format!("`{part}` needs ATTR=lo..hi or ATTR=value")))?;
        let dim = schema
            .dim_index(name.trim())
            .ok_or_else(|| SpecError(format!("unknown attribute `{name}`")))?;
        let (lo_s, hi_s) = match range.split_once("..") {
            Some((l, h)) => (l.trim(), h.trim()),
            None => (range.trim(), range.trim()),
        };
        let key_of = |raw: &str| -> Result<usize, SpecError> {
            let key = match &schema.dimensions()[dim] {
                Dimension::Numeric { name, .. } => Key::Num(
                    raw.parse::<i64>()
                        .map_err(|e| SpecError(format!("{name}: bad value `{raw}`: {e}")))?,
                ),
                Dimension::Categorical { .. } => Key::Cat(raw),
            };
            schema
                .index_of(dim, &key)
                .map_err(|e| SpecError(format!("{name}: `{raw}` out of domain ({e})")))
        };
        lo[dim] = key_of(lo_s)?;
        hi[dim] = key_of(hi_s)?;
        if lo[dim] > hi[dim] {
            return Err(SpecError(format!("{name}: range `{range}` is inverted")));
        }
    }
    ndcube::Region::new(&lo, &hi).map_err(|e| SpecError(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_spec() {
        let s = parse_schema_spec("AGE:num:18:99,REGION:cat:East|North|South|West").unwrap();
        assert_eq!(s.dims(), vec![82, 4]);
        assert_eq!(s.dimensions()[0].name(), "AGE");
        assert_eq!(s.dimensions()[1].name(), "REGION");
    }

    #[test]
    fn negative_numeric_domain() {
        let s = parse_schema_spec("TEMP:num:-40:60").unwrap();
        assert_eq!(s.dims(), vec![101]);
    }

    #[test]
    fn where_clause_builds_region() {
        let schema =
            parse_schema_spec("AGE:num:18:99,DAY:num:0:364,REGION:cat:East|North|South|West")
                .unwrap();
        let r = parse_where(&schema, "AGE=37..52,DAY=275..364").unwrap();
        assert_eq!(r.lo(), &[19, 275, 0]);
        assert_eq!(r.hi(), &[34, 364, 3]); // REGION unconstrained
        let point = parse_where(&schema, "REGION=South").unwrap();
        assert_eq!(point.lo()[2], 2);
        assert_eq!(point.hi()[2], 2);
        let all = parse_where(&schema, "").unwrap();
        assert_eq!(all.cell_count(), 82 * 365 * 4);
    }

    #[test]
    fn where_clause_errors() {
        let schema = parse_schema_spec("AGE:num:18:99").unwrap();
        assert!(parse_where(&schema, "HEIGHT=1..2").is_err());
        assert!(parse_where(&schema, "AGE=52..37").is_err());
        assert!(parse_where(&schema, "AGE=200").is_err());
        assert!(parse_where(&schema, "AGE").is_err());
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_schema_spec("").is_err());
        assert!(parse_schema_spec("AGE:num:18").is_err());
        assert!(parse_schema_spec("AGE:int:1:2").is_err());
        assert!(parse_schema_spec("AGE:num:10:5").is_err());
        assert!(parse_schema_spec("R:cat:").is_err());
        assert!(parse_schema_spec("AGE:num:x:5").is_err());
    }
}
