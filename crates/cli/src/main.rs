//! `rps-cube` — command-line front end for the RPS data-cube library.
//!
//! ```text
//! rps-cube generate --dims 256x256 --seed 7 --out sales.cube
//! rps-cube build --cube sales.cube --out sales.rps
//! rps-cube query --file sales.rps --range 37,275:52,364
//! rps-cube update --file sales.rps --cell 41,364 --delta 250
//! rps-cube bench --dims 128x128 --ops 2000
//! ```

mod args;
mod client_cmd;
mod commands;
mod csv;
mod spec;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            let _ = commands::help(&mut std::io::stderr());
            return ExitCode::from(2);
        }
    };
    let mut stdout = std::io::stdout();
    match commands::run(&parsed, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
