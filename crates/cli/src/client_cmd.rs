//! The `rps-cube client` subcommand: a thin wrapper over
//! [`rps_serve::Client`] so an `rps-serve` server can be driven from
//! scripts and smoke tests without writing Rust (docs/SERVING.md,
//! docs/OPERATIONS.md).

use std::io::Write;

use rps_serve::{scrape_metrics, Client};

use crate::args::{parse_cell, parse_dims, parse_range, Args};
use crate::commands::CmdResult;

/// A `(cell, delta)` batch item as [`rps_serve::Client::batch_update`]
/// takes them.
type BatchItems = Vec<(Vec<usize>, i64)>;

/// Parses `--updates "1,2:+5;3,4:-2"` into batch items.
fn parse_updates(spec: &str) -> Result<BatchItems, Box<dyn std::error::Error>> {
    let mut out = Vec::new();
    for item in spec.split(';').filter(|s| !s.trim().is_empty()) {
        let (cell, delta) = item
            .split_once(':')
            .ok_or_else(|| format!("bad update `{item}` (expected CELL:DELTA)"))?;
        out.push((parse_cell(cell.trim())?, delta.trim().parse::<i64>()?));
    }
    if out.is_empty() {
        return Err("empty --updates".into());
    }
    Ok(out)
}

/// Dispatches `rps-cube client <action>`.
pub fn client(args: &Args, out: &mut dyn Write) -> CmdResult {
    let addr = args.required("addr")?;
    let action = args.sub.as_deref().unwrap_or("");
    if action == "metrics" {
        write!(out, "{}", scrape_metrics(addr)?)?;
        return Ok(());
    }
    let mut client = Client::connect(addr)?;
    match action {
        "create" => {
            let tenant = args.required("tenant")?;
            let dims = parse_dims(args.required("dims")?)?;
            client.create_tenant(tenant, &dims)?;
            writeln!(out, "created tenant `{tenant}` {dims:?} on {addr}")?;
        }
        "query" => {
            let tenant = args.required("tenant")?;
            let (lo, hi) = parse_range(args.required("region")?)?;
            let sum = client.query(tenant, &lo, &hi)?;
            writeln!(out, "SUM[{lo:?}..={hi:?}] = {sum}")?;
        }
        "update" => {
            let tenant = args.required("tenant")?;
            let cell = parse_cell(args.required("cell")?)?;
            let delta = args.i64_or("delta", 1)?;
            client.update(tenant, &cell, delta)?;
            writeln!(out, "updated {cell:?} by {delta:+}")?;
        }
        "batch" => {
            let tenant = args.required("tenant")?;
            let updates = parse_updates(args.required("updates")?)?;
            let applied = client.batch_update(tenant, &updates)?;
            writeln!(out, "applied {applied} updates atomically")?;
        }
        "stats" => {
            let tenant = args.required("tenant")?;
            let s = client.stats(tenant)?;
            writeln!(
                out,
                "tenant `{tenant}`: dims {:?}, version {}, {} updates, last checkpoint lsn {}",
                s.dims, s.version, s.update_count, s.last_checkpoint_lsn
            )?;
        }
        "snapshot" => {
            let tenant = args.required("tenant")?;
            let lsn = client.snapshot(tenant)?;
            writeln!(out, "checkpointed `{tenant}` at lsn {lsn}")?;
        }
        "shutdown" => {
            client.shutdown()?;
            writeln!(out, "server at {addr} is draining")?;
        }
        other => {
            return Err(format!(
                "unknown client action `{other}` (expected create|query|update|batch|stats|\
                 snapshot|shutdown|metrics)"
            )
            .into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_spec_parses() {
        let got = parse_updates("1,2:+5;3,4:-2").unwrap();
        assert_eq!(got, vec![(vec![1, 2], 5), (vec![3, 4], -2)]);
        assert!(parse_updates("").is_err());
        assert!(parse_updates("1,2").is_err());
    }
}
